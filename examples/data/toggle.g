# The simplest timed STG: a single output pulsing forever.
# Try:  rtv dot examples/data/toggle.g
#       rtv minimize examples/data/toggle.g
.model toggle
.outputs x
.graph
x+ x-
x- x+
.marking { <x-,x+> }
.delay x+ 1 2
.delay x- 1 2
.end
