# Four-phase handshake, device side: observes req, drives ack.
# See hs_env.g for the composed verify/simulate command lines.
.model hs_dev
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.delay ack+ 0.5 1.5
.delay ack- 0.25 0.75
.end
