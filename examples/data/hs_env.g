# Four-phase handshake, environment side: drives req, observes ack.
# Compose with hs_dev.g over the shared {req, ack} alphabet:
#   rtv verify   examples/data/hs_env.g examples/data/hs_dev.g
#   rtv simulate examples/data/hs_env.g examples/data/hs_dev.g --events 24
.model hs_env
.inputs ack
.outputs req
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.delay req+ 1 2
.delay req- 0.5 1
.end
