# Disconnected padding toggler: shares no label with the other samples,
# so it composes with any of them without synchronising — and every
# property cone of influence excludes it.  Used to demonstrate slicing:
#   rtv slice examples/data/hs_env.g examples/data/hs_dev.g \
#             examples/data/pad_toggler.g --no-deadlock
# and the daemon's canonical cache key (padded and unpadded composed
# requests share one cache entry — see docs/SERVICE.md).
.model pad_toggler
.outputs pz
.graph
pz+ pz-
pz- pz+
.marking { <pz-,pz+> }
.delay pz+ 1 2
.delay pz- 1 2
.end
