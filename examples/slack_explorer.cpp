// Slack explorer: how much can a delay drift before the circuit breaks?
//
// The back-annotated constraints of the verification describe orderings
// that must hold; this tool sweeps one stage delay (by name) and reports
// the verified/failing boundary, i.e. the slack the paper's Section 5.3
// talks about.
//
//   $ ./slack_explorer                 # sweep the default parameter
//   $ ./slack_explorer y_fall 1 6 0.5  # sweep y_fall's upper bound
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "rtv/ipcmos/experiments.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

namespace {

DelayInterval* select(StageTiming& t, const std::string& name) {
  if (name == "vint_fall") return &t.vint_fall;
  if (name == "vint_rise") return &t.vint_rise;
  if (name == "z_rise") return &t.z_rise;
  if (name == "z_fall") return &t.z_fall;
  if (name == "y_rise") return &t.y_rise;
  if (name == "y_fall") return &t.y_fall;
  if (name == "x_rise") return &t.x_rise;
  if (name == "x_fall") return &t.x_fall;
  if (name == "ack_rise") return &t.ack_rise;
  if (name == "ack_fall") return &t.ack_fall;
  if (name == "a2_rise") return &t.a2_rise;
  if (name == "a2_fall") return &t.a2_fall;
  if (name == "clke_rise") return &t.clke_rise;
  if (name == "clke_fall") return &t.clke_fall;
  if (name == "d_rise") return &t.d_rise;
  if (name == "d_fall") return &t.d_fall;
  if (name == "r_rise") return &t.r_rise;
  if (name == "r_fall") return &t.r_fall;
  if (name == "valid_rise") return &t.valid_rise;
  if (name == "valid_fall") return &t.valid_fall;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string param = argc > 1 ? argv[1] : "y_fall";
  const double from = argc > 2 ? std::atof(argv[2]) : 1.0;
  const double to = argc > 3 ? std::atof(argv[3]) : 6.0;
  const double step = argc > 4 ? std::atof(argv[4]) : 0.5;

  StageTiming probe;
  DelayInterval* slot = select(probe, param);
  if (slot == nullptr) {
    std::printf("unknown stage delay '%s'\n", param.c_str());
    return 2;
  }
  std::printf("sweeping %s upper bound over [%.2f, %.2f] step %.2f\n"
              "(lower bound kept at %.2f; experiment 5 re-run per point)\n\n",
              param.c_str(), from, to, step, units_from_ticks(slot->lo()));

  double last_ok = -1, first_bad = -1;
  for (double v = from; v <= to + 1e-9; v += step) {
    ExperimentConfig cfg;
    DelayInterval* target = select(cfg.timing.stage, param);
    const Time lo = target->lo();
    const Time hi = ticks_from_units(v);
    if (hi < lo) continue;
    *target = DelayInterval(lo, hi);
    const VerificationResult r = experiment5(cfg);
    std::printf("  %s = [%.2f, %.2f] : %s", param.c_str(),
                units_from_ticks(lo), v, to_string(r.verdict));
    if (!r.verified() && !r.counterexample_text.empty()) {
      std::printf("  (%s)", r.message.c_str());
    }
    std::printf("\n");
    if (r.verified()) {
      last_ok = v;
    } else if (first_bad < 0) {
      first_bad = v;
    }
  }
  if (first_bad >= 0 && last_ok >= 0) {
    std::printf("\nslack: %s may grow to %.2f units; it breaks at %.2f.\n",
                param.c_str(), last_ok, first_bad);
  } else if (first_bad < 0) {
    std::printf("\nno failure in the swept range.\n");
  } else {
    std::printf("\nthe whole swept range fails.\n");
  }
  return 0;
}
