// Waveform demo: simulate an n-stage IPCMOS pipeline and dump waveforms.
//
//   $ ./waveform_demo            # 2 stages, ASCII waveform to stdout
//   $ ./waveform_demo 3 out.vcd  # 3 stages, also write a VCD file
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "rtv/ipcmos/pipeline.hpp"
#include "rtv/sim/simulator.hpp"
#include "rtv/sim/waveform.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

int main(int argc, char** argv) {
  const int stages = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::string vcd_path = argc > 2 ? argv[2] : "";

  const ModuleSet set = flat_pipeline(stages);
  SimOptions opts;
  opts.max_events = 120 * static_cast<std::size_t>(stages);
  opts.seed = 2026;
  const SimTrace trace = simulate_modules(set.ptrs, opts);

  std::printf("%d-stage IPCMOS pipeline: %zu events over %.2f time units%s\n\n",
              stages, trace.events.size(), units_from_ticks(trace.end_time),
              trace.deadlocked ? " (DEADLOCK)" : "");

  // Boundary signals plus each stage's local clock, as in Fig. 7.
  std::vector<std::string> signals;
  signals.push_back("V1");
  for (int k = 1; k <= stages; ++k) {
    signals.push_back("I" + std::to_string(k) + ".CLKE");
    signals.push_back("A" + std::to_string(k));
    signals.push_back("V" + std::to_string(k + 1));
  }
  signals.push_back("A" + std::to_string(stages + 1));

  TransitionSystem table;
  table.set_signal_names(trace.signal_names);
  std::printf("%s\n", ascii_waveform(table, trace, signals).c_str());

  if (!vcd_path.empty()) {
    std::ofstream out(vcd_path);
    out << to_vcd(table, trace, signals);
    std::printf("VCD written to %s\n", vcd_path.c_str());
  }
  return trace.deadlocked ? 1 : 0;
}
