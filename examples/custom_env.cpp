// Custom environments from .g (astg) files.
//
// Verifies the IPCMOS stage against an environment the user describes in
// the standard STG interchange format, with the library's non-standard
// `.delay` / `.initial` annotations for timing.  With no argument, a
// built-in demo environment (a slow producer) is used; pass a path to load
// your own.
//
//   $ ./custom_env                 # built-in demo .g
//   $ ./custom_env my_producer.g   # user-provided left environment
#include <cstdio>
#include <fstream>
#include <sstream>

#include "rtv/circuit/invariants.hpp"
#include "rtv/ipcmos/pipeline.hpp"
#include "rtv/stg/astg.hpp"
#include "rtv/stg/elaborate.hpp"
#include "rtv/verify/report.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

namespace {

// A slower, lazier producer than the paper's IN: it waits for both the
// pulse end and the acknowledge, then idles at least 20 units.
const char* kDemoEnv = R"(
.model slow_producer
.inputs A1
.outputs V1
.initial V1
.graph
V1- V1+          # the VALID pulse
V1- A1+          # each item is acknowledged once
A1+ A1-
V1+ V1-          # next item only after the pulse ended
A1+ V1-          # ... and after the acknowledge
A1- A1+
.marking { <V1+,V1-> <A1+,V1-> <A1-,A1+> }
.delay V1- 20 inf
.delay V1+ 15.25 16
.end
)";

}  // namespace

int main(int argc, char** argv) {
  Stg env_stg = [&] {
    if (argc > 1) {
      std::ifstream in(argv[1]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[1]);
        std::exit(2);
      }
      return parse_astg(in);
    }
    return parse_astg_string(kDemoEnv);
  }();

  std::printf("environment '%s': %zu transitions, %zu places\n",
              env_stg.name().c_str(), env_stg.num_transitions(),
              env_stg.num_places());
  std::printf("%s\n", write_astg(env_stg).c_str());

  const Module env = elaborate(env_stg);
  const PipelineTiming timing;
  const Module stage = make_stage(1, timing);
  const Module out = make_out_env(1, timing);

  DeadlockFreedom dead;
  PersistencyProperty pers;
  const Netlist nl = make_stage_netlist("I1", linear_channels(1), timing.stage);
  const auto scs = short_circuit_properties(nl);
  std::vector<const SafetyProperty*> props{&dead, &pers};
  for (const auto& p : scs) props.push_back(p.get());

  const VerificationResult r = verify_modules({&env, &stage, &out}, props);
  std::printf("%s", format_report("stage against custom environment", r).c_str());
  if (!r.verified() && r.counterexample) {
    std::printf("\ncounterexample detail:\n%s\n", r.counterexample_text.c_str());
  }
  return r.verified() ? 0 : 1;
}
