// Full IPCMOS verification: the paper's assume-guarantee plan.
//
// Verifies an n-stage IPCMOS pipeline for every n > 0 by running the five
// obligations of Section 4.2:
//   1. the abstractions meet the specification,
//   2. A_out is a sound abstraction of I || OUT,
//   3. A_in  is a sound abstraction of IN || I (induction base),
//   4. A_in  is a behavioural fixed point (induction step),
//   5. a single stage works between two pulse-driven environments.
//
//   $ ./ipcmos_verify
#include <cstdio>

#include "rtv/ipcmos/experiments.hpp"
#include "rtv/verify/report.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

int main() {
  // The stage is a 32-transistor netlist (21 + 7 inputs + 4 outputs),
  // reconstructed from the paper's stack-level description.
  const Netlist stage = make_stage_netlist("I1", linear_channels(1));
  std::printf("IPCMOS stage: %d transistors, %zu nodes, %zu stacks\n\n",
              stage.transistor_count(), stage.num_nodes(),
              stage.stacks().size());

  const auto rows = run_all_experiments();
  std::vector<ExperimentRow> table;
  bool ok = true;
  for (const auto& row : rows) {
    table.push_back(summarize(row.name, row.result));
    ok = ok && row.result.verified();
  }
  std::printf("%s\n", format_table(table).c_str());

  if (!ok) {
    for (const auto& row : rows) {
      if (!row.result.verified()) {
        std::printf("FAILED %s: %s\n", row.name.c_str(),
                    row.result.message.c_str());
      }
    }
    return 1;
  }

  std::printf("pipelines of every length n > 0 are verified:\n"
              "  - steps 3 and 4 induct over the pipeline length,\n"
              "  - step 2 closes the output end,\n"
              "  - step 5 covers the single-stage case,\n"
              "  - step 1 ties the abstractions to the specification.\n\n");

  std::printf("sufficient relative timing constraints (from step 5):\n%s",
              format_constraints(rows[4].result).c_str());
  return 0;
}
