// Quickstart: verify a timed ordering property with relative timing.
//
// Build a small timed transition system, state a safety property as a
// monitor + invariant, run the iterative relative-timing flow, and read
// the back-annotated constraints.  This is the paper's introductory
// example (Fig. 1) end to end.
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "rtv/ts/gallery.hpp"
#include "rtv/verify/engine.hpp"
#include "rtv/verify/refinement.hpp"
#include "rtv/verify/report.hpp"

using namespace rtv;

int main() {
  // 1. The system under verification: five events with delay intervals.
  //    a [2.5,3] triggers c [1,2] which triggers d [0,inf);
  //    b [1,2] triggers g [0.5,0.5]; the two chains are concurrent.
  const Module system = gallery::intro_example();

  // 2. The property: g must always fire before d.  Monitors are ordinary
  //    modules; this one raises its `fail` signal when d comes first.
  const Module monitor = gallery::order_monitor("g", "d");
  const InvariantProperty property("g before d", {{"fail", true}});

  // 3. Run the flow: compose, search failures, prove each failure
  //    timing-inconsistent, refine with the derived constraint, repeat.
  const VerificationResult result =
      verify_modules({&system, &monitor}, {&property});

  std::printf("%s", format_report("quickstart", result).c_str());
  std::printf("\nrelative timing constraints sufficient for correctness:\n%s",
              format_constraints(result).c_str());

  // 4. Programmatic access to the verdict.
  if (!result.verified()) {
    std::printf("verification failed: %s\n", result.message.c_str());
    return 1;
  }
  std::printf("\nverified in %d refinement iterations.\n", result.refinements);

  // 5. The same obligation through the unified engine seam: every engine
  //    in engine_registry() (relative timing, dense-time zones, digitized
  //    time) answers with the same three-valued Verdict, under a shared
  //    budget (state cap + wall-clock deadline + cancellation).
  std::printf("\ncross-checking with every registered engine:\n");
  EngineRequest req;
  req.modules = {&system, &monitor};
  req.properties = {&property};
  req.budget.max_seconds = 10.0;  // generous deadline, same for all engines
  for (const Engine* engine : engine_registry().engines()) {
    const EngineResult r = engine->run(req);
    std::printf("  %-10s %-13s %8zu states  %.3f s\n",
                std::string(engine->name()).c_str(), to_string(r.verdict),
                r.states_explored, r.seconds);
    if (!r.verified()) return 1;
  }
  return 0;
}
