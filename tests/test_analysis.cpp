// Cone-of-influence slicing (rtv/analysis/): cone rules per property
// kind, conservative bail-outs, canonical reduced forms, and the
// end-to-end wiring — suite records, serve cache keys, lint notes and
// counterexample replay through the full composition.
#include <gtest/gtest.h>

#include <algorithm>

#include "rtv/analysis/depgraph.hpp"
#include "rtv/analysis/slice.hpp"
#include "rtv/lint/lint.hpp"
#include "rtv/serve/cache.hpp"
#include "rtv/serve/wire.hpp"
#include "rtv/ts/compose.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/suite.hpp"

using namespace rtv;

namespace {

DelayInterval d(Time lo, Time hi) { return DelayInterval(lo, hi); }

/// Disconnected always-live two-event ring with private labels: out of
/// every property's cone by construction (the fuzz generator's padding
/// shape).
Module toggler(const std::string& base) {
  Module m = gallery::ring({{base + "_a", d(1, 2)}, {base + "_b", d(1, 2)}});
  for (std::size_t ei = 0; ei < m.ts().num_events(); ++ei)
    m.ts().set_event_kind(EventId(static_cast<std::uint32_t>(ei)),
                          EventKind::kInternal);
  m.set_name(base + "_toggler");
  return m;
}

/// Single state, no transitions: permanently stuck.
Module stuck(const std::string& name) {
  TransitionSystem ts;
  ts.set_initial(ts.add_state("s0"));
  return Module(name, std::move(ts));
}

/// x/y choice where y disables x — the persistency-relevant local
/// conflict.
Module conflict(const std::string& x, const std::string& y) {
  TransitionSystem ts;
  const EventId ex = ts.add_event(x, d(1, 2), EventKind::kOutput);
  const EventId ey = ts.add_event(y, d(1, 2), EventKind::kOutput);
  const StateId s0 = ts.add_state("c0");
  const StateId s1 = ts.add_state("c1");
  const StateId s2 = ts.add_state("c2");
  ts.add_transition(s0, ex, s1);
  ts.add_transition(s0, ey, s2);
  ts.add_transition(s1, ey, s2);
  ts.set_initial(s0);
  return Module("conflict", std::move(ts));
}

std::vector<std::string> kept_names(const analysis::SliceResult& sl) {
  std::vector<std::string> out;
  for (const Module* m : sl.modules) out.push_back(m->name());
  return out;
}

bool has_note(const analysis::SliceResult& sl, const std::string& kind,
              const std::string& module) {
  return std::any_of(sl.notes.begin(), sl.notes.end(),
                     [&](const analysis::SliceNote& n) {
                       return n.kind == kind && n.module == module;
                     });
}

}  // namespace

// ---------------------------------------------------------------------------
// Cone rules per property kind
// ---------------------------------------------------------------------------

TEST(SliceCone, InvariantKeepsSignalOwnersAndTheirComponent) {
  const Module sys = gallery::chain({{"x", d(1, 2)}, {"y", d(1, 2)}});
  const Module mon = gallery::order_monitor("x", "y", "fail");
  const Module pad = toggler("pad0");
  const InvariantProperty inv("order", {{"fail", true}});

  const analysis::SliceResult sl =
      analysis::slice({&sys, &mon, &pad}, {&inv});
  EXPECT_TRUE(sl.bailout.empty()) << sl.bailout;
  EXPECT_FALSE(sl.identity);
  EXPECT_EQ(sl.dropped_modules, 1u);
  // The monitor owns `fail`; the system shares x/y with it, so both stay.
  const std::vector<std::string> names = kept_names(sl);
  EXPECT_NE(std::find(names.begin(), names.end(), sys.name()), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), pad.name()), names.end());
  EXPECT_TRUE(has_note(sl, "module", pad.name()));
}

TEST(SliceCone, DeadlockKeepsEveryLiveComponent) {
  // A disconnected live ring masks every composed deadlock (and a stuck
  // one is itself at stake), so deadlock-freedom must keep it.
  const Module sys = gallery::chain({{"x", d(1, 2)}});
  const Module pad = toggler("pad0");
  const DeadlockFreedom dead;

  const analysis::SliceResult sl = analysis::slice({&sys, &pad}, {&dead});
  EXPECT_TRUE(sl.bailout.empty());
  EXPECT_TRUE(sl.identity) << "a live module is never out of the deadlock cone";
}

TEST(SliceCone, DeadlockDropsPermanentlyStuckComponents) {
  const Module sys = gallery::ring({{"x", d(1, 2)}});
  const Module dead_weight = stuck("stuck");
  const DeadlockFreedom dead;

  const analysis::SliceResult sl =
      analysis::slice({&sys, &dead_weight}, {&dead});
  EXPECT_TRUE(sl.bailout.empty());
  EXPECT_EQ(sl.dropped_modules, 1u);
  EXPECT_EQ(kept_names(sl), std::vector<std::string>{sys.name()});
}

TEST(SliceCone, DeadlockOnAllStuckModulesBailsOut) {
  // The initial state *is* the deadlock; the engines must witness it.
  const Module a = stuck("a");
  const DeadlockFreedom dead;
  const analysis::SliceResult sl = analysis::slice({&a}, {&dead});
  EXPECT_FALSE(sl.bailout.empty());
  EXPECT_TRUE(sl.identity);
}

TEST(SliceCone, PersistencyDropsConflictFreeComponents) {
  const Module confl = conflict("x", "y");
  const Module pad = toggler("pad0");
  const PersistencyProperty pers;

  const analysis::SliceResult sl = analysis::slice({&confl, &pad}, {&pers});
  EXPECT_TRUE(sl.bailout.empty());
  EXPECT_EQ(sl.dropped_modules, 1u);
  EXPECT_EQ(kept_names(sl), std::vector<std::string>{confl.name()});
}

TEST(SliceCone, EmptyConeIsStaticallyVerified) {
  // Persistency over a conflict-free obligation: nothing can be violated,
  // nothing can choke (singleton components), so the cone empties.
  const Module pad = toggler("pad0");
  const PersistencyProperty pers;

  const analysis::SliceResult sl = analysis::slice({&pad}, {&pers});
  EXPECT_TRUE(sl.bailout.empty());
  EXPECT_TRUE(sl.modules.empty());
  EXPECT_FALSE(sl.identity);
  EXPECT_EQ(sl.dropped_modules, 1u);
}

TEST(SliceCone, ZeroDeadlineModulesAreNeverDropped) {
  // Time is shared even across disconnected components: a fireable
  // event with a zero upper delay bound can be forced to fire without
  // letting the clock advance, and a cycle of such events pins global
  // time — masking timed behaviour in every kept module.  The banked
  // fuzz reproducer "zero-deadline self-loop pins time" is exactly this
  // shape, so such a module must stay in the cone no matter what the
  // property bundle says.
  const Module confl = conflict("x", "y");
  Module pinner = gallery::ring({{"pin_a", d(0, 0)}, {"pin_b", d(0, 0)}});
  pinner.set_name("pinner");
  const PersistencyProperty pers;

  const analysis::SliceResult sl = analysis::slice({&confl, &pinner}, {&pers});
  EXPECT_TRUE(sl.bailout.empty());
  EXPECT_TRUE(sl.identity)
      << "a potential time-pinner is never provably irrelevant";

  const analysis::DepGraph g = analysis::build_depgraph({&confl, &pinner});
  EXPECT_FALSE(g.facts[0].can_pin_time);
  EXPECT_TRUE(g.facts[1].can_pin_time);
}

// ---------------------------------------------------------------------------
// Conservative bail-outs
// ---------------------------------------------------------------------------

namespace {
/// A property subclass the slicer has no cone rule for.
class OpaqueProperty final : public SafetyProperty {
 public:
  std::string name() const override { return "opaque"; }
  std::optional<std::string> check_state(
      const PropertyContext&) const override {
    return std::nullopt;
  }
};
}  // namespace

TEST(SliceBailout, UnknownPropertySubclassForcesIdentity) {
  const Module pad = toggler("pad0");
  const OpaqueProperty opaque;
  const analysis::SliceResult sl = analysis::slice({&pad}, {&opaque});
  EXPECT_FALSE(sl.bailout.empty());
  EXPECT_TRUE(sl.identity);
  EXPECT_TRUE(has_note(sl, "bailout", ""));
}

TEST(SliceBailout, DanglingInvariantSignalForcesIdentity) {
  const Module sys = gallery::chain({{"x", d(1, 2)}});
  const InvariantProperty inv("ghost", {{"no_such_signal", true}});
  const analysis::SliceResult sl = analysis::slice({&sys}, {&inv});
  EXPECT_FALSE(sl.bailout.empty());
  EXPECT_TRUE(sl.identity);
}

TEST(SliceBailout, ChokeTrackingKeepsMultiModuleComponents) {
  // Two modules synchronising on `s` can refuse each other's outputs —
  // a reportable choke — so with track_chokes they are never droppable,
  // while without it the invariant cone excludes them.
  Module a = gallery::chain({{"s", d(1, 2)}});
  a.set_name("a");
  Module b = gallery::chain({{"s", d(1, 2)}});
  b.set_name("b");
  b.ts().set_event_kind(b.ts().event_by_label("s"), EventKind::kInput);
  const Module sys = gallery::chain({{"x", d(1, 2)}});
  const Module mon = gallery::order_monitor("x", "x", "fail");
  const InvariantProperty inv("order", {{"fail", true}});
  const std::vector<const Module*> mods = {&a, &b, &sys, &mon};
  const std::vector<const SafetyProperty*> props = {&inv};

  analysis::SliceOptions tracked;
  tracked.track_chokes = true;
  const analysis::SliceResult with = analysis::slice(mods, props, tracked);
  EXPECT_TRUE(with.bailout.empty());
  std::vector<std::string> names = kept_names(with);
  EXPECT_NE(std::find(names.begin(), names.end(), "a"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "b"), names.end());

  analysis::SliceOptions untracked;
  untracked.track_chokes = false;
  const analysis::SliceResult without = analysis::slice(mods, props, untracked);
  EXPECT_TRUE(without.bailout.empty());
  names = kept_names(without);
  EXPECT_EQ(std::find(names.begin(), names.end(), "a"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "b"), names.end());
}

// ---------------------------------------------------------------------------
// Pruning inside kept modules
// ---------------------------------------------------------------------------

TEST(SlicePrune, UnreachableStatesAndPrivateDeadEventsAreRemoved) {
  // A reachable one-step chain plus an unreachable island with its own
  // event: the island and the dead private event vanish, and the pruned
  // rebuild still composes (deadlock property keeps the module itself).
  TransitionSystem ts;
  const EventId live = ts.add_event("x", d(1, 2), EventKind::kOutput);
  const EventId dead_e = ts.add_event("ghost", d(1, 2), EventKind::kInternal);
  const StateId s0 = ts.add_state("s0");
  const StateId s1 = ts.add_state("s1");
  const StateId island = ts.add_state("island");
  const StateId island2 = ts.add_state("island2");
  ts.add_transition(s0, live, s1);
  ts.add_transition(island, dead_e, island2);
  ts.set_initial(s0);
  ts.add_transition(s1, live, s1);  // keep it live for the deadlock cone
  const Module m("leaky", std::move(ts));
  const DeadlockFreedom dead;

  const analysis::SliceResult sl = analysis::slice({&m}, {&dead});
  EXPECT_TRUE(sl.bailout.empty());
  EXPECT_FALSE(sl.identity);
  EXPECT_EQ(sl.pruned_states, 2u);
  EXPECT_EQ(sl.dropped_events, 1u);
  ASSERT_EQ(sl.modules.size(), 1u);
  EXPECT_EQ(sl.modules[0]->ts().num_states(), 2u);
  EXPECT_EQ(sl.modules[0]->ts().num_events(), 1u);
  EXPECT_TRUE(has_note(sl, "states", "leaky"));
  EXPECT_TRUE(has_note(sl, "events", "leaky"));
}

TEST(SlicePrune, DeadSharedLabelsSurvive) {
  // `s` labels no reachable transition in `a` but `b` (kept) declares it
  // too: removing it would change the synchronization structure, so it
  // stays and the slice is the identity.
  TransitionSystem ta;
  const EventId ex = ta.add_event("x", d(1, 2), EventKind::kOutput);
  ta.add_event("s", d(1, 2), EventKind::kInput);  // declared, never fireable
  const StateId a0 = ta.add_state("a0");
  ta.add_transition(a0, ex, a0);
  ta.set_initial(a0);
  Module a("a", std::move(ta));
  Module b = gallery::ring({{"s", d(1, 2)}});
  b.set_name("b");
  const DeadlockFreedom dead;

  const analysis::SliceResult sl = analysis::slice({&a, &b}, {&dead});
  EXPECT_TRUE(sl.bailout.empty());
  EXPECT_TRUE(sl.identity);
}

// ---------------------------------------------------------------------------
// Canonical reduced form and serve cache keys
// ---------------------------------------------------------------------------

TEST(SliceCanonical, OrderIsInputOrderIndependent) {
  const Module a = gallery::chain({{"x", d(1, 2)}});
  const Module b = gallery::ring({{"y", d(1, 2)}});
  const Module c = toggler("pad0");
  const auto fwd = analysis::canonical_order({&a, &b, &c});
  const auto rev = analysis::canonical_order({&c, &b, &a});
  ASSERT_EQ(fwd.size(), rev.size());
  for (std::size_t i = 0; i < fwd.size(); ++i)
    EXPECT_EQ(fwd[i]->name(), rev[i]->name());
}

namespace {
serve::WireObligation wire_obligation(bool padded) {
  serve::WireObligation ob;
  ob.name = "ob";
  ob.modules.push_back(conflict("x", "y"));
  if (padded) ob.modules.push_back(toggler("pad0"));
  ob.properties.push_back(serve::PropertySpec::persistency());
  return ob;
}
}  // namespace

TEST(SliceCacheKey, PaddedAndUnpaddedObligationsShareAnEntry) {
  const serve::CacheKey plain = serve::obligation_cache_key(
      wire_obligation(false), SuiteMode::kBatch, {"refine"}, 1000, 0.0, 500);
  const serve::CacheKey padded = serve::obligation_cache_key(
      wire_obligation(true), SuiteMode::kBatch, {"refine"}, 1000, 0.0, 500);
  EXPECT_EQ(plain.hi, padded.hi);
  EXPECT_EQ(plain.lo, padded.lo);
}

TEST(SliceCacheKey, BudgetsStillSeparateEntries) {
  const serve::CacheKey small = serve::obligation_cache_key(
      wire_obligation(true), SuiteMode::kBatch, {"refine"}, 1000, 0.0, 500);
  const serve::CacheKey large = serve::obligation_cache_key(
      wire_obligation(true), SuiteMode::kBatch, {"refine"}, 2000, 0.0, 500);
  EXPECT_FALSE(small.hi == large.hi && small.lo == large.lo);
}

// ---------------------------------------------------------------------------
// Suite wiring
// ---------------------------------------------------------------------------

TEST(SliceSuite, EmptyConeAnswersVerifiedWithoutEngines) {
  Suite suite;
  const Module* pad = suite.own(toggler("pad0"));
  const SafetyProperty* pers =
      suite.own(std::make_unique<PersistencyProperty>());
  suite.add("padded", {pad}, {pers});

  SuiteOptions opts;
  opts.engines = {"refine"};
  const SuiteReport report = run_suite(suite, opts);
  ASSERT_EQ(report.records.size(), 1u);
  const SuiteRecord& rec = report.records[0];
  EXPECT_EQ(rec.result.verdict, Verdict::kVerified);
  EXPECT_TRUE(rec.winner);
  EXPECT_EQ(rec.result.states_explored, 0u);
  EXPECT_NE(rec.result.message.find("statically verified"), std::string::npos);
  EXPECT_EQ(rec.sliced_modules, 1u);

  // The sliced counts survive the JSON round-trip.
  const SuiteReport back = parse_suite_report(report.to_json());
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_EQ(back.records[0].sliced_modules, 1u);
  EXPECT_EQ(back.records[0].sliced_events, rec.sliced_events);
}

TEST(SliceSuite, OptOutRunsTheFullObligation) {
  Suite suite;
  const Module* pad = suite.own(toggler("pad0"));
  const SafetyProperty* pers =
      suite.own(std::make_unique<PersistencyProperty>());
  suite.add("padded", {pad}, {pers});

  SuiteOptions opts;
  opts.engines = {"refine"};
  opts.slice = false;
  const SuiteReport report = run_suite(suite, opts);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].result.verdict, Verdict::kVerified);
  EXPECT_EQ(report.records[0].sliced_modules, 0u);
  EXPECT_GT(report.records[0].result.states_explored, 0u);
}

TEST(SliceSuite, SlicedAndUnslicedVerdictsAgreeOnPaddedObligation) {
  const Module sys = gallery::chain({{"x", d(1, 2)}, {"y", d(1, 2)}});
  const Module mon = gallery::order_monitor("x", "y", "fail");
  const Module pad = toggler("pad0");
  const InvariantProperty inv("order", {{"fail", true}});

  const auto run = [&](bool slice_on) {
    Suite suite;
    suite.add("ob", {&sys, &mon, &pad}, {&inv});
    SuiteOptions opts;
    opts.engines = {"refine"};
    opts.slice = slice_on;
    return run_suite(suite, opts);
  };
  const SuiteReport sliced = run(true);
  const SuiteReport full = run(false);
  ASSERT_EQ(sliced.records.size(), 1u);
  ASSERT_EQ(full.records.size(), 1u);
  EXPECT_EQ(sliced.records[0].result.verdict, full.records[0].result.verdict);
  EXPECT_EQ(sliced.records[0].sliced_modules, 1u);
  // The reduced product skips the padding module's interleavings.
  EXPECT_LE(sliced.records[0].result.states_explored,
            full.records[0].result.states_explored);
}

TEST(SliceSuite, ReducedTraceReplaysThroughTheFullComposition) {
  // x fires before y ever can, so "y before x" is violated; the engine
  // sees the obligation *without* the padding toggler, yet its
  // counterexample must replay through the composition of everything the
  // caller handed in (padding coordinates simply stay at initial).
  const Module sys = gallery::chain({{"x", d(1, 2)}, {"y", d(1, 2)}});
  const Module mon = gallery::order_monitor("y", "x", "fail");
  const Module pad = toggler("pad0");
  const InvariantProperty inv("order", {{"fail", true}});

  Suite suite;
  suite.add("ob", {&sys, &mon, &pad}, {&inv});
  SuiteOptions opts;
  opts.engines = {"refine"};
  const SuiteReport report = run_suite(suite, opts);
  ASSERT_EQ(report.records.size(), 1u);
  const SuiteRecord& rec = report.records[0];
  ASSERT_EQ(rec.result.verdict, Verdict::kViolated);
  EXPECT_EQ(rec.sliced_modules, 1u);
  ASSERT_FALSE(rec.result.trace_labels.empty());

  ComposeOptions copt;
  copt.jobs = 1;
  const Composition comp = compose({&sys, &mon, &pad}, copt);
  StateId cur = comp.ts.initial();
  for (std::size_t i = 0; i < rec.result.trace_labels.size(); ++i) {
    const EventId e = comp.ts.event_by_label(rec.result.trace_labels[i]);
    ASSERT_TRUE(e.valid()) << "unknown label " << rec.result.trace_labels[i];
    const auto succ = comp.ts.successor(cur, e);
    if (!succ) {
      // Only the final label may be a refusal.
      EXPECT_EQ(i + 1, rec.result.trace_labels.size());
      break;
    }
    cur = *succ;
  }
}

// ---------------------------------------------------------------------------
// Lint notes
// ---------------------------------------------------------------------------

TEST(SliceLint, OutsideConeModuleIsL016) {
  const Module sys = gallery::chain({{"x", d(1, 2)}, {"y", d(1, 2)}});
  const Module mon = gallery::order_monitor("x", "y", "fail");
  const Module pad = toggler("pad0");
  const InvariantProperty inv("order", {{"fail", true}});

  const lint::LintReport r =
      lint::lint_modules({&sys, &mon, &pad}, {&inv}, {});
  bool found = false;
  for (const lint::Diagnostic& diag : r.diagnostics)
    if (diag.code == lint::check::kOutsideCone) {
      found = true;
      EXPECT_EQ(diag.module, pad.name());
      EXPECT_EQ(diag.severity, lint::Severity::kNote);
    }
  EXPECT_TRUE(found) << r.format();
}

TEST(SliceLint, StaticallyUnreachableStatesAreL017) {
  TransitionSystem ts;
  const EventId live = ts.add_event("x", d(1, 2), EventKind::kOutput);
  const EventId dead_e = ts.add_event("ghost", d(1, 2), EventKind::kInternal);
  const StateId s0 = ts.add_state("s0");
  const StateId island = ts.add_state("island");
  const StateId island2 = ts.add_state("island2");
  ts.add_transition(s0, live, s0);
  ts.add_transition(island, dead_e, island2);
  ts.set_initial(s0);
  const Module m("leaky", std::move(ts));
  const DeadlockFreedom dead;

  const lint::LintReport r = lint::lint_modules({&m}, {&dead}, {});
  bool found = false;
  for (const lint::Diagnostic& diag : r.diagnostics)
    if (diag.code == lint::check::kSliceUnreachable) {
      found = true;
      EXPECT_EQ(diag.module, "leaky");
      EXPECT_EQ(diag.severity, lint::Severity::kNote);
    }
  EXPECT_TRUE(found) << r.format();
}

TEST(SliceLint, NoPropertiesMeansNoConeNotes) {
  const Module pad = toggler("pad0");
  const lint::LintReport r = lint::lint_modules({&pad}, {}, {});
  for (const lint::Diagnostic& diag : r.diagnostics) {
    EXPECT_NE(diag.code, lint::check::kOutsideCone) << r.format();
    EXPECT_NE(diag.code, lint::check::kSliceUnreachable) << r.format();
  }
}

// ---------------------------------------------------------------------------
// Dependency graph
// ---------------------------------------------------------------------------

TEST(DepGraph, ComponentsFollowSharedLabels) {
  Module a = gallery::chain({{"s", d(1, 2)}});
  a.set_name("a");
  Module b = gallery::chain({{"s", d(1, 2)}, {"t", d(1, 2)}});
  b.set_name("b");
  Module c = toggler("pad0");
  const analysis::DepGraph g = analysis::build_depgraph({&a, &b, &c});
  ASSERT_EQ(g.component.size(), 3u);
  EXPECT_EQ(g.component[0], g.component[1]);
  EXPECT_NE(g.component[0], g.component[2]);
  EXPECT_EQ(g.num_components, 2u);
  EXPECT_TRUE(g.facts[2].has_reachable_transition);
  EXPECT_FALSE(g.facts[2].has_local_conflict);
}

TEST(DepGraph, LocalConflictDetection) {
  const Module confl = conflict("x", "y");
  const Module ring = gallery::ring({{"r", d(1, 2)}});
  const analysis::DepGraph g = analysis::build_depgraph({&confl, &ring});
  EXPECT_TRUE(g.facts[0].has_local_conflict);
  EXPECT_FALSE(g.facts[1].has_local_conflict);
}
