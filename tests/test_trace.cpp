#include "rtv/ts/trace.hpp"

#include <gtest/gtest.h>

#include "rtv/ts/gallery.hpp"

namespace rtv {
namespace {

TEST(Trace, ShortestTraceOnChain) {
  const Module m = gallery::chain({{"a", DelayInterval::units(1, 2)},
                                   {"b", DelayInterval::units(1, 2)},
                                   {"c", DelayInterval::units(1, 2)}});
  const TransitionSystem& ts = m.ts();
  const StateId last(static_cast<StateId::underlying_type>(ts.num_states() - 1));
  const auto trace = shortest_trace_to(ts, last);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->length(), 3u);
  EXPECT_EQ(trace->labels(ts), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(trace->final_state, last);
  EXPECT_TRUE(trace->final_enabled.empty());
}

TEST(Trace, EnablingSetsRecorded) {
  const Module m = gallery::diamond("x", DelayInterval::units(1, 2), "y",
                                    DelayInterval::units(1, 2));
  const TransitionSystem& ts = m.ts();
  const EventId x = ts.event_by_label("x");
  const StateId after_x = *ts.successor(ts.initial(), x);
  const auto trace = shortest_trace_to(ts, after_x);
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->length(), 1u);
  // At the initial state both x and y were enabled.
  EXPECT_EQ(trace->steps[0].enabled.size(), 2u);
}

TEST(Trace, UnreachableTargetReturnsNothing) {
  TransitionSystem ts;
  ts.add_state();
  const StateId unreachable = ts.add_state();
  ts.set_initial(StateId(0));
  EXPECT_FALSE(shortest_trace_to(ts, unreachable).has_value());
}

TEST(Trace, TraceToInitialIsEmpty) {
  const Module m = gallery::intro_example();
  const auto trace = shortest_trace_to(m.ts(), m.ts().initial());
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(trace->empty());
  EXPECT_EQ(trace->final_state, m.ts().initial());
}

TEST(Trace, ShortestTraceFiringAppendsStep) {
  const Module m = gallery::intro_example();
  const TransitionSystem& ts = m.ts();
  const EventId a = ts.event_by_label("a");
  const auto trace = shortest_trace_firing(ts, ts.initial(), a);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->length(), 1u);
  EXPECT_EQ(trace->steps.back().event, a);
  EXPECT_EQ(trace->final_state, *ts.successor(ts.initial(), a));
}

TEST(Trace, ToStringShowsEnablingSets) {
  const Module m = gallery::chain({{"a", DelayInterval::units(1, 2)}});
  const auto trace =
      shortest_trace_to(m.ts(), StateId(1));
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->to_string(m.ts()), "{a} --a--> (final)");
}

TEST(Trace, BfsFindsShortestOfSeveralPaths) {
  // s0 -a-> s1 -b-> s3 and s0 -c-> s3: shortest is length 1.
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const StateId s3 = ts.add_state();
  const EventId a = ts.add_event("a");
  const EventId b = ts.add_event("b");
  const EventId c = ts.add_event("c");
  ts.add_transition(s0, a, s1);
  ts.add_transition(s1, b, s3);
  ts.add_transition(s0, c, s3);
  ts.set_initial(s0);
  const auto trace = shortest_trace_to(ts, s3);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->length(), 1u);
  EXPECT_EQ(trace->labels(ts), (std::vector<std::string>{"c"}));
}

}  // namespace
}  // namespace rtv
