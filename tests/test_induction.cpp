#include "rtv/verify/induction.hpp"

#include <gtest/gtest.h>

#include "rtv/circuit/invariants.hpp"
#include "rtv/ipcmos/experiments.hpp"

namespace rtv {
namespace {

using namespace rtv::ipcmos;

TEST(Induction, IpcmosPipelineFixedPoint) {
  // The paper's experiments 3 + 4 as one induction obligation: A_in is a
  // behavioural fixed point of IN || I || I || ... at any length.
  const ExperimentConfig cfg;
  const Module in = make_in_env(cfg.timing);
  const Module ain1 = make_ain(1);
  const Module stage = make_stage(1, cfg.timing);
  const Module aout = make_aout(2);
  const Module ain2 = make_ain(2);

  DeadlockFreedom dead;
  PersistencyProperty pers;
  const Netlist nl = make_stage_netlist("I1", linear_channels(1), cfg.timing.stage);
  const auto scs = short_circuit_properties(nl);
  std::vector<const SafetyProperty*> props{&dead, &pers};
  for (const auto& p : scs) props.push_back(p.get());

  const InductionResult r =
      prove_fixed_point(in, ain1, stage, aout, ain2, props);
  EXPECT_TRUE(r.proved());
  EXPECT_EQ(r.base.verdict, Verdict::kVerified);
  EXPECT_EQ(r.step.verdict, Verdict::kVerified);
  EXPECT_FALSE(r.constraints().empty());
}

TEST(Induction, FailsWhenComponentBreaksAbstraction) {
  // Slowing Z+ breaks invariant (1); the induction must not go through.
  ExperimentConfig cfg;
  cfg.timing.stage.z_rise = DelayInterval::units(9, 12);
  const Module in = make_in_env(cfg.timing);
  const Module ain1 = make_ain(1);
  const Module stage = make_stage(1, cfg.timing);
  const Module aout = make_aout(2);
  const Module ain2 = make_ain(2);

  DeadlockFreedom dead;
  const Netlist nl = make_stage_netlist("I1", linear_channels(1), cfg.timing.stage);
  const auto scs = short_circuit_properties(nl);
  std::vector<const SafetyProperty*> props{&dead};
  for (const auto& p : scs) props.push_back(p.get());

  const InductionResult r =
      prove_fixed_point(in, ain1, stage, aout, ain2, props);
  EXPECT_FALSE(r.proved());
}

}  // namespace
}  // namespace rtv
