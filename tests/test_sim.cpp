#include "rtv/sim/simulator.hpp"
#include "rtv/sim/waveform.hpp"

#include <gtest/gtest.h>

#include "rtv/ipcmos/pipeline.hpp"
#include "rtv/ts/gallery.hpp"

namespace rtv {
namespace {

TEST(Simulator, ChainRunsToCompletion) {
  const Module m = gallery::chain({{"a", DelayInterval::units(1, 2)},
                                   {"b", DelayInterval::units(3, 4)}});
  const SimTrace t = simulate(m.ts());
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[0].label, "a");
  EXPECT_EQ(t.events[1].label, "b");
  EXPECT_TRUE(t.deadlocked);
  // Times respect the delay windows.
  EXPECT_GE(t.events[0].time, ticks_from_units(1));
  EXPECT_LE(t.events[0].time, ticks_from_units(2));
  EXPECT_GE(t.events[1].time - t.events[0].time, ticks_from_units(3));
  EXPECT_LE(t.events[1].time - t.events[0].time, ticks_from_units(4));
}

TEST(Simulator, RaceRespectsDelays) {
  // x [1,2] always beats y [5,6].
  const Module m = gallery::diamond("x", DelayInterval::units(1, 2), "y",
                                    DelayInterval::units(5, 6));
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SimOptions opts;
    opts.seed = seed;
    const SimTrace t = simulate(m.ts(), opts);
    ASSERT_GE(t.events.size(), 2u);
    EXPECT_EQ(t.events[0].label, "x") << "seed " << seed;
  }
}

TEST(Simulator, DeterministicPerSeed) {
  const Module m = gallery::intro_example();
  SimOptions opts;
  opts.seed = 42;
  const SimTrace a = simulate(m.ts(), opts);
  const SimTrace b = simulate(m.ts(), opts);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].label, b.events[i].label);
    EXPECT_EQ(a.events[i].time, b.events[i].time);
  }
}

TEST(Simulator, IntroExamplePropertyHoldsOnRuns) {
  // In every simulated run, g fires before d (the paper's property).
  const Module m = gallery::intro_example();
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    SimOptions opts;
    opts.seed = seed;
    const SimTrace t = simulate(m.ts(), opts);
    Time tg = -1, td = -1;
    for (const SimEvent& e : t.events) {
      if (e.label == "g") tg = e.time;
      if (e.label == "d") td = e.time;
    }
    ASSERT_GE(tg, 0);
    ASSERT_GE(td, 0);
    EXPECT_LT(tg, td) << "seed " << seed;
  }
}

TEST(SimulatorModules, PipelineHandshakeOrdering) {
  // On-the-fly simulation of the 2-stage pipeline: each boundary commits
  // the Fig. 6 protocol: V- then A+ then V+ (interlocked).
  const ipcmos::ModuleSet set = ipcmos::flat_pipeline(2);
  SimOptions opts;
  opts.max_events = 300;
  const SimTrace t = simulate_modules(set.ptrs, opts);
  EXPECT_FALSE(t.deadlocked);
  Time last_vminus = -1, last_aplus = -1;
  for (const SimEvent& e : t.events) {
    if (e.label == "V2-") last_vminus = e.time;
    if (e.label == "A2+") {
      EXPECT_GT(last_vminus, -1);
      EXPECT_GT(e.time, last_vminus);
      last_aplus = e.time;
    }
    if (e.label == "V2+") {
      // Two-phase interlock: V2+ strictly after A2+.
      EXPECT_GT(e.time, last_aplus);
    }
  }
}

TEST(SimulatorModules, SignalsSampled) {
  const ipcmos::ModuleSet set = ipcmos::flat_pipeline(1);
  SimOptions opts;
  opts.max_events = 60;
  const SimTrace t = simulate_modules(set.ptrs, opts);
  ASSERT_EQ(t.events.size(), t.valuations.size());
  EXPECT_FALSE(t.signal_names.empty());
}

TEST(Waveform, AsciiShowsTransitions) {
  const ipcmos::ModuleSet set = ipcmos::flat_pipeline(1);
  SimOptions opts;
  opts.max_events = 60;
  const SimTrace t = simulate_modules(set.ptrs, opts);
  // Render using a dummy TS that carries the merged signal table.
  TransitionSystem table;
  table.set_signal_names(t.signal_names);
  const std::string wave =
      ascii_waveform(table, t, {"V1", "A1", "I1.CLKE", "V2", "A2"});
  EXPECT_NE(wave.find("V1"), std::string::npos);
  EXPECT_NE(wave.find('\\'), std::string::npos);  // at least one falling edge
}

TEST(Waveform, VcdHeaderAndChanges) {
  const Module m = gallery::chain({{"a", DelayInterval::units(1, 2)}});
  TransitionSystem ts = m.ts();
  ts.set_signal_names({"s"});
  BitVec lo(1), hi(1);
  hi.set(0);
  ts.set_state_valuation(StateId(0), lo);
  ts.set_state_valuation(StateId(1), hi);
  const SimTrace t = simulate(ts);
  const std::string vcd = to_vcd(ts, t, {"s"});
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("1!"), std::string::npos);
}

}  // namespace
}  // namespace rtv
