#include "rtv/zone/dbm.hpp"

#include <gtest/gtest.h>

namespace rtv {
namespace {

TEST(Dbm, InitialZoneIsNonNegativeOrthant) {
  Dbm d(2);
  EXPECT_TRUE(d.canonicalize());
  EXPECT_FALSE(d.empty());
  // 0 - x_i <= 0 means x_i >= 0.
  EXPECT_EQ(d.at(0, 1), 0);
  EXPECT_EQ(d.at(0, 2), 0);
  EXPECT_EQ(d.at(1, 0), kTimeInfinity);
}

TEST(Dbm, ZeroZone) {
  const Dbm d = Dbm::zero(3);
  for (std::size_t i = 0; i <= 3; ++i)
    for (std::size_t j = 0; j <= 3; ++j) EXPECT_EQ(d.at(i, j), 0);
}

TEST(Dbm, ConstrainAndCanonicalize) {
  Dbm d(2);
  d.constrain(1, 0, 5);   // x1 <= 5
  d.constrain(0, 1, -3);  // x1 >= 3
  d.constrain(2, 1, 1);   // x2 - x1 <= 1
  ASSERT_TRUE(d.canonicalize());
  // Derived: x2 <= 6.
  EXPECT_EQ(d.at(2, 0), 6);
}

TEST(Dbm, EmptyOnContradiction) {
  Dbm d(1);
  d.constrain(1, 0, 2);   // x <= 2
  d.constrain(0, 1, -3);  // x >= 3
  EXPECT_FALSE(d.canonicalize());
  EXPECT_TRUE(d.empty());
}

TEST(Dbm, UpRemovesUpperBoundsOnly) {
  Dbm d = Dbm::zero(2);
  d.canonicalize();
  d.up();
  d.canonicalize();
  EXPECT_EQ(d.at(1, 0), kTimeInfinity);  // x1 unbounded above
  EXPECT_EQ(d.at(0, 1), 0);              // x1 >= 0 preserved
  EXPECT_EQ(d.at(1, 2), 0);              // diagonal relation preserved
  EXPECT_EQ(d.at(2, 1), 0);
}

TEST(Dbm, SubsetSemantics) {
  Dbm small(1), big(1);
  small.constrain(1, 0, 2);
  small.canonicalize();
  big.constrain(1, 0, 5);
  big.canonicalize();
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
}

TEST(Dbm, RemapKeepsRelations) {
  // Three clocks with x2 - x1 in [1, 1]; keep clocks (2, 1) in swapped
  // order and add one fresh clock.
  Dbm d(3);
  d.constrain(2, 1, 1);
  d.constrain(1, 2, -1);
  d.canonicalize();
  const Dbm r = d.remap({2, 1, 0});  // new1 = old x2, new2 = old x1, new3 fresh
  EXPECT_EQ(r.at(1, 2), 1);   // x2old - x1old <= 1
  EXPECT_EQ(r.at(2, 1), -1);  // and >= 1
  // Fresh clock equals the zero clock.
  EXPECT_EQ(r.at(3, 0), 0);
  EXPECT_EQ(r.at(0, 3), 0);
}

TEST(Dbm, RestrictAndExtend) {
  Dbm d(2);
  d.constrain(1, 0, 7);
  d.canonicalize();
  const Dbm r = d.restrict_and_extend({1}, 1);
  EXPECT_EQ(r.clocks(), 2u);
  EXPECT_EQ(r.at(1, 0), 7);
  EXPECT_EQ(r.at(2, 0), 0);  // fresh zero clock
}

TEST(Dbm, ExtrapolationWidensLargeBounds) {
  Dbm d(1);
  d.constrain(1, 0, 100);
  d.constrain(0, 1, -90);
  d.canonicalize();
  d.extrapolate({0, 10});  // max constant 10 for clock 1
  EXPECT_EQ(d.at(1, 0), kTimeInfinity);
  EXPECT_EQ(d.at(0, 1), -10);
}

TEST(Dbm, ExtrapolationKeepsSmallBounds) {
  Dbm d(1);
  d.constrain(1, 0, 5);
  d.canonicalize();
  d.extrapolate({0, 10});
  EXPECT_EQ(d.at(1, 0), 5);
}

TEST(Dbm, ToStringDoesNotCrash) {
  Dbm d(2);
  d.canonicalize();
  EXPECT_FALSE(d.to_string().empty());
}

namespace {
// Entrywise equality including the implicit zero clock.
bool same_matrix(const Dbm& a, const Dbm& b) {
  if (a.clocks() != b.clocks()) return false;
  for (std::size_t i = 0; i <= a.clocks(); ++i)
    for (std::size_t j = 0; j <= a.clocks(); ++j)
      if (a.at(i, j) != b.at(i, j)) return false;
  return true;
}
}  // namespace

TEST(Dbm, CanonicalizeIsIdempotent) {
  Dbm d(3);
  d.constrain(1, 0, 5);
  d.constrain(0, 1, -3);
  d.constrain(2, 1, 1);
  d.constrain(3, 2, 2);
  ASSERT_TRUE(d.canonicalize());
  const Dbm once = d;
  ASSERT_TRUE(d.canonicalize());
  EXPECT_TRUE(same_matrix(once, d));
}

TEST(Dbm, UpThenCanonicalizeIsIdempotent) {
  Dbm d = Dbm::zero(2);
  d.up();
  ASSERT_TRUE(d.canonicalize());
  const Dbm once = d;
  d.up();
  ASSERT_TRUE(d.canonicalize());
  EXPECT_TRUE(same_matrix(once, d));
}

TEST(Dbm, EmptyZoneStaysEmpty) {
  Dbm d(1);
  d.constrain(1, 0, 2);
  d.constrain(0, 1, -3);
  ASSERT_FALSE(d.canonicalize());
  EXPECT_FALSE(d.canonicalize());  // still contradictory
  EXPECT_TRUE(d.empty());
}

TEST(Dbm, ConstrainIsMonotone) {
  Dbm d(1);
  d.constrain(1, 0, 5);
  d.constrain(1, 0, 9);  // looser bound must not widen the zone
  EXPECT_EQ(d.at(1, 0), 5);
  d.constrain(1, 0, kTimeInfinity);  // no-op
  EXPECT_EQ(d.at(1, 0), 5);
}

TEST(Dbm, SubsetIsReflexiveAndZeroZoneIsSmallest) {
  Dbm init(2);
  init.canonicalize();
  Dbm zero = Dbm::zero(2);
  zero.canonicalize();
  EXPECT_TRUE(init.subset_of(init));
  EXPECT_TRUE(zero.subset_of(init));
  EXPECT_FALSE(init.subset_of(zero));
}

TEST(Dbm, UpLeavesLowerBoundsAndZeroRow) {
  Dbm d(2);
  d.constrain(0, 1, -2);  // x1 >= 2
  d.constrain(1, 0, 4);   // x1 <= 4
  ASSERT_TRUE(d.canonicalize());
  d.up();
  ASSERT_TRUE(d.canonicalize());
  EXPECT_EQ(d.at(1, 0), kTimeInfinity);  // upper bound dropped
  EXPECT_EQ(d.at(0, 1), -2);             // lower bound preserved
  EXPECT_EQ(d.at(0, 2), 0);              // zero row untouched
}

TEST(Dbm, RestrictAndExtendFreshClocksAreZero) {
  Dbm d(2);
  d.constrain(1, 0, 7);
  d.canonicalize();
  const Dbm r = d.restrict_and_extend({1}, 1);
  EXPECT_EQ(r.at(2, 0), 0);
  EXPECT_EQ(r.at(0, 2), 0);
}

}  // namespace
}  // namespace rtv
