// The observability layer (rtv/obs/):
//
//   * counters: exact totals under concurrent writers (sharding must not
//     lose or double-count), zero cost paths when disabled;
//   * histograms: Prometheus `le` bucket-edge semantics (inclusive upper
//     bounds), sum/count coherence;
//   * registry: (name, labels) identity, snapshot find(), Prometheus text
//     and JSON exposition shapes;
//   * tracing: the emitted Chrome trace-event JSON parses, carries matched
//     B/E pairs per thread, names threads via metadata, and emits nothing
//     when tracing never started.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "rtv/base/json.hpp"
#include "rtv/obs/metrics.hpp"
#include "rtv/obs/trace.hpp"

namespace rtv::obs {
namespace {

/// Every test leaves the global switch the way it found it (enabled).
struct MetricsGuard {
  ~MetricsGuard() { set_metrics_enabled(true); }
};

TEST(ObsCounter, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, DisabledDropsMutations) {
  MetricsGuard guard;
  Counter c;
  c.add(7);
  set_metrics_enabled(false);
  c.add(1000);
  EXPECT_EQ(c.value(), 7u);  // accumulated value survives, mutation dropped
  set_metrics_enabled(true);
  c.add(3);
  EXPECT_EQ(c.value(), 10u);
}

TEST(ObsGauge, SetAddAndDisable) {
  MetricsGuard guard;
  Gauge g;
  g.set(42);
  g.add(-2);
  EXPECT_EQ(g.value(), 40);
  set_metrics_enabled(false);
  g.set(7);
  EXPECT_EQ(g.value(), 40);
}

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  // Prometheus `le` semantics: an observation equal to a bound lands in
  // that bound's bucket, strictly above it spills to the next.
  h.observe(0.5);  // le=1
  h.observe(1.0);  // le=1 (inclusive edge)
  h.observe(1.5);  // le=2
  h.observe(2.0);  // le=2 (inclusive edge)
  h.observe(4.0);  // le=4 (inclusive edge)
  h.observe(4.5);  // +Inf
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.5);
}

TEST(ObsHistogram, ConcurrentObservationsKeepSumAndCountCoherent) {
  Histogram h(Histogram::count_buckets());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t n : h.bucket_counts()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsRegistry, NameAndLabelsAreTheIdentity) {
  Registry& reg = Registry::global();
  Counter& a = reg.counter("rtv_test_identity_total", "engine=\"zone\"");
  Counter& b = reg.counter("rtv_test_identity_total", "engine=\"zone\"");
  Counter& c = reg.counter("rtv_test_identity_total", "engine=\"refine\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.reset();
  c.reset();
  a.add(5);
  c.add(9);
  const MetricsSnapshot snap = snapshot();
  const MetricPoint* pa = snap.find("rtv_test_identity_total", "engine=\"zone\"");
  const MetricPoint* pc =
      snap.find("rtv_test_identity_total", "engine=\"refine\"");
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pc, nullptr);
  EXPECT_DOUBLE_EQ(pa->value, 5.0);
  EXPECT_DOUBLE_EQ(pc->value, 9.0);
  EXPECT_EQ(snap.find("rtv_test_identity_total", "engine=\"no-such\""),
            nullptr);
}

TEST(ObsRegistry, PrometheusTextExposition) {
  Registry& reg = Registry::global();
  Counter& c = reg.counter("rtv_test_prom_total", "kind=\"x\"",
                           "Test counter for the exposition format");
  c.reset();
  c.add(3);
  Histogram& h = reg.histogram("rtv_test_prom_seconds", {0.1, 1.0}, "",
                               "Test histogram");
  h.reset();
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = to_prometheus(snapshot());
  EXPECT_NE(text.find("# HELP rtv_test_prom_total Test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rtv_test_prom_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rtv_test_prom_total{kind=\"x\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rtv_test_prom_seconds histogram"),
            std::string::npos);
  // Buckets are cumulative and end with the +Inf bucket == _count.
  EXPECT_NE(text.find("rtv_test_prom_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rtv_test_prom_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("rtv_test_prom_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rtv_test_prom_seconds_count 3"), std::string::npos);
}

TEST(ObsRegistry, JsonSnapshotParsesAndCarriesValues) {
  Registry& reg = Registry::global();
  Counter& c = reg.counter("rtv_test_json_total");
  c.reset();
  c.add(11);
  std::string out;
  append_json(out, snapshot());
  const json::Value v = json::parse(out, "obs metrics JSON");
  ASSERT_EQ(v.kind, json::Value::Kind::kObject);
  const json::Value* p = v.find("rtv_test_json_total");
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->number, 11.0);
}

TEST(ObsTrace, InactiveTracingEmitsNothing) {
  // Never started in this scope: spans are free and the serializer
  // refuses to fabricate a document.
  EXPECT_FALSE(tracing_active());
  {
    Span span("should not appear", "test");
    trace_instant("also invisible", "test");
  }
  EXPECT_EQ(stop_tracing_json(), "");
}

TEST(ObsTrace, EmitsMatchedPairsPerThreadWithThreadNames) {
  start_tracing();
  set_thread_name("obs-test-main");
  {
    Span outer("outer", "test");
    Span inner("inner", "test");
    trace_instant("tick", "test");
  }
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_thread_name("obs-test-worker " + std::to_string(t));
      for (int i = 0; i < 5; ++i) {
        Span span("work " + std::to_string(i), "test");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::string text = stop_tracing_json();
  ASSERT_FALSE(text.empty());

  const json::Value doc = json::parse(text, "trace JSON");
  ASSERT_EQ(doc.kind, json::Value::Kind::kObject);
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, json::Value::Kind::kArray);

  std::map<double, int> open_per_tid;  // B minus E, must end at zero
  std::map<double, double> last_ts_per_tid;
  int names = 0, instants = 0;
  for (const json::Value& e : events->array) {
    const json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      // Metadata: process_name carries no tid, thread_name does.
      const json::Value* name = e.find("name");
      ASSERT_NE(name, nullptr);
      if (name->string == "thread_name") ++names;
      continue;
    }
    const json::Value* tid = e.find("tid");
    ASSERT_NE(tid, nullptr);
    const json::Value* ts = e.find("ts");
    ASSERT_NE(ts, nullptr);
    // Within one thread's track, timestamps never go backwards.
    auto [it, fresh] = last_ts_per_tid.emplace(tid->number, ts->number);
    if (!fresh) {
      EXPECT_GE(ts->number, it->second);
      it->second = ts->number;
    }
    if (ph->string == "B") {
      ++open_per_tid[tid->number];
    } else if (ph->string == "E") {
      --open_per_tid[tid->number];
      EXPECT_GE(open_per_tid[tid->number], 0) << "E without a matching B";
    } else if (ph->string == "i") {
      ++instants;
    }
  }
  for (const auto& [tid, open] : open_per_tid)
    EXPECT_EQ(open, 0) << "unbalanced spans on tid " << tid;
  EXPECT_GE(open_per_tid.size(), 2u);  // main + at least one worker track
  EXPECT_GE(names, kThreads + 1);      // every named thread got metadata
  EXPECT_EQ(instants, 1);
}

TEST(ObsTrace, SpanOutlivingItsSessionIsClosedAtStop) {
  start_tracing();
  auto* leaked = new Span("straddles stop", "test");
  const std::string text = stop_tracing_json();
  delete leaked;  // span_end lands after the session died — must be dropped
  const json::Value doc = json::parse(text, "trace JSON");
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int b = 0, e = 0;
  for (const json::Value& ev : events->array) {
    const json::Value* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "B") ++b;
    if (ph->string == "E") ++e;
  }
  EXPECT_EQ(b, 1);
  EXPECT_EQ(e, 1);  // synthesized close, not a dangling B
  // A fresh session must not resurrect the dead ticket's effects.
  start_tracing();
  EXPECT_NE(stop_tracing_json(), "");
}

TEST(ObsScopedTimer, ObservesElapsedSeconds) {
  Registry& reg = Registry::global();
  Histogram& h = reg.histogram("rtv_test_timer_seconds",
                               Histogram::time_buckets());
  h.reset();
  { ScopedTimer timer(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

}  // namespace
}  // namespace rtv::obs
