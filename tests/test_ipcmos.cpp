#include "rtv/ipcmos/experiments.hpp"

#include <gtest/gtest.h>

#include "rtv/circuit/invariants.hpp"
#include "rtv/zone/zone_graph.hpp"

namespace rtv::ipcmos {
namespace {

TEST(IpcmosStage, TransistorBudgetMatchesPaperFormula) {
  // The paper: N = 21 + 7*N_in + 4*N_out; a linear stage has 32.
  const Netlist nl = make_stage_netlist("I1", linear_channels(1));
  EXPECT_EQ(nl.transistor_count(), expected_transistors(1, 1));
  EXPECT_EQ(nl.transistor_count(), 32);

  StageChannels wide;
  wide.valid_in = {"Va", "Vb"};
  wide.ack_out = "A";
  wide.valid_out = {"Vo1", "Vo2", "Vo3"};
  wide.ack_in = {"Ai1", "Ai2", "Ai3"};
  const Netlist nw = make_stage_netlist("W", wide);
  EXPECT_EQ(nw.transistor_count(), expected_transistors(2, 3));
}

TEST(IpcmosStage, InitialStateMatchesPaper) {
  // "Initially the pipeline is empty: all VALID high, CLKE high, ACK low."
  const Module stage = make_stage(1);
  const TransitionSystem& ts = stage.ts();
  const BitVec& v = ts.valuation(ts.initial());
  EXPECT_TRUE(v.test(ts.signal_index("V1")));
  EXPECT_TRUE(v.test(ts.signal_index("V2")));
  EXPECT_TRUE(v.test(ts.signal_index("I1.CLKE")));
  EXPECT_FALSE(v.test(ts.signal_index("A1")));
  EXPECT_FALSE(v.test(ts.signal_index("A2")));
  EXPECT_TRUE(v.test(ts.signal_index("I1.Vint")));
  EXPECT_TRUE(v.test(ts.signal_index("I1.Y")));
}

TEST(IpcmosStage, InterfaceKinds) {
  const Module stage = make_stage(1);
  EXPECT_EQ(stage.kind_of("V1-"), EventKind::kInput);
  EXPECT_EQ(stage.kind_of("A2+"), EventKind::kInput);
  EXPECT_EQ(stage.kind_of("A1+"), EventKind::kOutput);
  EXPECT_EQ(stage.kind_of("V2-"), EventKind::kOutput);
  EXPECT_EQ(stage.kind_of("I1.X+"), EventKind::kInternal);
}

TEST(IpcmosStage, ShortCircuitCandidatesIncludePaperInvariants) {
  const Netlist nl = make_stage_netlist("I1", linear_channels(1));
  const auto candidates = nl.short_circuit_candidates();
  bool y = false, vint = false;
  for (NodeId n : candidates) {
    if (nl.node_name(n) == "I1.Y") y = true;
    if (nl.node_name(n) == "I1.Vint") vint = true;
  }
  EXPECT_TRUE(y) << "invariant (1): short circuit at Y";
  EXPECT_TRUE(vint) << "invariant (2): short circuit at Vint";
}

TEST(IpcmosStage, StrobeSwitchEnablingConditions) {
  // Paper Section 5.1: En(Y+) = !Y & !Z, En(Y-) = Y & ACK.
  const Module stage = make_stage(1);
  const TransitionSystem& ts = stage.ts();
  // From the initial state Y is high and ACK low: no Y event enabled.
  for (EventId e : ts.enabled_events(ts.initial())) {
    EXPECT_NE(ts.label(e), "I1.Y-");
    EXPECT_NE(ts.label(e), "I1.Y+");
  }
}

TEST(IpcmosExperiments, Experiment1NoRefinements) {
  const VerificationResult r = experiment1();
  EXPECT_EQ(r.verdict, Verdict::kVerified);
  EXPECT_EQ(r.refinements, 0);
}

TEST(IpcmosExperiments, Experiment2GuaranteesAout) {
  const VerificationResult r = experiment2();
  EXPECT_EQ(r.verdict, Verdict::kVerified);
  EXPECT_GT(r.refinements, 0);
}

TEST(IpcmosExperiments, Experiment4FixedPoint) {
  const VerificationResult r = experiment4();
  EXPECT_EQ(r.verdict, Verdict::kVerified);
  EXPECT_GT(r.refinements, 0);
}

TEST(IpcmosExperiments, Experiment5BackAnnotatesPaperOrderings) {
  const VerificationResult r = experiment5();
  ASSERT_EQ(r.verdict, Verdict::kVerified);
  EXPECT_GT(r.refinements, 0);
  const auto cs = r.constraints();
  auto has = [&](const std::string& b, const std::string& a) {
    for (const DerivedOrdering& o : cs)
      if (o.before == b && o.after == a) return true;
    return false;
  };
  // Fig. 13(b): Z+ must be faster than ACK+ (invariant 1).
  EXPECT_TRUE(has("I1.Z+", "A1+"));
  // Fig. 13(c): Y- turns off the pass transistor before CLKE resets Vint.
  EXPECT_TRUE(has("I1.Y-", "I1.CLKE-"));
}

TEST(IpcmosExperiments, ZoneEngineConfirmsExperiment5) {
  const ExperimentConfig cfg;
  const ModuleSet set = flat_pipeline(1, cfg.timing);
  const Netlist nl = make_stage_netlist("I1", linear_channels(1), cfg.timing.stage);
  const auto scs = short_circuit_properties(nl);
  const DeadlockFreedom dead;
  const PersistencyProperty pers;
  std::vector<const SafetyProperty*> props{&dead, &pers};
  for (const auto& p : scs) props.push_back(p.get());
  const ZoneVerifyResult z = zone_verify(set.ptrs, props);
  EXPECT_FALSE(z.violated) << z.description;
}

TEST(IpcmosExperiments, BrokenTimingIsRejected) {
  // Slowing Y's fall (the isolation after ACK+) breaks invariant (2):
  // CLKE precharges Vint while the pass transistor still conducts.
  ExperimentConfig cfg;
  cfg.timing.stage.y_fall = DelayInterval::units(6, 8);
  const VerificationResult r = experiment5(cfg);
  EXPECT_EQ(r.verdict, Verdict::kViolated);

  const ModuleSet set = flat_pipeline(1, cfg.timing);
  const Netlist nl =
      make_stage_netlist("I1", linear_channels(1), cfg.timing.stage);
  const auto scs = short_circuit_properties(nl);
  const DeadlockFreedom dead;
  const PersistencyProperty pers;
  std::vector<const SafetyProperty*> props{&dead, &pers};
  for (const auto& p : scs) props.push_back(p.get());
  const ZoneVerifyResult z = zone_verify(set.ptrs, props);
  EXPECT_TRUE(z.violated);
}

TEST(IpcmosExperiments, RunAllProducesFiveRows) {
  const auto rows = run_all_experiments();
  ASSERT_EQ(rows.size(), 5u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.result.verdict, Verdict::kVerified) << row.name;
  }
  // Experiment 5 (both ends pulse-driven) needs the most refinements,
  // experiment 1 none — the shape of the paper's Table 1.
  EXPECT_EQ(rows[0].result.refinements, 0);
  EXPECT_GE(rows[4].result.refinements, rows[1].result.refinements);
}

TEST(IpcmosPipeline, TwoStageCompositionIsFiniteAndAlive) {
  // Restrict to a budget: the flat 2-stage product is large but its
  // reachable prefix must show live handshake activity.
  const ModuleSet set = flat_pipeline(2);
  ComposeOptions opts;
  opts.max_states = 30000;
  const Composition c = compose(set.ptrs, opts);
  EXPECT_TRUE(c.truncated);  // the paper: flat verification blows up
  EXPECT_GT(c.ts.num_states(), 10000u);
}

}  // namespace
}  // namespace rtv::ipcmos
