// Cross-module integration tests: simulation runs stay inside the timed
// (zone-reachable) state space; the lazy materialisation reproduces the
// Fig. 1(c,d) pruning; STG-file environments verify end to end.
#include <gtest/gtest.h>

#include <set>

#include "rtv/lazy/refined_system.hpp"
#include "rtv/sim/simulator.hpp"
#include "rtv/stg/astg.hpp"
#include "rtv/stg/elaborate.hpp"
#include "rtv/stg/library.hpp"
#include "rtv/ts/compose.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/refinement.hpp"
#include "rtv/zone/zone_graph.hpp"

namespace rtv {
namespace {

TEST(Integration, SimulationVisitsOnlyZoneReachableStates) {
  // Every discrete state visited by a timed simulation must be reachable
  // in the zone graph (the simulator implements the same TTS semantics).
  const Module sys = gallery::intro_example();
  const ZoneVerifyResult z = zone_verify({&sys}, {});
  ASSERT_FALSE(z.violated);

  // Collect simulated discrete states over many seeds.
  std::set<StateId::underlying_type> visited;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    SimOptions opts;
    opts.seed = seed;
    const SimTrace t = simulate(sys.ts(), opts);
    for (const SimEvent& e : t.events) visited.insert(e.state_after.value());
  }
  // The zone engine reports how many discrete states are timed-reachable;
  // simulation can never exceed that.
  EXPECT_LE(visited.size() + 1, z.discrete_states + 1);
  EXPECT_GE(z.discrete_states, visited.size());
}

TEST(Integration, MaterializedLazySystemShrinksPerRefinement) {
  // Manually replay the intro example's refinement sequence and check the
  // lazy product prunes firings (Fig. 1(c,d): fewer and fewer traces).
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  const VerificationResult r = verify_modules({&sys, &mon}, {&bad});
  ASSERT_EQ(r.verdict, Verdict::kVerified);

  // Rebuild the composition and apply the derived orderings.
  const Composition comp = compose({&sys, &mon});
  RefinedSystem refined(comp.ts);
  refined.enable_age_rule(true);
  for (const DerivedOrdering& o : r.constraints()) {
    refined.activate_pair(comp.ts.event_by_label(o.before),
                          comp.ts.event_by_label(o.after));
  }
  const MaterializedLazyTs lazy = materialize(refined);
  EXPECT_GT(lazy.blocked_firings, 0u);
  // The bad state (fail signal) is unreachable in the refined system.
  const std::size_t fail_idx = lazy.ts.signal_index("fail");
  ASSERT_NE(fail_idx, static_cast<std::size_t>(-1));
  for (StateId s : lazy.ts.reachable_states()) {
    EXPECT_FALSE(lazy.ts.valuation(s).test(fail_idx));
  }
}

TEST(Integration, AstgEnvironmentVerifiesAgainstAbstraction) {
  // Round-trip the A_out abstraction through the .g format and use the
  // parsed copy as the monitor of a containment check: a pulse-paced IN
  // driving OUT refines A_out.  The check is genuinely *timed*: A_out
  // promises VALID+ after ACK+, which holds for IN only because the pulse
  // width (15+eps) exceeds the ACK response (<= 11) — the flow must derive
  // that ordering.
  const Stg aout_stg = stg_library::make_aout("V", "A");
  const Stg parsed = parse_astg_string(write_astg(aout_stg));
  const Module abstraction = elaborate(parsed);
  const Module out = stg_library::out_module("V", "A");
  const Module producer = stg_library::in_module("V", "A");

  const Module monitor = abstraction.as_monitor("Aout'");
  const DeadlockFreedom dead;
  const VerificationResult r =
      verify_modules({&producer, &out, &monitor}, {&dead});
  EXPECT_EQ(r.verdict, Verdict::kVerified);
  EXPECT_GE(r.refinements, 1);
}

TEST(Integration, ComposedDelayTighteningAffectsVerdict) {
  // The same diamond race is safe only because composition intersects the
  // producer's delays with a tighter listener annotation.
  Module impl = gallery::diamond("x", DelayInterval::units(1, 9), "y",
                                 DelayInterval::units(5, 6));
  // Untimed-ish x [1,9] overlaps y [5,6]: race can go either way.
  {
    const Module mon = gallery::order_monitor("x", "y");
    const InvariantProperty bad("x first", {{"fail", true}});
    const VerificationResult r = verify_modules({&impl, &mon}, {&bad});
    EXPECT_EQ(r.verdict, Verdict::kViolated);
  }
  // A participant declaring x in [1,2] tightens the composed event.
  TransitionSystem lts;
  const StateId l0 = lts.add_state();
  const StateId l1 = lts.add_state();
  lts.add_transition(
      l0, lts.add_event("x", DelayInterval::units(1, 2), EventKind::kInput), l1);
  lts.add_transition(
      l1, lts.add_event("y", DelayInterval::unbounded(), EventKind::kInput), l1);
  // Accept y anywhere so the listener never blocks it... also at l0.
  lts.add_transition(l0, lts.event_by_label("y"), l0);
  lts.set_initial(l0);
  const Module listener("tight-x", std::move(lts));
  {
    const Module mon = gallery::order_monitor("x", "y");
    const InvariantProperty bad("x first", {{"fail", true}});
    const VerificationResult r =
        verify_modules({&impl, &listener, &mon}, {&bad});
    EXPECT_EQ(r.verdict, Verdict::kVerified);
  }
}

TEST(Integration, WaveCapKeepsVerdictSound) {
  // Tight wave caps lose precision but never soundness: the verdict stays
  // VERIFIED (possibly with more refinements) on the intro example.
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  for (std::size_t cap : {2u, 3u, 6u}) {
    VerifyOptions opts;
    opts.max_waves = cap;
    const VerificationResult r = verify_modules({&sys, &mon}, {&bad}, opts);
    EXPECT_EQ(r.verdict, Verdict::kVerified) << "cap " << cap;
  }
}

}  // namespace
}  // namespace rtv
