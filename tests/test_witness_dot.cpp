#include <gtest/gtest.h>

#include "rtv/ts/compose.hpp"
#include "rtv/ts/dot.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/refinement.hpp"
#include "rtv/verify/witness.hpp"

namespace rtv {
namespace {

Trace replay(const TransitionSystem& ts, const std::vector<std::string>& labels) {
  Trace trace;
  StateId s = ts.initial();
  for (const std::string& l : labels) {
    const EventId e = ts.event_by_label(l);
    TraceStep step{s, e, ts.enabled_events(s)};
    trace.steps.push_back(step);
    s = *ts.successor(s, e);
  }
  trace.final_state = s;
  trace.final_enabled = ts.enabled_events(s);
  return trace;
}

TEST(Witness, ConsistentTraceGetsSchedule) {
  const Module m = gallery::intro_example();
  const Trace t = replay(m.ts(), {"b", "g", "a", "c", "d"});
  const auto w = make_witness(m.ts(), t);
  ASSERT_TRUE(w.has_value());
  ASSERT_EQ(w->steps.size(), 5u);
  // Monotone, starts at >= 0, respects delay windows per enabling.
  Time prev = 0;
  for (const TimedStep& s : w->steps) {
    EXPECT_GE(s.time, prev);
    prev = s.time;
  }
  // b fires within [1, 2] of the start.
  EXPECT_GE(w->steps[0].time, ticks_from_units(1));
  EXPECT_LE(w->steps[0].time, ticks_from_units(2));
  // g fires within [0.5, 0.5] of b.
  EXPECT_EQ(w->steps[1].time - w->steps[0].time, ticks_from_units(0.5));
}

TEST(Witness, InconsistentTraceHasNoSchedule) {
  const Module m = gallery::intro_example();
  const Trace t = replay(m.ts(), {"a", "c", "d"});
  EXPECT_FALSE(make_witness(m.ts(), t).has_value());
}

TEST(Witness, CounterexampleFromVerifierIsSchedulable) {
  TransitionSystem broken = gallery::intro_example().ts();
  broken.set_event_delay(broken.event_by_label("g"), DelayInterval::units(10, 20));
  broken.set_event_delay(broken.event_by_label("d"), DelayInterval::units(0, 1));
  const Module sys("intro-broken", std::move(broken));
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  const VerificationResult r = verify_modules({&sys, &mon}, {&bad});
  ASSERT_EQ(r.verdict, Verdict::kViolated);
  ASSERT_TRUE(r.counterexample.has_value());

  // The counterexample lives in the composed system; rebuild the same
  // composition and replay its labels there to extract a schedule.
  const Composition comp = compose({&sys, &mon});
  std::vector<std::string> labels;
  for (const TraceStep& s : r.counterexample->steps)
    labels.push_back(comp.ts.label(s.event));
  const auto w = make_witness(comp.ts, replay(comp.ts, labels));
  ASSERT_TRUE(w.has_value());
  ASSERT_EQ(w->steps.size(), labels.size());
  // d fires before g in the schedule (that is the violation).
  Time td = -1, tg = -1;
  for (const TimedStep& s : w->steps) {
    if (s.label == "d") td = s.time;
    if (s.label == "g") tg = s.time;
  }
  ASSERT_GE(td, 0);
  EXPECT_TRUE(tg < 0 || td < tg);
}

TEST(Witness, RefusedEventMarked) {
  const Module m = gallery::intro_example();
  const Trace t = replay(m.ts(), {"b", "g", "a", "c"});
  const auto w = make_witness(m.ts(), t, m.ts().event_by_label("d"));
  ASSERT_TRUE(w.has_value());
  EXPECT_NE(w->steps.back().label.find("(refused)"), std::string::npos);
}

TEST(Witness, EmptyTrace) {
  const Module m = gallery::intro_example();
  Trace t;
  t.final_state = m.ts().initial();
  t.final_enabled = m.ts().enabled_events(t.final_state);
  const auto w = make_witness(m.ts(), t);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->steps.empty());
}

TEST(Witness, ToStringFormatsTimes) {
  const Module m = gallery::chain({{"a", DelayInterval::units(1, 2)}});
  const Trace t = replay(m.ts(), {"a"});
  const auto w = make_witness(m.ts(), t);
  ASSERT_TRUE(w.has_value());
  EXPECT_NE(w->to_string().find("t="), std::string::npos);
  EXPECT_NE(w->to_string().find("a"), std::string::npos);
}

TEST(Dot, TransitionSystemExport) {
  const Module m = gallery::intro_example();
  const std::string dot = to_dot(m.ts());
  EXPECT_NE(dot.find("digraph ts"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);  // initial state
}

TEST(Dot, HighlightAndLimit) {
  const Module m = gallery::intro_example();
  DotOptions opts;
  opts.max_states = 3;
  opts.highlight = {m.ts().initial()};
  const std::string dot = to_dot(m.ts(), opts);
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);
  // Only 3 states emitted.
  std::size_t count = 0, pos = 0;
  while ((pos = dot.find("shape", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 1u);  // only in the node default
}

TEST(Dot, CesExportShowsPending) {
  Ces ces;
  CesEvent a;
  a.label = "a";
  a.delay = DelayInterval::units(1, 2);
  CesEvent b;
  b.label = "b";
  b.delay = DelayInterval::units(3, 4);
  b.preds = {0};
  b.pending = true;
  ces.events = {a, b};
  const std::string dot = to_dot(ces);
  EXPECT_NE(dot.find("digraph ces"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("e0 -> e1"), std::string::npos);
}

}  // namespace
}  // namespace rtv

#include "rtv/ipcmos/stage.hpp"

namespace rtv {
namespace {

TEST(Dot, NetlistExportShowsStacks) {
  const Netlist nl =
      ipcmos::make_stage_netlist("I1", ipcmos::linear_channels(1));
  const std::string dot = to_dot(nl);
  EXPECT_NE(dot.find("digraph netlist"), std::string::npos);
  EXPECT_NE(dot.find("I1.Vint"), std::string::npos);
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);  // weak keeper
  EXPECT_NE(dot.find("label=\"down"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // input node
}

}  // namespace
}  // namespace rtv
