#include "rtv/lazy/refined_system.hpp"

#include <gtest/gtest.h>

#include "rtv/ts/gallery.hpp"

namespace rtv {
namespace {

TEST(RefinedSystem, NoObserversMeansNoBlocking) {
  const Module m = gallery::intro_example();
  RefinedSystem rs(m.ts());
  const RefinedState s = rs.initial();
  for (EventId e : m.ts().enabled_events(s.base)) {
    EXPECT_FALSE(rs.blocked(s, e));
  }
}

TEST(RefinedSystem, FromStartObserverBlocksExactSequence) {
  const Module m = gallery::intro_example();
  const TransitionSystem& ts = m.ts();
  const EventId a = ts.event_by_label("a");
  const EventId c = ts.event_by_label("c");
  const EventId d = ts.event_by_label("d");

  RefinedSystem rs(ts);
  BanObserver obs;
  obs.from_start = true;
  obs.window = {a, c, d};
  rs.add_observer(std::move(obs));

  RefinedState s = rs.initial();
  EXPECT_FALSE(rs.blocked(s, a));
  s = rs.advance(s, a);
  EXPECT_FALSE(rs.blocked(s, c));
  s = rs.advance(s, c);
  EXPECT_TRUE(rs.blocked(s, d));  // completing the window
}

TEST(RefinedSystem, DivergedRunIsNotBlocked) {
  const Module m = gallery::intro_example();
  const TransitionSystem& ts = m.ts();
  const EventId a = ts.event_by_label("a");
  const EventId b = ts.event_by_label("b");
  const EventId c = ts.event_by_label("c");
  const EventId d = ts.event_by_label("d");

  RefinedSystem rs(ts);
  BanObserver obs;
  obs.from_start = true;
  obs.window = {a, c, d};
  rs.add_observer(std::move(obs));

  // Firing b first diverges from the window: d stays allowed.
  RefinedState s = rs.initial();
  s = rs.advance(s, b);
  s = rs.advance(s, a);
  s = rs.advance(s, c);
  EXPECT_FALSE(rs.blocked(s, d));
}

TEST(RefinedSystem, AnchoredObserverRearmsAtEveryVisit) {
  // Loop u; x with ban [x] anchored at the post-u state: x is blocked on
  // every visit.
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const EventId u = ts.add_event("u");
  const EventId x = ts.add_event("x");
  const EventId back = ts.add_event("back");
  ts.add_transition(s0, u, s1);
  ts.add_transition(s1, x, s0);
  ts.add_transition(s1, back, s0);
  ts.set_initial(s0);

  RefinedSystem rs(ts);
  BanObserver obs;
  obs.from_start = false;
  obs.anchor_state = s1;
  obs.window = {x};
  rs.add_observer(std::move(obs));

  RefinedState s = rs.initial();
  s = rs.advance(s, u);
  EXPECT_TRUE(rs.blocked(s, x));
  s = rs.advance(s, back);
  s = rs.advance(s, u);
  EXPECT_TRUE(rs.blocked(s, x));  // re-armed on the second visit
}

TEST(RefinedSystem, MaterializePrunesBlockedFirings) {
  const Module m = gallery::intro_example();
  const TransitionSystem& ts = m.ts();
  RefinedSystem rs(ts);
  BanObserver obs;
  obs.from_start = true;
  obs.window = {ts.event_by_label("a"), ts.event_by_label("c"),
                ts.event_by_label("d")};
  rs.add_observer(std::move(obs));

  const MaterializedLazyTs lazy = materialize(rs);
  EXPECT_EQ(lazy.blocked_firings, 1u);
  EXPECT_FALSE(lazy.truncated);
  // The refined system has no more behaviours than the base one.
  EXPECT_LE(lazy.ts.num_transitions() + lazy.blocked_firings,
            ts.num_transitions() + lazy.ts.num_states());
}

TEST(RefinedSystem, PairBlockingNeedsActivationAndJustification) {
  // Diamond race x [1,2] vs y [5,6]: the pair (x, y) justifies blocking y
  // while x is pending — but only once activated.
  const Module m = gallery::diamond("x", DelayInterval::units(1, 2), "y",
                                    DelayInterval::units(5, 6));
  const TransitionSystem& ts = m.ts();
  const EventId x = ts.event_by_label("x");
  const EventId y = ts.event_by_label("y");

  RefinedSystem rs(ts);
  rs.enable_age_rule(true);
  RefinedState s0 = rs.initial();
  EXPECT_FALSE(rs.blocked(s0, y));

  EXPECT_TRUE(rs.activate_pair(x, y));
  EXPECT_FALSE(rs.activate_pair(x, y));  // already active
  s0 = rs.initial();                     // re-pull with bookkeeping on
  EXPECT_TRUE(rs.blocked(s0, y));
  EXPECT_FALSE(rs.blocked(s0, x));
}

TEST(RefinedSystem, PairNotJustifiedWhenWindowsOverlap) {
  // x [1,4] vs y [2,3]: overlap, no provable ordering, pair must not block.
  const Module m = gallery::diamond("x", DelayInterval::units(1, 4), "y",
                                    DelayInterval::units(2, 3));
  const TransitionSystem& ts = m.ts();
  RefinedSystem rs(ts);
  rs.enable_age_rule(true);
  rs.activate_pair(ts.event_by_label("x"), ts.event_by_label("y"));
  const RefinedState s0 = rs.initial();
  EXPECT_FALSE(rs.blocked(s0, ts.event_by_label("y")));
}

TEST(RefinedSystem, ChainSlackJustifiesPair) {
  // u [3,4] enables y [4,5]; x [1,2] pending from the start with deadline
  // 2... wait: x's deadline (2) < u's earliest (3), so u itself could not
  // fire before x.  Use a start-wave x with deadline 8: after u (>= 3),
  // y's earliest is 3 + 4 = 7 < 8: not blocked.  With deadline 6 — wave
  // bound gives lower(t_wave(y) - t_wave(x)) = 3, 3 + 4 = 7 > 6: blocked.
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const StateId s2 = ts.add_state();
  const StateId s3 = ts.add_state();
  const EventId x6 = ts.add_event("x6", DelayInterval::units(1, 6));
  const EventId x8 = ts.add_event("x8", DelayInterval::units(1, 8));
  const EventId u = ts.add_event("u", DelayInterval::units(3, 4));
  const EventId y = ts.add_event("y", DelayInterval::units(4, 5));
  ts.add_transition(s0, u, s1);
  ts.add_transition(s1, y, s2);
  ts.add_transition(s0, x6, s3);
  ts.add_transition(s0, x8, s3);
  ts.add_transition(s1, x6, s3);
  ts.add_transition(s1, x8, s3);
  ts.set_initial(s0);

  RefinedSystem rs(ts);
  rs.enable_age_rule(true);
  rs.activate_pair(x6, y);
  rs.activate_pair(x8, y);
  RefinedState s = rs.initial();
  s = rs.advance(s, u);
  EXPECT_TRUE(rs.blocked(s, y));  // justified through x6's deadline
}

TEST(RefinedSystem, StateHashingConsistent) {
  const Module m = gallery::intro_example();
  RefinedSystem rs(m.ts());
  rs.enable_age_rule(true);
  rs.activate_pair(m.ts().event_by_label("b"), m.ts().event_by_label("d"));
  const RefinedState a = rs.initial();
  const RefinedState b = rs.initial();
  EXPECT_EQ(a, b);
  EXPECT_EQ(RefinedStateHash{}(a), RefinedStateHash{}(b));
}

}  // namespace
}  // namespace rtv
