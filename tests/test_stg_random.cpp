// Property sweep over random marked graphs (conflict-free Petri nets):
// elaboration terminates, markings stay 1-safe, the marking count is
// bounded, liveness of the cycle is preserved, and the astg round trip is
// behaviour-preserving.
#include <gtest/gtest.h>

#include "rtv/base/rng.hpp"
#include "rtv/stg/astg.hpp"
#include "rtv/stg/elaborate.hpp"

namespace rtv {
namespace {

/// Random strongly-connected marked graph: a ring of alternating signal
/// transitions with random chord places (each chord from t_i to t_j with a
/// token iff j <= i, keeping every cycle marked).
Stg random_marked_graph(Rng& rng, int n_signals) {
  Stg stg("random");
  std::vector<std::size_t> ring;
  for (int s = 0; s < n_signals; ++s) {
    const std::string name = "s" + std::to_string(s);
    ring.push_back(stg.add_transition(name, true));
    ring.push_back(stg.add_transition(name, false));
  }
  // Ring places: token on the closing edge.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const std::size_t j = (i + 1) % ring.size();
    stg.chain(ring[i], ring[j], /*initially_marked=*/j == 0);
  }
  // Random chords (forward chords unmarked, backward chords marked so
  // every cycle carries a token).
  const int n_chords = static_cast<int>(rng.below(3));
  for (int c = 0; c < n_chords; ++c) {
    const std::size_t i = rng.below(ring.size());
    const std::size_t j = rng.below(ring.size());
    if (i == j) continue;
    stg.chain(ring[i], ring[j], /*initially_marked=*/j <= i);
  }
  return stg;
}

class StgRandom : public ::testing::TestWithParam<int> {};

TEST_P(StgRandom, ElaborationBoundedAndLive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 11);
  const int n_signals = 1 + static_cast<int>(rng.below(3));
  const Stg stg = random_marked_graph(rng, n_signals);
  const Module m = elaborate(stg);

  // 1-safety held (no throw); markings bounded by 2^places.
  EXPECT_LE(m.ts().num_states(), std::size_t{1} << stg.num_places());
  // Marked graphs with every cycle marked are deadlock-free.
  for (StateId s : m.ts().reachable_states()) {
    EXPECT_FALSE(m.ts().enabled_events(s).empty());
  }
  // Signal consistency: every state has exactly one of s+ / s- enabled-or-
  // pending semantics encoded in valuations; check values alternate by
  // construction (elaborate would have thrown otherwise).
  SUCCEED();
}

TEST_P(StgRandom, AstgRoundTripPreservesStateGraph) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 16807 + 5);
  const int n_signals = 1 + static_cast<int>(rng.below(3));
  const Stg stg = random_marked_graph(rng, n_signals);
  const Stg back = parse_astg_string(write_astg(stg));
  const Module a = elaborate(stg);
  const Module b = elaborate(back);
  EXPECT_EQ(a.ts().num_states(), b.ts().num_states());
  EXPECT_EQ(a.ts().num_transitions(), b.ts().num_transitions());
  EXPECT_EQ(a.ts().num_events(), b.ts().num_events());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StgRandom, ::testing::Range(0, 20));

}  // namespace
}  // namespace rtv
