#include "rtv/base/interval.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rtv {
namespace {

TEST(Interval, TickConversionRoundTrips) {
  EXPECT_EQ(ticks_from_units(1.0), kTicksPerUnit);
  EXPECT_EQ(ticks_from_units(0.0), 0);
  EXPECT_DOUBLE_EQ(units_from_ticks(ticks_from_units(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(units_from_ticks(ticks_from_units(0.25)), 0.25);
  EXPECT_DOUBLE_EQ(units_from_ticks(ticks_from_units(15.0)), 15.0);
}

TEST(Interval, QuarterUnitGridIsExact) {
  // The paper's constants (0.5, 2.5, 15+eps as 15.25) all lie on the grid.
  for (double v : {0.25, 0.5, 0.75, 2.5, 15.25, 16.0}) {
    EXPECT_DOUBLE_EQ(units_from_ticks(ticks_from_units(v)), v) << v;
  }
}

TEST(Interval, DefaultIsUnbounded) {
  DelayInterval d;
  EXPECT_EQ(d.lo(), 0);
  EXPECT_FALSE(d.upper_bounded());
  EXPECT_TRUE(d.is_unbounded());
  EXPECT_TRUE(d.valid());
}

TEST(Interval, UnitsFactory) {
  const DelayInterval d = DelayInterval::units(1, 2);
  EXPECT_EQ(d.lo(), kTicksPerUnit);
  EXPECT_EQ(d.hi(), 2 * kTicksPerUnit);
  EXPECT_TRUE(d.upper_bounded());
  EXPECT_FALSE(d.is_unbounded());
}

TEST(Interval, AtLeastFactory) {
  const DelayInterval d = DelayInterval::at_least_units(5);
  EXPECT_EQ(d.lo(), 5 * kTicksPerUnit);
  EXPECT_FALSE(d.upper_bounded());
}

TEST(Interval, ExactlyFactory) {
  const DelayInterval d = DelayInterval::exactly_units(0.5);
  EXPECT_EQ(d.lo(), d.hi());
  EXPECT_EQ(d.lo(), kTicksPerUnit / 2);
}

TEST(Interval, IntersectTightens) {
  const DelayInterval a = DelayInterval::units(1, 5);
  const DelayInterval b = DelayInterval::units(2, 9);
  const DelayInterval c = a.intersect(b);
  EXPECT_EQ(c.lo(), 2 * kTicksPerUnit);
  EXPECT_EQ(c.hi(), 5 * kTicksPerUnit);
}

TEST(Interval, IntersectWithUnboundedIsIdentity) {
  const DelayInterval a = DelayInterval::units(1, 5);
  EXPECT_EQ(a.intersect(DelayInterval::unbounded()), a);
  EXPECT_EQ(DelayInterval::unbounded().intersect(a), a);
}

TEST(Interval, EmptyIntersectionIsInvalid) {
  const DelayInterval a = DelayInterval::units(1, 2);
  const DelayInterval b = DelayInterval::units(3, 4);
  EXPECT_FALSE(a.intersect(b).valid());
}

TEST(Interval, WidenedExpandsBothSides) {
  const DelayInterval a = DelayInterval::units(2, 4);
  const DelayInterval w = a.widened(0.5);
  EXPECT_EQ(w.lo(), kTicksPerUnit);      // 2 * 0.5
  EXPECT_EQ(w.hi(), 6 * kTicksPerUnit);  // 4 * 1.5
}

TEST(Interval, WidenedKeepsUnboundedUpper) {
  const DelayInterval a = DelayInterval::at_least_units(2);
  EXPECT_FALSE(a.widened(0.5).upper_bounded());
}

TEST(Interval, WidenedClampsLowerAtZero) {
  const DelayInterval a = DelayInterval::units(1, 2);
  EXPECT_EQ(a.widened(2.0).lo(), 0);
}

TEST(Interval, StreamFormatting) {
  std::ostringstream os;
  os << DelayInterval::units(1, 2) << " " << DelayInterval::at_least_units(5);
  EXPECT_EQ(os.str(), "[1,2] [5,inf)");
}

TEST(Interval, UnboundedStreamFormatting) {
  EXPECT_EQ(DelayInterval::unbounded().to_string(), "[0,inf)");
}

TEST(Interval, TickRoundingIsToNearest) {
  // 0.1 units = 0.4 ticks rounds down; 0.2 units = 0.8 ticks rounds up.
  EXPECT_EQ(ticks_from_units(0.1), 0);
  EXPECT_EQ(ticks_from_units(0.2), 1);
}

TEST(Interval, EpsilonEncodesStrictBounds) {
  // The paper's "15 + eps" is one tick above 15 units.
  EXPECT_EQ(ticks_from_units(15.25), ticks_from_units(15.0) + kTimeEpsilon);
}

TEST(Interval, ZeroPointInterval) {
  const DelayInterval d = DelayInterval::exactly_units(0);
  EXPECT_EQ(d.lo(), 0);
  EXPECT_EQ(d.hi(), 0);
  EXPECT_TRUE(d.valid());
  EXPECT_TRUE(d.upper_bounded());
  EXPECT_FALSE(d.is_unbounded());
}

TEST(Interval, PointIntervalIntersection) {
  const DelayInterval p = DelayInterval::exactly_units(2);
  EXPECT_EQ(p.intersect(DelayInterval::units(2, 5)), p);
  EXPECT_FALSE(p.intersect(DelayInterval::units(3, 5)).valid());
}

TEST(Interval, EmptyPropagatesThroughIntersect) {
  const DelayInterval empty =
      DelayInterval::units(1, 2).intersect(DelayInterval::units(3, 4));
  ASSERT_FALSE(empty.valid());
  EXPECT_FALSE(empty.intersect(DelayInterval::unbounded()).valid());
}

TEST(Interval, IntersectIsCommutativeAndIdempotent) {
  const DelayInterval a = DelayInterval::units(1, 5);
  const DelayInterval b = DelayInterval::at_least_units(2);
  EXPECT_EQ(a.intersect(b), b.intersect(a));
  EXPECT_EQ(a.intersect(a), a);
}

TEST(Interval, WidenedZeroSlackIsIdentity) {
  const DelayInterval a = DelayInterval::units(2, 4);
  EXPECT_EQ(a.widened(0.0), a);
  EXPECT_EQ(DelayInterval::unbounded().widened(0.0), DelayInterval::unbounded());
}

TEST(Interval, WidenedPointIntervalStaysValid) {
  const DelayInterval w = DelayInterval::exactly_units(2).widened(0.25);
  EXPECT_TRUE(w.valid());
  EXPECT_EQ(w.lo(), ticks_from_units(1.5));
  EXPECT_EQ(w.hi(), ticks_from_units(2.5));
}

}  // namespace
}  // namespace rtv
