#include "rtv/ts/minimize.hpp"

#include <gtest/gtest.h>

#include "rtv/stg/library.hpp"
#include "rtv/ts/compose.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/refinement.hpp"

namespace rtv {
namespace {

TEST(Minimize, MergesDuplicatedTail) {
  // Two states with identical futures collapse.
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const StateId s2 = ts.add_state();
  const StateId sink1 = ts.add_state();
  const StateId sink2 = ts.add_state();
  const EventId a = ts.add_event("a");
  const EventId b = ts.add_event("b");
  ts.add_transition(s0, a, s1);
  ts.add_transition(s0, b, s2);
  ts.add_transition(s1, a, sink1);
  ts.add_transition(s2, a, sink2);
  ts.add_transition(sink1, b, sink1);
  ts.add_transition(sink2, b, sink2);
  ts.set_initial(s0);

  const MinimizeResult r = minimize(ts);
  // s1 ~ s2 and sink1 ~ sink2: 3 blocks.
  EXPECT_EQ(r.num_blocks, 3u);
  EXPECT_EQ(r.block_of[s1.value()], r.block_of[s2.value()]);
  EXPECT_EQ(r.block_of[sink1.value()], r.block_of[sink2.value()]);
  EXPECT_NE(r.block_of[s0.value()], r.block_of[s1.value()]);
}

TEST(Minimize, DistinguishesByLabels) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const StateId s2 = ts.add_state();
  const EventId a = ts.add_event("a");
  const EventId b = ts.add_event("b");
  ts.add_transition(s0, a, s1);
  ts.add_transition(s0, b, s2);
  ts.set_initial(s0);
  const MinimizeResult r = minimize(ts);
  // s1 and s2 are both deadlocked sinks: bisimilar.
  EXPECT_EQ(r.num_blocks, 2u);
}

TEST(Minimize, DropsUnreachableStates) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  ts.add_state();  // unreachable
  ts.set_initial(s0);
  const MinimizeResult r = minimize(ts);
  EXPECT_EQ(r.num_blocks, 1u);
  EXPECT_EQ(r.ts.num_states(), 1u);
}

TEST(Minimize, IdempotentOnMinimalSystems) {
  const Module m = gallery::intro_example();
  const Module m1 = minimized(m, {/*respect_valuations=*/false});
  const Module m2 = minimized(m1, {false});
  EXPECT_EQ(m1.ts().num_states(), m2.ts().num_states());
  EXPECT_LE(m1.ts().num_states(), m.ts().num_states());
}

TEST(Minimize, RespectsValuationsWhenAsked) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const StateId s2 = ts.add_state();
  const EventId a = ts.add_event("a");
  ts.add_transition(s0, a, s1);
  ts.add_transition(s0, a, s2);  // nondeterministic split
  ts.set_initial(s0);
  ts.set_signal_names({"f"});
  BitVec lo(1), hi(1);
  hi.set(0);
  ts.set_state_valuation(s0, lo);
  ts.set_state_valuation(s1, lo);
  ts.set_state_valuation(s2, hi);
  MinimizeOptions keep;
  keep.respect_valuations = true;
  EXPECT_EQ(minimize(ts, keep).num_blocks, 3u);
  MinimizeOptions merge;
  merge.respect_valuations = false;
  EXPECT_EQ(minimize(ts, merge).num_blocks, 2u);
}

TEST(Minimize, QuotientPreservesVerificationVerdict) {
  // Verifying against the minimized monitor gives the same verdict.
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const Module mon_min = minimized(mon);
  const InvariantProperty bad("g before d", {{"fail", true}});
  const VerificationResult a = verify_modules({&sys, &mon}, {&bad});
  const VerificationResult b = verify_modules({&sys, &mon_min}, {&bad});
  EXPECT_EQ(a.verdict, b.verdict);
}

TEST(Minimize, EnvironmentModelsAlreadyTight) {
  // The hand-built STG environments have little redundancy; minimization
  // must not grow them and the quotient must still compose cleanly.
  const Module in = stg_library::in_module("V", "A");
  const Module in_min = minimized(in);
  EXPECT_LE(in_min.ts().num_states(), in.ts().num_states());
  const Module out = stg_library::out_module("V", "A");
  const Composition c = compose({&in_min, &out});
  for (StateId s : c.ts.reachable_states()) {
    EXPECT_FALSE(c.ts.enabled_events(s).empty());
  }
}

}  // namespace
}  // namespace rtv
