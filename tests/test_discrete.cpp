#include "rtv/zone/discrete.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rtv/base/rng.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/zone/zone_graph.hpp"

namespace rtv {
namespace {

TEST(Discrete, IntroExampleHolds) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  const DiscreteVerifyResult r = discrete_verify({&sys, &mon}, {&bad});
  EXPECT_FALSE(r.violated);
  EXPECT_FALSE(r.truncated);
}

TEST(Discrete, BrokenDelaysViolate) {
  TransitionSystem ts = gallery::intro_example().ts();
  ts.set_event_delay(ts.event_by_label("g"), DelayInterval::units(10, 20));
  ts.set_event_delay(ts.event_by_label("d"), DelayInterval::units(0, 1));
  const Module sys("broken", std::move(ts));
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  EXPECT_TRUE(discrete_verify({&sys, &mon}, {&bad}).violated);
}

TEST(Discrete, ViolationCarriesCounterexampleTrace) {
  // Regression: the engine used to report VIOLATED with no trace at all —
  // DiscreteVerifyResult had no trace field and every violation path
  // returned bare finish(result).  The counterexample must name the event
  // sequence, ending with the premature 'd'.
  TransitionSystem ts = gallery::intro_example().ts();
  ts.set_event_delay(ts.event_by_label("g"), DelayInterval::units(10, 20));
  ts.set_event_delay(ts.event_by_label("d"), DelayInterval::units(0, 1));
  const Module sys("broken", std::move(ts));
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  const DiscreteVerifyResult r = discrete_verify({&sys, &mon}, {&bad});
  ASSERT_TRUE(r.violated);
  ASSERT_FALSE(r.trace_labels.empty());
  // The monitor's fail state is entered by firing d before g.
  EXPECT_NE(std::find(r.trace_labels.begin(), r.trace_labels.end(), "d"),
            r.trace_labels.end());
  EXPECT_EQ(std::find(r.trace_labels.begin(), r.trace_labels.end(), "g"),
            r.trace_labels.end());
}

TEST(Discrete, StateCountScalesWithConstants) {
  // The same race with 10x larger constants needs ~10x more configs —
  // the digitization cost the paper alludes to ([8]).
  const auto count = [](double scale) {
    const Module m = gallery::diamond("x", DelayInterval::units(1 * scale, 2 * scale),
                                      "y", DelayInterval::units(1 * scale, 2 * scale));
    return discrete_verify({&m}, {}).states_explored;
  };
  const std::size_t small = count(1);
  const std::size_t large = count(10);
  EXPECT_GT(large, 5 * small);
}

TEST(Discrete, SaturationKeepsUnboundedLoopsFinite) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const EventId x = ts.add_event("x", DelayInterval::at_least_units(1));
  ts.add_transition(s0, x, s0);
  ts.set_initial(s0);
  const Module m("loop", std::move(ts));
  const DiscreteVerifyResult r = discrete_verify({&m}, {});
  EXPECT_FALSE(r.truncated);
  EXPECT_LT(r.states_explored, 20u);
}

class DiscreteZoneAgreement : public ::testing::TestWithParam<int> {};

TEST_P(DiscreteZoneAgreement, VerdictsMatchOnRandomRaces) {
  // On the integer grid, digitization is exact: discrete and zone engines
  // must agree on reachability verdicts.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 99);
  const Time xlo = static_cast<Time>(rng.below(4)) * kTicksPerUnit;
  const Time xhi = xlo + static_cast<Time>(1 + rng.below(3)) * kTicksPerUnit;
  const Time ylo = static_cast<Time>(rng.below(4)) * kTicksPerUnit;
  const Time yhi = ylo + static_cast<Time>(1 + rng.below(3)) * kTicksPerUnit;
  const Module m =
      gallery::diamond("x", DelayInterval(xlo, xhi), "y", DelayInterval(ylo, yhi));
  const Module mon = gallery::order_monitor("x", "y");
  const InvariantProperty bad("x first", {{"fail", true}});
  const DiscreteVerifyResult d = discrete_verify({&m, &mon}, {&bad});
  const ZoneVerifyResult z = zone_verify({&m, &mon}, {&bad});
  EXPECT_EQ(d.violated, z.violated)
      << "x [" << xlo << "," << xhi << "] y [" << ylo << "," << yhi << "]";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscreteZoneAgreement, ::testing::Range(0, 25));

TEST(Discrete, ChokeDetection) {
  // Producer pulses x; a one-shot listener refuses the second pulse.
  TransitionSystem pts;
  const StateId p0 = pts.add_state();
  const StateId p1 = pts.add_state();
  pts.add_transition(p0, pts.add_event("x+", DelayInterval::units(1, 2),
                                       EventKind::kOutput), p1);
  pts.add_transition(p1, pts.add_event("x-", DelayInterval::units(1, 2),
                                       EventKind::kOutput), p0);
  pts.set_initial(p0);
  const Module producer("p", std::move(pts));

  TransitionSystem lts;
  const StateId l0 = lts.add_state();
  const StateId l1 = lts.add_state();
  const StateId l2 = lts.add_state();
  lts.add_transition(l0, lts.add_event("x+", DelayInterval::unbounded(),
                                       EventKind::kInput), l1);
  lts.add_transition(l1, lts.add_event("x-", DelayInterval::unbounded(),
                                       EventKind::kInput), l2);
  lts.set_initial(l0);
  const Module once("once", std::move(lts));

  const DiscreteVerifyResult r = discrete_verify({&producer, &once}, {});
  EXPECT_TRUE(r.violated);
  EXPECT_NE(r.description.find("refusal"), std::string::npos);
  // The trace ends with the refused output.
  ASSERT_FALSE(r.trace_labels.empty());
  EXPECT_EQ(r.trace_labels.back(), "x+");
}

TEST(Discrete, VerifiesConstantsBeyondTheOld16BitAgeRange) {
  // Regression, inverted twice: with 16-bit ages a delay bound past 65535
  // ticks first silently wrapped (the event never fired and a violated
  // system came back VERIFIED), then was refused with kDigitizationRange.
  // 64-bit ages represent every Time, so the same obligation now verifies.
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  // 20000 units * 4 ticks/unit = 80000 ticks > 65535.
  ts.add_transition(s0, ts.add_event("a", DelayInterval::units(10000, 20000)),
                    s1);
  ts.set_initial(s0);
  const Module m("overflow", std::move(ts));
  const DiscreteVerifyResult r = discrete_verify({&m}, {});
  EXPECT_EQ(r.verdict(), Verdict::kVerified);
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.states_explored, 65536u);  // the ages really counted past 2^16
}

// ---------------------------------------------------------------------------
// 64-bit age boundary table — banked from the fuzzing campaign's widened
// constant range.  Each case puts a slow [T,T]-tick event in a race with a
// fast [1,2]-tick one: "slow before fast" is genuinely violated (maximal
// progress forces fast by tick 2), "fast before slow" genuinely holds and
// requires ages to count all the way to T without wrapping.
// ---------------------------------------------------------------------------

struct AgeBoundaryCase {
  const char* name;
  Time slow_ticks;       ///< exact delay of the slow event, in ticks
  bool check_verified;   ///< also prove the cheap direction + zone parity
};

class DiscreteAgeBoundary : public ::testing::TestWithParam<AgeBoundaryCase> {};

TEST_P(DiscreteAgeBoundary, LargeConstantsDecideInsteadOfRefusing) {
  const AgeBoundaryCase& c = GetParam();
  const Module m =
      gallery::diamond("slow", DelayInterval(c.slow_ticks, c.slow_ticks),
                       "fast", DelayInterval(1, 2));

  const Module mon_bad = gallery::order_monitor("slow", "fast");
  const InvariantProperty bad("slow first", {{"fail", true}});
  const DiscreteVerifyResult viol = discrete_verify({&m, &mon_bad}, {&bad});
  EXPECT_TRUE(viol.violated) << c.name;
  EXPECT_NE(viol.truncated_reason, stop_reason::kDigitizationRange) << c.name;

  if (c.check_verified) {
    // The verified direction explores ~T configs (cost scales with the
    // constants — the digitization tradeoff); skipped for the largest T.
    const Module mon_ok = gallery::order_monitor("fast", "slow", "ok_fail");
    const InvariantProperty ok("fast first", {{"ok_fail", true}});
    const DiscreteVerifyResult v = discrete_verify({&m, &mon_ok}, {&ok});
    EXPECT_FALSE(v.violated) << c.name;
    EXPECT_FALSE(v.truncated) << c.name;
    EXPECT_GT(v.states_explored, static_cast<std::size_t>(c.slow_ticks))
        << c.name;
    const ZoneVerifyResult z = zone_verify({&m, &mon_ok}, {&ok});
    EXPECT_EQ(v.violated, z.violated) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, DiscreteAgeBoundary,
    ::testing::Values(AgeBoundaryCase{"ticks65535", 65535, true},
                      AgeBoundaryCase{"ticks65536", 65536, true},
                      AgeBoundaryCase{"ticks100000", 100000, true},
                      AgeBoundaryCase{"ticks4000000", 4'000'000, false}),
    [](const ::testing::TestParamInfo<AgeBoundaryCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace rtv
