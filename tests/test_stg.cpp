#include "rtv/stg/elaborate.hpp"
#include "rtv/stg/library.hpp"

#include <gtest/gtest.h>

#include "rtv/ts/compose.hpp"

namespace rtv {
namespace {

TEST(Stg, SimpleCycleElaborates) {
  Stg stg("cycle");
  const auto up = stg.add_transition("x", true);
  const auto dn = stg.add_transition("x", false);
  stg.chain(up, dn);
  const PlaceId p = stg.add_place("start", true);
  stg.arc(p, up);
  stg.arc(dn, p);
  const Module m = elaborate(stg);
  EXPECT_EQ(m.ts().num_states(), 2u);
  EXPECT_EQ(m.ts().num_events(), 2u);
  // Signal valuation alternates.
  const std::size_t xi = m.ts().signal_index("x");
  EXPECT_FALSE(m.ts().valuation(m.ts().initial()).test(xi));
  const StateId hi =
      *m.ts().successor(m.ts().initial(), m.ts().event_by_label("x+"));
  EXPECT_TRUE(m.ts().valuation(hi).test(xi));
}

TEST(Stg, ConcurrentTransitionsInterleave) {
  Stg stg("conc");
  const auto a = stg.add_transition("a", true);
  const auto b = stg.add_transition("b", true);
  const PlaceId pa = stg.add_place("pa", true);
  const PlaceId pb = stg.add_place("pb", true);
  stg.arc(pa, a);
  stg.arc(pb, b);
  stg.arc(a, stg.add_place("da"));
  stg.arc(b, stg.add_place("db"));
  const Module m = elaborate(stg);
  EXPECT_EQ(m.ts().num_states(), 4u);
}

TEST(Stg, OneSafetyViolationThrows) {
  Stg stg("unsafe");
  const auto a = stg.add_transition("a", true);
  const PlaceId p0 = stg.add_place("p0", true);
  const PlaceId p1 = stg.add_place("p1", true);  // already marked
  stg.arc(p0, a);
  stg.arc(a, p1);
  EXPECT_THROW(elaborate(stg), std::runtime_error);
}

TEST(Stg, InconsistentSignalThrows) {
  Stg stg("inconsistent");
  const auto a = stg.add_transition("x", true);
  stg.set_initial_value("x", true);  // rising while already high
  const PlaceId p0 = stg.add_place("p0", true);
  stg.arc(p0, a);
  stg.arc(a, stg.add_place("p1"));
  EXPECT_THROW(elaborate(stg), std::runtime_error);
}

TEST(Stg, DummyTransitionsAllowed) {
  Stg stg("dummy");
  const auto d = stg.add_dummy("tau");
  const PlaceId p0 = stg.add_place("p0", true);
  stg.arc(p0, d);
  stg.arc(d, stg.add_place("p1"));
  const Module m = elaborate(stg);
  EXPECT_TRUE(m.ts().event_by_label("tau").valid());
}

TEST(Stg, SameLabelDelaysIntersect) {
  Stg stg("dup");
  const auto a1 = stg.add_transition("x", true, DelayInterval::units(1, 5));
  const auto a2 = stg.add_transition("x", true, DelayInterval::units(2, 9));
  const PlaceId p0 = stg.add_place("p0", true);
  const PlaceId p1 = stg.add_place("p1");
  const PlaceId p2 = stg.add_place("p2");
  stg.arc(p0, a1);
  stg.arc(a1, p1);
  // Make a2 reachable from p1 after a signal consistency fix: x falls first.
  const auto dn = stg.add_transition("x", false, DelayInterval::units(1, 2));
  stg.arc(p1, dn);
  stg.arc(dn, p2);
  stg.arc(p2, a2);
  stg.arc(a2, stg.add_place("p3"));
  const Module m = elaborate(stg);
  EXPECT_EQ(m.ts().delay(m.ts().event_by_label("x+")),
            DelayInterval::units(2, 5));
}

// ---- the paper's environment / abstraction models -------------------------

TEST(StgLibrary, InEnvPulsesAndInterlocks) {
  const Module in = stg_library::in_module("V", "A");
  const TransitionSystem& ts = in.ts();
  const EventId vm = ts.event_by_label("V-");
  const EventId vp = ts.event_by_label("V+");
  const EventId ap = ts.event_by_label("A+");

  // Initially only V- can fire (V high, nothing acknowledged yet).
  EXPECT_EQ(ts.enabled_events(ts.initial()), (std::vector<EventId>{vm}));
  // After V-: the pulse end V+ and the ack A+ are both possible.
  const StateId s1 = *ts.successor(ts.initial(), vm);
  EXPECT_TRUE(ts.is_enabled(s1, vp));
  EXPECT_TRUE(ts.is_enabled(s1, ap));
  // No second V- before both V+ and A+ happened.
  const StateId s2 = *ts.successor(s1, vp);
  EXPECT_FALSE(ts.is_enabled(s2, vm));
}

TEST(StgLibrary, OutEnvAcknowledgesOncePerPulse) {
  const Module out = stg_library::out_module("V", "A");
  const TransitionSystem& ts = out.ts();
  const EventId vm = ts.event_by_label("V-");
  const EventId ap = ts.event_by_label("A+");
  const EventId am = ts.event_by_label("A-");

  StateId s = ts.initial();
  s = *ts.successor(s, vm);
  ASSERT_TRUE(ts.is_enabled(s, ap));
  s = *ts.successor(s, ap);
  // A second A+ is not possible before the pulse completes.
  EXPECT_FALSE(ts.is_enabled(s, ap));
  EXPECT_TRUE(ts.is_enabled(s, am));
}

TEST(StgLibrary, AbstractionsComposeWithoutDeadlock) {
  // Experiment 1's system: A_in || A_out cycles forever.
  const Module ain = stg_library::ain_module("V", "A");
  const Module aout = stg_library::aout_module("V", "A");
  const Composition c = compose({&ain, &aout});
  EXPECT_GT(c.ts.num_states(), 2u);
  for (StateId s : c.ts.reachable_states()) {
    EXPECT_FALSE(c.ts.enabled_events(s).empty()) << "deadlock in Ain||Aout";
  }
}

TEST(StgLibrary, AinHoldsValidLowUntilAck) {
  const Module ain = stg_library::ain_module("V", "A");
  const TransitionSystem& ts = ain.ts();
  StateId s = *ts.successor(ts.initial(), ts.event_by_label("V-"));
  // V+ must wait for A+ (two-phase interlock of Fig. 6).
  EXPECT_FALSE(ts.is_enabled(s, ts.event_by_label("V+")));
  s = *ts.successor(s, ts.event_by_label("A+"));
  EXPECT_TRUE(ts.is_enabled(s, ts.event_by_label("V+")));
}

TEST(StgLibrary, AoutExpectsValidPlusOnlyAfterAck) {
  const Module aout = stg_library::aout_module("V", "A");
  const TransitionSystem& ts = aout.ts();
  StateId s = *ts.successor(ts.initial(), ts.event_by_label("V-"));
  EXPECT_FALSE(ts.is_enabled(s, ts.event_by_label("V+")));
  s = *ts.successor(s, ts.event_by_label("A+"));
  EXPECT_TRUE(ts.is_enabled(s, ts.event_by_label("V+")));
}

TEST(StgLibrary, EnvTimingPropagatesToEvents) {
  stg_library::EnvTiming t;
  t.ack_rise = DelayInterval::units(3, 7);
  const Module out = stg_library::out_module("V", "A", t);
  EXPECT_EQ(out.ts().delay(out.ts().event_by_label("A+")),
            DelayInterval::units(3, 7));
}

TEST(StgLibrary, SignalsTracked) {
  const Module in = stg_library::in_module("V", "A");
  EXPECT_NE(in.ts().signal_index("V"), static_cast<std::size_t>(-1));
  EXPECT_NE(in.ts().signal_index("A"), static_cast<std::size_t>(-1));
  // Initially V high, A low.
  const BitVec& v = in.ts().valuation(in.ts().initial());
  EXPECT_TRUE(v.test(in.ts().signal_index("V")));
  EXPECT_FALSE(v.test(in.ts().signal_index("A")));
}

}  // namespace
}  // namespace rtv
