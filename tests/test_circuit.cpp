#include "rtv/circuit/elaborate.hpp"
#include "rtv/circuit/invariants.hpp"
#include "rtv/circuit/netlist.hpp"

#include <gtest/gtest.h>

namespace rtv {
namespace {

/// A CMOS inverter with an environment-driven input.
Netlist inverter() {
  Netlist nl("inverter");
  const NodeId in = nl.add_node("in", false, /*input=*/true);
  const NodeId out = nl.add_node("out", true, false, /*boundary=*/true);
  nl.pull_up(out, nl.exprs().lit(in, false), DelayInterval::units(1, 2), 1);
  nl.pull_down(out, nl.exprs().lit(in, true), DelayInterval::units(1, 2), 1);
  return nl;
}

TEST(Circuit, InverterElaboration) {
  const Module m = elaborate(inverter());
  const TransitionSystem& ts = m.ts();
  // States: (in, out) reachable = 00 is transient... initial (0,1) stable;
  // in+ -> (1,1) -> out- -> (1,0) -> in- -> (0,0) -> out+ -> (0,1).
  EXPECT_EQ(ts.num_states(), 4u);
  EXPECT_EQ(ts.event(ts.event_by_label("in+")).kind, EventKind::kInput);
  EXPECT_EQ(ts.event(ts.event_by_label("out-")).kind, EventKind::kOutput);
  EXPECT_EQ(ts.delay(ts.event_by_label("out-")), DelayInterval::units(1, 2));
  // Initial state is stable: only the input can move.
  EXPECT_EQ(ts.enabled_events(ts.initial()).size(), 1u);
}

TEST(Circuit, InverterNeverShortCircuits) {
  const Netlist nl = inverter();
  // Guards are complementary: no short-circuit candidates... the node has
  // both stacks, so it IS a candidate, but the SC flag never raises.
  ASSERT_EQ(nl.short_circuit_candidates().size(), 1u);
  const Module m = elaborate(nl);
  const std::size_t sc = m.ts().signal_index("SC_out");
  ASSERT_NE(sc, static_cast<std::size_t>(-1));
  for (StateId s : m.ts().reachable_states()) {
    EXPECT_FALSE(m.ts().valuation(s).test(sc));
  }
}

TEST(Circuit, ShortCircuitFlagRaises) {
  // Both stacks gated by the same polarity: in high -> contest.
  Netlist nl("contest");
  const NodeId in = nl.add_node("in", false, true);
  const NodeId out = nl.add_node("out", false);
  nl.pull_up(out, nl.exprs().lit(in, true), DelayInterval::units(1, 2), 1);
  nl.pull_down(out, nl.exprs().lit(in, true), DelayInterval::units(1, 2), 1);
  const Module m = elaborate(nl);
  const std::size_t sc = m.ts().signal_index("SC_out");
  const StateId bad =
      *m.ts().successor(m.ts().initial(), m.ts().event_by_label("in+"));
  EXPECT_TRUE(m.ts().valuation(bad).test(sc));
  // Contested node does not transition.
  EXPECT_FALSE(m.ts().is_enabled(bad, m.ts().event_by_label("out+")));
  EXPECT_FALSE(m.ts().is_enabled(bad, m.ts().event_by_label("out-")));
}

TEST(Circuit, ShortCircuitPropertiesDetect) {
  Netlist nl("contest");
  const NodeId in = nl.add_node("in", false, true);
  const NodeId out = nl.add_node("out", false);
  nl.pull_up(out, nl.exprs().lit(in, true), DelayInterval::units(1, 2), 1);
  nl.pull_down(out, nl.exprs().lit(in, true), DelayInterval::units(1, 2), 1);
  const Module m = elaborate(nl);
  const auto props = short_circuit_properties(nl);
  ASSERT_EQ(props.size(), 1u);
  const StateId bad =
      *m.ts().successor(m.ts().initial(), m.ts().event_by_label("in+"));
  const auto enabled = m.ts().enabled_events(bad);
  const PropertyContext ctx{m.ts(), bad, enabled};
  EXPECT_TRUE(props[0]->check_state(ctx).has_value());
  const PropertyContext ok{m.ts(), m.ts().initial(),
                           m.ts().enabled_events(m.ts().initial())};
  EXPECT_FALSE(props[0]->check_state(ok).has_value());
}

TEST(Circuit, WeakKeeperYieldsToStrongDriver) {
  // Node held high by an always-on weak keeper, pulled down strongly when
  // in is high: the strong stack wins, no contest event-wise.
  Netlist nl("keeper");
  const NodeId in = nl.add_node("in", false, true);
  const NodeId out = nl.add_node("out", true);
  nl.pull_up(out, nl.exprs().true_expr(), DelayInterval::units(1, 2), 1,
             /*weak=*/true);
  nl.pull_down(out, nl.exprs().lit(in, true), DelayInterval::units(1, 2), 1);
  const Module m = elaborate(nl);
  const TransitionSystem& ts = m.ts();
  StateId s = *ts.successor(ts.initial(), ts.event_by_label("in+"));
  ASSERT_TRUE(ts.is_enabled(s, ts.event_by_label("out-")));
  s = *ts.successor(s, ts.event_by_label("out-"));
  // Releasing the strong pull-down lets the keeper restore the node.
  s = *ts.successor(s, ts.event_by_label("in-"));
  EXPECT_TRUE(ts.is_enabled(s, ts.event_by_label("out+")));
}

TEST(Circuit, PassTransistorCopiesSource) {
  Netlist nl("pass");
  const NodeId gate = nl.add_node("gate", false, true);
  const NodeId src = nl.add_node("src", false, true);
  const NodeId dst = nl.add_node("dst", true);
  nl.pass(dst, src, nl.exprs().lit(gate, true), DelayInterval::units(1, 2), 1);
  const Module m = elaborate(nl);
  const TransitionSystem& ts = m.ts();
  // With gate on and src low, dst discharges.
  StateId s = *ts.successor(ts.initial(), ts.event_by_label("gate+"));
  EXPECT_TRUE(ts.is_enabled(s, ts.event_by_label("dst-")));
  // With gate off, dst holds (charge storage).
  const StateId hold = *ts.successor(ts.initial(), ts.event_by_label("src+"));
  EXPECT_FALSE(ts.is_enabled(hold, ts.event_by_label("dst-")));
  EXPECT_FALSE(ts.is_enabled(hold, ts.event_by_label("dst+")));
}

TEST(Circuit, TransistorCounting) {
  Netlist nl("count");
  const NodeId a = nl.add_node("a", false, true);
  const NodeId o = nl.add_node("o", true);
  nl.pull_up(o, nl.exprs().lit(a, false), DelayInterval::units(1, 2), 3);
  nl.pull_down(o, nl.exprs().lit(a, true), DelayInterval::units(1, 2), 4);
  EXPECT_EQ(nl.transistor_count(), 7);
}

TEST(Circuit, NodeLookup) {
  const Netlist nl = inverter();
  EXPECT_TRUE(nl.node_by_name("out").valid());
  EXPECT_FALSE(nl.node_by_name("nope").valid());
  EXPECT_TRUE(nl.is_input(nl.node_by_name("in")));
  EXPECT_TRUE(nl.is_boundary(nl.node_by_name("out")));
}

TEST(Circuit, InputNodesAlwaysReceptive) {
  const Module m = elaborate(inverter());
  const TransitionSystem& ts = m.ts();
  // From every reachable state, the input can toggle.
  for (StateId s : ts.reachable_states()) {
    const std::size_t in_idx = ts.signal_index("in");
    const bool value = ts.valuation(s).test(in_idx);
    const EventId e = ts.event_by_label(value ? "in-" : "in+");
    EXPECT_TRUE(ts.is_enabled(s, e));
  }
}

TEST(Circuit, SeriesStackGuard) {
  // Two-transistor series pull-down (NAND-style).
  Netlist nl("nand");
  const NodeId a = nl.add_node("a", false, true);
  const NodeId b = nl.add_node("b", false, true);
  const NodeId o = nl.add_node("o", true);
  ExprPool& xp = nl.exprs();
  nl.pull_down(o, xp.conj2(xp.lit(a, true), xp.lit(b, true)),
               DelayInterval::units(1, 2), 2);
  nl.pull_up(o, xp.disj2(xp.lit(a, false), xp.lit(b, false)),
             DelayInterval::units(1, 2), 2);
  const Module m = elaborate(nl);
  const TransitionSystem& ts = m.ts();
  StateId s = *ts.successor(ts.initial(), ts.event_by_label("a+"));
  EXPECT_FALSE(ts.is_enabled(s, ts.event_by_label("o-")));
  s = *ts.successor(s, ts.event_by_label("b+"));
  EXPECT_TRUE(ts.is_enabled(s, ts.event_by_label("o-")));
}

}  // namespace
}  // namespace rtv
