// Parallel-exploration parity (rtv/base/parallel.hpp + the sharded BFS in
// compose() and discrete_explore()):
//
//   * compose() is bit-identical across job counts — state numbering,
//     transitions, valuations, chokes;
//   * discrete_verify() produces identical verdicts, state counts and
//     counterexample traces at jobs=1 and jobs=4 on randomized gallery
//     systems, and every parallel counterexample replays through the
//     sequential composition;
//   * the state budget is a hard insertion-time ceiling even when N
//     workers insert concurrently;
//   * the substrate primitives (WorkStealingRanges, ShardedInterner)
//     hand out every item exactly once / retain every key exactly once.
#include "rtv/base/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "rtv/base/rng.hpp"
#include "rtv/ts/compose.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/engine.hpp"
#include "rtv/verify/property.hpp"
#include "rtv/verify/suite.hpp"
#include "rtv/zone/discrete.hpp"

namespace rtv {
namespace {

// ---------------------------------------------------------------------------
// Substrate primitives
// ---------------------------------------------------------------------------

TEST(WorkStealingRanges, EveryChunkHandedOutExactlyOnce) {
  constexpr std::size_t kItems = 10'000, kChunk = 7, kWorkers = 4;
  WorkStealingRanges ranges;
  ranges.reset(kItems, kChunk, kWorkers);

  std::vector<std::atomic<int>> claimed(kItems);
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    pool.emplace_back([&, w] {
      while (const auto chunk = ranges.next(w)) {
        for (std::size_t i = chunk->begin; i != chunk->end; ++i)
          claimed[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : pool) t.join();
  for (std::size_t i = 0; i < kItems; ++i)
    ASSERT_EQ(claimed[i].load(), 1) << "item " << i;
}

TEST(ShardedInterner, ConcurrentInsertsRetainEveryKeyOnceWithinBudget) {
  constexpr std::size_t kKeys = 5'000, kWorkers = 4;
  ShardedInterner<int, int> interner(/*max_size=*/kKeys, /*shards=*/64);
  std::vector<std::thread> pool;
  std::atomic<std::size_t> inserted{0};
  for (std::size_t w = 0; w < kWorkers; ++w) {
    pool.emplace_back([&] {
      for (int k = 0; k < static_cast<int>(kKeys); ++k) {
        const auto r = interner.insert(
            k, [&] { return k * 2; }, [](int&) {});
        if (r.inserted) inserted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(inserted.load(), kKeys);  // each key won by exactly one thread
  EXPECT_EQ(interner.size(), kKeys);
  EXPECT_FALSE(interner.budget_hit());
}

TEST(ShardedInterner, BudgetIsAHardCeiling) {
  ShardedInterner<int, int> interner(/*max_size=*/10, /*shards=*/8);
  for (int k = 0; k < 100; ++k)
    interner.insert(k, [] { return 0; }, [](int&) {});
  EXPECT_EQ(interner.size(), 10u);
  EXPECT_TRUE(interner.budget_hit());
}

TEST(LayeredRunner, MergeExceptionReleasesWorkersAndRethrows) {
  // A merge()-phase throw must wind the pool down through the shutdown
  // handshake (not std::terminate on joinable workers) and resurface on
  // the calling thread.
  LayeredRunner runner(4);
  std::atomic<int> layers{0};
  EXPECT_THROW(runner.run([](std::size_t) {},
                          [&]() -> bool {
                            if (layers.fetch_add(1) == 2)
                              throw std::runtime_error("merge failed");
                            return true;
                          }),
               std::runtime_error);
  EXPECT_EQ(layers.load(), 3);
}

// ---------------------------------------------------------------------------
// Gallery systems for the randomized parity sweep
// ---------------------------------------------------------------------------

DelayInterval random_delay(Rng& rng) {
  const Time lo = static_cast<Time>(rng.below(4)) * kTicksPerUnit;
  const Time hi = lo + static_cast<Time>(1 + rng.below(3)) * kTicksPerUnit;
  return DelayInterval(lo, hi);
}

/// Walk `labels` through the composed system.  All labels must be real
/// transitions, except that the final one may be a refusal (a choke has no
/// composed transition) — `refusal` says whether the violation was one.
void expect_replayable(const Composition& comp,
                       const std::vector<std::string>& labels, bool refusal) {
  StateId cur = comp.ts.initial();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const EventId e = comp.ts.event_by_label(labels[i]);
    ASSERT_TRUE(e.valid()) << "unknown label " << labels[i];
    const auto succ = comp.ts.successor(cur, e);
    if (!succ) {
      EXPECT_TRUE(refusal && i + 1 == labels.size())
          << "trace breaks at step " << i << " (" << labels[i] << ")";
      return;
    }
    cur = *succ;
  }
}

// ---------------------------------------------------------------------------
// compose() parity: bit-identical output for every job count
// ---------------------------------------------------------------------------

TEST(ParallelCompose, OutputIsIdenticalAcrossJobCounts) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 6364136223846793005ull + 7);
    const Module race = gallery::scaled_race(2 + static_cast<int>(rng.below(6)));
    const Module diamond =
        gallery::diamond("x", random_delay(rng), "y", random_delay(rng));
    const Module mon = gallery::order_monitor("a", "c");

    ComposeOptions seq, par;
    seq.track_chokes = par.track_chokes = true;
    seq.jobs = 1;
    par.jobs = 4;
    const Composition a = compose({&race, &diamond, &mon}, seq);
    const Composition b = compose({&race, &diamond, &mon}, par);

    ASSERT_EQ(a.ts.num_states(), b.ts.num_states()) << "seed " << seed;
    ASSERT_EQ(a.ts.num_transitions(), b.ts.num_transitions()) << "seed " << seed;
    ASSERT_EQ(a.component_states, b.component_states) << "seed " << seed;
    ASSERT_EQ(a.chokes.size(), b.chokes.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.chokes.size(); ++i) {
      EXPECT_EQ(a.chokes[i].state, b.chokes[i].state);
      EXPECT_EQ(a.chokes[i].event, b.chokes[i].event);
    }
    for (std::size_t s = 0; s < a.ts.num_states(); ++s) {
      const StateId id(static_cast<std::uint32_t>(s));
      const auto ta = a.ts.transitions_from(id);
      const auto tb = b.ts.transitions_from(id);
      ASSERT_EQ(ta.size(), tb.size()) << "state " << s;
      for (std::size_t k = 0; k < ta.size(); ++k) {
        EXPECT_EQ(ta[k].event, tb[k].event);
        EXPECT_EQ(ta[k].target, tb[k].target);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// discrete_verify() parity: verdicts, counts and traces
// ---------------------------------------------------------------------------

TEST(ParallelDiscrete, RandomizedGallerySystemsAgreeAcrossJobCounts) {
  constexpr std::size_t kBudget = 500'000;
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 12345);
    const Module m =
        gallery::diamond("x", random_delay(rng), "y", random_delay(rng));
    const Module mon = gallery::order_monitor("x", "y");
    const InvariantProperty bad("x first", {{"fail", true}});

    DiscreteVerifyOptions one, four;
    one.jobs = 1;
    four.jobs = 4;
    one.max_states = four.max_states = kBudget;
    const DiscreteVerifyResult a = discrete_verify({&m, &mon}, {&bad}, one);
    const DiscreteVerifyResult b = discrete_verify({&m, &mon}, {&bad}, four);

    EXPECT_EQ(a.violated, b.violated) << "seed " << seed;
    EXPECT_EQ(a.truncated, b.truncated) << "seed " << seed;
    EXPECT_EQ(a.states_explored, b.states_explored) << "seed " << seed;
    EXPECT_LE(a.states_explored, kBudget);
    EXPECT_EQ(a.trace_labels, b.trace_labels) << "seed " << seed;
    if (a.violated) {
      EXPECT_FALSE(b.trace_labels.empty()) << "seed " << seed;
      const bool refusal =
          a.description.find("refusal") != std::string::npos;
      ComposeOptions copts;
      copts.track_chokes = true;
      const Composition comp = compose({&m, &mon}, copts);
      expect_replayable(comp, b.trace_labels, refusal);
    }
  }
}

TEST(ParallelDiscrete, ChokeCounterexampleReplaysUpToTheRefusal) {
  // Producer pulses x; a one-shot listener refuses the second pulse.  The
  // refused label ends the trace and has no composed transition.
  TransitionSystem pts;
  const StateId p0 = pts.add_state();
  const StateId p1 = pts.add_state();
  pts.add_transition(
      p0, pts.add_event("x+", DelayInterval::units(1, 2), EventKind::kOutput),
      p1);
  pts.add_transition(
      p1, pts.add_event("x-", DelayInterval::units(1, 2), EventKind::kOutput),
      p0);
  pts.set_initial(p0);
  const Module producer("p", std::move(pts));

  TransitionSystem lts;
  const StateId l0 = lts.add_state();
  const StateId l1 = lts.add_state();
  const StateId l2 = lts.add_state();
  lts.add_transition(
      l0, lts.add_event("x+", DelayInterval::unbounded(), EventKind::kInput),
      l1);
  lts.add_transition(
      l1, lts.add_event("x-", DelayInterval::unbounded(), EventKind::kInput),
      l2);
  lts.set_initial(l0);
  const Module once("once", std::move(lts));

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    DiscreteVerifyOptions opts;
    opts.jobs = jobs;
    const DiscreteVerifyResult r = discrete_verify({&producer, &once}, {}, opts);
    ASSERT_TRUE(r.violated) << jobs << " jobs";
    ASSERT_FALSE(r.trace_labels.empty()) << jobs << " jobs";
    EXPECT_EQ(r.trace_labels.back(), "x+");
    ComposeOptions copts;
    copts.track_chokes = true;
    expect_replayable(compose({&producer, &once}, copts), r.trace_labels,
                      /*refusal=*/true);
  }
}

TEST(ParallelDiscrete, StateBudgetIsAHardCeilingUnderConcurrency) {
  // scaled_race(64) has tens of thousands of digitized configs; a 1000
  // config budget must truncate without a single config of overshoot even
  // with four workers inserting concurrently.
  const Module sys = gallery::scaled_race(64);
  DiscreteVerifyOptions opts;
  opts.jobs = 4;
  opts.max_states = 1000;
  // Explore the pre-built composition so the compose budget (tested
  // elsewhere) does not trip first.
  ComposeOptions copts;
  copts.track_chokes = true;
  const Composition comp = compose({&sys}, copts);
  const DiscreteVerifyResult r =
      discrete_explore(comp.ts, {}, comp.chokes, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.truncated_reason, stop_reason::kStateBudget);
  EXPECT_LE(r.states_explored, 1000u);
  EXPECT_EQ(r.verdict(), Verdict::kInconclusive);
}

// ---------------------------------------------------------------------------
// End-to-end: EngineRequest::jobs and the suite's global worker budget
// ---------------------------------------------------------------------------

TEST(ParallelEngine, DiscreteEngineHonoursJobsAndAgrees) {
  const Module sys = gallery::scaled_race(16);
  const Module mon = gallery::order_monitor("a", "c");
  const InvariantProperty bad("a before c", {{"fail", true}});
  const Engine* discrete = engine_registry().find("discrete");
  ASSERT_NE(discrete, nullptr);

  EngineRequest req;
  req.modules = {&sys, &mon};
  req.properties = {&bad};
  req.jobs = 1;
  const EngineResult a = discrete->run(req);
  req.jobs = 4;
  const EngineResult b = discrete->run(req);

  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.verdict, Verdict::kViolated);  // c can fire with a at 2k
  EXPECT_EQ(a.states_explored, b.states_explored);
  EXPECT_EQ(a.trace_labels, b.trace_labels);
  EXPECT_FALSE(b.trace_labels.empty());
}

TEST(ParallelSuite, GlobalJobsBudgetCoversIntraObligationWorkers) {
  // One obligation, four workers: the scheduler runs one obligation-level
  // worker and hands the surplus to the engine as intra-obligation jobs.
  Suite suite;
  const Module* sys = suite.own(gallery::scaled_race(8));
  const Module* mon = suite.own(gallery::order_monitor("a", "c"));
  const SafetyProperty* bad = suite.own(std::make_unique<InvariantProperty>(
      "a before c", std::vector<InvariantProperty::Literal>{{"fail", true}}));
  suite.add("race", {sys, mon}, {bad});

  SuiteOptions opts;
  opts.jobs = 4;
  opts.engines = {"discrete"};
  const SuiteReport report = run_suite(suite, opts);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.jobs, 1u);  // one task -> one obligation-level worker
  EXPECT_EQ(report.records[0].result.verdict, Verdict::kViolated);
  EXPECT_FALSE(report.records[0].result.trace_labels.empty());
}

}  // namespace
}  // namespace rtv
