#include "rtv/timing/trace_timing.hpp"

#include <gtest/gtest.h>

#include "rtv/ts/gallery.hpp"

namespace rtv {
namespace {

Trace replay(const TransitionSystem& ts, const std::vector<std::string>& labels) {
  Trace trace;
  StateId s = ts.initial();
  for (const std::string& l : labels) {
    const EventId e = ts.event_by_label(l);
    EXPECT_TRUE(e.valid()) << l;
    EXPECT_TRUE(ts.is_enabled(s, e)) << l;
    TraceStep step;
    step.state = s;
    step.event = e;
    step.enabled = ts.enabled_events(s);
    trace.steps.push_back(step);
    s = *ts.successor(s, e);
  }
  trace.final_state = s;
  trace.final_enabled = ts.enabled_events(s);
  return trace;
}

TEST(TraceTiming, ConsistentTraceAccepted) {
  const Module m = gallery::intro_example();
  // b, g, a, c, d is the "natural" timed order.
  const Trace t = replay(m.ts(), {"b", "g", "a", "c", "d"});
  EXPECT_TRUE(TraceTimingModel(m.ts(), t).consistent());
}

TEST(TraceTiming, InconsistentByPendingDeadline) {
  const Module m = gallery::intro_example();
  // a, c, d with b pending: d fires at >= 3.5 while b's deadline is 2.
  const Trace t = replay(m.ts(), {"a", "c", "d"});
  TraceTimingModel model(m.ts(), t);
  EXPECT_FALSE(model.consistent());
  const auto win = model.find_ban_window();
  ASSERT_TRUE(win.has_value());
  // Already the firing of a (>= 2.5) violates pending b's deadline (2);
  // any window ending at or before d is a valid ban.
  EXPECT_LE(win->last_point, 2);
  const BuiltTraceSystem sys =
      model.build_system(win->anchor_point, win->last_point, !win->from_start);
  EXPECT_FALSE(sys.system.solve().feasible);
}

TEST(TraceTiming, InconsistentByFiringOrder) {
  const Module m = gallery::intro_example();
  // a before b: a's earliest (2.5) exceeds b's deadline (2).
  const Trace t = replay(m.ts(), {"a", "b"});
  TraceTimingModel model(m.ts(), t);
  EXPECT_FALSE(model.consistent());
}

TEST(TraceTiming, ExplainNamesThePendingBlocker) {
  const Module m = gallery::intro_example();
  const Trace t = replay(m.ts(), {"a", "c", "d"});
  TraceTimingModel model(m.ts(), t);
  const auto win = model.find_ban_window();
  ASSERT_TRUE(win.has_value());
  const auto orderings = model.explain(*win);
  ASSERT_FALSE(orderings.empty());
  // The pending blocker is b, whichever firing the window ends at.
  for (const DerivedOrdering& o : orderings) EXPECT_EQ(o.before, "b");
}

TEST(TraceTiming, EnablingPointsRespectDisabling) {
  const Module m = gallery::intro_example();
  const Trace t = replay(m.ts(), {"b", "a", "c"});
  TraceTimingModel model(m.ts(), t);
  // c (fired at point 2) became enabled when a fired (point 1 -> enabling
  // point 2); a and b were enabled from the start.
  const TransitionSystem& ts = m.ts();
  EXPECT_EQ(model.enabling_point(ts.event_by_label("c"), 2), 2);
  EXPECT_EQ(model.enabling_point(ts.event_by_label("a"), 1), 0);
  EXPECT_EQ(model.enabling_point(ts.event_by_label("b"), 0), 0);
}

TEST(TraceTiming, VirtualFinalEventIsTimed) {
  const Module m = gallery::intro_example();
  // After a, c the event d is enabled; treat it as a refused virtual
  // firing: same inconsistency as firing it for real (b's deadline).
  const Trace t = replay(m.ts(), {"a", "c"});
  const EventId d = m.ts().event_by_label("d");
  TraceTimingModel model(m.ts(), t, d);
  EXPECT_EQ(model.num_points(), 3);
  EXPECT_FALSE(model.consistent());
  const auto win = model.find_ban_window();
  ASSERT_TRUE(win.has_value());
  EXPECT_LE(win->last_point, 2);
}

TEST(TraceTiming, EmptyTraceIsConsistent) {
  const Module m = gallery::intro_example();
  Trace t;
  t.final_state = m.ts().initial();
  t.final_enabled = m.ts().enabled_events(t.final_state);
  EXPECT_TRUE(TraceTimingModel(m.ts(), t).consistent());
}

TEST(TraceTiming, AnchoredWindowPrefersLatestAnchor) {
  // Chain u [10, 20] then the diamond race x [1,2] vs y [5,6]: firing y
  // before x is inconsistent *regardless of history*, so the ban window
  // should be anchored (not from-start) and cover only the race.
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const StateId s2 = ts.add_state();
  const StateId s3 = ts.add_state();
  const EventId u = ts.add_event("u", DelayInterval::units(10, 20));
  const EventId x = ts.add_event("x", DelayInterval::units(1, 2));
  const EventId y = ts.add_event("y", DelayInterval::units(5, 6));
  ts.add_transition(s0, u, s1);
  ts.add_transition(s1, x, s2);
  ts.add_transition(s1, y, s3);
  ts.add_transition(s3, x, s2);
  ts.set_initial(s0);

  const Trace t = replay(ts, {"u", "y"});
  TraceTimingModel model(ts, t);
  EXPECT_FALSE(model.consistent());
  const auto win = model.find_ban_window();
  ASSERT_TRUE(win.has_value());
  EXPECT_FALSE(win->from_start);
  EXPECT_EQ(win->anchor_point, 1);
  EXPECT_EQ(win->last_point, 1);
  const auto orderings = model.explain(*win);
  ASSERT_EQ(orderings.size(), 1u);
  EXPECT_EQ(orderings[0].before, "x");
  EXPECT_EQ(orderings[0].after, "y");
}

TEST(TraceTiming, ClampedWindowDropsStaleLowerBounds) {
  // x [5,6] is already enabled before the window anchor, so a window
  // anchored at point 1 may not use x's lower bound: even though firing x
  // past pending z's deadline (2) *looks* contradictory with x >= 5, the
  // enabling of x predates the anchor and the clamped system must stay
  // feasible (the ban falls back to a from-start window instead).
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const StateId s2 = ts.add_state();
  const StateId s3 = ts.add_state();
  const StateId s4 = ts.add_state();
  const EventId u = ts.add_event("u", DelayInterval::units(1, 2));
  const EventId x = ts.add_event("x", DelayInterval::units(5, 6));
  const EventId z = ts.add_event("z", DelayInterval::units(1, 2));
  ts.add_transition(s0, u, s1);
  ts.add_transition(s0, x, s4);  // x pre-enabled before the anchor
  ts.add_transition(s1, x, s2);
  ts.add_transition(s1, z, s3);
  ts.set_initial(s0);
  const Trace t = replay(ts, {"u", "x"});
  TraceTimingModel model(ts, t);
  // The full trace is genuinely inconsistent (x's enabling at time 0 and
  // z's deadline after u), so a ban window exists...
  EXPECT_FALSE(model.consistent());
  // ...but the anchored (history-independent) window [1..1] must be
  // feasible: x's lower bound is dropped at the window boundary.
  const BuiltTraceSystem clamped = model.build_system(1, 1, /*clamped=*/true);
  EXPECT_TRUE(clamped.system.solve().feasible);
  const auto win = model.find_ban_window();
  ASSERT_TRUE(win.has_value());
  EXPECT_TRUE(win->from_start);
}

}  // namespace
}  // namespace rtv
