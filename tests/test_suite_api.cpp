// The batch-verification subsystem (rtv/verify/suite.hpp):
//
//   * Suite storage and obligation construction,
//   * batch runs produce verdicts identical to sequential single-engine
//     runs on the Fig. 1 gallery and an IPCMOS Table 1 obligation, at any
//     job count,
//   * portfolio runs: the first definitive engine wins and the losers are
//     observably cancelled (stop reason = "cancelled by caller"), both via
//     the pre-run skip (1 worker) and mid-run (racing workers); an
//     inconclusive engine never masks a definitive peer,
//   * the JSON suite report round-trips through parse_suite_report and
//     rejects corrupted documents,
//   * exit-code mapping for scripted callers.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "rtv/ipcmos/experiments.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/report.hpp"
#include "rtv/verify/suite.hpp"

namespace rtv {
namespace {

const Engine* engine(const char* name) {
  const Engine* e = engine_registry().find(name);
  EXPECT_NE(e, nullptr) << name;
  return e;
}

/// The Fig. 1 gallery obligation ("g before d" holds in every timed run).
void add_intro_obligation(Suite& suite, const std::string& name) {
  const Module* sys = suite.own(gallery::intro_example());
  const Module* mon = suite.own(gallery::order_monitor("g", "d"));
  const SafetyProperty* bad = suite.own(std::make_unique<InvariantProperty>(
      "g before d", std::vector<InvariantProperty::Literal>{{"fail", true}}));
  suite.add(name, {sys, mon}, {bad});
}

/// The boundary-2 obligation of the 2-stage IPCMOS pipeline (experiment
/// 3's shape): IN || I1 || A_out(2) must stay within A_in(2).
void add_ipcmos_obligation(Suite& suite, const std::string& name) {
  const ipcmos::PipelineTiming t;
  const Module* in = suite.own(ipcmos::make_in_env(t));
  const Module* stage = suite.own(ipcmos::make_stage(1, t));
  const Module* aout = suite.own(ipcmos::make_aout(2));
  const Module ain = ipcmos::make_ain(2);
  const Module* mon = suite.own(ain.as_monitor("Ain2'"));
  const SafetyProperty* dead = suite.own(std::make_unique<DeadlockFreedom>());
  const SafetyProperty* pers =
      suite.own(std::make_unique<PersistencyProperty>());
  suite.add(name, {in, stage, aout, mon}, {dead, pers});
}

/// Sequential ground truth for one obligation on one engine.
EngineResult run_sequential(const Obligation& ob, const char* engine_name) {
  EngineRequest req;
  req.modules = ob.modules;
  req.properties = ob.properties;
  req.budget = ob.budget;
  req.max_refinements = ob.max_refinements;
  req.track_chokes = ob.track_chokes;
  return engine(engine_name)->run(req);
}

TEST(SuiteApi, StorageAndObligationConstruction) {
  Suite suite;
  EXPECT_TRUE(suite.empty());
  add_intro_obligation(suite, "intro");
  Obligation& ob = suite.add("second");
  ob.modules = suite.obligations().front().modules;
  ob.properties = suite.obligations().front().properties;
  EXPECT_EQ(suite.size(), 2u);
  EXPECT_EQ(suite.obligations().front().name, "intro");
  EXPECT_EQ(suite.obligations().back().name, "second");
  EXPECT_EQ(suite.obligations().front().modules.size(), 2u);
}

TEST(SuiteApi, UnknownEngineThrows) {
  Suite suite;
  add_intro_obligation(suite, "intro");
  SuiteOptions opts;
  opts.engines = {"no-such-engine"};
  EXPECT_THROW(run_suite(suite, opts), std::invalid_argument);
  Suite per_ob;
  add_intro_obligation(per_ob, "intro");
  per_ob.obligations().front().engine = "bogus";
  EXPECT_THROW(run_suite(per_ob), std::invalid_argument);
}

TEST(SuiteBatch, ContradictoryDelaysShortCircuitOrThrow) {
  // Contradictory delay bounds on a shared label take one of two paths:
  // the default lint pre-flight rejects the obligation before any engine
  // runs (kLintError), and with the pre-flight disabled the engine's
  // compose() call throws std::invalid_argument on a pool thread, which
  // the suite must record against the one bad obligation (kEngineError)
  // without terminating the batch.  Either way the other obligation
  // finishes.
  auto pulse = [](const std::string& name, Time lo, Time hi, EventKind kind) {
    TransitionSystem ts;
    const StateId s0 = ts.add_state();
    const StateId s1 = ts.add_state();
    ts.add_transition(s0, ts.add_event("x+", DelayInterval::units(lo, hi), kind),
                      s1);
    ts.set_initial(s0);
    return Module(name, std::move(ts));
  };

  Suite suite;
  add_intro_obligation(suite, "good");
  const Module* early = suite.own(pulse("early", 1, 2, EventKind::kOutput));
  const Module* late = suite.own(pulse("late", 5, 9, EventKind::kInput));
  const SafetyProperty* dead = suite.own(std::make_unique<DeadlockFreedom>());
  suite.add("contradictory", {early, late}, {dead});

  const auto bad_record = [](const SuiteReport& report) -> const SuiteRecord* {
    for (const SuiteRecord& rec : report.records)
      if (rec.obligation == "contradictory") return &rec;
    return nullptr;
  };

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    SuiteOptions opts;
    opts.jobs = jobs;
    const SuiteReport report = run_suite(suite, opts);
    ASSERT_EQ(report.records.size(), 2u) << "jobs=" << jobs;
    EXPECT_EQ(report.verdict_of("good"), Verdict::kVerified);
    const SuiteRecord* bad = bad_record(report);
    ASSERT_NE(bad, nullptr);
    EXPECT_EQ(bad->result.verdict, Verdict::kInconclusive);
    EXPECT_EQ(bad->result.truncated_reason, stop_reason::kLintError);
    EXPECT_NE(bad->result.message.find("x+"), std::string::npos)
        << bad->result.message;
    ASSERT_FALSE(bad->lint.empty());
    EXPECT_EQ(bad->lint.front().code, "RTV-L004");
    EXPECT_EQ(bad->result.states_explored, 0u) << "an engine ran anyway";
  }

  SuiteOptions raw;
  raw.preflight = false;
  const SuiteReport report = run_suite(suite, raw);
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.verdict_of("good"), Verdict::kVerified);
  const SuiteRecord* bad = bad_record(report);
  ASSERT_NE(bad, nullptr);
  EXPECT_TRUE(bad->lint.empty());
  EXPECT_EQ(bad->result.verdict, Verdict::kInconclusive);
  EXPECT_EQ(bad->result.truncated_reason, stop_reason::kEngineError);
  EXPECT_NE(bad->result.message.find("x+"), std::string::npos)
      << bad->result.message;
}

TEST(SuiteApi, EmptySuiteIsVacuouslyVerified) {
  const SuiteReport report = run_suite(Suite{});
  EXPECT_TRUE(report.records.empty());
  EXPECT_EQ(report.overall(), Verdict::kVerified);
  EXPECT_EQ(report.verdict_of("anything"), Verdict::kInconclusive);
}

TEST(SuiteBatch, MatchesSequentialSingleEngineRuns) {
  // Gallery + one IPCMOS Table 1 obligation, all three engines, in
  // parallel: every obligation×engine verdict must equal the sequential
  // single-engine run's.
  Suite suite;
  add_intro_obligation(suite, "fig1 gallery");
  add_ipcmos_obligation(suite, "ipcmos boundary 2");

  SuiteOptions opts;
  opts.engines = engine_registry().names();
  opts.jobs = 4;
  const SuiteReport report = run_suite(suite, opts);
  ASSERT_EQ(report.records.size(), suite.size() * opts.engines.size());

  std::size_t i = 0;
  for (const Obligation& ob : suite.obligations()) {
    for (const std::string& name : opts.engines) {
      const SuiteRecord& rec = report.records[i++];
      EXPECT_EQ(rec.obligation, ob.name);
      EXPECT_EQ(rec.engine, name);
      const EngineResult seq = run_sequential(ob, name.c_str());
      EXPECT_EQ(rec.result.verdict, seq.verdict)
          << ob.name << " on " << name;
      EXPECT_EQ(rec.result.states_explored, seq.states_explored)
          << ob.name << " on " << name;
      EXPECT_TRUE(rec.winner);  // batch: every definitive record decides
    }
  }
  EXPECT_EQ(report.overall(), Verdict::kVerified);
  EXPECT_EQ(report.verdict_of("fig1 gallery"), Verdict::kVerified);
}

TEST(SuiteBatch, JobCountsProduceIdenticalVerdicts) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    Suite suite;
    add_intro_obligation(suite, "intro");
    add_ipcmos_obligation(suite, "ipcmos");
    SuiteOptions opts;
    opts.jobs = jobs;
    const SuiteReport report = run_suite(suite, opts);
    EXPECT_EQ(report.jobs, std::min<std::size_t>(jobs, suite.size()));
    EXPECT_EQ(report.overall(), Verdict::kVerified) << jobs << " jobs";
  }
}

TEST(SuiteBatch, PerObligationEngineOverride) {
  Suite suite;
  add_intro_obligation(suite, "on zone");
  add_intro_obligation(suite, "on discrete");
  suite.obligations()[0].engine = "zone";
  suite.obligations()[1].engine = "discrete";
  const SuiteReport report = run_suite(suite);
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.records[0].engine, "zone");
  EXPECT_EQ(report.records[1].engine, "discrete");
  EXPECT_EQ(report.overall(), Verdict::kVerified);
}

TEST(SuitePortfolio, WinnerMatchesSequentialAndLoserIsCancelled) {
  // Zones decide race3 in a handful of zones no matter how large the
  // constants; the digitized engine needs tens of thousands of configs at
  // k = 5000.  Racing both, zone must win and discrete must be observably
  // cancelled — either before it starts (pre-run skip) or mid-run.
  Suite suite;
  const Module* sys = suite.own(gallery::scaled_race(5000));
  const Module* mon = suite.own(gallery::order_monitor("a", "c"));
  const SafetyProperty* bad = suite.own(std::make_unique<InvariantProperty>(
      "a before c", std::vector<InvariantProperty::Literal>{{"fail", true}}));
  suite.add("race3", {sys, mon}, {bad});

  const EngineResult seq = run_sequential(suite.obligations().front(), "zone");
  ASSERT_NE(seq.verdict, Verdict::kInconclusive);

  SuiteOptions opts;
  opts.mode = SuiteMode::kPortfolio;
  opts.engines = {"zone", "discrete"};
  opts.jobs = 2;
  const SuiteReport report = run_suite(suite, opts);
  ASSERT_EQ(report.records.size(), 2u);
  const SuiteRecord& zone_rec = report.records[0];
  const SuiteRecord& discrete_rec = report.records[1];

  EXPECT_TRUE(zone_rec.winner);
  EXPECT_EQ(zone_rec.result.verdict, seq.verdict);
  EXPECT_EQ(report.verdict_of("race3"), seq.verdict);

  EXPECT_FALSE(discrete_rec.winner);
  EXPECT_EQ(discrete_rec.result.verdict, Verdict::kInconclusive);
  EXPECT_EQ(discrete_rec.result.truncated_reason, stop_reason::kCancelled);

  const auto summaries = report.summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].winner, "zone");
  EXPECT_EQ(summaries[0].verdict, seq.verdict);
}

TEST(SuitePortfolio, SingleWorkerSkipsLosersAfterDecision) {
  // With one worker the engines run in selection order: the first
  // definitive finish cancels the obligation, and the remaining tasks are
  // recorded as cancelled without exploring a single state.
  Suite suite;
  add_intro_obligation(suite, "intro");
  SuiteOptions opts;
  opts.mode = SuiteMode::kPortfolio;
  opts.engines = {"refine", "zone", "discrete"};
  opts.jobs = 1;
  const SuiteReport report = run_suite(suite, opts);
  ASSERT_EQ(report.records.size(), 3u);
  EXPECT_TRUE(report.records[0].winner);
  EXPECT_EQ(report.records[0].result.verdict, Verdict::kVerified);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_FALSE(report.records[i].winner);
    EXPECT_EQ(report.records[i].result.truncated_reason,
              stop_reason::kCancelled);
    EXPECT_EQ(report.records[i].result.states_explored, 0u);
  }
  EXPECT_EQ(report.overall(), Verdict::kVerified);
}

TEST(SuitePortfolio, InconclusiveNeverMasksADefinitivePeer) {
  // A state budget that truncates the digitized engine (tens of thousands
  // of configs needed) but lets zones finish (seven zones): the
  // inconclusive finisher must not decide, cancel, or outrank the
  // definitive peer — even when it finishes first (jobs = 1, discrete
  // scheduled before zone).
  Suite suite;
  const Module* sys = suite.own(gallery::scaled_race(5000));
  const Module* mon = suite.own(gallery::order_monitor("a", "c"));
  const SafetyProperty* bad = suite.own(std::make_unique<InvariantProperty>(
      "a before c", std::vector<InvariantProperty::Literal>{{"fail", true}}));
  Obligation& ob = suite.add("race3", {sys, mon}, {bad});
  ob.budget.max_states = 500;

  const EngineResult seq = run_sequential(ob, "zone");
  ASSERT_NE(seq.verdict, Verdict::kInconclusive);

  SuiteOptions opts;
  opts.mode = SuiteMode::kPortfolio;
  opts.engines = {"discrete", "zone"};
  opts.jobs = 1;
  const SuiteReport report = run_suite(suite, opts);
  ASSERT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.records[0].engine, "discrete");
  EXPECT_EQ(report.records[0].result.verdict, Verdict::kInconclusive);
  EXPECT_EQ(report.records[0].result.truncated_reason,
            stop_reason::kStateBudget);
  EXPECT_FALSE(report.records[0].winner);
  EXPECT_TRUE(report.records[1].winner);
  EXPECT_EQ(report.records[1].result.verdict, seq.verdict);
  EXPECT_EQ(report.verdict_of("race3"), seq.verdict);
}

TEST(SuiteCancellation, SuiteWideTokenAbortsRemainingObligations) {
  CancelToken token;
  token.cancel();
  Suite suite;
  add_intro_obligation(suite, "a");
  add_intro_obligation(suite, "b");
  SuiteOptions opts;
  opts.budget.cancel = &token;
  const SuiteReport report = run_suite(suite, opts);
  for (const SuiteRecord& rec : report.records) {
    EXPECT_EQ(rec.result.verdict, Verdict::kInconclusive);
    EXPECT_EQ(rec.result.truncated_reason, stop_reason::kCancelled);
  }
  EXPECT_EQ(report.overall(), Verdict::kInconclusive);
}

TEST(SuiteReportJson, RoundTripsThroughParse) {
  Suite suite;
  add_intro_obligation(suite, "fig1 gallery");
  add_ipcmos_obligation(suite, "ipcmos boundary 2");
  SuiteOptions opts;
  opts.engines = {"refine", "zone"};
  opts.jobs = 2;
  const SuiteReport report = run_suite(suite, opts);

  const std::string json = report.to_json();
  const SuiteReport parsed = parse_suite_report(json);
  EXPECT_EQ(parsed.mode, report.mode);
  EXPECT_EQ(parsed.jobs, report.jobs);
  EXPECT_NEAR(parsed.wall_seconds, report.wall_seconds, 1e-9);
  ASSERT_EQ(parsed.records.size(), report.records.size());
  for (std::size_t i = 0; i < parsed.records.size(); ++i) {
    const SuiteRecord& a = parsed.records[i];
    const SuiteRecord& b = report.records[i];
    EXPECT_EQ(a.obligation, b.obligation);
    EXPECT_EQ(a.engine, b.engine);
    EXPECT_EQ(a.result.verdict, b.result.verdict);
    EXPECT_EQ(a.result.truncated_reason, b.result.truncated_reason);
    EXPECT_EQ(a.result.states_explored, b.result.states_explored);
    EXPECT_EQ(a.result.message, b.result.message);
    EXPECT_EQ(a.result.trace_labels, b.result.trace_labels);
    EXPECT_EQ(a.winner, b.winner);
    EXPECT_NEAR(a.result.seconds, b.result.seconds, 1e-9);
    EXPECT_NEAR(a.cpu_seconds, b.cpu_seconds, 1e-9);
  }
  // The parsed report aggregates identically.
  EXPECT_EQ(parsed.overall(), report.overall());
  EXPECT_EQ(parsed.verdict_of("fig1 gallery"),
            report.verdict_of("fig1 gallery"));
}

TEST(SuiteReportJson, EscapesAndRestoresSpecialCharacters) {
  SuiteReport report;
  report.mode = SuiteMode::kPortfolio;
  report.jobs = 7;
  report.wall_seconds = 1.25;
  SuiteRecord rec;
  rec.obligation = "quote \" backslash \\ newline \n tab \t done";
  rec.engine = "zone";
  rec.result.verdict = Verdict::kViolated;
  rec.result.message = "control \x01 char";
  rec.result.trace_labels = {"a+", "b-", "weird \"label\""};
  rec.result.states_explored = 42;
  rec.winner = true;
  report.records.push_back(rec);

  const SuiteReport parsed = parse_suite_report(report.to_json());
  ASSERT_EQ(parsed.records.size(), 1u);
  EXPECT_EQ(parsed.records[0].obligation, rec.obligation);
  EXPECT_EQ(parsed.records[0].result.message, rec.result.message);
  EXPECT_EQ(parsed.records[0].result.trace_labels, rec.result.trace_labels);
  EXPECT_EQ(parsed.mode, SuiteMode::kPortfolio);
}

TEST(SuiteReportJson, RejectsCorruptedDocuments) {
  Suite suite;
  add_intro_obligation(suite, "intro");
  const std::string json = run_suite(suite).to_json();

  EXPECT_THROW(parse_suite_report("not json"), std::runtime_error);
  EXPECT_THROW(parse_suite_report("{}"), std::runtime_error);
  EXPECT_THROW(parse_suite_report(json.substr(0, json.size() / 2)),
               std::runtime_error);
  // Wrong schema tag.
  std::string wrong = json;
  wrong.replace(wrong.find("rtv-suite-report"), 16, "something-else-x");
  EXPECT_THROW(parse_suite_report(wrong), std::runtime_error);
  // Future schema version.
  std::string future = json;
  future.replace(future.find("\"schema_version\": 1"), 19,
                 "\"schema_version\": 99");
  EXPECT_THROW(parse_suite_report(future), std::runtime_error);
}

TEST(SuiteReportJson, NewerSchemaVersionErrorNamesBothVersions) {
  Suite suite;
  add_intro_obligation(suite, "intro");
  std::string future = run_suite(suite).to_json();
  future.replace(future.find("\"schema_version\": 1"), 19,
                 "\"schema_version\": 99");
  try {
    parse_suite_report(future);
    FAIL() << "expected a schema-version rejection";
  } catch (const std::runtime_error& e) {
    // The wire/cache layer depends on skew being diagnosable from the
    // message alone: it must name the document's version AND the max
    // supported one.
    const std::string what = e.what();
    EXPECT_NE(what.find("99"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(SuiteReport::kSchemaVersion)),
              std::string::npos)
        << what;
  }
}

TEST(SuiteReportJson, CachedFlagRoundTripsAndDefaultsFalse) {
  SuiteReport report;
  SuiteRecord rec;
  rec.obligation = "ob";
  rec.engine = "refine";
  rec.result.verdict = Verdict::kVerified;
  rec.winner = true;
  rec.cached = true;
  report.records.push_back(rec);
  rec.cached = false;
  report.records.push_back(rec);

  const std::string json = report.to_json();
  const SuiteReport parsed = parse_suite_report(json);
  ASSERT_EQ(parsed.records.size(), 2u);
  EXPECT_TRUE(parsed.records[0].cached);
  EXPECT_FALSE(parsed.records[1].cached);

  // Reports written before the marker existed parse with cached == false.
  std::string old = json;
  std::size_t pos;
  while ((pos = old.find(",\n      \"cached\": true")) != std::string::npos)
    old.erase(pos, std::string(",\n      \"cached\": true").size());
  while ((pos = old.find(",\n      \"cached\": false")) != std::string::npos)
    old.erase(pos, std::string(",\n      \"cached\": false").size());
  ASSERT_EQ(old.find("cached"), std::string::npos) << old;
  const SuiteReport legacy = parse_suite_report(old);
  ASSERT_EQ(legacy.records.size(), 2u);
  EXPECT_FALSE(legacy.records[0].cached);
  EXPECT_FALSE(legacy.records[1].cached);
}

TEST(SuiteReportApi, ExitCodeMapping) {
  EXPECT_EQ(exit_code(Verdict::kVerified), 0);
  EXPECT_EQ(exit_code(Verdict::kViolated), 1);
  EXPECT_EQ(exit_code(Verdict::kInconclusive), 2);
}

TEST(SuiteReportApi, TableRendersRecordsAndRollup) {
  Suite suite;
  add_intro_obligation(suite, "fig1 gallery obligation");
  SuiteOptions opts;
  opts.engines = {"refine", "zone"};
  const SuiteReport report = run_suite(suite, opts);
  const std::string table = format_table(report);
  EXPECT_NE(table.find("fig1 gallery obligation"), std::string::npos);
  EXPECT_NE(table.find("refine"), std::string::npos);
  EXPECT_NE(table.find("zone"), std::string::npos);
  EXPECT_NE(table.find("VERIFIED"), std::string::npos);
  EXPECT_NE(table.find("overall: VERIFIED"), std::string::npos);
  // rows_from disambiguates multi-engine reports with the engine name.
  const auto rows = rows_from(report);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "fig1 gallery obligation [refine]");
}

TEST(SuiteIpcmos, Table1SuiteMatchesRunAllExperiments) {
  // The declarative Table 1 suite reproduces the classic sequential
  // driver's verdicts record for record (the full five run in
  // test_ipcmos/bench; one obligation keeps this suite fast).
  const Suite suite = ipcmos::table1_suite();
  ASSERT_EQ(suite.size(), 5u);
  const std::vector<ipcmos::NamedResult> classic = {
      {"1. Ain || Aout |= S", ipcmos::experiment1()}};
  SuiteOptions opts;
  opts.jobs = 1;
  // Run only the cheap first obligation here by building a 1-obligation
  // view: same modules/properties, same name.
  Suite one;
  Obligation& ob = one.add(suite.obligations().front().name);
  ob.modules = suite.obligations().front().modules;
  ob.properties = suite.obligations().front().properties;
  const SuiteReport report = run_suite(one, opts);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].obligation, classic[0].name);
  EXPECT_EQ(report.records[0].result.verdict, classic[0].result.verdict);
}

}  // namespace
}  // namespace rtv
