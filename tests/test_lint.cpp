// The static model analyzer (rtv/lint/lint.hpp): every check code has a
// positive and a negative case, the JSON report round-trips strictly, the
// exit-code convention holds, the compose()/lint RTV-L004 agreement is
// pinned on one model, the suite pre-flight and serve fast-reject paths
// are exercised end to end, and the shipped sample models plus the banked
// fuzz reproducers stay lint-error-free.
//
// RTV_EXAMPLE_DATA_DIR is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "rtv/fuzz/generator.hpp"
#include "rtv/lint/lint.hpp"
#include "rtv/serve/client.hpp"
#include "rtv/serve/server.hpp"
#include "rtv/stg/astg.hpp"
#include "rtv/stg/elaborate.hpp"
#include "rtv/ts/compose.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/property.hpp"
#include "rtv/verify/suite.hpp"

namespace rtv {
namespace {

using lint::Diagnostic;
using lint::LintOptions;
using lint::LintReport;
using lint::Severity;

/// A minimal clean module: two states, one fireable output, initial set.
Module simple_module(const std::string& name = "m",
                     const std::string& label = "a") {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  ts.add_transition(
      s0, ts.add_event(label, DelayInterval::units(1, 2), EventKind::kOutput),
      s1);
  ts.set_initial(s0);
  return Module(name, std::move(ts));
}

/// The PR-3 wrap-bug model class: one event whose constants digitize to
/// 40000..80000 ticks — past the historical 16-bit age range.
Module wrap_module() {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  ts.add_transition(s0,
                    ts.add_event("a", DelayInterval::units(10000, 20000),
                                 EventKind::kOutput),
                    s1);
  ts.set_initial(s0);
  return Module("wrap", std::move(ts));
}

LintReport lint_one(const Module& m,
                    const std::vector<const SafetyProperty*>& props = {},
                    const LintOptions& options = {}) {
  return lint::lint_modules({&m}, props, options);
}

const Diagnostic* find_code(const LintReport& r, const char* code) {
  for (const Diagnostic& d : r.diagnostics)
    if (d.code == code) return &d;
  return nullptr;
}

std::size_t count_code(const LintReport& r, const char* code) {
  std::size_t n = 0;
  for (const Diagnostic& d : r.diagnostics)
    if (d.code == code) ++n;
  return n;
}

TEST(LintWellFormed, CleanModelHasNoFindings) {
  const Module m = simple_module();
  const LintReport r = lint_one(m);
  EXPECT_TRUE(r.clean()) << r.format();
  EXPECT_EQ(r.exit_code(), 0);
}

TEST(LintWellFormed, MissingInitialStateIsL001) {
  TransitionSystem ts;
  ts.add_state();
  Module m("no-init", std::move(ts));
  const LintReport r = lint_one(m);
  const Diagnostic* d = find_code(r, lint::check::kNoInitialState);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->module, "no-init");
  EXPECT_EQ(r.exit_code(), 2);
}

TEST(LintWellFormed, EmptyObligationIsL001) {
  const LintReport r = lint::lint_modules({}, {}, {});
  ASSERT_NE(find_code(r, lint::check::kNoInitialState), nullptr);
  EXPECT_TRUE(r.has_errors());
}

TEST(LintWellFormed, InvalidDelayBoundsAreL002) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  // Raw-tick constructor: lo > hi violates the interval invariant.
  ts.add_transition(s0, ts.add_event("x", DelayInterval(8, 4)), s1);
  ts.set_initial(s0);
  Module m("bad-interval", std::move(ts));
  const LintReport r = lint_one(m);
  const Diagnostic* d = find_code(r, lint::check::kInvalidInterval);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->object, "x");
}

TEST(LintWellFormed, DuplicateLabelIsL003ReportedOnce) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const DelayInterval d12 = DelayInterval::units(1, 2);
  ts.add_transition(s0, ts.add_event("dup", d12), s1);
  ts.add_transition(s1, ts.add_event("dup", d12), s0);
  ts.set_initial(s0);
  Module m("twins", std::move(ts));
  const LintReport r = lint_one(m);
  EXPECT_EQ(count_code(r, lint::check::kDuplicateLabel), 1u) << r.format();
  EXPECT_EQ(find_code(r, lint::check::kDuplicateLabel)->severity,
            Severity::kError);
}

TEST(LintWellFormed, CrossModuleContradictionIsL004AndMatchesCompose) {
  // Satellite regression: lint's RTV-L004 and compose()'s
  // std::invalid_argument come from the same shared check
  // (rtv/ts/delay_bounds.hpp) — same model, byte-identical text.
  auto pulse = [](const std::string& name, Time lo, Time hi, EventKind kind) {
    TransitionSystem ts;
    const StateId s0 = ts.add_state();
    const StateId s1 = ts.add_state();
    ts.add_transition(s0, ts.add_event("x+", DelayInterval::units(lo, hi), kind),
                      s1);
    ts.set_initial(s0);
    return Module(name, std::move(ts));
  };
  const Module early = pulse("early", 1, 2, EventKind::kOutput);
  const Module late = pulse("late", 5, 9, EventKind::kInput);

  const LintReport r = lint::lint_modules({&early, &late}, {}, {});
  const Diagnostic* d = find_code(r, lint::check::kDelayContradiction);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->object, "x+");

  try {
    compose({&early, &late}, {});
    FAIL() << "compose accepted contradictory bounds";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(d->message, e.what());
  }
}

TEST(LintWellFormed, CompatibleSharedBoundsHaveNoL004) {
  const Module a = simple_module("a-side", "sync");
  const Module b = simple_module("b-side", "sync");
  const LintReport r = lint::lint_modules({&a, &b}, {}, {});
  EXPECT_EQ(find_code(r, lint::check::kDelayContradiction), nullptr)
      << r.format();
}

TEST(LintWellFormed, DanglingInvariantSignalIsL005) {
  const Module m = simple_module();
  const InvariantProperty bad(
      "ghost", std::vector<InvariantProperty::Literal>{{"no_such_signal", true}});
  const LintReport r = lint_one(m, {&bad});
  const Diagnostic* d = find_code(r, lint::check::kDanglingSignal);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("no_such_signal"), std::string::npos);
}

TEST(LintWellFormed, DeclaredInvariantSignalHasNoL005) {
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty ok(
      "ok", std::vector<InvariantProperty::Literal>{{"fail", true}});
  const LintReport r = lint_one(mon, {&ok});
  EXPECT_EQ(find_code(r, lint::check::kDanglingSignal), nullptr) << r.format();
}

TEST(LintWellFormed, DanglingPersistencyExemptIsL006) {
  const Module m = simple_module();
  const PersistencyProperty pers({"phantom+"});
  const LintReport r = lint_one(m, {&pers});
  const Diagnostic* d = find_code(r, lint::check::kDanglingExempt);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(r.exit_code(), 1);

  const PersistencyProperty declared({"a"});
  EXPECT_EQ(find_code(lint_one(m, {&declared}), lint::check::kDanglingExempt),
            nullptr);
}

TEST(LintReachability, UnfireableEventIsL007) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const DelayInterval d12 = DelayInterval::units(1, 2);
  ts.add_transition(s0, ts.add_event("live", d12), s1);
  ts.add_event("orphan", d12);  // declared, never on a transition
  ts.set_initial(s0);
  Module m("orphaned", std::move(ts));
  const LintReport r = lint_one(m);
  const Diagnostic* d = find_code(r, lint::check::kUnfireableEvent);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->object, "orphan");
  EXPECT_EQ(count_code(r, lint::check::kUnfireableEvent), 1u);
}

TEST(LintReachability, ConstantSignalIsL008) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  ts.add_transition(s0, ts.add_event("t", DelayInterval::units(1, 2)), s1);
  ts.set_initial(s0);
  ts.set_signal_names({"live", "stuck"});
  BitVec v0(2), v1(2);
  v1.set(0);        // "live" toggles 0 -> 1
  v0.set(1);        // "stuck" is 1 in both states
  v1.set(1);
  ts.set_state_valuation(s0, v0);
  ts.set_state_valuation(s1, v1);
  Module m("signals", std::move(ts));
  const LintReport r = lint_one(m);
  const Diagnostic* d = find_code(r, lint::check::kDeadSignal);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->object, "stuck");
  EXPECT_EQ(count_code(r, lint::check::kDeadSignal), 1u) << "'live' toggles";
}

TEST(LintWellFormed, EmptyInvariantConjunctionIsL009) {
  const Module m = simple_module();
  const InvariantProperty empty("empty", {});
  const LintReport r = lint_one(m, {&empty});
  const Diagnostic* d = find_code(r, lint::check::kEmptyInvariant);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(LintWellFormed, ContradictoryLiteralsAreTautologicalL010) {
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty taut(
      "taut",
      std::vector<InvariantProperty::Literal>{{"fail", true}, {"fail", false}});
  const LintReport r = lint_one(mon, {&taut});
  const Diagnostic* d = find_code(r, lint::check::kTautologicalInvariant);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(LintEngineRange, InfinityAliasedBoundIsL011) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  ts.add_transition(
      s0, ts.add_event("inf", DelayInterval(kTimeInfinity, kTimeInfinity)), s1);
  ts.set_initial(s0);
  Module m("aliased", std::move(ts));
  // Engine-independent: fires even when only the zone engine is selected.
  LintOptions zone_only;
  zone_only.engines = {"zone"};
  const LintReport r = lint_one(m, {}, zone_only);
  const Diagnostic* d = find_code(r, lint::check::kInfinityAliasedBound);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(LintEngineRange, CertainTruncationIsL012ErrorWhenOnlyDiscrete) {
  // The acceptance model: 10000..20000 units digitize to 40000..80000
  // ticks; a 65536-config budget cannot age past 80000 ticks, so a
  // discrete-only run is doomed before it starts.
  const Module m = wrap_module();
  LintOptions lo;
  lo.engines = {"discrete"};
  lo.max_states = 65536;
  const LintReport r = lint_one(m, {}, lo);
  const Diagnostic* d = find_code(r, lint::check::kCertainTruncation);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->object, "a");
  EXPECT_NE(d->message.find("80000"), std::string::npos) << d->message;
  EXPECT_EQ(r.exit_code(), 2);
  // L013 would restate the same constant: suppressed when L012 fires.
  EXPECT_EQ(find_code(r, lint::check::kDigitizationCost), nullptr);
}

TEST(LintEngineRange, CertainTruncationDemotesToWarningWithAPeer) {
  // A non-digitizing peer can still decide the obligation — the doomed
  // discrete run wastes its budget but nothing more, so the finding must
  // not short-circuit a portfolio (the scaled_race regression).
  const Module m = wrap_module();
  LintOptions lo;
  lo.engines = {"discrete", "zone"};
  lo.max_states = 65536;
  const LintReport r = lint_one(m, {}, lo);
  const Diagnostic* d = find_code(r, lint::check::kCertainTruncation);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_FALSE(r.has_errors());
}

TEST(LintEngineRange, DigitizationCostIsL013PastTheLegacyRange) {
  const Module m = wrap_module();
  LintOptions lo;
  lo.engines = {"discrete"};  // default budget: no certain truncation
  const LintReport r = lint_one(m, {}, lo);
  EXPECT_EQ(find_code(r, lint::check::kCertainTruncation), nullptr)
      << r.format();
  const Diagnostic* d = find_code(r, lint::check::kDigitizationCost);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("80000"), std::string::npos);
}

TEST(LintEngineRange, SmallConstantsAndNonDiscreteSelectionsAreSilent) {
  // Constants inside the legacy range: no engine-range findings at all.
  EXPECT_TRUE(lint_one(simple_module()).clean());
  // Large constants but no digitizing engine selected: checks disarm.
  const Module m = wrap_module();
  LintOptions zone_only;
  zone_only.engines = {"zone"};
  zone_only.max_states = 65536;
  const LintReport r = lint_one(m, {}, zone_only);
  EXPECT_EQ(find_code(r, lint::check::kCertainTruncation), nullptr);
  EXPECT_EQ(find_code(r, lint::check::kDigitizationCost), nullptr);
  // Unknown selection (empty) keeps the checks armed, conservatively as
  // warnings.
  LintOptions unknown;
  unknown.max_states = 65536;
  const LintReport u = lint_one(m, {}, unknown);
  const Diagnostic* d = find_code(u, lint::check::kCertainTruncation);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(LintEngineRange, UnfireableEventsNeverChargeTheClock) {
  // A huge constant on an event no reachable state enables: L007 owns the
  // finding; L012/L013 stay silent (its constants never drive aging).
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  ts.add_transition(s0, ts.add_event("t", DelayInterval::units(1, 2)), s1);
  ts.add_event("huge", DelayInterval::units(10000, 20000));
  ts.set_initial(s0);
  Module m("idle-giant", std::move(ts));
  LintOptions lo;
  lo.engines = {"discrete"};
  lo.max_states = 65536;
  const LintReport r = lint_one(m, {}, lo);
  EXPECT_NE(find_code(r, lint::check::kUnfireableEvent), nullptr);
  EXPECT_EQ(find_code(r, lint::check::kCertainTruncation), nullptr)
      << r.format();
  EXPECT_EQ(find_code(r, lint::check::kDigitizationCost), nullptr);
}

TEST(LintShape, DisjointAlphabetIsL014) {
  const Module a = simple_module("loner-a", "a");
  const Module b = simple_module("loner-b", "b");
  const LintReport r = lint::lint_modules({&a, &b}, {}, {});
  EXPECT_EQ(count_code(r, lint::check::kDisjointAlphabet), 2u) << r.format();
  EXPECT_EQ(find_code(r, lint::check::kDisjointAlphabet)->severity,
            Severity::kWarning);
  // A single module composes with nothing: the check is meaningless.
  EXPECT_EQ(find_code(lint_one(a), lint::check::kDisjointAlphabet), nullptr);
  // Sharing one label silences it for both.
  const Module c = simple_module("sharer", "a");
  EXPECT_EQ(find_code(lint::lint_modules({&a, &c}, {}, {}),
                      lint::check::kDisjointAlphabet),
            nullptr);
}

TEST(LintShape, TrivialDeadlockIsL015) {
  // simple_module reaches a sink after one transition; with deadlock
  // freedom requested on the module alone, the violation is certain.
  const Module m = simple_module();
  const DeadlockFreedom dead;
  const LintReport r = lint_one(m, {&dead});
  const Diagnostic* d = find_code(r, lint::check::kTrivialDeadlock);
  ASSERT_NE(d, nullptr) << r.format();
  EXPECT_EQ(d->severity, Severity::kWarning);
  // Without the property, or with a second module (composition can change
  // the picture), the check stays silent.
  EXPECT_EQ(find_code(lint_one(m), lint::check::kTrivialDeadlock), nullptr);
  const Module peer = simple_module("peer", "a");
  EXPECT_EQ(find_code(lint::lint_modules({&m, &peer}, {&dead}, {}),
                      lint::check::kTrivialDeadlock),
            nullptr);
  // A cycle never deadlocks: silent even single-module.
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const DelayInterval d12 = DelayInterval::units(1, 2);
  ts.add_transition(s0, ts.add_event("fwd", d12), s1);
  ts.add_transition(s1, ts.add_event("back", d12), s0);
  ts.set_initial(s0);
  Module ring("ring", std::move(ts));
  EXPECT_EQ(find_code(lint_one(ring, {&dead}), lint::check::kTrivialDeadlock),
            nullptr);
}

TEST(LintReport, SortsErrorsFirstAndFormatsSummary) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const DelayInterval d12 = DelayInterval::units(1, 2);
  ts.add_transition(s0, ts.add_event("live", d12), s1);
  ts.add_event("orphan", d12);               // L007 warning
  ts.add_transition(s1, ts.add_event("bad", DelayInterval(8, 4)), s0);  // L002
  ts.set_initial(s0);
  Module m("mixed", std::move(ts));
  const LintReport r = lint_one(m);
  ASSERT_GE(r.count(Severity::kError), 1u);
  ASSERT_GE(r.count(Severity::kWarning), 1u);
  EXPECT_EQ(r.diagnostics.front().severity, Severity::kError);
  const std::string text = r.format();
  EXPECT_NE(text.find("error RTV-L002"), std::string::npos) << text;
  EXPECT_NE(text.find("warning RTV-L007"), std::string::npos) << text;
  EXPECT_NE(text.find("lint:"), std::string::npos) << text;
}

TEST(LintReportJson, RoundTripsThroughParse) {
  TransitionSystem ts;
  ts.add_state();
  Module m("no-init", std::move(ts));
  const DeadlockFreedom dead;
  const PersistencyProperty pers({"ghost"});
  LintReport r = lint_one(m, {&dead, &pers});
  ASSERT_FALSE(r.clean());
  // A note exercises the third severity through the wire.
  r.diagnostics.push_back(
      Diagnostic{"RTV-L999", Severity::kNote, "no-init", "", "informational"});

  const LintReport parsed = lint::parse_lint_report(r.to_json());
  ASSERT_EQ(parsed.diagnostics.size(), r.diagnostics.size());
  for (std::size_t i = 0; i < parsed.diagnostics.size(); ++i) {
    EXPECT_EQ(parsed.diagnostics[i].code, r.diagnostics[i].code);
    EXPECT_EQ(parsed.diagnostics[i].severity, r.diagnostics[i].severity);
    EXPECT_EQ(parsed.diagnostics[i].module, r.diagnostics[i].module);
    EXPECT_EQ(parsed.diagnostics[i].object, r.diagnostics[i].object);
    EXPECT_EQ(parsed.diagnostics[i].message, r.diagnostics[i].message);
  }
  EXPECT_EQ(parsed.errors(), r.errors());
  EXPECT_EQ(parsed.exit_code(), r.exit_code());
}

TEST(LintReportJson, RejectsCorruptedDocuments) {
  const std::string json = LintReport{}.to_json();
  EXPECT_THROW(lint::parse_lint_report("not json"), std::runtime_error);
  EXPECT_THROW(lint::parse_lint_report("{}"), std::runtime_error);
  std::string wrong = json;
  wrong.replace(wrong.find("rtv-lint-report"), 15, "something-elsex");
  EXPECT_THROW(lint::parse_lint_report(wrong), std::runtime_error);
  std::string future = json;
  future.replace(future.find("\"schema_version\":1"), 18,
                 "\"schema_version\":99");
  EXPECT_THROW(lint::parse_lint_report(future), std::runtime_error);
}

TEST(LintReport, ExitCodeConvention) {
  LintReport r;
  EXPECT_EQ(r.exit_code(), 0);
  r.diagnostics.push_back(Diagnostic{"RTV-L999", Severity::kNote, "", "", "n"});
  EXPECT_EQ(r.exit_code(), 0) << "notes do not dirty a model";
  r.diagnostics.push_back(
      Diagnostic{"RTV-L007", Severity::kWarning, "", "", "w"});
  EXPECT_EQ(r.exit_code(), 1);
  r.diagnostics.push_back(Diagnostic{"RTV-L001", Severity::kError, "", "", "e"});
  EXPECT_EQ(r.exit_code(), 2);
}

TEST(LintObligation, MirrorsSuiteEngineAndBudgetResolution) {
  Suite suite;
  const Module* wrap = suite.own(wrap_module());
  Obligation& ob = suite.add("wrap", {wrap}, {});
  ob.budget.max_states = 65536;

  // Batch default resolves to {"refine"}: engine-range checks disarm.
  EXPECT_FALSE(lint::lint_obligation(ob, {}).has_errors());

  // Per-obligation discrete override: the pre-flight sees the doomed run.
  ob.engine = "discrete";
  const LintReport r = lint::lint_obligation(ob, {});
  ASSERT_NE(find_code(r, lint::check::kCertainTruncation), nullptr)
      << r.format();
  EXPECT_TRUE(r.has_errors());

  // Suite-wide budget inherited when the obligation leaves it unset.
  ob.budget.max_states = 0;
  SuiteOptions wide;
  wide.budget.max_states = 65536;
  EXPECT_TRUE(lint::lint_obligation(ob, wide).has_errors());
  EXPECT_FALSE(lint::lint_obligation(ob, {}).has_errors())
      << "default 4M budget ages past 80000 ticks";
}

TEST(LintSuite, PreflightShortCircuitsDoomedDiscreteRuns) {
  // The acceptance scenario end to end: the wrap model on the discrete
  // engine under a 16-bit-era budget never reaches the engine.
  Suite suite;
  const Module* wrap = suite.own(wrap_module());
  Obligation& ob = suite.add("wrap", {wrap}, {});
  ob.budget.max_states = 65536;
  SuiteOptions opts;
  opts.engines = {"discrete"};
  const SuiteReport report = run_suite(suite, opts);
  ASSERT_EQ(report.records.size(), 1u);
  const SuiteRecord& rec = report.records[0];
  EXPECT_EQ(rec.result.verdict, Verdict::kInconclusive);
  EXPECT_EQ(rec.result.truncated_reason, stop_reason::kLintError);
  EXPECT_EQ(rec.result.states_explored, 0u) << "the engine ran anyway";
  ASSERT_FALSE(rec.lint.empty());
  EXPECT_EQ(rec.lint.front().code, lint::check::kCertainTruncation);
  EXPECT_NE(rec.result.message.find("80000"), std::string::npos)
      << rec.result.message;

  // Suite-report JSON carries the diagnostics through a round-trip.
  const SuiteReport parsed = parse_suite_report(report.to_json());
  ASSERT_EQ(parsed.records.size(), 1u);
  ASSERT_EQ(parsed.records[0].lint.size(), rec.lint.size());
  EXPECT_EQ(parsed.records[0].lint.front().code, rec.lint.front().code);
  EXPECT_EQ(parsed.records[0].lint.front().message, rec.lint.front().message);
}

TEST(LintSuite, WarningsAttachWithoutBlockingTheRun) {
  Suite suite;
  const Module* wrap = suite.own(wrap_module());
  suite.add("wrap", {wrap}, {});
  SuiteOptions opts;
  opts.engines = {"zone"};  // no digitization: clean of engine-range errors
  const SuiteReport report = run_suite(suite, opts);
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_NE(report.records[0].result.truncated_reason,
            stop_reason::kLintError);
  EXPECT_NE(report.records[0].result.verdict, Verdict::kInconclusive);
}

TEST(LintServe, FastRejectAnswersWithoutEngineOrCache) {
  const std::string socket = "/tmp/rtv-test-lint-" +
                             std::to_string(::getpid()) + ".sock";
  serve::ServerOptions sopts;
  sopts.socket_path = socket;
  sopts.jobs = 2;
  serve::Server server(std::move(sopts));
  server.start();

  serve::Client client;
  client.connect(socket);

  auto pulse = [](const std::string& name, double lo, double hi,
                  EventKind kind) {
    TransitionSystem ts;
    const StateId s0 = ts.add_state();
    const StateId s1 = ts.add_state();
    ts.add_transition(s0, ts.add_event("x+", DelayInterval::units(lo, hi), kind),
                      s1);
    ts.set_initial(s0);
    return Module(name, std::move(ts));
  };
  serve::WireObligation bad;
  bad.name = "contradictory";
  bad.modules.push_back(pulse("early", 1, 2, EventKind::kOutput));
  bad.modules.push_back(pulse("late", 5, 9, EventKind::kInput));
  bad.properties.push_back(serve::PropertySpec::deadlock());

  serve::ServeRequest req;
  req.kind = serve::RequestKind::kVerify;
  req.obligations.push_back(bad);
  for (int round = 0; round < 2; ++round) {
    const serve::ServeResponse resp = client.call(req);
    ASSERT_TRUE(resp.ok) << resp.error;
    ASSERT_EQ(resp.report.records.size(), 1u);
    const SuiteRecord& rec = resp.report.records[0];
    EXPECT_EQ(rec.result.verdict, Verdict::kInconclusive);
    EXPECT_EQ(rec.result.truncated_reason, stop_reason::kLintError);
    EXPECT_NE(rec.result.message.find("x+"), std::string::npos);
    EXPECT_FALSE(rec.cached) << "lint rejections must not enter the cache";
  }

  const serve::ServeStats stats = client.get_stats();
  EXPECT_EQ(stats.lint_rejected, 2u);
  EXPECT_EQ(stats.computed, 0u) << "no engine may run";
  EXPECT_EQ(stats.cache_hits, 0u);

  // A well-formed obligation on the same connection still verifies.
  serve::WireObligation good;
  good.name = "intro";
  good.modules.push_back(gallery::intro_example());
  good.modules.push_back(gallery::order_monitor("g", "d"));
  good.properties.push_back(
      serve::PropertySpec::invariant("g before d", {{"fail", true}}));
  serve::ServeRequest ok;
  ok.kind = serve::RequestKind::kVerify;
  ok.obligations.push_back(good);
  const serve::ServeResponse resp = client.call(ok);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.report.records[0].result.verdict, Verdict::kVerified);
  EXPECT_EQ(client.get_stats().computed, 1u);
  server.stop();
}

TEST(LintCorpus, ShippedSamplesAreLintClean) {
  const auto load = [](const std::string& name) {
    const std::string path = std::string(RTV_EXAMPLE_DATA_DIR) + "/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    return elaborate(parse_astg(in));
  };
  const Module env = load("hs_env.g");
  const Module dev = load("hs_dev.g");
  const Module toggle = load("toggle.g");
  const DeadlockFreedom dead;
  const PersistencyProperty pers;

  const LintReport hs = lint::lint_modules({&env, &dev}, {&dead, &pers}, {});
  EXPECT_FALSE(hs.has_errors()) << hs.format();
  const LintReport tg = lint_one(toggle);
  EXPECT_FALSE(tg.has_errors()) << tg.format();
}

TEST(LintCorpus, BankedFuzzReproducersAreLintErrorFree) {
  // The three banked soundness findings (test_fuzz_campaign): all were
  // engine bugs, not model bugs — lint must not retroactively blame the
  // models, or the campaign's lint cross-check would misfire.
  struct Banked {
    std::uint64_t seed;
    const char* config_json;
  };
  static const Banked kFindings[] = {
      {15632277821397755268ULL,
       R"({"schema":"rtv-fuzz-config","modules":2,"events":1,"max_delay":16,)"
       R"("properties":0,"unbounded_p":0,"share_p":0.3,"point_delays":true,)"
       R"("gates":true,"deadlock_check":false,"persistency_check":false})"},
      {1454460304657522376ULL,
       R"({"schema":"rtv-fuzz-config","modules":3,"events":2,"max_delay":1,)"
       R"("properties":0,"unbounded_p":0.1,"share_p":0.3,"point_delays":false,)"
       R"("gates":true,"deadlock_check":false,"persistency_check":false})"},
      {3138098403129281633ULL,
       R"({"schema":"rtv-fuzz-config","modules":2,"events":4,"max_delay":16,)"
       R"("properties":0,"unbounded_p":0.1,"share_p":0.3,"point_delays":false,)"
       R"("gates":false,"deadlock_check":false,"persistency_check":false})"},
  };
  LintOptions lo;
  lo.engines = {"refine", "zone", "discrete"};  // campaign defaults
  lo.max_states = 200'000;
  for (const Banked& f : kFindings) {
    const fuzz::Scenario sc =
        fuzz::generate(f.seed, fuzz::GeneratorConfig::from_json(f.config_json));
    const LintReport r =
        lint::lint_modules(sc.module_ptrs(), sc.property_ptrs(), lo);
    EXPECT_FALSE(r.has_errors()) << "seed " << f.seed << ": " << r.format();
  }
}

}  // namespace
}  // namespace rtv
