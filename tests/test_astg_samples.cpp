// Keeps the .g samples shipped under examples/data/ parseable, elaborable,
// and verifiable — they are the first thing a new user feeds to the CLI.
// RTV_EXAMPLE_DATA_DIR is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <fstream>

#include "rtv/stg/astg.hpp"
#include "rtv/stg/elaborate.hpp"
#include "rtv/verify/property.hpp"
#include "rtv/verify/refinement.hpp"

namespace rtv {
namespace {

Stg load_sample(const std::string& name) {
  const std::string path = std::string(RTV_EXAMPLE_DATA_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  return parse_astg(in);
}

TEST(AstgSamples, ToggleParsesAndRoundTrips) {
  const Stg stg = load_sample("toggle.g");
  EXPECT_EQ(stg.name(), "toggle");
  EXPECT_EQ(stg.num_transitions(), 2u);
  const Stg again = parse_astg_string(write_astg(stg));
  EXPECT_EQ(again.num_transitions(), stg.num_transitions());
  EXPECT_EQ(again.num_places(), stg.num_places());
}

TEST(AstgSamples, HandshakeComposesAndVerifies) {
  const Module env = elaborate(load_sample("hs_env.g"));
  const Module dev = elaborate(load_sample("hs_dev.g"));
  EXPECT_EQ(env.ts().num_states(), 4u);
  EXPECT_EQ(dev.ts().num_states(), 4u);

  DeadlockFreedom dead;
  PersistencyProperty pers;
  const VerificationResult r = verify_modules({&env, &dev}, {&dead, &pers}, {});
  EXPECT_TRUE(r.verified()) << r.message;
}

}  // namespace
}  // namespace rtv
