#include "rtv/verify/refinement.hpp"

#include <gtest/gtest.h>

#include "rtv/verify/containment.hpp"
#include "rtv/verify/report.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/zone/zone_graph.hpp"

namespace rtv {
namespace {

TEST(Verify, IntroExampleVerifiesWithRefinements) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  const VerificationResult r = verify_modules({&sys, &mon}, {&bad});
  EXPECT_EQ(r.verdict, Verdict::kVerified);
  EXPECT_GE(r.refinements, 1);
  EXPECT_FALSE(r.constraints().empty());
}

TEST(Verify, BrokenDelaysGiveCounterexample) {
  TransitionSystem ts = gallery::intro_example().ts();
  ts.set_event_delay(ts.event_by_label("g"), DelayInterval::units(10, 20));
  ts.set_event_delay(ts.event_by_label("d"), DelayInterval::units(0, 1));
  const Module sys("intro-broken", std::move(ts));
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  const VerificationResult r = verify_modules({&sys, &mon}, {&bad});
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_FALSE(r.counterexample_text.empty());
}

TEST(Verify, UntimedlyCorrectNeedsNoRefinement) {
  // Property "x before y" on a chain x -> y holds untimed.
  const Module sys = gallery::chain({{"x", DelayInterval::units(1, 2)},
                                     {"y", DelayInterval::units(1, 2)}});
  const Module mon = gallery::order_monitor("x", "y");
  const InvariantProperty bad("x before y", {{"fail", true}});
  const VerificationResult r = verify_modules({&sys, &mon}, {&bad});
  EXPECT_EQ(r.verdict, Verdict::kVerified);
  EXPECT_EQ(r.refinements, 0);
}

TEST(Verify, DeadlockIsACounterexampleWhenTimingConsistent) {
  const Module sys = gallery::chain({{"x", DelayInterval::units(1, 2)}});
  const DeadlockFreedom dead;
  const VerificationResult r = verify_modules({&sys}, {&dead});
  EXPECT_EQ(r.verdict, Verdict::kViolated);
}

TEST(Verify, PersistencyGlitchPrunedByTiming) {
  // x [1,2] vs disabling y [5,6]: the glitch is untimed-reachable but
  // timing-impossible.
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const StateId s2 = ts.add_state();
  const EventId x = ts.add_event("x", DelayInterval::units(1, 2));
  const EventId y = ts.add_event("y", DelayInterval::units(5, 6));
  const EventId idle = ts.add_event("idle", DelayInterval::units(1, 2));
  ts.add_transition(s0, x, s1);
  ts.add_transition(s0, y, s2);
  ts.add_transition(s1, y, s2);
  ts.add_transition(s2, idle, s2);  // keep the system alive
  ts.set_initial(s0);
  const Module sys("glitch", std::move(ts));
  const PersistencyProperty pers;
  const VerificationResult r = verify_modules({&sys}, {&pers});
  EXPECT_EQ(r.verdict, Verdict::kVerified);
  EXPECT_GE(r.refinements, 1);
}

TEST(Verify, StructuralRuleOffStillSoundJustSlower) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  VerifyOptions opts;
  opts.structural_rule = false;
  const VerificationResult r = verify_modules({&sys, &mon}, {&bad}, opts);
  EXPECT_EQ(r.verdict, Verdict::kVerified);
  // Window observers only: at least as many iterations.
  const VerificationResult fast = verify_modules({&sys, &mon}, {&bad});
  EXPECT_GE(r.refinements, fast.refinements);
}

TEST(Verify, ContainmentAcceptsRefinement) {
  // A chain "a;b" is contained in a more permissive spec that allows a and
  // b in any order repeatedly.
  const Module impl = gallery::chain({{"a", DelayInterval::units(1, 2)},
                                      {"b", DelayInterval::units(1, 2)}});
  TransitionSystem spec;
  const StateId s = spec.add_state();
  spec.add_transition(s, spec.add_event("a", DelayInterval::unbounded(),
                                        EventKind::kOutput), s);
  spec.add_transition(s, spec.add_event("b", DelayInterval::unbounded(),
                                        EventKind::kOutput), s);
  spec.set_initial(s);
  const Module abs("spec", std::move(spec));
  const VerificationResult r = check_containment({&impl}, abs);
  EXPECT_EQ(r.verdict, Verdict::kVerified);
}

TEST(Verify, ContainmentRejectsForbiddenOutput) {
  // Implementation emits c which the abstraction never produces.
  TransitionSystem its;
  const StateId i0 = its.add_state();
  const StateId i1 = its.add_state();
  its.add_transition(i0, its.add_event("c", DelayInterval::units(1, 2),
                                       EventKind::kOutput), i1);
  its.add_transition(i1, its.event_by_label("c"), i1);
  its.set_initial(i0);
  const Module impl("impl", std::move(its));

  TransitionSystem ats;
  const StateId a0 = ats.add_state();
  ats.add_transition(a0, ats.add_event("d", DelayInterval::unbounded(),
                                       EventKind::kOutput), a0);
  // The abstraction also knows the label c but never enables it after one
  // occurrence... simpler: it has c nowhere enabled.
  ats.add_event("c", DelayInterval::unbounded(), EventKind::kOutput);
  ats.set_initial(a0);
  const Module abs("spec", std::move(ats));

  const VerificationResult r = check_containment({&impl}, abs);
  EXPECT_EQ(r.verdict, Verdict::kViolated);
  EXPECT_NE(r.message.find("refusal"), std::string::npos);
}

TEST(Verify, TimedContainmentNeedsRefinement) {
  // Implementation: the diamond race x [1,2] / y [5,6]; abstraction
  // requires x before y.  Untimed the refusal is reachable, timed not.
  // The checked events must be outputs for refusals to register as chokes.
  Module impl = gallery::diamond("x", DelayInterval::units(1, 2), "y",
                                 DelayInterval::units(5, 6));
  impl.ts().set_event_kind(impl.ts().event_by_label("x"), EventKind::kOutput);
  impl.ts().set_event_kind(impl.ts().event_by_label("y"), EventKind::kOutput);
  TransitionSystem ats;
  const StateId a0 = ats.add_state();
  const StateId a1 = ats.add_state();
  const StateId a2 = ats.add_state();
  ats.add_transition(a0, ats.add_event("x", DelayInterval::unbounded(),
                                       EventKind::kOutput), a1);
  ats.add_transition(a1, ats.add_event("y", DelayInterval::unbounded(),
                                       EventKind::kOutput), a2);
  ats.set_initial(a0);
  const Module abs("x-then-y", std::move(ats));
  const VerificationResult r = check_containment({&impl}, abs);
  EXPECT_EQ(r.verdict, Verdict::kVerified);
  EXPECT_GE(r.refinements, 1);
}

TEST(Verify, VerdictAgreesWithZoneEngineOnIntro) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  const VerificationResult rt = verify_modules({&sys, &mon}, {&bad});
  const ZoneVerifyResult zn = zone_verify({&sys, &mon}, {&bad});
  EXPECT_EQ(rt.verdict == Verdict::kVerified, !zn.violated);
}

TEST(Verify, ReportFormatting) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  const VerificationResult r = verify_modules({&sys, &mon}, {&bad});
  const std::string report = format_report("intro", r);
  EXPECT_NE(report.find("VERIFIED"), std::string::npos);
  EXPECT_NE(report.find("refinements"), std::string::npos);
  const std::string cs = format_constraints(r);
  EXPECT_FALSE(cs.empty());
  const std::string table = format_table({summarize("intro", r)});
  EXPECT_NE(table.find("intro"), std::string::npos);
}

TEST(Verify, RefinementBudgetGivesInconclusive) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  VerifyOptions opts;
  opts.max_refinements = 0;
  const VerificationResult r = verify_modules({&sys, &mon}, {&bad}, opts);
  EXPECT_EQ(r.verdict, Verdict::kInconclusive);
}

}  // namespace
}  // namespace rtv
