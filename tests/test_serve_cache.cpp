// The serve layer's content-addressed verdict cache: what the obligation
// hash covers (and deliberately does not), LRU store behaviour, the
// cacheability policy, and the versioned persistence format.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "rtv/serve/cache.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/obligation_hash.hpp"

using namespace rtv;
using namespace rtv::serve;

namespace {

WireObligation make_obligation() {
  WireObligation ob;
  ob.name = "intro";
  ob.modules.push_back(gallery::intro_example());
  ob.properties.push_back(PropertySpec::deadlock());
  return ob;
}

CacheKey key_of(const WireObligation& ob, std::size_t max_states = 0,
                double max_seconds = 0.0, std::size_t max_refinements = 500) {
  return obligation_cache_key(ob, SuiteMode::kBatch, {"refine"}, max_states,
                              max_seconds, max_refinements);
}

CachedOutcome outcome_with(const char* engine, Verdict verdict,
                           const char* stop = "", bool winner = true) {
  CachedOutcome o;
  CachedRecord r;
  r.engine = engine;
  r.verdict = verdict;
  r.stop_reason = stop;
  r.winner = winner;
  o.records.push_back(std::move(r));
  return o;
}

/// RAII temp path (the file itself is created by the code under test).
struct TempFile {
  std::string path;
  explicit TempFile(const char* tag)
      : path("/tmp/rtv-test-cache-" + std::to_string(::getpid()) + "-" + tag +
             ".json") {}
  ~TempFile() { std::remove(path.c_str()); }
};

}  // namespace

// ---------------------------------------------------------------------------
// What the module hash covers.
// ---------------------------------------------------------------------------

TEST(ModuleContentHash, DeterministicAndNameIndependent) {
  Module a = gallery::intro_example();
  Module b = gallery::intro_example();
  EXPECT_EQ(module_content_hash(a), module_content_hash(b));

  // Renaming the module or its states is cosmetic: same content hash.
  b.set_name("entirely different");
  for (std::uint32_t s = 0; s < b.ts().num_states(); ++s)
    b.ts().set_state_name(StateId{s}, "renamed-" + std::to_string(s));
  EXPECT_EQ(module_content_hash(a), module_content_hash(b));
}

TEST(ModuleContentHash, SensitiveToDelaysStructureAndValuations) {
  const DelayInterval d12{ticks_from_units(1), ticks_from_units(2)};
  const DelayInterval d13{ticks_from_units(1), ticks_from_units(3)};
  const Module base = gallery::diamond("x", d12, "y", d12);
  EXPECT_NE(module_content_hash(base),
            module_content_hash(gallery::diamond("x", d13, "y", d12)));
  EXPECT_NE(module_content_hash(base),
            module_content_hash(gallery::diamond("z", d12, "y", d12)));
  EXPECT_NE(module_content_hash(base),
            module_content_hash(gallery::diamond("y", d12, "x", d12)));

  // Extra structure (a transition) changes the hash.
  Module more = base;
  more.ts().add_transition(StateId{1}, EventId{1}, StateId{1});
  EXPECT_NE(module_content_hash(base), module_content_hash(more));
}

// ---------------------------------------------------------------------------
// What the obligation key covers.
// ---------------------------------------------------------------------------

TEST(ObligationCacheKey, ObligationNameIsNotContent) {
  WireObligation a = make_obligation();
  WireObligation b = make_obligation();
  b.name = "renamed";
  EXPECT_EQ(key_of(a), key_of(b));
}

// Regression: every budget knob must be part of the key — a cached
// Inconclusive computed at a small budget can never answer a bigger-budget
// request.
TEST(ObligationCacheKey, BudgetChangesChangeTheKey) {
  const WireObligation ob = make_obligation();
  const CacheKey base = key_of(ob);
  EXPECT_NE(base, key_of(ob, 1000));
  EXPECT_NE(base, key_of(ob, 0, 5.0));
  EXPECT_NE(base, key_of(ob, 0, 0.0, 7));
  EXPECT_NE(key_of(ob, 1000), key_of(ob, 2000));

  WireObligation no_chokes = make_obligation();
  no_chokes.track_chokes = false;
  EXPECT_NE(base, key_of(no_chokes));
}

TEST(ObligationCacheKey, ModeEnginesAndPropertiesAreContent) {
  const WireObligation ob = make_obligation();
  const CacheKey base = key_of(ob);
  EXPECT_NE(base, obligation_cache_key(ob, SuiteMode::kPortfolio, {"refine"},
                                       0, 0.0, 500));
  EXPECT_NE(base, obligation_cache_key(ob, SuiteMode::kBatch, {"zone"}, 0,
                                       0.0, 500));
  EXPECT_NE(base, obligation_cache_key(ob, SuiteMode::kBatch,
                                       {"refine", "zone"}, 0, 0.0, 500));

  WireObligation more_props = make_obligation();
  more_props.properties.push_back(PropertySpec::persistency());
  EXPECT_NE(base, key_of(more_props));

  WireObligation invariant = make_obligation();
  invariant.properties = {PropertySpec::invariant("!fail", {{"fail", true}})};
  EXPECT_NE(base, key_of(invariant));

  // Module content flows into the key.
  WireObligation edited = make_obligation();
  edited.modules.front().ts().add_transition(StateId{0}, EventId{0},
                                             StateId{0});
  EXPECT_NE(base, key_of(edited));
}

TEST(CacheKeyApi, HexRoundTripsAndRejectsMalformedInput) {
  const CacheKey key = key_of(make_obligation());
  const std::string hex = key.hex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(CacheKey::from_hex(hex), key);
  EXPECT_THROW(CacheKey::from_hex("short"), std::runtime_error);
  EXPECT_THROW(CacheKey::from_hex(std::string(32, 'g')), std::runtime_error);
}

// ---------------------------------------------------------------------------
// The LRU store.
// ---------------------------------------------------------------------------

TEST(VerdictCache, HitMissAndStats) {
  VerdictCache cache(8);
  const CacheKey key = key_of(make_obligation());
  CachedOutcome out;
  EXPECT_FALSE(cache.get(key, &out));
  cache.put(key, outcome_with("refine", Verdict::kVerified));
  ASSERT_TRUE(cache.get(key, &out));
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].engine, "refine");
  EXPECT_EQ(out.records[0].verdict, Verdict::kVerified);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(VerdictCache, EvictsLeastRecentlyUsedPastTheCap) {
  VerdictCache cache(2);
  const CacheKey k1{1, 1}, k2{2, 2}, k3{3, 3};
  cache.put(k1, outcome_with("refine", Verdict::kVerified));
  cache.put(k2, outcome_with("refine", Verdict::kVerified));
  // Touch k1 so k2 becomes the LRU entry.
  EXPECT_TRUE(cache.get(k1, nullptr));
  cache.put(k3, outcome_with("refine", Verdict::kVerified));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.get(k1, nullptr));   // refreshed, survived
  EXPECT_FALSE(cache.get(k2, nullptr));  // evicted
  EXPECT_TRUE(cache.get(k3, nullptr));
}

TEST(VerdictCache, PutOverwritesInPlace) {
  VerdictCache cache(4);
  const CacheKey k{9, 9};
  cache.put(k, outcome_with("refine", Verdict::kInconclusive));
  cache.put(k, outcome_with("zone", Verdict::kVerified));
  CachedOutcome out;
  ASSERT_TRUE(cache.get(k, &out));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(out.records[0].engine, "zone");
  EXPECT_EQ(out.records[0].verdict, Verdict::kVerified);
}

// ---------------------------------------------------------------------------
// Cacheability policy.
// ---------------------------------------------------------------------------

TEST(CacheablePolicy, RejectsAccidentsKeepsHonestTruncations) {
  EXPECT_FALSE(cacheable(CachedOutcome{}));
  EXPECT_FALSE(cacheable(outcome_with("refine", Verdict::kInconclusive,
                                      stop_reason::kEngineError, false)));
  // Cancelled with no deciding winner: an execution accident.
  EXPECT_FALSE(cacheable(outcome_with("zone", Verdict::kInconclusive,
                                      stop_reason::kCancelled, false)));
  // A portfolio loser cancelled BY a winner is a deterministic outcome.
  CachedOutcome race = outcome_with("refine", Verdict::kVerified, "", true);
  CachedRecord loser;
  loser.engine = "zone";
  loser.verdict = Verdict::kInconclusive;
  loser.stop_reason = stop_reason::kCancelled;
  race.records.push_back(loser);
  EXPECT_TRUE(cacheable(race));
  // Honest budget truncation is cacheable — the budget is in the key.
  EXPECT_TRUE(cacheable(outcome_with("discrete", Verdict::kInconclusive,
                                     stop_reason::kStateBudget, false)));
  EXPECT_TRUE(cacheable(outcome_with("refine", Verdict::kVerified)));
}

// ---------------------------------------------------------------------------
// Persistence.
// ---------------------------------------------------------------------------

TEST(VerdictCachePersistence, FileRoundTripPreservesEntriesAndRecency) {
  VerdictCache cache(8);
  const CacheKey k1{1, 10}, k2{2, 20};
  CachedOutcome rich = outcome_with("zone", Verdict::kViolated);
  rich.records[0].message = "fail reached \"quoted\"";
  rich.records[0].trace_labels = {"a+", "b-"};
  rich.records[0].states_explored = 42;
  rich.records[0].seconds = 0.25;
  rich.records[0].cpu_seconds = 0.5;
  cache.put(k1, rich);
  cache.put(k2, outcome_with("refine", Verdict::kVerified));
  // Touch k1: recency order on disk must be k2 (LRU) then k1.
  EXPECT_TRUE(cache.get(k1, nullptr));

  TempFile file("roundtrip");
  cache.save(file.path);

  VerdictCache loaded(2);
  loaded.load(file.path);
  EXPECT_EQ(loaded.size(), 2u);
  CachedOutcome out;
  ASSERT_TRUE(loaded.get(k1, &out));
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].engine, "zone");
  EXPECT_EQ(out.records[0].verdict, Verdict::kViolated);
  EXPECT_EQ(out.records[0].message, "fail reached \"quoted\"");
  EXPECT_EQ(out.records[0].trace_labels,
            (std::vector<std::string>{"a+", "b-"}));
  EXPECT_EQ(out.records[0].states_explored, 42u);
  EXPECT_TRUE(out.records[0].winner);

  // Replayed recency: with cap 1, inserting one more evicts k2 first.
  VerdictCache tight(1);
  tight.load(file.path);
  EXPECT_EQ(tight.size(), 1u);
  EXPECT_TRUE(tight.get(k1, nullptr));
  EXPECT_FALSE(tight.get(k2, nullptr));
}

TEST(VerdictCachePersistence, RejectsCorruptAndVersionSkewedFiles) {
  VerdictCache cache(4);
  cache.put(CacheKey{1, 1}, outcome_with("refine", Verdict::kVerified));
  const std::string good = cache.to_json();

  VerdictCache victim(4);
  EXPECT_THROW(victim.load_json("not json at all"), std::runtime_error);
  EXPECT_THROW(victim.load_json("{}"), std::runtime_error);
  EXPECT_THROW(victim.load_json(good.substr(0, good.size() / 2)),
               std::runtime_error);

  std::string wrong_tag = good;
  wrong_tag.replace(wrong_tag.find("rtv-verdict-cache"), 17,
                    "rtv-other-format!");
  EXPECT_THROW(victim.load_json(wrong_tag), std::runtime_error);

  // ANY version mismatch rejects, and the message names the version.
  std::string newer = good;
  newer.replace(newer.find("\"schema_version\":1"), 18,
                "\"schema_version\":9");
  try {
    victim.load_json(newer);
    FAIL() << "expected a schema-version rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("9"), std::string::npos) << e.what();
  }

  std::string bad_key = good;
  bad_key.replace(bad_key.find("\"key\":\"") + 7, 1, "Z");
  EXPECT_THROW(victim.load_json(bad_key), std::runtime_error);

  // A rejected load leaves the victim untouched.
  EXPECT_EQ(victim.size(), 0u);
  victim.load_json(good);
  EXPECT_EQ(victim.size(), 1u);

  EXPECT_THROW(victim.load("/nonexistent/dir/cache.json"),
               std::runtime_error);
}
