// The unified engine seam (rtv/verify/engine.hpp):
//
//   * registry enumeration and lookup,
//   * verdict parity of all three engines on the Fig. 1 gallery system
//     and on a boundary-2 obligation of the 2-stage IPCMOS pipeline,
//   * budgets: a 1-state budget never yields kVerified (the truncation
//     regression), a tiny wall-clock deadline stops a run, and a
//     CancelToken fired from the progress callback stops a run mid-way —
//     always surfacing as Verdict::kInconclusive.
#include <gtest/gtest.h>

#include <algorithm>

#include "rtv/ipcmos/pipeline.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/engine.hpp"

namespace rtv {
namespace {

const Engine* engine(const char* name) {
  const Engine* e = engine_registry().find(name);
  EXPECT_NE(e, nullptr) << name;
  return e;
}

TEST(EngineRegistry, EnumeratesTheThreeBuiltInEngines) {
  const auto names = engine_registry().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "refine"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "zone"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "discrete"), names.end());
  EXPECT_EQ(engine_registry().engines().size(), names.size());
  for (const Engine* e : engine_registry().engines()) {
    EXPECT_EQ(engine_registry().find(e->name()), e);
    EXPECT_FALSE(e->description().empty());
  }
  EXPECT_EQ(engine_registry().find("no-such-engine"), nullptr);
}

TEST(EngineParity, Fig1GalleryVerifiedByAllEngines) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  EngineRequest req;
  req.modules = {&sys, &mon};
  req.properties = {&bad};
  for (const Engine* e : engine_registry().engines()) {
    const EngineResult r = e->run(req);
    EXPECT_EQ(r.verdict, Verdict::kVerified) << e->name();
    EXPECT_TRUE(r.truncated_reason.empty()) << e->name();
    EXPECT_GT(r.states_explored, 0u) << e->name();
  }
}

TEST(EngineParity, Fig1ReversedOrderViolatedByAllEngines) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("d", "g");
  const InvariantProperty bad("d before g", {{"fail", true}});
  EngineRequest req;
  req.modules = {&sys, &mon};
  req.properties = {&bad};
  for (const Engine* e : engine_registry().engines()) {
    const EngineResult r = e->run(req);
    EXPECT_EQ(r.verdict, Verdict::kViolated) << e->name();
    EXPECT_FALSE(r.message.empty()) << e->name();
  }
}

TEST(EngineParity, IpcmosBoundary2OfTwoStagePipeline) {
  // The 2-stage pipeline's boundary-2 obligation (the induction base,
  // experiment 3): IN || I1 || A_out(2) must stay within A_in(2), which
  // runs as a monitor so refusals surface as chokes.
  const ipcmos::PipelineTiming t;
  const Module in = ipcmos::make_in_env(t);
  const Module stage = ipcmos::make_stage(1, t);
  const Module aout = ipcmos::make_aout(2);
  const Module ain = ipcmos::make_ain(2);
  const Module mon = ain.as_monitor("Ain2'");
  const DeadlockFreedom dead;
  const PersistencyProperty pers;
  EngineRequest req;
  req.modules = {&in, &stage, &aout, &mon};
  req.properties = {&dead, &pers};
  for (const Engine* e : engine_registry().engines()) {
    const EngineResult r = e->run(req);
    EXPECT_EQ(r.verdict, Verdict::kVerified) << e->name() << ": " << r.message;
  }
}

TEST(EngineBudget, OneStateBudgetIsNeverVerified) {
  // Regression for the verdict-semantics drift: a truncated run used to
  // surface as violated=false, which callers read as "verified".  The
  // deadlock property also guards against the dual failure mode: frontier
  // states of a truncated composition have no outgoing transitions and
  // must not be reported as (spurious) deadlock violations.
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  const DeadlockFreedom dead;
  EngineRequest req;
  req.modules = {&sys, &mon};
  req.properties = {&bad, &dead};
  req.budget.max_states = 1;
  for (const Engine* e : engine_registry().engines()) {
    const EngineResult r = e->run(req);
    EXPECT_NE(r.verdict, Verdict::kVerified) << e->name();
    EXPECT_EQ(r.verdict, Verdict::kInconclusive) << e->name();
    EXPECT_FALSE(r.truncated_reason.empty()) << e->name();
  }
}

TEST(EngineBudget, DeadlineStopsRunEarlyWithInconclusive) {
  const Module sys = gallery::scaled_race(64);
  const Module mon = gallery::order_monitor("a", "c");
  const InvariantProperty bad("a before c", {{"fail", true}});
  EngineRequest req;
  req.modules = {&sys, &mon};
  req.properties = {&bad};
  req.budget.max_seconds = 1e-9;  // expires before the first state pops
  for (const Engine* e : engine_registry().engines()) {
    const EngineResult r = e->run(req);
    EXPECT_EQ(r.verdict, Verdict::kInconclusive) << e->name();
    EXPECT_EQ(r.truncated_reason, stop_reason::kDeadline) << e->name();
  }
}

TEST(EngineBudget, CancelTokenStopsRunEarlyWithInconclusive) {
  const Module sys = gallery::scaled_race(64);
  const Module mon = gallery::order_monitor("a", "c");
  const InvariantProperty bad("a before c", {{"fail", true}});

  // Pre-cancelled token: every engine refuses to explore.
  {
    CancelToken token;
    token.cancel();
    EngineRequest req;
    req.modules = {&sys, &mon};
    req.properties = {&bad};
    req.budget.cancel = &token;
    for (const Engine* e : engine_registry().engines()) {
      const EngineResult r = e->run(req);
      EXPECT_EQ(r.verdict, Verdict::kInconclusive) << e->name();
      EXPECT_EQ(r.truncated_reason, stop_reason::kCancelled) << e->name();
    }
  }

  // Cancellation fired from the progress callback: the digitized engine
  // (thousands of configs on this system) must stop mid-run.
  {
    CancelToken token;
    std::size_t callbacks = 0;
    EngineRequest req;
    req.modules = {&sys, &mon};
    req.properties = {&bad};
    req.budget.cancel = &token;
    req.progress_interval = 16;
    req.progress = [&](const EngineProgress& p) {
      ++callbacks;
      EXPECT_EQ(p.engine, "discrete");
      token.cancel();
    };
    EngineRequest unbudgeted;
    unbudgeted.modules = {&sys, &mon};
    unbudgeted.properties = {&bad};
    const EngineResult full = engine("discrete")->run(unbudgeted);
    const EngineResult r = engine("discrete")->run(req);
    EXPECT_GE(callbacks, 1u);
    EXPECT_EQ(r.verdict, Verdict::kInconclusive);
    EXPECT_EQ(r.truncated_reason, stop_reason::kCancelled);
    EXPECT_LT(r.states_explored, full.states_explored);
  }
}

TEST(EngineProgressApi, AllThreeEnginesFireProgressWithMetricsSnapshot) {
  // Parity regression: every registered engine must drive its RunClock so
  // the progress callback fires, names the right engine, reports a
  // nonzero state count, and (metrics being enabled by default) carries a
  // metrics snapshot valid for the callback's duration.  No monotonicity
  // across fires: refine restarts its exploration every refinement
  // iteration, so the count legitimately resets within one run.
  const Module sys = gallery::scaled_race(64);
  const Module mon = gallery::order_monitor("a", "c");
  const InvariantProperty bad("a before c", {{"fail", true}});
  for (const Engine* e : engine_registry().engines()) {
    std::size_t fires = 0;
    bool saw_metrics = false;
    EngineRequest req;
    req.modules = {&sys, &mon};
    req.properties = {&bad};
    req.budget.max_states = 4096;  // bounded: progress parity, not verdicts
    // Interval 1 fires on every tick: the zone and refine explorations
    // finish this system in fewer than a default interval's worth of
    // states, and the contract under test is that they tick at all.
    req.progress_interval = 1;
    req.progress = [&](const EngineProgress& p) {
      ++fires;
      EXPECT_EQ(p.engine, e->name());
      EXPECT_GE(p.states_explored, 1u);
      if (p.metrics != nullptr) saw_metrics = true;
    };
    (void)e->run(req);
    EXPECT_GE(fires, 1u) << e->name();
    EXPECT_TRUE(saw_metrics) << e->name();
  }
}

TEST(EngineResultApi, VerdictHelpersAndStats) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  EngineRequest req;
  req.modules = {&sys, &mon};
  req.properties = {&bad};

  const EngineResult rt = engine("refine")->run(req);
  EXPECT_TRUE(rt.verified());
  EXPECT_FALSE(rt.violated());
  EXPECT_FALSE(rt.inconclusive());
  const auto* rst = std::get_if<RefineEngineStats>(&rt.stats);
  ASSERT_NE(rst, nullptr);
  EXPECT_GT(rst->composed_states, 0u);
  EXPECT_FALSE(rst->constraints.empty());

  const EngineResult zn = engine("zone")->run(req);
  const auto* zst = std::get_if<ZoneEngineStats>(&zn.stats);
  ASSERT_NE(zst, nullptr);
  EXPECT_GT(zn.states_explored, 0u);
  EXPECT_GT(zst->discrete_states, 0u);

  const EngineResult dg = engine("discrete")->run(req);
  const auto* dst = std::get_if<DiscreteEngineStats>(&dg.stats);
  ASSERT_NE(dst, nullptr);
  EXPECT_GT(dg.states_explored, 0u);
  EXPECT_GT(dst->discrete_states, 0u);
}

TEST(EngineResultApi, ViolationCarriesTraceLabels) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("d", "g");
  const InvariantProperty bad("d before g", {{"fail", true}});
  EngineRequest req;
  req.modules = {&sys, &mon};
  req.properties = {&bad};
  // The exact engines unwind a concrete timed trace; refine reports the
  // counterexample firing sequence.
  for (const char* name : {"refine", "zone", "discrete"}) {
    const EngineResult r = engine(name)->run(req);
    ASSERT_EQ(r.verdict, Verdict::kViolated) << name;
    EXPECT_FALSE(r.trace_labels.empty()) << name;
  }
}

}  // namespace
}  // namespace rtv
