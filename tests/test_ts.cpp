#include "rtv/ts/transition_system.hpp"

#include <gtest/gtest.h>

#include "rtv/ts/gallery.hpp"
#include "rtv/ts/module.hpp"

namespace rtv {
namespace {

TEST(TransitionSystem, BuildAndQuery) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state("s0");
  const StateId s1 = ts.add_state("s1");
  const EventId a = ts.add_event("a", DelayInterval::units(1, 2));
  ts.add_transition(s0, a, s1);
  ts.set_initial(s0);

  EXPECT_EQ(ts.num_states(), 2u);
  EXPECT_EQ(ts.num_events(), 1u);
  EXPECT_EQ(ts.num_transitions(), 1u);
  EXPECT_EQ(ts.label(a), "a");
  EXPECT_EQ(ts.delay(a), DelayInterval::units(1, 2));
  EXPECT_TRUE(ts.is_enabled(s0, a));
  EXPECT_FALSE(ts.is_enabled(s1, a));
  EXPECT_EQ(ts.successor(s0, a), s1);
  EXPECT_FALSE(ts.successor(s1, a).has_value());
  EXPECT_EQ(ts.state_name(s1), "s1");
}

TEST(TransitionSystem, EnsureEventDeduplicates) {
  TransitionSystem ts;
  const EventId a1 = ts.ensure_event("x+");
  const EventId a2 = ts.ensure_event("x+");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(ts.num_events(), 1u);
}

TEST(TransitionSystem, EnabledEventsSortedUnique) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const EventId b = ts.add_event("b");
  const EventId a = ts.add_event("a");
  ts.add_transition(s0, b, s1);
  ts.add_transition(s0, a, s1);
  ts.add_transition(s0, a, s0);  // nondeterministic duplicate label
  const auto enabled = ts.enabled_events(s0);
  ASSERT_EQ(enabled.size(), 2u);
  EXPECT_TRUE(enabled[0] < enabled[1]);
}

TEST(TransitionSystem, EventByLabel) {
  TransitionSystem ts;
  const EventId a = ts.add_event("ACK+");
  EXPECT_EQ(ts.event_by_label("ACK+"), a);
  EXPECT_FALSE(ts.event_by_label("nope").valid());
}

TEST(TransitionSystem, ReachabilityIgnoresUnreachable) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  ts.add_state();  // unreachable
  const EventId a = ts.add_event("a");
  ts.add_transition(s0, a, s1);
  ts.set_initial(s0);
  EXPECT_EQ(ts.num_reachable_states(), 2u);
}

TEST(TransitionSystem, SignalValuations) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  ts.set_signal_names({"x", "y"});
  BitVec v(2);
  v.set(1);
  ts.set_state_valuation(s0, v);
  EXPECT_TRUE(ts.has_valuations());
  EXPECT_EQ(ts.signal_index("y"), 1u);
  EXPECT_EQ(ts.signal_index("zz"), static_cast<std::size_t>(-1));
  EXPECT_TRUE(ts.valuation(s0).test(1));
  EXPECT_FALSE(ts.valuation(s0).test(0));
}

TEST(TransitionLabels, BuildAndParse) {
  EXPECT_EQ(transition_label("ACK", true), "ACK+");
  EXPECT_EQ(transition_label("ACK", false), "ACK-");
  std::string sig;
  bool rising = false;
  ASSERT_TRUE(parse_transition_label("VALID-", &sig, &rising));
  EXPECT_EQ(sig, "VALID");
  EXPECT_FALSE(rising);
  EXPECT_FALSE(parse_transition_label("plain", &sig, &rising));
  EXPECT_FALSE(parse_transition_label("", &sig, &rising));
}

TEST(Gallery, IntroExampleShape) {
  const Module m = gallery::intro_example();
  EXPECT_EQ(m.ts().num_states(), 12u);
  EXPECT_EQ(m.ts().num_events(), 5u);
  EXPECT_TRUE(m.ts().initial().valid());
  // From the initial state both a and b are concurrent.
  const auto enabled = m.ts().enabled_events(m.ts().initial());
  EXPECT_EQ(enabled.size(), 2u);
}

TEST(Gallery, ChainIsLinear) {
  const Module m = gallery::chain({{"a", DelayInterval::units(1, 2)},
                                   {"b", DelayInterval::units(3, 4)}});
  EXPECT_EQ(m.ts().num_states(), 3u);
  EXPECT_EQ(m.ts().num_transitions(), 2u);
}

TEST(Gallery, DiamondCommutes) {
  const Module m = gallery::diamond("x", DelayInterval::units(1, 2), "y",
                                    DelayInterval::units(1, 2));
  const TransitionSystem& ts = m.ts();
  const EventId x = ts.event_by_label("x");
  const EventId y = ts.event_by_label("y");
  const StateId via_x = *ts.successor(*ts.successor(ts.initial(), x), y);
  const StateId via_y = *ts.successor(*ts.successor(ts.initial(), y), x);
  EXPECT_EQ(via_x, via_y);
}

TEST(Module, MirrorSwapsKinds) {
  TransitionSystem ts;
  const StateId s = ts.add_state();
  ts.set_initial(s);
  const EventId i = ts.add_event("in", DelayInterval::unbounded(), EventKind::kInput);
  const EventId o = ts.add_event("out", DelayInterval::unbounded(), EventKind::kOutput);
  ts.add_transition(s, i, s);
  ts.add_transition(s, o, s);
  Module m("m", std::move(ts));
  const Module r = m.mirrored("r");
  EXPECT_EQ(r.kind_of("in"), EventKind::kOutput);
  EXPECT_EQ(r.kind_of("out"), EventKind::kInput);
}

TEST(Module, MonitorIsAllInputsUnbounded) {
  TransitionSystem ts;
  const StateId s = ts.add_state();
  ts.set_initial(s);
  const EventId o =
      ts.add_event("out", DelayInterval::units(1, 2), EventKind::kOutput);
  ts.add_transition(s, o, s);
  Module m("m", std::move(ts));
  const Module mon = m.as_monitor("m'");
  EXPECT_EQ(mon.kind_of("out"), EventKind::kInput);
  EXPECT_TRUE(mon.ts().delay(mon.ts().event_by_label("out")).is_unbounded());
}

TEST(Module, AlphabetSortedUnique) {
  const Module m = gallery::intro_example();
  const auto alpha = m.alphabet();
  EXPECT_EQ(alpha.size(), 5u);
  EXPECT_TRUE(std::is_sorted(alpha.begin(), alpha.end()));
}

}  // namespace
}  // namespace rtv
