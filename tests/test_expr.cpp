#include "rtv/expr/expr.hpp"

#include <gtest/gtest.h>

namespace rtv {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprPool pool;
  NodeId a{0}, b{1}, c{2};
  std::vector<std::string> names{"a", "b", "c"};

  BitVec val(bool va, bool vb, bool vc) {
    BitVec v(3);
    v.set(0, va);
    v.set(1, vb);
    v.set(2, vc);
    return v;
  }
};

TEST_F(ExprTest, Constants) {
  EXPECT_TRUE(pool.eval(pool.true_expr(), val(0, 0, 0)));
  EXPECT_FALSE(pool.eval(pool.false_expr(), val(1, 1, 1)));
  EXPECT_EQ(pool.constant(true), pool.true_expr());
}

TEST_F(ExprTest, LiteralEvaluation) {
  const Expr pa = pool.lit(a, true);
  const Expr na = pool.lit(a, false);
  EXPECT_TRUE(pool.eval(pa, val(1, 0, 0)));
  EXPECT_FALSE(pool.eval(pa, val(0, 0, 0)));
  EXPECT_TRUE(pool.eval(na, val(0, 0, 0)));
}

TEST_F(ExprTest, LiteralsAreInterned) {
  EXPECT_EQ(pool.lit(a, true), pool.lit(a, true));
  EXPECT_NE(pool.lit(a, true), pool.lit(a, false));
}

TEST_F(ExprTest, ConjunctionSemantics) {
  const Expr e = pool.conj2(pool.lit(a, true), pool.lit(b, false));
  EXPECT_TRUE(pool.eval(e, val(1, 0, 0)));
  EXPECT_FALSE(pool.eval(e, val(1, 1, 0)));
  EXPECT_FALSE(pool.eval(e, val(0, 0, 0)));
}

TEST_F(ExprTest, DisjunctionSemantics) {
  const Expr e = pool.disj2(pool.lit(a, true), pool.lit(c, true));
  EXPECT_TRUE(pool.eval(e, val(1, 0, 0)));
  EXPECT_TRUE(pool.eval(e, val(0, 0, 1)));
  EXPECT_FALSE(pool.eval(e, val(0, 1, 0)));
}

TEST_F(ExprTest, ConstantFolding) {
  EXPECT_EQ(pool.conj2(pool.true_expr(), pool.lit(a, true)), pool.lit(a, true));
  EXPECT_EQ(pool.conj2(pool.false_expr(), pool.lit(a, true)), pool.false_expr());
  EXPECT_EQ(pool.disj2(pool.false_expr(), pool.lit(a, true)), pool.lit(a, true));
  EXPECT_EQ(pool.disj2(pool.true_expr(), pool.lit(a, true)), pool.true_expr());
  EXPECT_EQ(pool.conj({}), pool.true_expr());
  EXPECT_EQ(pool.disj({}), pool.false_expr());
}

TEST_F(ExprTest, NegationDeMorgan) {
  // !(a & !b) == !a | b
  const Expr e = pool.conj2(pool.lit(a, true), pool.lit(b, false));
  const Expr ne = pool.negate(e);
  for (int va = 0; va < 2; ++va) {
    for (int vb = 0; vb < 2; ++vb) {
      const BitVec v = val(va, vb, 0);
      EXPECT_EQ(pool.eval(ne, v), !pool.eval(e, v));
    }
  }
}

TEST_F(ExprTest, NestedNegation) {
  const Expr e =
      pool.disj2(pool.conj2(pool.lit(a, true), pool.lit(b, true)), pool.lit(c, false));
  const Expr ne = pool.negate(e);
  for (int m = 0; m < 8; ++m) {
    const BitVec v = val(m & 1, (m >> 1) & 1, (m >> 2) & 1);
    EXPECT_EQ(pool.eval(ne, v), !pool.eval(e, v)) << m;
  }
}

TEST_F(ExprTest, SupportIsSortedUnique) {
  const Expr e = pool.conj2(pool.disj2(pool.lit(c, true), pool.lit(a, false)),
                            pool.lit(a, true));
  const auto sup = pool.support(e);
  ASSERT_EQ(sup.size(), 2u);
  EXPECT_EQ(sup[0], a);
  EXPECT_EQ(sup[1], c);
  EXPECT_TRUE(pool.depends_on(e, a));
  EXPECT_FALSE(pool.depends_on(e, b));
}

TEST_F(ExprTest, ToString) {
  const Expr e = pool.conj2(pool.lit(a, true), pool.lit(b, false));
  EXPECT_EQ(pool.to_string(e, names), "(a & !b)");
  EXPECT_EQ(pool.to_string(pool.true_expr(), names), "1");
}

TEST_F(ExprTest, FlatteningNestedSameOps) {
  const Expr e =
      pool.conj2(pool.conj2(pool.lit(a, true), pool.lit(b, true)), pool.lit(c, true));
  EXPECT_TRUE(pool.eval(e, val(1, 1, 1)));
  EXPECT_FALSE(pool.eval(e, val(1, 1, 0)));
  EXPECT_EQ(pool.support(e).size(), 3u);
}

}  // namespace
}  // namespace rtv
