#include <cstdio>
#include <cstdlib>
#include <string>

#include "rtv/base/log.hpp"
#include "rtv/ipcmos/experiments.hpp"
#include "rtv/verify/report.hpp"
#include "rtv/zone/zone_graph.hpp"
#include "rtv/circuit/invariants.hpp"
#include "rtv/sim/simulator.hpp"
#include "rtv/sim/waveform.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);
  const std::string which = argc > 1 ? argv[1] : "all";
  ExperimentConfig cfg;
  cfg.verify.max_refinements = std::getenv("MAXREF") ? atoi(getenv("MAXREF")) : 200;

  if (which == "compose") {
    // Just sizes.
    const Module stage = make_stage(1);
    printf("stage states: %zu events: %zu\n", stage.ts().num_states(), stage.ts().num_events());
    const ModuleSet set = flat_pipeline(1);
    ComposeOptions copts;
    copts.track_chokes = true;
    Composition c = compose(set.ptrs, copts);
    printf("flat1 composed: %zu states, %zu chokes\n", c.ts.num_states(), c.chokes.size());
    return 0;
  }
  if (which == "sim") {
    const ModuleSet set = flat_pipeline(2);
    Composition c = compose(set.ptrs, {});
    printf("flat2 composed: %zu states\n", c.ts.num_states());
    SimOptions so; so.max_events = 200;
    SimTrace tr = simulate(c.ts, so);
    printf("sim events=%zu deadlocked=%d end=%.2f\n", tr.events.size(), tr.deadlocked,
           units_from_ticks(tr.end_time));
    for (size_t i = 0; i < tr.events.size() && i < 60; ++i)
      printf("  %8.2f %s\n", units_from_ticks(tr.events[i].time), tr.events[i].label.c_str());
    return 0;
  }
  if (which == "zone5") {
    const ModuleSet set = flat_pipeline(1);
    PersistencyProperty pers;
    DeadlockFreedom dead;
    const Netlist nl = make_stage_netlist("I1", linear_channels(1));
    auto scs = short_circuit_properties(nl);
    std::vector<const SafetyProperty*> props{&dead, &pers};
    for (auto& p : scs) props.push_back(p.get());
    auto r = zone_verify(set.ptrs, props, {});
    printf("zone5: violated=%d desc=%s zones=%zu discrete=%zu t=%.2fs\n", r.violated,
           r.description.c_str(), r.zones_explored, r.discrete_states, r.seconds);
    if (r.violated) {
      for (auto& l : r.trace_labels) printf(" %s", l.c_str());
      printf("\n");
    }
    return 0;
  }
  auto run = [&](int i) {
    VerificationResult r;
    switch (i) {
      case 1: r = experiment1(cfg); break;
      case 2: r = experiment2(cfg); break;
      case 3: r = experiment3(cfg); break;
      case 4: r = experiment4(cfg); break;
      case 5: r = experiment5(cfg); break;
    }
    printf("%s", format_report("experiment " + std::to_string(i), r).c_str());
  };
  if (which == "all") { for (int i = 1; i <= 5; ++i) run(i); }
  else run(atoi(which.c_str()));
  return 0;
}
