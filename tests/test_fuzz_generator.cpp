// Generator and minimizer invariants: determinism from (seed, config),
// structural well-formedness of every generated scenario, config JSON
// round-trips, and monotone delta-debugging shrinks.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "rtv/fuzz/generator.hpp"
#include "rtv/fuzz/minimize.hpp"

namespace rtv::fuzz {
namespace {

/// Structural digest of a scenario: module names, full transition systems,
/// event delays and property names.  Two identical digests mean the
/// scenarios are byte-for-byte the same obligation.
std::string digest(const Scenario& sc) {
  std::string out = sc.name + "\n" + sc.describe() + "\n";
  for (const Module& m : sc.modules) {
    out += m.name() + "\n" + m.ts().to_string();
    for (std::size_t e = 0; e < m.ts().num_events(); ++e) {
      const EventId id(static_cast<EventId::underlying_type>(e));
      const DelayInterval d = m.ts().delay(id);
      out += m.ts().label(id) + " [" + std::to_string(d.lo()) + "," +
             (d.upper_bounded() ? std::to_string(d.hi()) : "inf") + "] " +
             std::to_string(static_cast<int>(m.ts().event(id).kind)) + "\n";
    }
  }
  for (const auto& p : sc.properties) out += p->name() + "\n";
  return out;
}

TEST(FuzzGenerator, SameSeedSameConfigIsByteIdentical) {
  GeneratorConfig config;
  config.modules = 3;
  config.properties = 2;
  config.deadlock_check = true;
  for (std::uint64_t seed : {1ULL, 7ULL, 0xdeadbeefULL, ~0ULL}) {
    const Scenario a = generate(seed, config);
    const Scenario b = generate(seed, config);
    EXPECT_EQ(digest(a), digest(b)) << "seed " << seed;
  }
}

TEST(FuzzGenerator, DifferentSeedsDiverge) {
  const GeneratorConfig config;
  std::set<std::string> digests;
  for (std::uint64_t seed = 0; seed < 16; ++seed)
    digests.insert(digest(generate(seed, config)));
  // Not all 16 need be distinct, but a generator stuck on one shape would
  // collapse them all.
  EXPECT_GT(digests.size(), 8u);
}

TEST(FuzzGenerator, ScenariosAreWellFormed) {
  GeneratorConfig config;
  config.modules = 4;
  config.events = 6;
  config.properties = 3;
  config.unbounded_p = 0.3;
  config.persistency_check = true;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const Scenario sc = generate(seed, config);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + sc.describe());
    EXPECT_EQ(sc.system_modules, config.modules);
    EXPECT_EQ(sc.shapes.size(), sc.system_modules);
    EXPECT_GE(sc.modules.size(), sc.system_modules);  // + monitors
    for (const Module& m : sc.modules) {
      EXPECT_GT(m.ts().num_states(), 0u);
      EXPECT_GT(m.ts().num_events(), 0u);
      EXPECT_TRUE(m.ts().initial().valid());
      for (std::size_t e = 0; e < m.ts().num_events(); ++e) {
        const EventId id(static_cast<EventId::underlying_type>(e));
        const DelayInterval d = m.ts().delay(id);
        EXPECT_GE(d.lo(), 0);
        if (d.upper_bounded()) {
          EXPECT_LE(d.lo(), d.hi());
        }
        EXPECT_FALSE(m.ts().label(id).empty());
      }
    }
    // Monitors must synchronise on system labels only: every monitored
    // label exists in some system module.
    std::set<std::string> system_labels;
    for (std::size_t i = 0; i < sc.system_modules; ++i) {
      const TransitionSystem& ts = sc.modules[i].ts();
      for (std::size_t e = 0; e < ts.num_events(); ++e)
        system_labels.insert(
            ts.label(EventId(static_cast<EventId::underlying_type>(e))));
    }
    for (std::size_t i = sc.system_modules; i < sc.modules.size(); ++i) {
      const TransitionSystem& ts = sc.modules[i].ts();
      for (std::size_t e = 0; e < ts.num_events(); ++e) {
        const std::string label =
            ts.label(EventId(static_cast<EventId::underlying_type>(e)));
        if (label.rfind("fuzz_fail", 0) == 0) continue;  // monitor-internal
        EXPECT_TRUE(system_labels.count(label))
            << "monitor references unknown label " << label;
      }
    }
    EXPECT_FALSE(sc.properties.empty());  // persistency_check at minimum
  }
}

TEST(FuzzGenerator, SanitizedClampsDegenerateConfigs) {
  GeneratorConfig config;
  config.modules = 0;
  config.events = 0;
  config.max_delay = 0;
  config.unbounded_p = 7.0;
  config.share_p = -2.0;
  const GeneratorConfig s = sanitized(config);
  EXPECT_GE(s.modules, 1u);
  EXPECT_GE(s.events, 1u);
  EXPECT_GE(s.max_delay, 1);
  EXPECT_LE(s.unbounded_p, 1.0);
  EXPECT_GE(s.share_p, 0.0);
  // And a degenerate config still generates.
  const Scenario sc = generate(5, config);
  EXPECT_EQ(sc.system_modules, s.modules);
}

TEST(FuzzGenerator, ConfigJsonRoundTrips) {
  GeneratorConfig config;
  config.modules = 5;
  config.events = 9;
  config.max_delay = Time{1} << 33;  // needs 64-bit serialization
  config.properties = 0;
  config.unbounded_p = 0.25;
  config.share_p = 0.0;
  config.point_delays = true;
  config.gates = false;
  config.deadlock_check = true;
  config.padding_modules = 3;
  const GeneratorConfig back = GeneratorConfig::from_json(config.to_json());
  EXPECT_EQ(back, config);
  EXPECT_THROW(GeneratorConfig::from_json("not json"), std::runtime_error);
  EXPECT_THROW(GeneratorConfig::from_json("{\"schema\":\"bogus\"}"),
               std::runtime_error);
}

TEST(FuzzGenerator, PreSlicerConfigsParseWithoutPadding) {
  // Configs serialized before padding_modules existed omit the field;
  // they must keep replaying byte-identically (padding defaults to 0).
  GeneratorConfig config;
  config.padding_modules = 0;
  std::string json = config.to_json();
  const std::string field = ",\"padding_modules\":0";
  const std::size_t at = json.find(field);
  ASSERT_NE(at, std::string::npos);
  json.erase(at, field.size());
  EXPECT_EQ(GeneratorConfig::from_json(json), config);
}

TEST(FuzzGenerator, PaddingModulesAreDisconnectedAndRngNeutral) {
  GeneratorConfig config;
  config.modules = 3;
  config.padding_modules = 2;
  const Scenario padded = generate(11, config);
  config.padding_modules = 0;
  const Scenario plain = generate(11, config);

  // Padding rides after monitors and draws nothing from the rng: the
  // shared prefix is byte-identical.
  ASSERT_EQ(padded.modules.size(), plain.modules.size() + 2);
  for (std::size_t i = 0; i < plain.modules.size(); ++i)
    EXPECT_EQ(padded.modules[i].name(), plain.modules[i].name());

  // Fresh private labels only — never shared with the system.
  std::set<std::string> system_labels;
  for (std::size_t i = 0; i < plain.modules.size(); ++i)
    for (const std::string& l : padded.modules[i].alphabet())
      system_labels.insert(l);
  for (std::size_t i = plain.modules.size(); i < padded.modules.size(); ++i) {
    EXPECT_NE(padded.modules[i].name().find("toggler"), std::string::npos);
    for (const std::string& l : padded.modules[i].alphabet())
      EXPECT_EQ(system_labels.count(l), 0u) << l;
  }
}

TEST(FuzzGenerator, CaseSeedsAreStableAndSpread) {
  EXPECT_EQ(case_seed(1, 0), case_seed(1, 0));
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) seeds.insert(case_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(case_seed(1, 3), case_seed(2, 3));
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

TEST(FuzzMinimize, ShrinksMonotonicallyToMinimalFailingConfig) {
  GeneratorConfig start;
  start.modules = 8;
  start.events = 12;
  start.properties = 4;
  start.max_delay = 4096;
  // Failure depends only on structure the minimizer can shrink: fires while
  // the config keeps >= 2 modules and the gates shape allowed.
  std::size_t calls = 0;
  std::size_t last_accepted = config_size(sanitized(start));
  const FailureOracle oracle = [&](std::uint64_t, const GeneratorConfig& c) {
    ++calls;
    return c.modules >= 2 && c.gates;
  };
  const MinimizeResult r = minimize(99, start, oracle, 256);
  const std::size_t loop_calls = calls;
  EXPECT_TRUE(oracle(99, r.config)) << "minimized config must still fail";
  EXPECT_LT(config_size(r.config), last_accepted);
  EXPECT_EQ(r.config.modules, 2u) << "cannot shrink below the oracle's floor";
  EXPECT_TRUE(r.config.gates);
  EXPECT_EQ(r.config.events, 1u);
  EXPECT_EQ(r.config.properties, 0u);
  EXPECT_EQ(r.config.max_delay, 1);
  EXPECT_LE(r.tested, 256u);
  EXPECT_GT(r.steps, 0u);
  EXPECT_EQ(r.tested, loop_calls);
}

TEST(FuzzMinimize, ReturnsStartWhenNothingSmallerFails) {
  GeneratorConfig start;
  start.modules = 3;
  start.events = 2;
  const std::size_t start_size = config_size(sanitized(start));
  const MinimizeResult r = minimize(
      7, start,
      [&](std::uint64_t, const GeneratorConfig& c) {
        return config_size(c) >= start_size;  // any shrink "fixes" it
      });
  EXPECT_EQ(config_size(r.config), start_size);
  EXPECT_EQ(r.steps, 0u);
}

TEST(FuzzMinimize, EveryProposalKeepsGenerating) {
  // The minimizer only ever proposes configs; all of them must be valid
  // generator inputs (generate() is total over sanitized configs).
  GeneratorConfig start;
  start.modules = 6;
  start.events = 8;
  start.properties = 3;
  std::size_t generated = 0;
  minimize(3, start, [&](std::uint64_t seed, const GeneratorConfig& c) {
    const Scenario sc = generate(seed, c);
    ++generated;
    EXPECT_GT(sc.modules.size(), 0u);
    return false;  // nothing fails; walks the whole first proposal round
  });
  EXPECT_GT(generated, 5u);
}

}  // namespace
}  // namespace rtv::fuzz
