#include "rtv/base/rng.hpp"

#include <gtest/gtest.h>

namespace rtv {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c;
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(2);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) hit_lo = true;
    if (v == 3) hit_hi = true;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, SampleDelayWithinBounds) {
  Rng rng(4);
  const DelayInterval d = DelayInterval::units(1, 3);
  for (int i = 0; i < 500; ++i) {
    const Time t = rng.sample_delay(d);
    EXPECT_GE(t, d.lo());
    EXPECT_LE(t, d.hi());
  }
}

TEST(Rng, SampleDelayClampsUnbounded) {
  Rng rng(5);
  const DelayInterval d = DelayInterval::at_least_units(2);
  for (int i = 0; i < 500; ++i) {
    const Time t = rng.sample_delay(d, /*unbounded_span=*/4 * kTicksPerUnit);
    EXPECT_GE(t, d.lo());
    EXPECT_LE(t, d.lo() + 4 * kTicksPerUnit);
  }
}

}  // namespace
}  // namespace rtv
