#include "rtv/zone/zone_graph.hpp"

#include <gtest/gtest.h>

#include "rtv/ts/gallery.hpp"
#include "rtv/verify/property.hpp"

namespace rtv {
namespace {

TEST(ZoneGraph, IntroExamplePropertyHoldsTimed) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  const ZoneVerifyResult r = zone_verify({&sys, &mon}, {&bad});
  EXPECT_FALSE(r.violated);
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.zones_explored, 0u);
}

TEST(ZoneGraph, PropertyFailsWhenDelaysAllowIt) {
  // Same structure but d becomes fast and g slow: d can beat g.
  TransitionSystem ts = gallery::intro_example().ts();
  ts.set_event_delay(ts.event_by_label("g"), DelayInterval::units(10, 20));
  ts.set_event_delay(ts.event_by_label("d"), DelayInterval::units(0, 1));
  const Module sys("intro-broken", std::move(ts));
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  const ZoneVerifyResult r = zone_verify({&sys, &mon}, {&bad});
  EXPECT_TRUE(r.violated);
  EXPECT_FALSE(r.trace_labels.empty());
}

TEST(ZoneGraph, RaceSemantics) {
  // x [1,2] races y [5,6] from the same instant: y can never fire first.
  const Module m = gallery::diamond("x", DelayInterval::units(1, 2), "y",
                                    DelayInterval::units(5, 6));
  const Module mon = gallery::order_monitor("x", "y");
  const InvariantProperty bad("x before y", {{"fail", true}});
  const ZoneVerifyResult r = zone_verify({&m, &mon}, {&bad});
  EXPECT_FALSE(r.violated);
}

TEST(ZoneGraph, RaceTieIsPossible) {
  // x [1,3] and y [2,4] overlap: both orders possible, so "x always
  // first" is violated... the monitor flags y-before-x; check that the
  // overlapping race indeed allows y first.
  const Module m = gallery::diamond("x", DelayInterval::units(1, 3), "y",
                                    DelayInterval::units(2, 4));
  const Module mon = gallery::order_monitor("x", "y");
  const InvariantProperty bad("x before y", {{"fail", true}});
  const ZoneVerifyResult r = zone_verify({&m, &mon}, {&bad});
  EXPECT_TRUE(r.violated);
}

TEST(ZoneGraph, UrgencyForcesProgress) {
  // A single event with finite bounds in a loop never deadlocks and keeps
  // the zone count finite thanks to extrapolation.
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const EventId x = ts.add_event("x", DelayInterval::units(1, 2));
  ts.add_transition(s0, x, s0);
  ts.set_initial(s0);
  const Module m("loop", std::move(ts));
  const DeadlockFreedom dead;
  const ZoneVerifyResult r = zone_verify({&m}, {&dead});
  EXPECT_FALSE(r.violated);
  EXPECT_LT(r.zones_explored, 10u);
}

TEST(ZoneGraph, DeadlockDetected) {
  const Module m = gallery::chain({{"a", DelayInterval::units(1, 2)}});
  const DeadlockFreedom dead;
  const ZoneVerifyResult r = zone_verify({&m}, {&dead});
  EXPECT_TRUE(r.violated);
  EXPECT_EQ(r.description, "deadlock");
  EXPECT_EQ(r.trace_labels, (std::vector<std::string>{"a"}));
}

TEST(ZoneGraph, PersistencyViolationOnlyWhenTimedReachable) {
  // y [5,6] would disable x [1,2] — but x always fires first, so the
  // persistency violation is NOT timed-reachable.
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const StateId s2 = ts.add_state();
  const EventId x = ts.add_event("x", DelayInterval::units(1, 2));
  const EventId y = ts.add_event("y", DelayInterval::units(5, 6));
  ts.add_transition(s0, x, s1);
  ts.add_transition(s0, y, s2);  // firing y disables x
  ts.add_transition(s1, y, s2);
  ts.set_initial(s0);
  const Module m("race", std::move(ts));
  const PersistencyProperty pers;
  const ZoneVerifyResult r = zone_verify({&m}, {&pers});
  EXPECT_FALSE(r.violated);

  // Overlapping delays make it reachable.
  TransitionSystem ts2;
  const StateId t0 = ts2.add_state();
  const StateId t1 = ts2.add_state();
  const StateId t2 = ts2.add_state();
  const EventId x2 = ts2.add_event("x", DelayInterval::units(1, 4));
  const EventId y2 = ts2.add_event("y", DelayInterval::units(2, 6));
  ts2.add_transition(t0, x2, t1);
  ts2.add_transition(t0, y2, t2);
  ts2.add_transition(t1, y2, t2);
  ts2.set_initial(t0);
  const Module m2("race2", std::move(ts2));
  const ZoneVerifyResult r2 = zone_verify({&m2}, {&pers});
  EXPECT_TRUE(r2.violated);
}

TEST(ZoneGraph, ChokeOnlyCountsWhenTimedReachable) {
  // Producer wants x+ then x- then x+ again; a listener accepts one pulse
  // only.  The second x+ is a choke; it is timed-reachable here.
  TransitionSystem pts;
  const StateId p0 = pts.add_state();
  const StateId p1 = pts.add_state();
  const EventId up = pts.add_event("x+", DelayInterval::units(1, 2), EventKind::kOutput);
  const EventId dn = pts.add_event("x-", DelayInterval::units(1, 2), EventKind::kOutput);
  pts.add_transition(p0, up, p1);
  pts.add_transition(p1, dn, p0);
  pts.set_initial(p0);
  const Module producer("p", std::move(pts));

  TransitionSystem lts;
  const StateId l0 = lts.add_state();
  const StateId l1 = lts.add_state();
  const StateId l2 = lts.add_state();
  lts.add_transition(l0, lts.add_event("x+", DelayInterval::unbounded(), EventKind::kInput), l1);
  lts.add_transition(l1, lts.add_event("x-", DelayInterval::unbounded(), EventKind::kInput), l2);
  lts.set_initial(l0);
  const Module once("once", std::move(lts));

  const ZoneVerifyResult r = zone_verify({&producer, &once}, {});
  EXPECT_TRUE(r.violated);
  EXPECT_NE(r.description.find("refusal"), std::string::npos);
}

TEST(ZoneGraph, ZoneCountExceedsDiscreteStates) {
  const Module sys = gallery::intro_example();
  const ZoneVerifyResult r = zone_verify({&sys}, {});
  EXPECT_GE(r.zones_explored, r.discrete_states);
  EXPECT_GT(r.discrete_states, 0u);
}

}  // namespace
}  // namespace rtv
