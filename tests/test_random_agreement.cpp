// Cross-validation sweep: on random small timed systems every engine in
// the registry — relative-timing refinement, exact dense-time zones and
// digitized 64-bit ages — must agree.  Scenarios come from the seeded
// fuzz generator (rtv/fuzz/generator.hpp) and run through the campaign's
// differential oracle, so "agree" is the full contract: no contradictory
// definitive verdicts AND every counterexample trace replays through the
// composition.  Each failure message carries the case seed; replay it with
//
//   rtv fuzz --replay --seed <seed> --modules 3 --properties 2
#include <gtest/gtest.h>

#include "rtv/base/rng.hpp"
#include "rtv/fuzz/campaign.hpp"
#include "rtv/fuzz/generator.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/engine.hpp"

namespace rtv {
namespace {

class RandomAgreement : public ::testing::TestWithParam<int> {};

/// One generated obligation through all three engines.  kInconclusive is
/// accepted only for budget truncation (never expected at these sizes).
TEST_P(RandomAgreement, AllEnginesAgreeOnGeneratedScenarios) {
  fuzz::GeneratorConfig config;
  config.modules = 3;
  config.properties = 2;

  fuzz::CampaignOptions opt;
  opt.config = config;
  opt.minimize = false;

  const std::uint64_t seed =
      fuzz::case_seed(0xa9 + static_cast<std::uint64_t>(GetParam()), 0);
  const fuzz::Scenario sc = fuzz::generate(seed, config);
  const fuzz::CaseResult res = fuzz::run_case(seed, config, opt);
  EXPECT_FALSE(res.failure.has_value())
      << "seed " << seed << " (" << sc.describe()
      << "): " << (res.failure ? res.failure->detail : "");
  EXPECT_EQ(res.definitive, opt.engines.size())
      << "seed " << seed << " (" << sc.describe()
      << "): an engine came back inconclusive at smoke-test size";
}

/// Larger mixed-magnitude delays: constants past the old 16-bit discrete
/// age boundary (65535 ticks) against the zone engine.  Kept at 2^16 —
/// the digitized engine's runtime grows with the constants themselves
/// (tick-by-tick time steps), not with the state count, so bigger caps
/// belong in the nightly fuzz campaign with --timeout, not in tier-1.
TEST_P(RandomAgreement, AgreementHoldsWithLargeDelayConstants) {
  fuzz::GeneratorConfig config;
  config.modules = 2;
  config.events = 3;
  config.max_delay = Time{1} << 16;
  config.properties = 1;

  fuzz::CampaignOptions opt;
  opt.config = config;
  opt.engines = {"zone", "discrete"};  // refine covered above; keep this fast
  opt.minimize = false;

  const std::uint64_t seed =
      fuzz::case_seed(0xb7 + static_cast<std::uint64_t>(GetParam()), 1);
  const fuzz::CaseResult res = fuzz::run_case(seed, config, opt);
  EXPECT_FALSE(res.failure.has_value())
      << "seed " << seed << ": "
      << (res.failure ? res.failure->detail : "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAgreement, ::testing::Range(0, 40));

class RandomPersistency : public ::testing::TestWithParam<int> {};

TEST_P(RandomPersistency, RefinementMatchesZoneVerdict) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  // Conflict structure: x and y enabled together, y disables x; whether
  // the persistency violation is timed-reachable depends on the delays.
  const Time xlo = static_cast<Time>(rng.below(5)) * kTicksPerUnit;
  const Time xhi = xlo + static_cast<Time>(1 + rng.below(4)) * kTicksPerUnit;
  const Time ylo = static_cast<Time>(rng.below(5)) * kTicksPerUnit;
  const Time yhi = ylo + static_cast<Time>(1 + rng.below(4)) * kTicksPerUnit;
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const StateId s2 = ts.add_state();
  const EventId x = ts.add_event("x", DelayInterval(xlo, xhi));
  const EventId y = ts.add_event("y", DelayInterval(ylo, yhi));
  const EventId idle = ts.add_event("idle", DelayInterval::units(1, 2));
  ts.add_transition(s0, x, s1);
  ts.add_transition(s0, y, s2);
  ts.add_transition(s1, y, s2);
  ts.add_transition(s2, idle, s2);
  ts.set_initial(s0);
  const Module sys("conflict", std::move(ts));
  const PersistencyProperty pers;

  const Engine* refine = engine_registry().find("refine");
  const Engine* zone = engine_registry().find("zone");
  ASSERT_NE(refine, nullptr);
  ASSERT_NE(zone, nullptr);
  EngineRequest req;
  req.modules = {&sys};
  req.properties = {&pers};
  const EngineResult rt = refine->run(req);
  const EngineResult zn = zone->run(req);
  ASSERT_NE(rt.verdict, Verdict::kInconclusive);
  ASSERT_NE(zn.verdict, Verdict::kInconclusive);
  EXPECT_EQ(rt.verdict, zn.verdict)
      << "x [" << xlo << "," << xhi << "] y [" << ylo << "," << yhi << "]";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPersistency, ::testing::Range(0, 40));

}  // namespace
}  // namespace rtv
