// Cross-validation sweep: on random small timed systems the relative-timing
// refinement engine and the exact zone engine must agree.  Both run through
// the unified engine registry, so agreement is literal Verdict equality.
#include <gtest/gtest.h>

#include "rtv/base/rng.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/engine.hpp"

namespace rtv {
namespace {

/// Verdicts of the "refine" and "zone" registry engines on one obligation.
std::pair<EngineResult, EngineResult> run_refine_and_zone(
    const std::vector<const Module*>& modules,
    const std::vector<const SafetyProperty*>& properties,
    std::size_t max_refinements = 500) {
  const Engine* refine = engine_registry().find("refine");
  const Engine* zone = engine_registry().find("zone");
  EXPECT_NE(refine, nullptr);
  EXPECT_NE(zone, nullptr);
  EngineRequest req;
  req.modules = modules;
  req.properties = properties;
  req.max_refinements = max_refinements;
  return {refine->run(req), zone->run(req)};
}

/// Random acyclic "progress graph": two independent chains with random
/// delays whose events interleave, plus an ordering property between one
/// event of each chain.
Module random_two_chain_system(Rng& rng, std::string* first, std::string* then) {
  const int n1 = 2 + static_cast<int>(rng.below(2));
  const int n2 = 2 + static_cast<int>(rng.below(2));
  TransitionSystem ts;
  std::vector<EventId> chain1, chain2;
  for (int i = 0; i < n1; ++i) {
    const Time lo = static_cast<Time>(rng.below(4)) * kTicksPerUnit;
    const Time hi = lo + static_cast<Time>(1 + rng.below(4)) * kTicksPerUnit;
    chain1.push_back(ts.add_event("p" + std::to_string(i), DelayInterval(lo, hi)));
  }
  for (int i = 0; i < n2; ++i) {
    const Time lo = static_cast<Time>(rng.below(4)) * kTicksPerUnit;
    const Time hi = lo + static_cast<Time>(1 + rng.below(4)) * kTicksPerUnit;
    chain2.push_back(ts.add_event("q" + std::to_string(i), DelayInterval(lo, hi)));
  }
  // Product state space (i, j): progress along each chain.
  std::vector<std::vector<StateId>> grid(static_cast<std::size_t>(n1) + 1);
  for (int i = 0; i <= n1; ++i)
    for (int j = 0; j <= n2; ++j)
      grid[static_cast<std::size_t>(i)].push_back(
          ts.add_state("g" + std::to_string(i) + "_" + std::to_string(j)));
  for (int i = 0; i <= n1; ++i) {
    for (int j = 0; j <= n2; ++j) {
      if (i < n1)
        ts.add_transition(grid[i][j], chain1[static_cast<std::size_t>(i)],
                          grid[i + 1][j]);
      if (j < n2)
        ts.add_transition(grid[i][j], chain2[static_cast<std::size_t>(j)],
                          grid[i][j + 1]);
    }
  }
  // Keep the final state alive so deadlock-freedom is not the issue.
  const EventId idle = ts.add_event("idle", DelayInterval::units(1, 2));
  ts.add_transition(grid[static_cast<std::size_t>(n1)][static_cast<std::size_t>(n2)],
                    idle,
                    grid[static_cast<std::size_t>(n1)][static_cast<std::size_t>(n2)]);
  ts.set_initial(grid[0][0]);

  *first = "p" + std::to_string(rng.below(static_cast<std::uint64_t>(n1)));
  *then = "q" + std::to_string(rng.below(static_cast<std::uint64_t>(n2)));
  return Module("random", std::move(ts));
}

class RandomAgreement : public ::testing::TestWithParam<int> {};

TEST_P(RandomAgreement, RefinementMatchesZoneVerdict) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  std::string first, then;
  const Module sys = random_two_chain_system(rng, &first, &then);
  const Module mon = gallery::order_monitor(first, then);
  const InvariantProperty bad("order", {{"fail", true}});

  const auto [rt, zn] = run_refine_and_zone({&sys, &mon}, {&bad}, 300);

  ASSERT_NE(rt.verdict, Verdict::kInconclusive)
      << "seed " << GetParam() << " property " << first << " < " << then;
  ASSERT_NE(zn.verdict, Verdict::kInconclusive)
      << "seed " << GetParam() << " property " << first << " < " << then;
  EXPECT_EQ(rt.verdict, zn.verdict)
      << "seed " << GetParam() << " property " << first << " < " << then
      << " zone: " << zn.message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAgreement, ::testing::Range(0, 40));

class RandomPersistency : public ::testing::TestWithParam<int> {};

TEST_P(RandomPersistency, RefinementMatchesZoneVerdict) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  // Conflict structure: x and y enabled together, y disables x; whether
  // the persistency violation is timed-reachable depends on the delays.
  const Time xlo = static_cast<Time>(rng.below(5)) * kTicksPerUnit;
  const Time xhi = xlo + static_cast<Time>(1 + rng.below(4)) * kTicksPerUnit;
  const Time ylo = static_cast<Time>(rng.below(5)) * kTicksPerUnit;
  const Time yhi = ylo + static_cast<Time>(1 + rng.below(4)) * kTicksPerUnit;
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const StateId s2 = ts.add_state();
  const EventId x = ts.add_event("x", DelayInterval(xlo, xhi));
  const EventId y = ts.add_event("y", DelayInterval(ylo, yhi));
  const EventId idle = ts.add_event("idle", DelayInterval::units(1, 2));
  ts.add_transition(s0, x, s1);
  ts.add_transition(s0, y, s2);
  ts.add_transition(s1, y, s2);
  ts.add_transition(s2, idle, s2);
  ts.set_initial(s0);
  const Module sys("conflict", std::move(ts));
  const PersistencyProperty pers;

  const auto [rt, zn] = run_refine_and_zone({&sys}, {&pers});
  ASSERT_NE(rt.verdict, Verdict::kInconclusive);
  ASSERT_NE(zn.verdict, Verdict::kInconclusive);
  EXPECT_EQ(rt.verdict, zn.verdict)
      << "x [" << xlo << "," << xhi << "] y [" << ylo << "," << yhi << "]";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPersistency, ::testing::Range(0, 40));

}  // namespace
}  // namespace rtv
