#include "rtv/ts/compose.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "rtv/ts/gallery.hpp"

namespace rtv {
namespace {

/// Two-state toggler that alternates out+ / out-.
Module toggler(const std::string& sig, EventKind kind, DelayInterval d) {
  TransitionSystem ts;
  const StateId lo = ts.add_state("lo");
  const StateId hi = ts.add_state("hi");
  const EventId up = ts.add_event(sig + "+", d, kind);
  const EventId dn = ts.add_event(sig + "-", d, kind);
  ts.add_transition(lo, up, hi);
  ts.add_transition(hi, dn, lo);
  ts.set_initial(lo);
  ts.set_signal_names({sig});
  BitVec v0(1), v1(1);
  v1.set(0);
  ts.set_state_valuation(lo, v0);
  ts.set_state_valuation(hi, v1);
  return Module(sig + "-toggler", std::move(ts));
}

/// Accepts "x+" only; refusing "x-" after x+ creates a choke against a
/// producer that wants to toggle.
Module one_shot_listener(const std::string& sig) {
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const StateId s1 = ts.add_state();
  const EventId up =
      ts.add_event(sig + "+", DelayInterval::unbounded(), EventKind::kInput);
  ts.add_transition(s0, up, s1);
  ts.set_initial(s0);
  return Module(sig + "-listener", std::move(ts));
}

TEST(Compose, IndependentAlphabetsInterleave) {
  const Module a = toggler("a", EventKind::kOutput, DelayInterval::units(1, 2));
  const Module b = toggler("b", EventKind::kOutput, DelayInterval::units(1, 2));
  const Composition c = compose({&a, &b});
  EXPECT_EQ(c.ts.num_states(), 4u);
  EXPECT_EQ(c.ts.num_events(), 4u);
  EXPECT_FALSE(c.truncated);
}

TEST(Compose, SharedLabelSynchronises) {
  const Module p = toggler("x", EventKind::kOutput, DelayInterval::units(1, 2));
  const Module l = one_shot_listener("x");
  const Composition c = compose({&p, &l});
  // x+ synchronises; afterwards x- is refused by the listener (it has no
  // x- in its alphabet, so it does not participate -> x- proceeds freely).
  const EventId up = c.ts.event_by_label("x+");
  const EventId dn = c.ts.event_by_label("x-");
  const StateId s1 = *c.ts.successor(c.ts.initial(), up);
  EXPECT_TRUE(c.ts.is_enabled(s1, dn));
  // A second x+ requires the listener again: after x- it is stuck.
  const StateId s2 = *c.ts.successor(s1, dn);
  EXPECT_FALSE(c.ts.is_enabled(s2, up));
}

TEST(Compose, ChokeRecordedWhenListenerRefusesOutput) {
  // Listener participates in x+ only once; the producer wants to fire x+
  // again -> choke at the stuck state.
  TransitionSystem lts;
  const StateId l0 = lts.add_state();
  const StateId l1 = lts.add_state();
  const EventId lup =
      lts.add_event("x+", DelayInterval::unbounded(), EventKind::kInput);
  const EventId ldn =
      lts.add_event("x-", DelayInterval::unbounded(), EventKind::kInput);
  lts.add_transition(l0, lup, l1);
  lts.add_transition(l1, ldn, l0);  // accepts one full pulse, then x+ again
  lts.set_initial(l0);
  Module listener("listener", std::move(lts));

  // Producer fires x+ x- x+ x- ... but the listener above actually accepts
  // cyclically; truncate it to refuse the second x+.
  TransitionSystem l2;
  const StateId m0 = l2.add_state();
  const StateId m1 = l2.add_state();
  const StateId m2 = l2.add_state();
  l2.add_transition(m0, l2.add_event("x+", DelayInterval::unbounded(), EventKind::kInput), m1);
  l2.add_transition(m1, l2.add_event("x-", DelayInterval::unbounded(), EventKind::kInput), m2);
  l2.set_initial(m0);
  Module once("once", std::move(l2));

  const Module p = toggler("x", EventKind::kOutput, DelayInterval::units(1, 2));
  ComposeOptions opts;
  opts.track_chokes = true;
  const Composition c = compose({&p, &once}, opts);
  ASSERT_FALSE(c.chokes.empty());
  EXPECT_EQ(c.ts.label(c.chokes.front().event), "x+");
  EXPECT_EQ(c.module_names[c.chokes.front().blocker], "once");
}

TEST(Compose, DelaysIntersectAcrossParticipants) {
  const Module p = toggler("x", EventKind::kOutput, DelayInterval::units(2, 9));
  // Listener with a tighter delay annotation on the same label.
  TransitionSystem lts;
  const StateId l0 = lts.add_state();
  const StateId l1 = lts.add_state();
  const EventId lup =
      lts.add_event("x+", DelayInterval::units(1, 5), EventKind::kInput);
  lts.add_transition(l0, lup, l1);
  lts.set_initial(l0);
  Module listener("l", std::move(lts));

  const Composition c = compose({&p, &listener});
  const EventId up = c.ts.event_by_label("x+");
  EXPECT_EQ(c.ts.delay(up), DelayInterval::units(2, 5));
}

TEST(Compose, ValuationsMergeBySignalName) {
  const Module a = toggler("a", EventKind::kOutput, DelayInterval::units(1, 2));
  const Module b = toggler("b", EventKind::kOutput, DelayInterval::units(1, 2));
  const Composition c = compose({&a, &b});
  ASSERT_TRUE(c.ts.has_valuations());
  const std::size_t ia = c.ts.signal_index("a");
  const std::size_t ib = c.ts.signal_index("b");
  const StateId s = *c.ts.successor(c.ts.initial(), c.ts.event_by_label("a+"));
  EXPECT_TRUE(c.ts.valuation(s).test(ia));
  EXPECT_FALSE(c.ts.valuation(s).test(ib));
}

TEST(Compose, OutputKindWinsOverInput) {
  const Module p = toggler("x", EventKind::kOutput, DelayInterval::units(1, 2));
  const Module l = one_shot_listener("x");
  const Composition c = compose({&p, &l});
  EXPECT_EQ(c.ts.event(c.ts.event_by_label("x+")).kind, EventKind::kOutput);
}

TEST(Compose, DescribeStateListsComponents) {
  const Module a = toggler("a", EventKind::kOutput, DelayInterval::units(1, 2));
  const Module b = toggler("b", EventKind::kOutput, DelayInterval::units(1, 2));
  const Composition c = compose({&a, &b});
  const std::string desc = c.describe_state(c.ts.initial());
  EXPECT_NE(desc.find("a-toggler"), std::string::npos);
  EXPECT_NE(desc.find("b-toggler"), std::string::npos);
}

TEST(Compose, TruncationFlag) {
  const Module a = toggler("a", EventKind::kOutput, DelayInterval::units(1, 2));
  const Module b = toggler("b", EventKind::kOutput, DelayInterval::units(1, 2));
  ComposeOptions opts;
  opts.max_states = 2;
  const Composition c = compose({&a, &b}, opts);
  EXPECT_TRUE(c.truncated);
}

TEST(Compose, StateBudgetIsAHardCeiling) {
  // The cap is enforced at insertion: a truncated composition never holds
  // more states than the budget (it used to overshoot by a frontier layer,
  // since the check only ran at pop time).
  const Module a = toggler("a", EventKind::kOutput, DelayInterval::units(1, 2));
  const Module b = toggler("b", EventKind::kOutput, DelayInterval::units(1, 2));
  const Module c = toggler("c", EventKind::kOutput, DelayInterval::units(1, 2));
  ComposeOptions opts;
  opts.max_states = 3;  // the full product has 8 states
  const Composition comp = compose({&a, &b, &c}, opts);
  EXPECT_TRUE(comp.truncated);
  EXPECT_LE(comp.ts.num_states(), 3u);
}

TEST(Compose, ContradictoryDelayBoundsFailLoudly) {
  // Two modules declaring disjoint bounds for the same label used to
  // produce a silently-empty intersection (lo > hi), leaving the event
  // forever unfireable.  compose() must refuse the system instead, naming
  // the label and the offending modules.
  const Module p = toggler("x", EventKind::kOutput, DelayInterval::units(1, 2));
  TransitionSystem lts;
  const StateId l0 = lts.add_state();
  const StateId l1 = lts.add_state();
  lts.add_transition(
      l0, lts.add_event("x+", DelayInterval::units(5, 9), EventKind::kInput),
      l1);
  lts.set_initial(l0);
  const Module listener("late-listener", std::move(lts));

  try {
    compose({&p, &listener});
    FAIL() << "compose accepted an empty delay intersection";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x+"), std::string::npos) << what;
    EXPECT_NE(what.find("x-toggler"), std::string::npos) << what;
    EXPECT_NE(what.find("late-listener"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace rtv
