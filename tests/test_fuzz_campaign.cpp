// Differential campaign end-to-end: a deliberately lying engine must be
// caught and auto-minimized, broken counterexample traces and throwing
// engines must surface as failures, and case-limited campaigns must be
// bit-reproducible (fingerprint contract).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "rtv/base/json.hpp"
#include "rtv/fuzz/campaign.hpp"
#include "rtv/verify/engine.hpp"

namespace rtv::fuzz {
namespace {

/// An engine that always claims kVerified — a stand-in for a soundness bug
/// that misses violations.  The campaign oracle must flag it the first
/// time an honest engine proves a violation.
class AlwaysVerifiedEngine : public Engine {
 public:
  std::string_view name() const override { return "liar_verified"; }
  std::string_view description() const override {
    return "test double: claims every obligation verified";
  }
  EngineResult run(const EngineRequest&) const override {
    EngineResult r;
    r.verdict = Verdict::kVerified;
    r.message = "liar";
    return r;
  }
};

/// An engine that claims kViolated with a counterexample that cannot
/// replay (unknown label).  Exercises the trace-replay oracle.
class BogusTraceEngine : public Engine {
 public:
  std::string_view name() const override { return "liar_trace"; }
  std::string_view description() const override {
    return "test double: fabricates non-replayable counterexamples";
  }
  EngineResult run(const EngineRequest&) const override {
    EngineResult r;
    r.verdict = Verdict::kViolated;
    r.trace_labels = {"no_such_event"};
    return r;
  }
};

class ThrowingEngine : public Engine {
 public:
  std::string_view name() const override { return "liar_throw"; }
  std::string_view description() const override {
    return "test double: raises instead of answering";
  }
  EngineResult run(const EngineRequest&) const override {
    throw std::runtime_error("injected engine defect");
  }
};

class FuzzCampaign : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    register_engine(std::make_unique<AlwaysVerifiedEngine>());
    register_engine(std::make_unique<BogusTraceEngine>());
    register_engine(std::make_unique<ThrowingEngine>());
  }
};

TEST_F(FuzzCampaign, InjectedUnsoundEngineIsCaughtAndMinimized) {
  CampaignOptions opt;
  opt.seed = 1;
  opt.cases = 40;
  opt.engines = {"zone", "liar_verified"};
  opt.minimize = true;

  const CampaignReport report = run_campaign(opt);
  ASSERT_FALSE(report.ok())
      << "an engine that never reports violations must disagree within "
      << opt.cases << " default-config cases";
  const CampaignFailure& f = report.failures.front();
  EXPECT_EQ(f.kind, FailureKind::kDisagreement);
  EXPECT_EQ(f.verdicts.size(), 2u);

  // The minimizer may only shrink, and the reproducer it emits must still
  // fail when replayed standalone from (seed, minimized config).
  EXPECT_LE(config_size(f.minimized), config_size(f.config));
  CampaignOptions replay = opt;
  replay.minimize = false;
  const CaseResult again = run_case(f.seed, f.minimized, replay);
  ASSERT_TRUE(again.failure.has_value());
  EXPECT_EQ(again.failure->kind, FailureKind::kDisagreement);
}

TEST_F(FuzzCampaign, NonReplayableTraceIsAFailure) {
  CampaignOptions opt;
  opt.engines = {"liar_trace"};
  opt.minimize = false;
  const CaseResult res = run_case(case_seed(3, 0), GeneratorConfig{}, opt);
  ASSERT_TRUE(res.failure.has_value());
  EXPECT_EQ(res.failure->kind, FailureKind::kBadTrace);
  EXPECT_NE(res.failure->detail.find("no_such_event"), std::string::npos);
}

TEST_F(FuzzCampaign, ThrowingEngineIsAFailure) {
  CampaignOptions opt;
  opt.engines = {"discrete", "liar_throw"};
  opt.minimize = false;
  const CaseResult res = run_case(case_seed(3, 1), GeneratorConfig{}, opt);
  ASSERT_TRUE(res.failure.has_value());
  EXPECT_EQ(res.failure->kind, FailureKind::kEngineError);
}

TEST_F(FuzzCampaign, CleanCampaignAgreesAcrossAllThreeEngines) {
  CampaignOptions opt;
  opt.seed = 2026;
  opt.cases = 60;
  opt.config.modules = 3;
  opt.config.properties = 2;
  opt.jobs = 2;
  const CampaignReport report = run_campaign(opt);
  EXPECT_TRUE(report.ok()) << report.to_json();
  EXPECT_EQ(report.cases, 60u);
  EXPECT_GT(report.definitive_verdicts, 0u);
}

TEST_F(FuzzCampaign, CaseLimitedCampaignsAreReproducible) {
  CampaignOptions opt;
  opt.seed = 11;
  opt.cases = 30;
  const CampaignReport a = run_campaign(opt);
  const CampaignReport b = run_campaign(opt);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  CampaignOptions other = opt;
  other.seed = 12;
  EXPECT_NE(run_campaign(other).fingerprint(), a.fingerprint());

  // Reports parse as JSON and carry the schema header.
  const json::Value parsed = json::parse(a.to_json(), "campaign report");
  EXPECT_EQ(json::require(parsed, "schema", json::Value::Kind::kString,
                          "schema tag", "campaign report")
                .string,
            CampaignReport::kSchemaName);
}

// Minimized reproducers banked from the first real campaigns: each caught
// a genuine refinement-engine soundness bug, fixed in the commit that
// added it here.  All three engines must agree (and replay) forever after.
struct BankedFinding {
  const char* what;
  std::uint64_t seed;
  const char* config_json;
};

TEST_F(FuzzCampaign, BankedFindingsStayFixed) {
  static const BankedFinding kFindings[] = {
      {// Self-loop pending deadlines charged against interned traces +
       // choked outputs anchored at the refusal point (trace_timing.cpp):
       // refine claimed VERIFIED on a reachable refusal.
       "self-loop deadline / choke anchoring", 15632277821397755268ULL,
       R"({"schema":"rtv-fuzz-config","modules":2,"events":1,"max_delay":16,)"
       R"("properties":0,"unbounded_p":0,"share_p":0.3,"point_delays":true,)"
       R"("gates":true,"deadlock_check":false,"persistency_check":false})"},
      {// A [0,0] self-loop pins time at its enabling instant; the blanket
       // self-loop exemption made refine claim a VIOLATED that dense time
       // forbids.
       "zero-deadline self-loop pins time", 1454460304657522376ULL,
       R"({"schema":"rtv-fuzz-config","modules":3,"events":2,"max_delay":1,)"
       R"("properties":0,"unbounded_p":0.1,"share_p":0.3,"point_delays":false,)"
       R"("gates":true,"deadlock_check":false,"persistency_check":false})"},
      {// blocked_by_age substituted -cap_ for an extrapolated (kGapInf)
       // wave gap — unsound for events whose lower bound exceeds the cap
       // (lazy_ts.cpp): refine pruned a reachable refusal.
       "age-rule gap extrapolation past the cap", 3138098403129281633ULL,
       R"({"schema":"rtv-fuzz-config","modules":2,"events":4,"max_delay":16,)"
       R"("properties":0,"unbounded_p":0.1,"share_p":0.3,"point_delays":false,)"
       R"("gates":false,"deadlock_check":false,"persistency_check":false})"},
  };
  CampaignOptions opt;
  opt.minimize = false;
  for (const BankedFinding& f : kFindings) {
    const GeneratorConfig config = GeneratorConfig::from_json(f.config_json);
    const CaseResult res = run_case(f.seed, config, opt);
    EXPECT_FALSE(res.failure.has_value())
        << f.what << " (seed " << f.seed
        << "): " << (res.failure ? res.failure->detail : "");
    EXPECT_EQ(res.definitive, opt.engines.size()) << f.what;
  }
}

TEST_F(FuzzCampaign, RejectsUnboundedOrUnknownCampaigns) {
  CampaignOptions no_limit;
  no_limit.cases = 0;
  no_limit.seconds = 0.0;
  EXPECT_THROW(run_campaign(no_limit), std::invalid_argument);

  CampaignOptions unknown;
  unknown.cases = 1;
  unknown.engines = {"zone", "no_such_engine"};
  EXPECT_THROW(run_campaign(unknown), std::invalid_argument);
}

}  // namespace
}  // namespace rtv::fuzz
