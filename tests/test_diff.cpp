#include "rtv/timing/difference_constraints.hpp"

#include <gtest/gtest.h>

namespace rtv {
namespace {

TEST(DiffSystem, EmptySystemIsFeasible) {
  DiffSystem sys(3);
  const auto r = sys.solve();
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.solution.size(), 3u);
}

TEST(DiffSystem, SimpleChainFeasible) {
  // t1 - t0 in [1, 2], t2 - t1 in [1, 2].
  DiffSystem sys(3);
  sys.add_bounds(1, 0, 1, 2);
  sys.add_bounds(2, 1, 1, 2);
  const auto r = sys.solve();
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.solution[1] - r.solution[0], 1);
  EXPECT_LE(r.solution[1] - r.solution[0], 2);
  EXPECT_GE(r.solution[2] - r.solution[1], 1);
  EXPECT_LE(r.solution[2] - r.solution[1], 2);
}

TEST(DiffSystem, ContradictionDetected) {
  // t1 - t0 >= 5 and t1 - t0 <= 3.
  DiffSystem sys(2);
  sys.add(0, 1, -5);  // t0 - t1 <= -5
  sys.add(1, 0, 3);   // t1 - t0 <= 3
  const auto r = sys.solve();
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.core.empty());
}

TEST(DiffSystem, NegativeCycleCoreIsACycle) {
  DiffSystem sys(3);
  sys.add(1, 0, 2, 100);    // t1 <= t0 + 2
  sys.add(2, 1, 2, 101);    // t2 <= t1 + 2
  sys.add(0, 2, -5, 102);   // t0 <= t2 - 5  => cycle weight -1
  const auto r = sys.solve();
  ASSERT_FALSE(r.feasible);
  // The reported edges must chain head-to-tail and sum negative.
  Time total = 0;
  for (std::size_t k = 0; k < r.core.size(); ++k) {
    const DiffConstraint& c = sys.constraints()[r.core[k]];
    const DiffConstraint& next =
        sys.constraints()[r.core[(k + 1) % r.core.size()]];
    EXPECT_EQ(c.a, next.b);
    total += c.w;
  }
  EXPECT_LT(total, 0);
}

TEST(DiffSystem, InfiniteConstraintsIgnored) {
  DiffSystem sys(2);
  sys.add(1, 0, kTimeInfinity);
  EXPECT_EQ(sys.num_constraints(), 0u);
  sys.add_bounds(1, 0, 1, kTimeInfinity);  // only the lower bound lands
  EXPECT_EQ(sys.num_constraints(), 1u);
}

TEST(DiffSystem, MaxSeparationExact) {
  // t1 - t0 in [1, 2], t2 - t1 in [3, 5]: max(t2 - t0) = 7, min = 4.
  DiffSystem sys(3);
  sys.add_bounds(1, 0, 1, 2);
  sys.add_bounds(2, 1, 3, 5);
  EXPECT_EQ(sys.max_separation(2, 0), 7);
  // max(t0 - t2) = -(min separation) = -4.
  EXPECT_EQ(sys.max_separation(0, 2), -4);
}

TEST(DiffSystem, MaxSeparationUnbounded) {
  DiffSystem sys(2);
  sys.add(0, 1, 0);  // t0 <= t1 only
  EXPECT_EQ(sys.max_separation(1, 0), kTimeInfinity);
}

TEST(DiffSystem, MaxSeparationSelfIsZero) {
  DiffSystem sys(2);
  sys.add_bounds(1, 0, 1, 2);
  EXPECT_EQ(sys.max_separation(1, 1), 0);
}

TEST(DiffSystem, DiamondCorrelationRespected) {
  // Two paths from 0 to 3 share endpoints; separation between the two
  // middle nodes is bounded by both paths.
  DiffSystem sys(4);
  sys.add_bounds(1, 0, 1, 4);
  sys.add_bounds(2, 0, 2, 3);
  sys.add_bounds(3, 1, 1, 1);
  sys.add_bounds(3, 2, 1, 1);
  // t1 - t2: t1 = t3 - 1, t2 = t3 - 1 => equal in every solution.
  EXPECT_EQ(sys.max_separation(1, 2), 0);
  EXPECT_EQ(sys.max_separation(2, 1), 0);
}

TEST(DiffSystem, TagsPreserved) {
  DiffSystem sys(2);
  sys.add(1, 0, 5, 42);
  EXPECT_EQ(sys.constraints()[0].tag, 42);
}

}  // namespace
}  // namespace rtv
