#include "rtv/stg/astg.hpp"

#include <gtest/gtest.h>

#include "rtv/stg/elaborate.hpp"
#include "rtv/stg/library.hpp"

namespace rtv {
namespace {

const char* kToggle = R"(
.model toggle
.outputs x
.graph
x+ x-    # pulse
x- x+
.marking { <x-,x+> }
.end
)";

TEST(Astg, ParsesSimpleCycle) {
  const Stg stg = parse_astg_string(kToggle);
  EXPECT_EQ(stg.name(), "toggle");
  EXPECT_EQ(stg.num_transitions(), 2u);
  EXPECT_EQ(stg.num_places(), 2u);
  const Module m = elaborate(stg);
  EXPECT_EQ(m.ts().num_states(), 2u);
  EXPECT_TRUE(m.ts().event_by_label("x+").valid());
}

TEST(Astg, DelaysAndInitialValues) {
  const Stg stg = parse_astg_string(R"(
.model timed
.outputs x
.initial x
.graph
x- x+
x+ x-
.marking { <x+,x-> }
.delay x- 1 2
.delay x+ 5 inf
.end
)");
  EXPECT_TRUE(stg.initial_value("x"));
  const Module m = elaborate(stg);
  EXPECT_EQ(m.ts().delay(m.ts().event_by_label("x-")), DelayInterval::units(1, 2));
  const DelayInterval up = m.ts().delay(m.ts().event_by_label("x+"));
  EXPECT_EQ(up.lo(), ticks_from_units(5));
  EXPECT_FALSE(up.upper_bounded());
  // Initially high: x- fires first.
  EXPECT_EQ(m.ts().enabled_events(m.ts().initial()).size(), 1u);
  EXPECT_EQ(m.ts().label(m.ts().enabled_events(m.ts().initial())[0]), "x-");
}

TEST(Astg, ExplicitPlacesAndChoice) {
  const Stg stg = parse_astg_string(R"(
.model choice
.inputs a b
.outputs c
.graph
p0 a+ b+
a+ c+
b+ c+/2
c+ p1
c+/2 p1
.marking { p0 }
.end
)");
  // a+ and b+ are in free choice; both lead to a c+ occurrence.
  const Module m = elaborate(stg);
  EXPECT_EQ(m.ts().enabled_events(m.ts().initial()).size(), 2u);
  EXPECT_EQ(stg.num_transitions(), 4u);  // a+, b+, c+, c+/2
}

TEST(Astg, DummiesSupported) {
  const Stg stg = parse_astg_string(R"(
.model dum
.outputs x
.dummy tau
.graph
p0 tau
tau x+
x+ x-
x- p0
.marking { p0 }
.end
)");
  const Module m = elaborate(stg);
  EXPECT_TRUE(m.ts().event_by_label("tau").valid());
}

TEST(Astg, RoundTripPreservesBehaviour) {
  const Stg original = stg_library::make_in("V", "A");
  const std::string text = write_astg(original);
  const Stg parsed = parse_astg_string(text);
  const Module a = elaborate(original);
  const Module b = elaborate(parsed);
  EXPECT_EQ(a.ts().num_states(), b.ts().num_states());
  EXPECT_EQ(a.ts().num_transitions(), b.ts().num_transitions());
  EXPECT_EQ(a.ts().num_events(), b.ts().num_events());
  // Delays survive the round trip.
  EXPECT_EQ(a.ts().delay(a.ts().event_by_label("V-")),
            b.ts().delay(b.ts().event_by_label("V-")));
  // Initial signal values survive.
  EXPECT_EQ(a.ts().valuation(a.ts().initial()).test(a.ts().signal_index("V")),
            b.ts().valuation(b.ts().initial()).test(b.ts().signal_index("V")));
}

TEST(Astg, RoundTripAllLibraryModels) {
  for (const Stg& stg :
       {stg_library::make_in("V", "A"), stg_library::make_out("V", "A"),
        stg_library::make_ain("V", "A"), stg_library::make_aout("V", "A")}) {
    const std::string text = write_astg(stg);
    const Stg parsed = parse_astg_string(text);
    EXPECT_EQ(elaborate(stg).ts().num_states(),
              elaborate(parsed).ts().num_states())
        << stg.name();
  }
}

TEST(Astg, ErrorsAreReported) {
  EXPECT_THROW(parse_astg_string(".model m\n.graph\nonly_one_token\n.end\n"),
               std::runtime_error);
  EXPECT_THROW(parse_astg_string(
                   ".model m\n.outputs x\n.graph\nx+ x-\nx- x+\n"
                   ".marking { <x-,x+> }\n.delay y+ 1 2\n.end\n"),
               std::runtime_error);
  EXPECT_THROW(parse_astg_string(
                   ".model m\n.outputs x\n.graph\nx+ x-\nx- x+\n"
                   ".marking { nowhere }\n.end\n"),
               std::runtime_error);
}

TEST(Astg, MarkingOnExplicitPlace) {
  const Stg stg = parse_astg_string(R"(
.model m
.outputs x
.graph
start x+
x+ start
.marking { start }
.end
)");
  EXPECT_EQ(stg.num_places(), 1u);
  EXPECT_TRUE(stg.initially_marked(PlaceId(0)));
}

}  // namespace
}  // namespace rtv
