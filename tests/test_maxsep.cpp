#include "rtv/timing/maxsep.hpp"

#include <gtest/gtest.h>

#include "rtv/base/rng.hpp"
#include "rtv/timing/orderings.hpp"

namespace rtv {
namespace {

CesEvent ev(const std::string& label, double lo, double hi,
            std::vector<int> preds = {}) {
  CesEvent e;
  e.label = label;
  e.delay = hi < 0 ? DelayInterval(ticks_from_units(lo), kTimeInfinity)
                   : DelayInterval::units(lo, hi);
  e.preds = std::move(preds);
  return e;
}

TEST(MaxSep, ChainSeparation) {
  // a [1,2] -> b [3,5]: max(t_b - t_a) = 5, max(t_a - t_b) = -3.
  Ces ces;
  ces.events = {ev("a", 1, 2), ev("b", 3, 5, {0})};
  EXPECT_EQ(max_separation(ces, 1, 0).separation, ticks_from_units(5));
  EXPECT_EQ(max_separation(ces, 0, 1).separation, ticks_from_units(-3));
  EXPECT_TRUE(always_strictly_before(ces, 0, 1));
  EXPECT_FALSE(always_strictly_before(ces, 1, 0));
}

TEST(MaxSep, IndependentSources) {
  // a [2.5,3] vs b [1,2]: max(t_b - t_a) = 2 - 2.5 = -0.5 => b always first.
  Ces ces;
  ces.events = {ev("a", 2.5, 3), ev("b", 1, 2)};
  EXPECT_EQ(max_separation(ces, 1, 0).separation, ticks_from_units(-0.5));
  EXPECT_TRUE(always_strictly_before(ces, 1, 0));
}

TEST(MaxSep, IntroExampleOrdering) {
  // The paper's introductory property: g always precedes d.
  // a [2.5,3] -> c [1,2] -> d [0,inf);  b [1,2] -> g [0.5,0.5].
  Ces ces;
  ces.events = {ev("a", 2.5, 3), ev("c", 1, 2, {0}), ev("d", 0, -1, {1}),
                ev("b", 1, 2), ev("g", 0.5, 0.5, {3})};
  // max(t_g - t_d) = 2.5 - 3.5 = -1 < 0.
  EXPECT_EQ(max_separation(ces, 4, 2).separation, ticks_from_units(-1));
  EXPECT_TRUE(always_strictly_before(ces, 4, 2));
}

TEST(MaxSep, SharedAncestorCorrelation) {
  // r [0,10] -> x [1,1] and r -> y [2,2]: although r's firing time is very
  // loose, x and y share it, so t_y - t_x == 1 exactly.
  Ces ces;
  ces.events = {ev("r", 0, 10), ev("x", 1, 1, {0}), ev("y", 2, 2, {0})};
  EXPECT_EQ(max_separation(ces, 2, 1).separation, ticks_from_units(1));
  EXPECT_EQ(max_separation(ces, 1, 2).separation, ticks_from_units(-1));
}

TEST(MaxSep, MaxCausalityJoin) {
  // j waits for both a [1,2] and b [3,4]; j's delay [1,1].
  // t_j = max(t_a, t_b) + 1 in [4, 5]; max(t_j - t_a) = 5 - 1 = 4.
  Ces ces;
  ces.events = {ev("a", 1, 2), ev("b", 3, 4), ev("j", 1, 1, {0, 1})};
  EXPECT_EQ(max_separation(ces, 2, 0).separation, ticks_from_units(4));
  // j fires after b by exactly [1,1] when b dominates, but a could fire
  // later than... a <= 2 < b's min 3, so b always dominates: t_j - t_b = 1.
  EXPECT_EQ(max_separation(ces, 2, 1).separation, ticks_from_units(1));
}

TEST(MaxSep, JoinWithGenuineChoice) {
  // a [1,4], b [2,3], join j [1,1] on both: either may dominate.
  Ces ces;
  ces.events = {ev("a", 1, 4), ev("b", 2, 3), ev("j", 1, 1, {0, 1})};
  // max(t_j - t_b): maximised when a = 4 dominates, b = 2: 4+1-2 = 3.
  EXPECT_EQ(max_separation(ces, 2, 1).separation, ticks_from_units(3));
  // max(t_j - t_a): b = 3 dominates, a = 1: 3+1-1 = 3.
  EXPECT_EQ(max_separation(ces, 2, 0).separation, ticks_from_units(3));
  EXPECT_GT(max_separation(ces, 2, 0).combinations, 1u);
}

TEST(MaxSep, UnboundedDelayGivesInfiniteSeparation) {
  Ces ces;
  ces.events = {ev("a", 1, -1), ev("b", 1, 2)};
  EXPECT_EQ(max_separation(ces, 0, 1).separation, kTimeInfinity);
}

TEST(MaxSep, SelfSeparationIsZero) {
  Ces ces;
  ces.events = {ev("a", 1, 2)};
  EXPECT_EQ(max_separation(ces, 0, 0).separation, 0);
}

TEST(MaxSep, FallbackBoundIsConservative) {
  // Force the fallback with max_combinations = 0 on a correlated graph:
  // the conservative bound must be >= the exact separation.
  Ces ces;
  ces.events = {ev("r", 0, 10), ev("x", 1, 1, {0}), ev("y", 2, 2, {0})};
  const MaxSepResult exact = max_separation(ces, 2, 1);
  Ces ces2 = ces;
  // Add a second predecessor pair to create choices, then starve the budget.
  ces2.events.push_back(ev("j", 1, 2, {1, 2}));
  const MaxSepResult forced = max_separation(ces2, 3, 1, /*max_combinations=*/0);
  EXPECT_FALSE(forced.exact);
  const MaxSepResult true_val = max_separation(ces2, 3, 1);
  EXPECT_TRUE(true_val.exact);
  EXPECT_GE(forced.separation, true_val.separation);
  EXPECT_GE(exact.separation, ticks_from_units(1));
}

// Property sweep: on random forests, the exact max separation dominates
// randomly sampled executions and is dominated by the interval bound.
class MaxSepRandom : public ::testing::TestWithParam<int> {};

TEST_P(MaxSepRandom, SampledSeparationsNeverExceedExact) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  // Random CES: each event picks up to 2 predecessors among earlier events.
  Ces ces;
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    const double lo = static_cast<double>(rng.below(4));
    const double hi = lo + static_cast<double>(rng.below(4));
    std::vector<int> preds;
    if (i > 0 && rng.chance(0.8)) preds.push_back(static_cast<int>(rng.below(i)));
    if (i > 1 && rng.chance(0.4)) {
      const int p = static_cast<int>(rng.below(i));
      if (std::find(preds.begin(), preds.end(), p) == preds.end())
        preds.push_back(p);
    }
    ces.events.push_back(ev("e" + std::to_string(i), lo, hi, std::move(preds)));
  }
  const CesBounds bounds = propagate_bounds(ces);

  // Sample concrete executions.
  std::vector<Time> t(n);
  for (int trial = 0; trial < 200; ++trial) {
    for (int i = 0; i < n; ++i) {
      Time enab = 0;
      for (int p : ces.events[i].preds) enab = std::max(enab, t[p]);
      t[i] = enab + rng.sample_delay(ces.events[i].delay);
    }
    for (int a = 0; a < n; ++a) {
      ASSERT_GE(t[a], bounds.earliest[a]);
      if (bounds.latest[a] < kTimeInfinity) {
        ASSERT_LE(t[a], bounds.latest[a]);
      }
      for (int b = 0; b < n; ++b) {
        const MaxSepResult ms = max_separation(ces, a, b);
        ASSERT_GE(ms.separation, t[a] - t[b])
            << "pair (" << a << "," << b << ") trial " << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxSepRandom, ::testing::Range(0, 12));

TEST(CesOrderings, DerivedOrderingsMatchMaxSep) {
  Ces ces;
  ces.events = {ev("a", 2.5, 3), ev("c", 1, 2, {0}), ev("d", 0, -1, {1}),
                ev("b", 1, 2), ev("g", 0.5, 0.5, {3})};
  const auto orderings = derive_ces_orderings(ces);
  // Expected: b and g before a, c, d (b <= 2, g <= 2.5 < a >= 2.5 ... only
  // strict ones count).  At minimum g-before-d must be derived.
  bool g_before_d = false;
  for (const CesOrdering& o : orderings) {
    EXPECT_TRUE(always_strictly_before(ces, o.before, o.after));
    if (ces.events[static_cast<std::size_t>(o.before)].label == "g" &&
        ces.events[static_cast<std::size_t>(o.after)].label == "d")
      g_before_d = true;
  }
  EXPECT_TRUE(g_before_d);
  const std::string text = format_ces_orderings(ces, orderings);
  EXPECT_NE(text.find("g before d"), std::string::npos);
}

}  // namespace
}  // namespace rtv
