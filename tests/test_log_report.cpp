#include <gtest/gtest.h>

#include <algorithm>

#include "rtv/base/log.hpp"
#include "rtv/verify/report.hpp"

namespace rtv {
namespace {

TEST(Log, LevelGating) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold macro bodies are not evaluated.
  int evaluated = 0;
  RTV_DEBUG << "never " << ++evaluated;
  EXPECT_EQ(evaluated, 0);
  set_log_level(LogLevel::kDebug);
  RTV_DEBUG << "yes " << ++evaluated;
  EXPECT_EQ(evaluated, 1);
  set_log_level(prev);
}

TEST(Report, TableAlignsColumns) {
  ExperimentRow a;
  a.name = "short";
  a.verdict = Verdict::kVerified;
  a.seconds = 1.5;
  a.refinements = 3;
  a.states = 42;
  ExperimentRow b;
  b.name = "a much longer experiment name here";
  b.verdict = Verdict::kViolated;
  const std::string t = format_table({a, b});
  EXPECT_NE(t.find("VERIFIED"), std::string::npos);
  EXPECT_NE(t.find("VIOLATED"), std::string::npos);
  EXPECT_NE(t.find("1.500 s"), std::string::npos);
  EXPECT_NE(t.find("42"), std::string::npos);
  // Header present.
  EXPECT_NE(t.find("Experiment"), std::string::npos);
}

TEST(Report, TableRendersInconclusiveRows) {
  ExperimentRow r;
  r.name = "budget-limited run";
  r.verdict = Verdict::kInconclusive;
  r.seconds = 0.25;
  const std::string t = format_table({r});
  EXPECT_NE(t.find("INCONCLUSIVE"), std::string::npos);
  EXPECT_NE(t.find("budget-limited run"), std::string::npos);
  EXPECT_NE(t.find("0.250 s"), std::string::npos);
}

TEST(Report, TableWithNoRowsIsHeaderOnly) {
  const std::string t = format_table(std::vector<ExperimentRow>{});
  EXPECT_NE(t.find("Experiment"), std::string::npos);
  EXPECT_NE(t.find("Verdict"), std::string::npos);
  EXPECT_EQ(t.find("VERIFIED"), std::string::npos);
  EXPECT_EQ(t.find("INCONCLUSIVE"), std::string::npos);
  // Exactly the header line and its rule.
  EXPECT_EQ(std::count(t.begin(), t.end(), '\n'), 2);
}

TEST(Report, SummarizeVerificationResultInconclusive) {
  VerificationResult r;
  r.verdict = Verdict::kInconclusive;
  r.truncated_reason = stop_reason::kStateBudget;
  r.refinements = 2;
  r.composed_states = 17;
  const ExperimentRow row = summarize("truncated", r);
  EXPECT_EQ(row.verdict, Verdict::kInconclusive);
  EXPECT_EQ(row.refinements, 2);
  EXPECT_EQ(row.states, 17u);
}

TEST(Report, SummarizeEngineResultPullsRefineStats) {
  EngineResult r;
  r.verdict = Verdict::kVerified;
  r.seconds = 0.5;
  r.states_explored = 999;
  RefineEngineStats st;
  st.refinements = 4;
  st.composed_states = 123;
  r.stats = st;
  const ExperimentRow row = summarize("refined", r);
  EXPECT_EQ(row.refinements, 4);
  EXPECT_EQ(row.states, 123u);

  EngineResult zone;
  zone.verdict = Verdict::kInconclusive;
  zone.states_explored = 55;
  zone.stats = ZoneEngineStats{11};
  const ExperimentRow zrow = summarize("zoned", zone);
  EXPECT_EQ(zrow.refinements, 0);
  EXPECT_EQ(zrow.states, 55u);
  EXPECT_EQ(zrow.verdict, Verdict::kInconclusive);
}

TEST(Report, SuiteReportTableHandlesEmptyAndInconclusive) {
  SuiteReport empty;
  const std::string t0 = format_table(empty);
  EXPECT_NE(t0.find("Obligation"), std::string::npos);
  EXPECT_NE(t0.find("overall: VERIFIED"), std::string::npos);

  SuiteReport report;
  SuiteRecord rec;
  rec.obligation = "stuck";
  rec.engine = "discrete";
  rec.result.verdict = Verdict::kInconclusive;
  rec.result.truncated_reason = stop_reason::kDeadline;
  report.records.push_back(rec);
  const std::string t1 = format_table(report);
  EXPECT_NE(t1.find("INCONCLUSIVE"), std::string::npos);
  EXPECT_NE(t1.find(stop_reason::kDeadline), std::string::npos);
  EXPECT_NE(t1.find("overall: INCONCLUSIVE"), std::string::npos);
}

TEST(Report, EmptyResultFormats) {
  VerificationResult r;
  const std::string s = format_report("empty", r);
  EXPECT_NE(s.find("INCONCLUSIVE"), std::string::npos);
  EXPECT_TRUE(format_constraints(r).empty());
}

TEST(Report, VerdictNames) {
  EXPECT_STREQ(to_string(Verdict::kVerified), "VERIFIED");
  EXPECT_STREQ(to_string(Verdict::kViolated), "VIOLATED");
  // kCounterexample remains a source-compatibility alias for kViolated,
  // but is deprecated — new code uses kViolated.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_STREQ(to_string(Verdict::kCounterexample), "VIOLATED");
#pragma GCC diagnostic pop
  EXPECT_STREQ(to_string(Verdict::kInconclusive), "INCONCLUSIVE");
}

TEST(Report, EventKindNames) {
  EXPECT_STREQ(to_string(EventKind::kInput), "input");
  EXPECT_STREQ(to_string(EventKind::kOutput), "output");
  EXPECT_STREQ(to_string(EventKind::kInternal), "internal");
}

}  // namespace
}  // namespace rtv
