#include <gtest/gtest.h>

#include "rtv/base/log.hpp"
#include "rtv/verify/report.hpp"

namespace rtv {
namespace {

TEST(Log, LevelGating) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold macro bodies are not evaluated.
  int evaluated = 0;
  RTV_DEBUG << "never " << ++evaluated;
  EXPECT_EQ(evaluated, 0);
  set_log_level(LogLevel::kDebug);
  RTV_DEBUG << "yes " << ++evaluated;
  EXPECT_EQ(evaluated, 1);
  set_log_level(prev);
}

TEST(Report, TableAlignsColumns) {
  ExperimentRow a;
  a.name = "short";
  a.verdict = Verdict::kVerified;
  a.seconds = 1.5;
  a.refinements = 3;
  a.states = 42;
  ExperimentRow b;
  b.name = "a much longer experiment name here";
  b.verdict = Verdict::kCounterexample;
  const std::string t = format_table({a, b});
  EXPECT_NE(t.find("VERIFIED"), std::string::npos);
  EXPECT_NE(t.find("VIOLATED"), std::string::npos);
  EXPECT_NE(t.find("1.500 s"), std::string::npos);
  EXPECT_NE(t.find("42"), std::string::npos);
  // Header present.
  EXPECT_NE(t.find("Experiment"), std::string::npos);
}

TEST(Report, EmptyResultFormats) {
  VerificationResult r;
  const std::string s = format_report("empty", r);
  EXPECT_NE(s.find("INCONCLUSIVE"), std::string::npos);
  EXPECT_TRUE(format_constraints(r).empty());
}

TEST(Report, VerdictNames) {
  EXPECT_STREQ(to_string(Verdict::kVerified), "VERIFIED");
  EXPECT_STREQ(to_string(Verdict::kViolated), "VIOLATED");
  // kCounterexample is a source-compatibility alias for kViolated.
  EXPECT_STREQ(to_string(Verdict::kCounterexample), "VIOLATED");
  EXPECT_STREQ(to_string(Verdict::kInconclusive), "INCONCLUSIVE");
}

TEST(Report, EventKindNames) {
  EXPECT_STREQ(to_string(EventKind::kInput), "input");
  EXPECT_STREQ(to_string(EventKind::kOutput), "output");
  EXPECT_STREQ(to_string(EventKind::kInternal), "internal");
}

}  // namespace
}  // namespace rtv
