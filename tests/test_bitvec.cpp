#include "rtv/base/bitvec.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace rtv {
namespace {

TEST(BitVec, StartsCleared) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, SetAndTest) {
  BitVec v(70);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(69);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(69));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.count(), 4u);
}

TEST(BitVec, ResetAndFlip) {
  BitVec v(10);
  v.set(3);
  v.reset(3);
  EXPECT_FALSE(v.test(3));
  v.flip(3);
  EXPECT_TRUE(v.test(3));
  v.flip(3);
  EXPECT_FALSE(v.test(3));
}

TEST(BitVec, AllInitializedConstructorTrimsTail) {
  BitVec v(66, true);
  EXPECT_EQ(v.count(), 66u);
  // Equality with an individually-set vector proves the tail is trimmed.
  BitVec w(66);
  for (std::size_t i = 0; i < 66; ++i) w.set(i);
  EXPECT_EQ(v, w);
  EXPECT_EQ(v.hash(), w.hash());
}

TEST(BitVec, SubsetSemantics) {
  BitVec a(100), b(100);
  a.set(5);
  a.set(80);
  b.set(5);
  b.set(80);
  b.set(40);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
}

TEST(BitVec, BitwiseOps) {
  BitVec a(70), b(70);
  a.set(1);
  a.set(65);
  b.set(2);
  b.set(65);
  BitVec o = a;
  o |= b;
  EXPECT_TRUE(o.test(1));
  EXPECT_TRUE(o.test(2));
  EXPECT_TRUE(o.test(65));
  BitVec n = a;
  n &= b;
  EXPECT_FALSE(n.test(1));
  EXPECT_FALSE(n.test(2));
  EXPECT_TRUE(n.test(65));
}

TEST(BitVec, ForEachSetVisitsExactlySetBits) {
  BitVec v(200);
  const std::vector<std::size_t> bits{0, 7, 63, 64, 127, 128, 199};
  for (auto b : bits) v.set(b);
  std::vector<std::size_t> seen;
  v.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, bits);
}

TEST(BitVec, OrderingIsTotal) {
  BitVec a(10), b(10);
  b.set(0);
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
}

TEST(BitVec, HashDistinguishesTypicalStates) {
  std::unordered_set<std::size_t> hashes;
  for (std::size_t i = 0; i < 64; ++i) {
    BitVec v(64);
    v.set(i);
    hashes.insert(v.hash());
  }
  EXPECT_EQ(hashes.size(), 64u);
}

TEST(BitVec, ToString) {
  BitVec v(4);
  v.set(1);
  v.set(3);
  EXPECT_EQ(v.to_string(), "0101");
}

}  // namespace
}  // namespace rtv
