#include "rtv/ipcmos/topologies.hpp"

#include <gtest/gtest.h>

#include "rtv/circuit/elaborate.hpp"
#include "rtv/sim/simulator.hpp"

namespace rtv::ipcmos {
namespace {

TEST(Topologies, TransistorAccounting) {
  EXPECT_EQ(make_join_netlist().transistor_count(), expected_transistors(2, 1));
  EXPECT_EQ(make_fork_netlist().transistor_count(), expected_transistors(1, 2));
}

TEST(Topologies, JoinWaitsForBothInputs) {
  // With only one VALID low the strobe must not fire: X+ needs both sense
  // lines discharged.
  const Module stage = elaborate(make_join_netlist());
  const TransitionSystem& ts = stage.ts();
  StateId s = *ts.successor(ts.initial(), ts.event_by_label("Va-"));
  s = *ts.successor(s, ts.event_by_label("J.Vint_0-"));
  EXPECT_FALSE(ts.is_enabled(s, ts.event_by_label("J.X+")));
  // After the second input arrives and discharges, the strobe arms.
  s = *ts.successor(s, ts.event_by_label("Vb-"));
  s = *ts.successor(s, ts.event_by_label("J.Vint_1-"));
  EXPECT_TRUE(ts.is_enabled(s, ts.event_by_label("J.X+")));
}

TEST(Topologies, ForkWaitsForBothAcks) {
  // Simulation-level check: the second data item is not launched before
  // both consumers acknowledged the first.
  const ModuleSet set = fork_system();
  SimOptions opts;
  opts.max_events = 200;
  opts.seed = 11;
  const SimTrace t = simulate_modules(set.ptrs, opts);
  EXPECT_FALSE(t.deadlocked);
  Time aa = -1, ab = -1;
  int launches = 0;
  for (const SimEvent& e : t.events) {
    if (e.label == "Aa+") aa = e.time;
    if (e.label == "Ab+") ab = e.time;
    if (e.label == "Va-") {
      ++launches;
      if (launches > 1) {
        EXPECT_GE(aa, 0);
        EXPECT_GE(ab, 0);
        EXPECT_LT(aa, e.time);
        EXPECT_LT(ab, e.time);
      }
    }
  }
  EXPECT_GE(launches, 2);
}

TEST(Topologies, JoinSimulationIsLive) {
  const ModuleSet set = join_system();
  SimOptions opts;
  opts.max_events = 200;
  opts.seed = 3;
  const SimTrace t = simulate_modules(set.ptrs, opts);
  EXPECT_FALSE(t.deadlocked);
  int acked = 0;
  for (const SimEvent& e : t.events)
    if (e.label == "A+") ++acked;
  EXPECT_GE(acked, 2);  // several items acknowledged
}

}  // namespace
}  // namespace rtv::ipcmos
