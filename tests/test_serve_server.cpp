// The `rtv serve` daemon end to end, over real Unix-domain sockets: the
// protocol, cold/warm cache behaviour, incremental re-verification,
// in-flight deduplication under concurrent clients, budget-key soundness
// and restart persistence.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rtv/serve/client.hpp"
#include "rtv/serve/server.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/engine.hpp"

using namespace rtv;
using namespace rtv::serve;

namespace {

/// Per-test unique socket path (tests may run in parallel processes).
std::string unique_socket() {
  static std::atomic<int> counter{0};
  return "/tmp/rtv-test-serve-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* tag)
      : path("/tmp/rtv-test-serve-" + std::to_string(::getpid()) + "-" + tag +
             ".json") {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

/// The Fig. 1 gallery obligation: intro system + "g before d" order
/// monitor, invariant !fail — kVerified in every timed run.
WireObligation intro_obligation(const std::string& name = "intro") {
  WireObligation ob;
  ob.name = name;
  ob.modules.push_back(gallery::intro_example());
  ob.modules.push_back(gallery::order_monitor("g", "d"));
  ob.properties.push_back(
      PropertySpec::invariant("g before d", {{"fail", true}}));
  return ob;
}

ServeRequest verify_request(std::vector<WireObligation> obs) {
  ServeRequest req;
  req.kind = RequestKind::kVerify;
  req.obligations = std::move(obs);
  return req;
}

std::unique_ptr<Server> start_server(const std::string& socket,
                                     const std::string& cache_path = "",
                                     std::size_t max_cache_entries = 4096) {
  ServerOptions opts;
  opts.socket_path = socket;
  opts.cache_path = cache_path;
  opts.jobs = 2;
  opts.max_cache_entries = max_cache_entries;
  auto server = std::make_unique<Server>(std::move(opts));
  server->start();
  return server;
}

/// A counting engine: wraps "refine" and counts run() invocations, so the
/// dedup test can prove N concurrent identical requests -> 1 computation.
class CountingEngine final : public Engine {
 public:
  static std::atomic<int>& runs() {
    static std::atomic<int> count{0};
    return count;
  }
  std::string_view name() const override { return "counting"; }
  std::string_view description() const override {
    return "test engine counting run() calls";
  }
  EngineResult run(const EngineRequest& request) const override {
    runs().fetch_add(1);
    // Linger so every concurrent client arrives while the job is still
    // in flight (the window the dedup map must cover).
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return engine_registry().find("refine")->run(request);
  }
};

}  // namespace

TEST(ServeProtocol, PingStatsAndUnknownEngineError) {
  const std::string socket = unique_socket();
  auto server = start_server(socket);

  Client client;
  client.connect(socket);
  EXPECT_TRUE(client.ping());

  ServeRequest bad = verify_request({intro_obligation()});
  bad.engines = {"no-such-engine"};
  const ServeResponse resp = client.call(bad);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("no-such-engine"), std::string::npos);

  // An empty verify request is a protocol error, not a crash.
  EXPECT_FALSE(client.call(verify_request({})).ok);

  const ServeStats stats = client.get_stats();
  EXPECT_EQ(stats.requests, 4u);  // ping + 2 failed verifies + this stats
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.jobs, 2u);
  server->stop();
}

TEST(ServeVerify, ColdMissThenWarmHitSameVerdict) {
  const std::string socket = unique_socket();
  auto server = start_server(socket);
  Client client;
  client.connect(socket);

  const ServeResponse cold = client.call(verify_request({intro_obligation()}));
  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_TRUE(cold.has_report);
  ASSERT_EQ(cold.report.records.size(), 1u);
  EXPECT_EQ(cold.report.records[0].obligation, "intro");
  EXPECT_EQ(cold.report.records[0].engine, "refine");
  EXPECT_EQ(cold.report.records[0].result.verdict, Verdict::kVerified);
  EXPECT_FALSE(cold.report.records[0].cached);

  const ServeResponse warm = client.call(verify_request({intro_obligation()}));
  ASSERT_TRUE(warm.ok);
  ASSERT_EQ(warm.report.records.size(), 1u);
  EXPECT_TRUE(warm.report.records[0].cached);
  EXPECT_EQ(warm.report.records[0].result.verdict, Verdict::kVerified);

  // A renamed obligation is the same content: still a hit.
  const ServeResponse renamed =
      client.call(verify_request({intro_obligation("other-name")}));
  ASSERT_TRUE(renamed.ok);
  EXPECT_TRUE(renamed.report.records[0].cached);
  EXPECT_EQ(renamed.report.records[0].obligation, "other-name");

  const ServeStats stats = client.get_stats();
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
  server->stop();
}

TEST(ServeVerify, IncrementalReverificationRecomputesOnlyChangedHashes) {
  const std::string socket = unique_socket();
  auto server = start_server(socket);
  Client client;
  client.connect(socket);

  const DelayInterval d12 = DelayInterval::units(1, 2);
  WireObligation stable;
  stable.name = "stable";
  stable.modules.push_back(gallery::diamond("x", d12, "y", d12));
  stable.properties.push_back(PropertySpec::deadlock());
  WireObligation edited = intro_obligation("edited");

  const ServeResponse first = client.call(verify_request({stable, edited}));
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_EQ(first.report.records.size(), 2u);
  EXPECT_FALSE(first.report.records[0].cached);
  EXPECT_FALSE(first.report.records[1].cached);

  // Edit one obligation's content (a delay bound); resubmit the suite.
  edited.modules.front().ts().set_event_delay(
      EventId{0}, DelayInterval::units(1.0, 2.75));
  const ServeResponse second = client.call(verify_request({stable, edited}));
  ASSERT_TRUE(second.ok) << second.error;
  ASSERT_EQ(second.report.records.size(), 2u);
  // Only the edited obligation recomputed; records stay request-ordered.
  EXPECT_EQ(second.report.records[0].obligation, "stable");
  EXPECT_TRUE(second.report.records[0].cached);
  EXPECT_EQ(second.report.records[1].obligation, "edited");
  EXPECT_FALSE(second.report.records[1].cached);

  const ServeStats stats = client.get_stats();
  EXPECT_EQ(stats.computed, 3u);  // 2 cold + 1 re-verified
  EXPECT_EQ(stats.cache_hits, 1u);
  server->stop();
}

// Regression: a budget change must be a cache miss — a verdict computed
// under max_states=N must never answer a request with a different budget.
TEST(ServeVerify, BudgetChangeMissesTheCache) {
  const std::string socket = unique_socket();
  auto server = start_server(socket);
  Client client;
  client.connect(socket);

  ServeRequest small = verify_request({intro_obligation()});
  small.max_states = 100000;
  ASSERT_TRUE(client.call(small).ok);

  ServeRequest larger = verify_request({intro_obligation()});
  larger.max_states = 200000;
  const ServeResponse resp = client.call(larger);
  ASSERT_TRUE(resp.ok);
  EXPECT_FALSE(resp.report.records[0].cached);

  ServeRequest timed = verify_request({intro_obligation()});
  timed.max_states = 200000;
  timed.max_seconds = 30.0;
  EXPECT_FALSE(client.call(timed).report.records[0].cached);

  // Same budget spelled per-obligation inherits identically: a hit.
  ServeRequest inherited = verify_request({intro_obligation()});
  inherited.obligations[0].max_states = 200000;
  inherited.obligations[0].max_seconds = 30.0;
  EXPECT_TRUE(client.call(inherited).report.records[0].cached);

  const ServeStats stats = client.get_stats();
  EXPECT_EQ(stats.computed, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  server->stop();
}

TEST(ServeDedup, ConcurrentIdenticalRequestsComputeOnce) {
  static bool registered = [] {
    register_engine(std::make_unique<CountingEngine>());
    return true;
  }();
  (void)registered;
  CountingEngine::runs().store(0);

  const std::string socket = unique_socket();
  auto server = start_server(socket);

  constexpr int kClients = 8;
  std::atomic<int> ok_count{0};
  std::atomic<int> computed_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      Client client;
      client.connect(socket);
      ServeRequest req = verify_request({intro_obligation()});
      req.engines = {"counting"};
      const ServeResponse resp = client.call(req);
      if (resp.ok && resp.has_report && resp.report.records.size() == 1 &&
          resp.report.records[0].result.verdict == Verdict::kVerified)
        ok_count.fetch_add(1);
      // Exactly one requester is the computation's creator
      // (cached == false); attachers and late hits see cached == true.
      if (resp.ok && !resp.report.records[0].cached)
        computed_count.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok_count.load(), kClients);
  EXPECT_EQ(computed_count.load(), 1);
  // The engine itself ran exactly once: N clients -> 1 computation.
  EXPECT_EQ(CountingEngine::runs().load(), 1);

  const ServeStats stats = server->stats();
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.deduped + stats.cache_hits,
            static_cast<std::uint64_t>(kClients - 1));
  server->stop();
}

TEST(ServePersistence, CacheSurvivesDaemonRestart) {
  const std::string socket = unique_socket();
  TempFile cache_file("restart");

  {
    auto server = start_server(socket, cache_file.path);
    Client client;
    client.connect(socket);
    const ServeResponse resp =
        client.call(verify_request({intro_obligation()}));
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_FALSE(resp.report.records[0].cached);
    server->stop();  // persists the cache
  }

  {
    auto server = start_server(socket, cache_file.path);
    Client client;
    client.connect(socket);
    const ServeResponse resp =
        client.call(verify_request({intro_obligation()}));
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_TRUE(resp.report.records[0].cached);
    EXPECT_EQ(resp.report.records[0].result.verdict, Verdict::kVerified);
    const ServeStats stats = server->stats();
    EXPECT_EQ(stats.computed, 0u);
    EXPECT_EQ(stats.cache_hits, 1u);
    server->stop();
  }
}

TEST(ServePersistence, PaddedObligationHitsUnpaddedEntryAcrossRestart) {
  // The cache keys on the *sliced* canonical form: a disconnected
  // always-live toggler is outside the invariant's cone, so padding the
  // intro obligation with it must not change its key — even across a
  // daemon restart, where only the persisted key/verdict pairs survive.
  const std::string socket = unique_socket();
  TempFile cache_file("padded");

  const auto padded_intro = [] {
    WireObligation ob = intro_obligation("padded");
    Module pad = gallery::ring({{"pad_a", DelayInterval(1, 2)},
                                {"pad_b", DelayInterval(1, 2)}});
    for (std::size_t ei = 0; ei < pad.ts().num_events(); ++ei)
      pad.ts().set_event_kind(EventId(static_cast<std::uint32_t>(ei)),
                              EventKind::kInternal);
    pad.set_name("pad_toggler");
    ob.modules.push_back(std::move(pad));
    return ob;
  };

  {
    auto server = start_server(socket, cache_file.path);
    Client client;
    client.connect(socket);
    const ServeResponse resp =
        client.call(verify_request({intro_obligation()}));
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_FALSE(resp.report.records[0].cached);
    server->stop();  // persists the cache
  }

  {
    auto server = start_server(socket, cache_file.path);
    Client client;
    client.connect(socket);
    const ServeResponse resp = client.call(verify_request({padded_intro()}));
    ASSERT_TRUE(resp.ok) << resp.error;
    ASSERT_EQ(resp.report.records.size(), 1u);
    EXPECT_TRUE(resp.report.records[0].cached);
    EXPECT_EQ(resp.report.records[0].result.verdict, Verdict::kVerified);
    const ServeStats stats = server->stats();
    EXPECT_EQ(stats.computed, 0u);
    EXPECT_EQ(stats.cache_hits, 1u);
    server->stop();
  }
}

TEST(ServePersistence, CorruptCacheFileRefusesToStart) {
  const std::string socket = unique_socket();
  TempFile cache_file("corrupt");
  {
    std::FILE* f = std::fopen(cache_file.path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"schema\":\"rtv-verdict-cache\",\"schema_version\":99,"
               "\"entries\":[]}",
               f);
    std::fclose(f);
  }
  ServerOptions opts;
  opts.socket_path = socket;
  opts.cache_path = cache_file.path;
  EXPECT_THROW(Server{std::move(opts)}, std::runtime_error);
}

TEST(ServeShutdown, ClientRequestFlagsTheOwner) {
  const std::string socket = unique_socket();
  auto server = start_server(socket);
  EXPECT_FALSE(server->shutdown_requested());

  Client client;
  client.connect(socket);
  client.request_shutdown();
  EXPECT_TRUE(server->wait_for(5.0));
  EXPECT_TRUE(server->shutdown_requested());
  server->stop();

  // The socket file is gone after stop().
  Client late;
  EXPECT_THROW(late.connect(socket), std::runtime_error);
}

TEST(ServeVerify, PortfolioModeRecordsAllEnginesAndCaches) {
  const std::string socket = unique_socket();
  auto server = start_server(socket);
  Client client;
  client.connect(socket);

  ServeRequest req = verify_request({intro_obligation()});
  req.mode = SuiteMode::kPortfolio;
  req.engines = {"refine", "zone"};
  const ServeResponse cold = client.call(req);
  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_EQ(cold.report.records.size(), 2u);
  EXPECT_EQ(cold.report.mode, SuiteMode::kPortfolio);

  const ServeResponse warm = client.call(req);
  ASSERT_TRUE(warm.ok);
  ASSERT_EQ(warm.report.records.size(), 2u);
  for (const SuiteRecord& rec : warm.report.records)
    EXPECT_TRUE(rec.cached);
  // The cached replay preserves which engine decided.
  EXPECT_EQ(warm.report.overall(), cold.report.overall());
  server->stop();
}
