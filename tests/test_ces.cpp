#include "rtv/timing/ces.hpp"

#include <gtest/gtest.h>

#include "rtv/ts/gallery.hpp"
#include "rtv/ts/trace.hpp"

namespace rtv {
namespace {

/// Builds the intro example's failure trace a, c, d (g never enabled, b
/// pending throughout).
struct IntroFailure {
  Module module = gallery::intro_example();
  Trace trace;

  IntroFailure() {
    const TransitionSystem& ts = module.ts();
    const EventId a = ts.event_by_label("a");
    const EventId c = ts.event_by_label("c");
    const EventId d = ts.event_by_label("d");
    StateId s = ts.initial();
    for (EventId e : {a, c, d}) {
      TraceStep step;
      step.state = s;
      step.event = e;
      step.enabled = ts.enabled_events(s);
      trace.steps.push_back(step);
      s = *ts.successor(s, e);
    }
    trace.final_state = s;
    trace.final_enabled = ts.enabled_events(s);
  }
};

TEST(Ces, ExtractionCausality) {
  IntroFailure f;
  const Ces ces = extract_ces(f.module.ts(), f.trace);
  // Events: a, c, d fired; b (and only b) pending at the final state.
  ASSERT_EQ(ces.size(), 4u);
  EXPECT_EQ(ces.events[0].label, "a");
  EXPECT_EQ(ces.events[1].label, "c");
  EXPECT_EQ(ces.events[2].label, "d");
  EXPECT_EQ(ces.events[3].label, "b");
  EXPECT_TRUE(ces.events[3].pending);
  EXPECT_FALSE(ces.events[0].pending);

  // a is a source; c is triggered by a; d by c; pending b is a source
  // (concurrent with a from the start).
  EXPECT_TRUE(ces.events[0].preds.empty());
  EXPECT_EQ(ces.events[1].preds, (std::vector<int>{0}));
  EXPECT_EQ(ces.events[2].preds, (std::vector<int>{1}));
  EXPECT_TRUE(ces.events[3].preds.empty());
}

TEST(Ces, PendingCanBeExcluded) {
  IntroFailure f;
  const Ces ces = extract_ces(f.module.ts(), f.trace, /*include_pending=*/false);
  EXPECT_EQ(ces.size(), 3u);
}

TEST(Ces, ConeIncludesAncestorsAndSelf) {
  IntroFailure f;
  const Ces ces = extract_ces(f.module.ts(), f.trace);
  const auto cone = ces.cone(2);  // d
  EXPECT_EQ(cone, (std::vector<int>{0, 1, 2}));
}

TEST(Ces, FindLabel) {
  IntroFailure f;
  const Ces ces = extract_ces(f.module.ts(), f.trace);
  EXPECT_EQ(ces.find_label("c"), 1);
  EXPECT_EQ(ces.find_label("zz"), -1);
}

TEST(Ces, BoundsPropagation) {
  IntroFailure f;
  const Ces ces = extract_ces(f.module.ts(), f.trace);
  const CesBounds b = propagate_bounds(ces);
  // a in [2.5, 3]; c in a + [1, 2] = [3.5, 5]; d in c + [0, inf).
  EXPECT_EQ(b.earliest[0], ticks_from_units(2.5));
  EXPECT_EQ(b.latest[0], ticks_from_units(3));
  EXPECT_EQ(b.earliest[1], ticks_from_units(3.5));
  EXPECT_EQ(b.latest[1], ticks_from_units(5));
  EXPECT_EQ(b.earliest[2], ticks_from_units(3.5));
  EXPECT_EQ(b.latest[2], kTimeInfinity);
  // pending b in [1, 2].
  EXPECT_EQ(b.earliest[3], ticks_from_units(1));
  EXPECT_EQ(b.latest[3], ticks_from_units(2));
}

TEST(Ces, ReenabledEventAnchorsAtItsLastFiring) {
  // x fires twice in a self-loop system: the second occurrence's enabling
  // window must start after the first firing, making occurrence 1 a
  // causal predecessor of occurrence 2.
  TransitionSystem ts;
  const StateId s0 = ts.add_state();
  const EventId x = ts.add_event("x", DelayInterval::units(1, 2));
  ts.add_transition(s0, x, s0);
  ts.set_initial(s0);
  Trace trace;
  for (int i = 0; i < 2; ++i) {
    TraceStep step;
    step.state = s0;
    step.event = x;
    step.enabled = {x};
    trace.steps.push_back(step);
  }
  trace.final_state = s0;
  trace.final_enabled = {x};

  const Ces ces = extract_ces(ts, trace);
  ASSERT_EQ(ces.size(), 3u);  // two firings + one pending re-occurrence
  EXPECT_TRUE(ces.events[0].preds.empty());
  EXPECT_EQ(ces.events[1].preds, (std::vector<int>{0}));
  EXPECT_EQ(ces.events[2].preds, (std::vector<int>{1}));
  const CesBounds b = propagate_bounds(ces);
  EXPECT_EQ(b.earliest[1], ticks_from_units(2));
  EXPECT_EQ(b.latest[1], ticks_from_units(4));
}

TEST(Ces, ToStringMentionsPending) {
  IntroFailure f;
  const Ces ces = extract_ces(f.module.ts(), f.trace);
  const std::string s = ces.to_string();
  EXPECT_NE(s.find("pending"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
}

}  // namespace
}  // namespace rtv
