// Three ways to decide timed reachability, side by side:
//
//   * relative-timing refinement (the paper's method, [13]),
//   * dense-time zone graphs (DBM polyhedra, the timed-automata tradition),
//   * digitized time ([8], one integer age per enabled event).
//
// The paper's Section 1 argues that exact timed state spaces (zones,
// regions, discretization) scale poorly with clock count and constant
// magnitude, motivating relative timing.  This bench measures all three on
// the same obligations, including a constant-magnitude sweep where the
// digitized engine's cost grows with the constants while zones and
// relative timing stay flat.
#include <cstdio>

#include "rtv/circuit/invariants.hpp"
#include "rtv/ipcmos/experiments.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/zone/discrete.hpp"
#include "rtv/zone/zone_graph.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

int main() {
  std::printf("%-36s %14s %14s %14s\n", "system", "relative", "zones",
              "digitized");
  std::printf("%-36s %14s %14s %14s\n", "", "(states)", "(zones)", "(configs)");

  // Intro example.
  {
    const Module sys = gallery::intro_example();
    const Module mon = gallery::order_monitor("g", "d");
    const InvariantProperty bad("g before d", {{"fail", true}});
    const VerificationResult rt = verify_modules({&sys, &mon}, {&bad});
    const ZoneVerifyResult zn = zone_verify({&sys, &mon}, {&bad});
    const DiscreteVerifyResult dg = discrete_verify({&sys, &mon}, {&bad});
    std::printf("%-36s %14zu %14zu %14zu\n", "intro example",
                rt.final_states_explored, zn.zones_explored, dg.states_explored);
  }

  // IPCMOS 1-stage.
  {
    const ExperimentConfig cfg;
    const VerificationResult rt = experiment5(cfg);
    const ModuleSet set = flat_pipeline(1, cfg.timing);
    const Netlist nl =
        make_stage_netlist("I1", linear_channels(1), cfg.timing.stage);
    const auto scs = short_circuit_properties(nl);
    const DeadlockFreedom dead;
    const PersistencyProperty pers;
    std::vector<const SafetyProperty*> props{&dead, &pers};
    for (const auto& p : scs) props.push_back(p.get());
    const ZoneVerifyResult zn = zone_verify(set.ptrs, props);
    const DiscreteVerifyResult dg = discrete_verify(set.ptrs, props);
    std::printf("%-36s %14zu %14zu %14zu\n", "IPCMOS 1-stage (exp 5)",
                rt.final_states_explored, zn.zones_explored, dg.states_explored);
    std::printf("  verdicts: %s / %s / %s\n", to_string(rt.verdict),
                zn.violated ? "violated" : "holds",
                dg.violated ? "violated" : "holds");
  }

  // Constant-magnitude sweep on a 3-way race: digitization pays per tick.
  std::printf("\nconstant-magnitude sweep (3 concurrent chains, scale k):\n");
  std::printf("%6s %14s %14s %14s\n", "k", "relative", "zones", "digitized");
  for (int k = 1; k <= 8; k *= 2) {
    TransitionSystem ts;
    const double s = k;
    const EventId a = ts.add_event("a", DelayInterval::units(1 * s, 2 * s));
    const EventId b = ts.add_event("b", DelayInterval::units(1 * s, 3 * s));
    const EventId c = ts.add_event("c", DelayInterval::units(2 * s, 3 * s));
    StateId grid[2][2][2];
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 2; ++j)
        for (int l = 0; l < 2; ++l) grid[i][j][l] = ts.add_state();
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 2; ++j)
        for (int l = 0; l < 2; ++l) {
          if (!i) ts.add_transition(grid[i][j][l], a, grid[1][j][l]);
          if (!j) ts.add_transition(grid[i][j][l], b, grid[i][1][l]);
          if (!l) ts.add_transition(grid[i][j][l], c, grid[i][j][1]);
        }
    ts.set_initial(grid[0][0][0]);
    const Module m("race3", std::move(ts));
    const Module mon = gallery::order_monitor("a", "c");
    const InvariantProperty bad("a before c", {{"fail", true}});
    const VerificationResult rt = verify_modules({&m, &mon}, {&bad});
    const ZoneVerifyResult zn = zone_verify({&m, &mon}, {&bad});
    const DiscreteVerifyResult dg = discrete_verify({&m, &mon}, {&bad});
    std::printf("%6d %14zu %14zu %14zu   (all agree: %s)\n", k,
                rt.final_states_explored, zn.zones_explored, dg.states_explored,
                (rt.verified() == !zn.violated && zn.violated == dg.violated)
                    ? "yes"
                    : "NO");
  }
  std::printf("\nzones and relative timing are constant in k; digitized "
              "configs grow\nlinearly with the constants — the cost [8] pays "
              "and the paper avoids.\n");
  return 0;
}
