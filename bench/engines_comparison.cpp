// Three ways to decide timed reachability, side by side:
//
//   * relative-timing refinement (the paper's method, [13]),
//   * dense-time zone graphs (DBM polyhedra, the timed-automata tradition),
//   * digitized time ([8], one integer age per enabled event).
//
// The paper's Section 1 argues that exact timed state spaces (zones,
// regions, discretization) scale poorly with clock count and constant
// magnitude, motivating relative timing.  This bench measures every engine
// registered in engine_registry() on the same obligations — a new backend
// shows up in the table just by registering — including a
// constant-magnitude sweep where the digitized engine's cost grows with
// the constants while zones and relative timing stay flat.
#include <cstdio>
#include <string>
#include <vector>

#include "rtv/circuit/invariants.hpp"
#include "rtv/ipcmos/experiments.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/engine.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

namespace {

/// Run every registered engine on one obligation; returns per-engine
/// results in registry order.
std::vector<EngineResult> run_all(const std::vector<const Module*>& modules,
                                  const std::vector<const SafetyProperty*>& props) {
  std::vector<EngineResult> out;
  for (const Engine* e : engine_registry().engines()) {
    EngineRequest req;
    req.modules = modules;
    req.properties = props;
    out.push_back(e->run(req));
  }
  return out;
}

/// Each engine counts its own exploration unit (EngineResult doc).
const char* unit_of(std::string_view engine) {
  if (engine == "zone") return "(zones)";
  if (engine == "discrete") return "(configs)";
  return "(states)";
}

void print_header() {
  std::printf("%-36s", "system");
  for (const Engine* e : engine_registry().engines())
    std::printf(" %14s", std::string(e->name()).c_str());
  std::printf("\n%-36s", "");
  for (const Engine* e : engine_registry().engines())
    std::printf(" %14s", unit_of(e->name()));
  std::printf("\n");
}

void print_row(const char* name, const std::vector<EngineResult>& rs) {
  std::printf("%-36s", name);
  for (const EngineResult& r : rs) std::printf(" %14zu", r.states_explored);
  std::printf("\n");
}

bool verdicts_agree(const std::vector<EngineResult>& rs) {
  for (const EngineResult& r : rs)
    if (r.verdict != rs.front().verdict) return false;
  return true;
}

}  // namespace

int main() {
  print_header();

  // Intro example.
  {
    const Module sys = gallery::intro_example();
    const Module mon = gallery::order_monitor("g", "d");
    const InvariantProperty bad("g before d", {{"fail", true}});
    const auto rs = run_all({&sys, &mon}, {&bad});
    print_row("intro example", rs);
  }

  // IPCMOS 1-stage.
  {
    const ExperimentConfig cfg;
    const ModuleSet set = flat_pipeline(1, cfg.timing);
    const Netlist nl =
        make_stage_netlist("I1", linear_channels(1), cfg.timing.stage);
    const auto scs = short_circuit_properties(nl);
    const DeadlockFreedom dead;
    const PersistencyProperty pers;
    std::vector<const SafetyProperty*> props{&dead, &pers};
    for (const auto& p : scs) props.push_back(p.get());
    const auto rs = run_all(set.ptrs, props);
    print_row("IPCMOS 1-stage (exp 5)", rs);
    std::printf("  verdicts:");
    for (const EngineResult& r : rs) std::printf(" %s", to_string(r.verdict));
    std::printf("\n");
  }

  // Constant-magnitude sweep on a 3-way race: digitization pays per tick.
  std::printf("\nconstant-magnitude sweep (3 concurrent chains, scale k):\n");
  std::printf("%6s", "k");
  for (const Engine* e : engine_registry().engines())
    std::printf(" %14s", std::string(e->name()).c_str());
  std::printf("\n");
  for (int k = 1; k <= 8; k *= 2) {
    TransitionSystem ts;
    const double s = k;
    const EventId a = ts.add_event("a", DelayInterval::units(1 * s, 2 * s));
    const EventId b = ts.add_event("b", DelayInterval::units(1 * s, 3 * s));
    const EventId c = ts.add_event("c", DelayInterval::units(2 * s, 3 * s));
    StateId grid[2][2][2];
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 2; ++j)
        for (int l = 0; l < 2; ++l) grid[i][j][l] = ts.add_state();
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 2; ++j)
        for (int l = 0; l < 2; ++l) {
          if (!i) ts.add_transition(grid[i][j][l], a, grid[1][j][l]);
          if (!j) ts.add_transition(grid[i][j][l], b, grid[i][1][l]);
          if (!l) ts.add_transition(grid[i][j][l], c, grid[i][j][1]);
        }
    ts.set_initial(grid[0][0][0]);
    const Module m("race3", std::move(ts));
    const Module mon = gallery::order_monitor("a", "c");
    const InvariantProperty bad("a before c", {{"fail", true}});
    const auto rs = run_all({&m, &mon}, {&bad});
    std::printf("%6d", k);
    for (const EngineResult& r : rs) std::printf(" %14zu", r.states_explored);
    std::printf("   (all agree: %s)\n", verdicts_agree(rs) ? "yes" : "NO");
  }
  std::printf("\nzones and relative timing are constant in k; digitized "
              "configs grow\nlinearly with the constants — the cost [8] pays "
              "and the paper avoids.\n");
  return 0;
}
