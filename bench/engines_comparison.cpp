// Three ways to decide timed reachability, side by side:
//
//   * relative-timing refinement (the paper's method, [13]),
//   * dense-time zone graphs (DBM polyhedra, the timed-automata tradition),
//   * digitized time ([8], one integer age per enabled event).
//
// The paper's Section 1 argues that exact timed state spaces (zones,
// regions, discretization) scale poorly with clock count and constant
// magnitude, motivating relative timing.  The whole comparison is one
// declarative rtv::Suite run in batch mode over every registered engine —
// a new backend shows up in the table just by registering — including a
// constant-magnitude sweep where the digitized engine's cost grows with
// the constants while zones and relative timing stay flat.
#include <cstdio>
#include <string>
#include <vector>

#include "rtv/circuit/invariants.hpp"
#include "rtv/ipcmos/experiments.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/engine.hpp"
#include "rtv/verify/suite.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

namespace {

/// Each engine counts its own exploration unit (EngineResult doc).
const char* unit_of(std::string_view engine) {
  if (engine == "zone") return "(zones)";
  if (engine == "discrete") return "(configs)";
  return "(states)";
}

bool verdicts_agree(const std::vector<SuiteRecord>& recs, std::size_t first,
                    std::size_t count) {
  for (std::size_t j = 1; j < count; ++j)
    if (recs[first + j].result.verdict != recs[first].result.verdict)
      return false;
  return true;
}

}  // namespace

int main() {
  const std::vector<std::string> engines = engine_registry().names();
  const std::size_t n = engines.size();

  // One suite: the intro example, the IPCMOS 1-stage pipeline, and the
  // constant-magnitude sweep.  Batch mode over every engine = the full
  // obligation×engine matrix, obligations in parallel.
  Suite suite;
  {
    const Module* sys = suite.own(gallery::intro_example());
    const Module* mon = suite.own(gallery::order_monitor("g", "d"));
    const SafetyProperty* bad = suite.own(std::make_unique<InvariantProperty>(
        "g before d",
        std::vector<InvariantProperty::Literal>{{"fail", true}}));
    suite.add("intro example", {sys, mon}, {bad});
  }
  {
    const ExperimentConfig cfg;
    ModuleSet set = flat_pipeline(1, cfg.timing);
    std::vector<const Module*> modules;
    for (auto& m : set.owned) modules.push_back(suite.own(std::move(*m)));
    const Netlist nl =
        make_stage_netlist("I1", linear_channels(1), cfg.timing.stage);
    std::vector<const SafetyProperty*> props{
        suite.own(std::make_unique<DeadlockFreedom>()),
        suite.own(std::make_unique<PersistencyProperty>())};
    for (auto& p : short_circuit_properties(nl))
      props.push_back(suite.own(std::move(p)));
    suite.add("IPCMOS 1-stage (exp 5)", std::move(modules), std::move(props));
  }
  std::vector<std::string> sweep_names;
  for (int k = 1; k <= 8; k *= 2) {
    const Module* sys = suite.own(gallery::scaled_race(k));
    const Module* mon = suite.own(gallery::order_monitor("a", "c"));
    const SafetyProperty* bad = suite.own(std::make_unique<InvariantProperty>(
        "a before c",
        std::vector<InvariantProperty::Literal>{{"fail", true}}));
    sweep_names.push_back("race3 k=" + std::to_string(k));
    suite.add(sweep_names.back(), {sys, mon}, {bad});
  }

  SuiteOptions opts;
  opts.engines = engines;  // full matrix, registry order
  const SuiteReport report = run_suite(suite, opts);
  const std::vector<SuiteRecord>& recs = report.records;

  std::printf("%-36s", "system");
  for (const std::string& e : engines) std::printf(" %14s", e.c_str());
  std::printf("\n%-36s", "");
  for (const std::string& e : engines) std::printf(" %14s", unit_of(e));
  std::printf("\n");
  for (std::size_t row = 0; row < 2; ++row) {
    std::printf("%-36s", recs[row * n].obligation.c_str());
    for (std::size_t j = 0; j < n; ++j)
      std::printf(" %14zu", recs[row * n + j].result.states_explored);
    std::printf("\n");
  }
  std::printf("  verdicts (IPCMOS 1-stage):");
  for (std::size_t j = 0; j < n; ++j)
    std::printf(" %s", to_string(recs[n + j].result.verdict));
  std::printf("\n");

  std::printf("\nconstant-magnitude sweep (3 concurrent chains, scale k):\n");
  std::printf("%6s", "k");
  for (const std::string& e : engines) std::printf(" %14s", e.c_str());
  std::printf("\n");
  std::size_t row = 2;
  for (int k = 1; k <= 8; k *= 2, ++row) {
    std::printf("%6d", k);
    for (std::size_t j = 0; j < n; ++j)
      std::printf(" %14zu", recs[row * n + j].result.states_explored);
    std::printf("   (all agree: %s)\n",
                verdicts_agree(recs, row * n, n) ? "yes" : "NO");
  }
  std::printf("\nzones and relative timing are constant in k; digitized "
              "configs grow\nlinearly with the constants — the cost [8] pays "
              "and the paper avoids.\n");
  std::printf("(suite wall clock: %.3f s on %zu jobs)\n", report.wall_seconds,
              report.jobs);
  return 0;
}
