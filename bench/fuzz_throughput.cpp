// Differential-fuzzing throughput: cases per second by generator shape.
//
// The campaign's coverage per CPU-hour is bounded by how fast one case
// runs through all three engines, and that in turn is dominated by the
// digitized engine's sensitivity to delay magnitudes (its time steps are
// ticks, not zones).  This bench sweeps the config dimensions that matter
// — module count, event budget, delay cap — and prints cases/s plus the
// definitive-verdict rate, so the nightly campaign's config can be tuned
// for coverage instead of letting one slow dimension eat the budget.
#include <chrono>
#include <cstdio>

#include "rtv/fuzz/campaign.hpp"

using namespace rtv;

namespace {

void sweep(const char* tag, const fuzz::GeneratorConfig& config,
           std::size_t cases) {
  fuzz::CampaignOptions opt;
  opt.seed = 1;
  opt.config = config;
  opt.cases = cases;
  opt.jobs = 1;  // sequential: measures per-case cost, not parallelism
  opt.minimize = false;
  const auto t0 = std::chrono::steady_clock::now();
  const fuzz::CampaignReport report = fuzz::run_campaign(opt);
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("%-26s %6zu cases %8.1f cases/s  %5.1f%% definitive  %zu fail\n",
              tag, report.cases, static_cast<double>(report.cases) / s,
              100.0 * static_cast<double>(report.definitive_verdicts) /
                  static_cast<double>(report.cases * opt.engines.size()),
              report.failures.size());
}

}  // namespace

int main() {
  std::printf("differential campaign throughput (3 engines, sequential)\n\n");

  fuzz::GeneratorConfig base;
  sweep("default (2 mod, 4 ev)", base, 400);

  fuzz::GeneratorConfig wide = base;
  wide.modules = 4;
  wide.properties = 2;
  sweep("wide (4 mod, 2 props)", wide, 200);

  fuzz::GeneratorConfig deep = base;
  deep.events = 12;
  sweep("deep (12 ev/module)", deep, 200);

  std::printf("\ndelay-cap sweep (2 mod, 3 ev): the discrete engine's cost "
              "tracks the constants\n");
  for (int shift : {4, 8, 12, 16}) {
    fuzz::GeneratorConfig big = base;
    big.modules = 2;
    big.events = 3;
    big.max_delay = Time{1} << shift;
    char tag[32];
    std::snprintf(tag, sizeof tag, "max_delay 2^%d", shift);
    sweep(tag, big, 100);
  }
  return 0;
}
