// Slicer throughput and cone-of-influence payoff on a padded Table 1
// workload.
//
// The slicer's contract mirrors the lint pre-flight's: cheap enough to
// run before every engine invocation (purely structural, no
// composition), while buying real engine work whenever an obligation
// carries out-of-cone modules.  This bench measures both on the paper's
// own stage: the experiment-5 flat pipeline with its persistency and
// short-circuit properties (deadlock-freedom omitted — it pins every
// live module into the cone, making the slice the identity), padded
// with disconnected always-live togglers the way a generated or
// machine-assembled suite would be.
//
//   (a) slice throughput: padded obligations sliced per second, best of
//       `reps` passes;
//   (b) pre-flight share: slice-pass-seconds / suite-wall-seconds on a
//       real run_suite() — acceptance bar <1% (--max-overhead-pct);
//   (c) payoff: states explored unsliced / sliced on the same padded
//       obligation — acceptance bar >=5x (--min-reduction).
//
// Writes a machine-readable summary to BENCH_slice.json (--json to
// rename).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "rtv/analysis/slice.hpp"
#include "rtv/circuit/invariants.hpp"
#include "rtv/ipcmos/pipeline.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/suite.hpp"

using namespace rtv;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Disconnected always-live toggler with private labels — the padding
/// shape the fuzz generator uses (GeneratorConfig::padding_modules).
Module toggler(int k) {
  const std::string base = "pad" + std::to_string(k);
  Module m = gallery::ring(
      {{base + "_a", DelayInterval(kTicksPerUnit, 2 * kTicksPerUnit)},
       {base + "_b", DelayInterval(kTicksPerUnit, 2 * kTicksPerUnit)}});
  for (std::size_t ei = 0; ei < m.ts().num_events(); ++ei)
    m.ts().set_event_kind(EventId(static_cast<std::uint32_t>(ei)),
                          EventKind::kInternal);
  m.set_name(base + "_toggler");
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_slice.json";
  double max_overhead_pct = 1.0;
  double min_reduction = 5.0;
  int reps = 200;
  int padding = 4;
  std::size_t jobs = 0;  // suite default: all hardware threads
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--json") json_path = next();
    else if (arg == "--max-overhead-pct") max_overhead_pct = std::atof(next());
    else if (arg == "--min-reduction") min_reduction = std::atof(next());
    else if (arg == "--reps") reps = std::atoi(next());
    else if (arg == "--padding") padding = std::atoi(next());
    else if (arg == "--jobs") jobs = static_cast<std::size_t>(std::atoll(next()));
    else {
      std::fprintf(stderr,
                   "usage: slice_throughput [--json FILE] [--reps N]\n"
                   "       [--padding N] [--jobs N] [--max-overhead-pct P]\n"
                   "       [--min-reduction R]\n");
      return 64;
    }
  }

  // The experiment-5 stage with its persistency + short-circuit
  // properties, padded with out-of-cone togglers.
  const ipcmos::PipelineTiming timing;
  ipcmos::ModuleSet mods = ipcmos::flat_pipeline(1, timing);
  for (int k = 0; k < padding; ++k) mods.add(toggler(k));

  std::vector<std::unique_ptr<SafetyProperty>> owned_props;
  owned_props.push_back(std::make_unique<PersistencyProperty>());
  const Netlist nl =
      ipcmos::make_stage_netlist("I1", ipcmos::linear_channels(1),
                                 timing.stage);
  for (auto& p : short_circuit_properties(nl)) owned_props.push_back(std::move(p));
  std::vector<const SafetyProperty*> props;
  for (const auto& p : owned_props) props.push_back(p.get());

  std::printf("slice_throughput — experiment-5 stage + %d padding toggler(s)"
              ", %zu propertie(s)\n",
              padding, props.size());

  // (a) Standalone throughput: full slice passes, best of `reps`.
  double best_pass = 0.0;
  std::size_t dropped = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const analysis::SliceResult sl = analysis::slice(mods.ptrs, props);
    const double wall = seconds_since(t0);
    dropped = sl.dropped_modules;
    if (rep == 0 || wall < best_pass) best_pass = wall;
  }
  const double models_per_sec = best_pass > 0 ? 1.0 / best_pass : 0.0;
  std::printf("slice alone: %.0f models/sec (best pass %.0f us, %zu "
              "module(s) dropped)\n",
              models_per_sec, best_pass * 1e6, dropped);
  if (dropped != static_cast<std::size_t>(padding))
    std::printf("WARNING: expected every toggler dropped, got %zu\n", dropped);

  // (b)+(c) One suite run each way on the same padded obligation.  The
  // pre-flight share charges the measured per-pass slice cost against the
  // sliced run's wall clock (a direct on-vs-off diff would drown in
  // engine noise); the payoff compares engine states explored.
  const auto run = [&](bool slice_on, double& wall) {
    Suite suite;
    suite.add("exp5-padded", mods.ptrs, props);
    SuiteOptions sopts;
    sopts.jobs = jobs;
    sopts.slice = slice_on;
    const auto t0 = std::chrono::steady_clock::now();
    const SuiteReport report = run_suite(suite, sopts);
    wall = seconds_since(t0);
    std::size_t states = 0;
    for (const SuiteRecord& rec : report.records)
      states += rec.result.states_explored;
    return states;
  };
  double sliced_wall = 0.0, full_wall = 0.0;
  const std::size_t sliced_states = run(true, sliced_wall);
  const std::size_t full_states = run(false, full_wall);
  const double overhead_pct =
      sliced_wall > 0 ? best_pass / sliced_wall * 100.0 : 0.0;
  const double reduction =
      sliced_states > 0
          ? static_cast<double>(full_states) / static_cast<double>(sliced_states)
          : 0.0;

  std::printf("suite wall: %.3fs sliced vs %.3fs unsliced\n", sliced_wall,
              full_wall);
  std::printf("states explored: %zu sliced vs %zu unsliced — %.1fx reduction "
              "(threshold %.1fx)\n",
              sliced_states, full_states, reduction, min_reduction);
  std::printf("pre-flight share: %.4f%% (threshold %.2f%%)\n", overhead_pct,
              max_overhead_pct);

  std::string json = "{\"bench\":\"slice_throughput\",\"workload\":"
                     "\"exp5-padded\",\"padding\":";
  json += std::to_string(padding);
  json += ",\"jobs\":" + std::to_string(jobs);
  json += ",\"reps\":" + std::to_string(reps);
  json += ",\"dropped_modules\":" + std::to_string(dropped);
  json += ",\"sliced_states\":" + std::to_string(sliced_states);
  json += ",\"unsliced_states\":" + std::to_string(full_states);
  char buf[200];
  std::snprintf(buf, sizeof buf,
                ",\"slice_pass_seconds\":%.9f,\"models_per_sec\":%.1f,"
                "\"suite_seconds\":%.6f,\"overhead_pct\":%.6f,"
                "\"state_reduction\":%.3f}",
                best_pass, models_per_sec, sliced_wall, overhead_pct,
                reduction);
  json += buf;
  json += '\n';
  std::ofstream out(json_path);
  out << json;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 70;
  }
  std::printf("JSON written to %s\n", json_path.c_str());

  return overhead_pct <= max_overhead_pct && reduction >= min_reduction ? 0 : 1;
}
