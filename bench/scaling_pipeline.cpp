// Reproduction of the Section 3.2 scaling claim:
//
//   "The verification becomes exponentially more costly as n increases ...
//    in practice n cannot go beyond 2 stages.  In order to overcome the
//    complexity, the verification of longer pipelines must be carried out
//    using abstractions."
//
// Series 1: the flat composition IN || I1 || ... || In || OUT — composed
//           state count (capped) per n.
// Series 2: the assume-guarantee decomposition — constant-size obligations
//           (experiments 2-4) independent of n, proving every n >= 1.
#include <chrono>
#include <cstdio>

#include "rtv/ipcmos/experiments.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

int main() {
  std::printf("Flat verification: composed untimed state count vs n\n");
  std::printf("%4s %14s %12s %10s\n", "n", "states", "truncated?", "seconds");
  const std::size_t cap = 1'500'000;
  bool blewup = false;
  for (int n = 1; n <= 3; ++n) {
    const auto t0 = std::chrono::steady_clock::now();
    const ModuleSet set = flat_pipeline(n);
    ComposeOptions opts;
    opts.max_states = cap;
    const Composition c = compose(set.ptrs, opts);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%4d %14zu %12s %10.2f\n", n, c.ts.num_states(),
                c.truncated ? "yes" : "no", secs);
    if (c.truncated) {
      blewup = true;
      break;  // the paper's point: beyond this, flat verification is out
    }
  }
  std::printf("\nflat blow-up beyond ~1-2 stages: %s (paper: \"in practice n "
              "cannot go beyond 2 stages\")\n\n",
              blewup ? "reproduced" : "NOT reproduced");

  std::printf("Assume-guarantee decomposition (n-independent obligations):\n");
  const auto rows = run_all_experiments();
  double total = 0;
  bool all = true;
  for (const auto& row : rows) {
    std::printf("  %-42s %-14s %.3f s\n", row.name.c_str(),
                to_string(row.result.verdict), row.result.seconds);
    total += row.result.seconds;
    all = all && row.result.verified();
  }
  std::printf("  total: %.3f s — proves IN || I^n || OUT |= S for every n >= 1\n",
              total);
  std::printf("  (experiments 3 and 4 are the induction: base and step)\n");
  return all && blewup ? 0 : 1;
}
