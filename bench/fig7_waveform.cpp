// Reproduction of Figure 7: two data items propagating through a
// two-stage IPCMOS pipeline.
//
// The paper's waveform shows, for VALID IN / stage 1 / stage 2 / ACK OUT:
//   * negative pulses on the VALID lines,
//   * positive pulses on the ACK lines,
//   * negative CLKE pulses clocking the data,
//   * the handshake interlock (ACK+ between VALID- and the next VALID+ at
//     the inter-stage boundaries) and the bubble needed between items.
// This bench runs the timed simulator on IN || I1 || I2 || OUT and renders
// the same signals; it also checks the interlock on the event log.
#include <cstdio>

#include "rtv/ipcmos/pipeline.hpp"
#include "rtv/sim/simulator.hpp"
#include "rtv/sim/waveform.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

int main() {
  const ModuleSet set = flat_pipeline(2);
  SimOptions opts;
  opts.max_events = 140;
  opts.seed = 7;
  const SimTrace trace = simulate_modules(set.ptrs, opts);

  std::printf("Two-stage IPCMOS pipeline, %zu events, %.2f time units%s\n\n",
              trace.events.size(), units_from_ticks(trace.end_time),
              trace.deadlocked ? " (deadlocked!)" : "");

  // Event log of the first two data items (the paper's diagram window).
  std::printf("event log (boundary signals):\n");
  int shown = 0;
  for (const SimEvent& e : trace.events) {
    if (e.label.find('.') != std::string::npos) continue;  // internal
    std::printf("  %8.2f  %s\n", units_from_ticks(e.time), e.label.c_str());
    if (++shown >= 24) break;
  }

  TransitionSystem table;
  table.set_signal_names(trace.signal_names);
  std::printf("\nwaveform (Fig. 7 analogue; ' high, . low, / rising, \\ falling):\n\n%s\n",
              ascii_waveform(table, trace,
                             {"V1", "I1.CLKE", "A1", "V2", "I2.CLKE", "A2",
                              "V3", "A3"})
                  .c_str());

  // Interlock checks on the inter-stage boundary (thin arrows of Fig. 8):
  // V2- ... A2+ ... V2+ in every cycle.
  Time v2_minus = -1, a2_plus = -1;
  bool ok = true;
  int items = 0;
  for (const SimEvent& e : trace.events) {
    if (e.label == "V2-") v2_minus = e.time;
    if (e.label == "A2+") {
      ok = ok && v2_minus >= 0 && e.time > v2_minus;
      a2_plus = e.time;
    }
    if (e.label == "V2+") {
      ok = ok && a2_plus >= 0 && e.time > a2_plus;
      ++items;
    }
  }
  std::printf("handshake interlock V2- < A2+ < V2+ per item: %s (%d items)\n",
              ok ? "holds" : "VIOLATED", items);
  std::printf("deadlock-free over the horizon: %s\n",
              trace.deadlocked ? "NO" : "yes");
  return ok && !trace.deadlocked ? 0 : 1;
}
