// google-benchmark microbenchmarks of the core algorithmic kernels:
// difference-constraint solving, max separation, DBM closure, composition,
// circuit elaboration, and one full verification run per engine.
#include <benchmark/benchmark.h>

#include "rtv/circuit/elaborate.hpp"
#include "rtv/ipcmos/experiments.hpp"
#include "rtv/timing/maxsep.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/refinement.hpp"
#include "rtv/zone/dbm.hpp"
#include "rtv/zone/zone_graph.hpp"

namespace {

using namespace rtv;
using namespace rtv::ipcmos;

void BM_DiffSolveChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DiffSystem sys(n);
  for (int i = 1; i < n; ++i) sys.add_bounds(i, i - 1, 1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.solve());
  }
}
BENCHMARK(BM_DiffSolveChain)->Arg(16)->Arg(64)->Arg(256);

void BM_MaxSepJoin(benchmark::State& state) {
  Ces ces;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    CesEvent e;
    e.label = "e" + std::to_string(i);
    e.delay = DelayInterval::units(1, 3);
    if (i >= 2) e.preds = {i - 1, i - 2};  // joins with choices
    else if (i == 1) e.preds = {0};
    ces.events.push_back(e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_separation(ces, n - 1, 0));
  }
}
BENCHMARK(BM_MaxSepJoin)->Arg(6)->Arg(10);

void BM_DbmClose(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Dbm d(n);
    for (std::size_t i = 1; i <= n; ++i) d.constrain(i, 0, static_cast<Time>(4 * i));
    benchmark::DoNotOptimize(d.canonicalize());
  }
}
BENCHMARK(BM_DbmClose)->Arg(8)->Arg(16)->Arg(32);

void BM_ComposeFlat1(benchmark::State& state) {
  const ModuleSet set = flat_pipeline(1);
  for (auto _ : state) {
    ComposeOptions opts;
    opts.track_chokes = true;
    benchmark::DoNotOptimize(compose(set.ptrs, opts));
  }
}
BENCHMARK(BM_ComposeFlat1);

void BM_ElaborateStage(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_stage(1));
  }
}
BENCHMARK(BM_ElaborateStage);

void BM_VerifyIntroRelativeTiming(benchmark::State& state) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_modules({&sys, &mon}, {&bad}));
  }
}
BENCHMARK(BM_VerifyIntroRelativeTiming);

void BM_VerifyIntroZone(benchmark::State& state) {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(zone_verify({&sys, &mon}, {&bad}));
  }
}
BENCHMARK(BM_VerifyIntroZone);

void BM_Experiment1(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment1());
  }
}
BENCHMARK(BM_Experiment1);

}  // namespace

BENCHMARK_MAIN();
