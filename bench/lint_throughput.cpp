// Lint throughput and pre-flight overhead on the IPCMOS Table 1 suite.
//
// The analyzer's contract is "cheap enough to run before every engine
// invocation": a purely structural pass, linear in the component sizes,
// no composition.  This bench makes the contract measurable on the
// paper's own workload — (a) standalone throughput, obligations (models)
// linted per second over the five Table 1 obligations, and (b) the
// run_suite() pre-flight's share of one real suite run, as
// lint-pass-seconds / suite-wall-seconds.  The acceptance bar is <1% —
// the pre-flight must be invisible next to any actual engine work.
// Exit 1 when the share exceeds the threshold (--max-overhead-pct to
// widen on noisy shared runners).
//
// Writes a machine-readable summary to BENCH_lint.json (--json to
// rename).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "rtv/ipcmos/experiments.hpp"
#include "rtv/lint/lint.hpp"
#include "rtv/verify/suite.hpp"

using namespace rtv;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_lint.json";
  double max_overhead_pct = 1.0;
  int reps = 200;
  std::size_t jobs = 0;  // suite default: all hardware threads
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--json") json_path = next();
    else if (arg == "--max-overhead-pct") max_overhead_pct = std::atof(next());
    else if (arg == "--reps") reps = std::atoi(next());
    else if (arg == "--jobs") jobs = static_cast<std::size_t>(std::atoll(next()));
    else {
      std::fprintf(stderr, "usage: lint_throughput [--json FILE] [--reps N]\n"
                           "       [--jobs N] [--max-overhead-pct P]\n");
      return 64;
    }
  }

  const Suite suite = ipcmos::table1_suite();
  SuiteOptions sopts;
  sopts.jobs = jobs;

  std::printf("lint_throughput — IPCMOS Table 1 (%zu obligations)\n",
              suite.size());

  // (a) Standalone throughput: full pre-flight passes (engine/budget
  // resolution included), best of `reps` to shed scheduler noise.
  std::size_t findings = 0;
  double best_pass = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    findings = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const Obligation& ob : suite.obligations())
      findings += lint::lint_obligation(ob, sopts).diagnostics.size();
    const double wall = seconds_since(t0);
    if (rep == 0 || wall < best_pass) best_pass = wall;
  }
  const double models_per_sec =
      best_pass > 0 ? static_cast<double>(suite.size()) / best_pass : 0.0;
  std::printf("lint alone: %.0f models/sec (best pass %.0f us, %zu "
              "finding(s))\n",
              models_per_sec, best_pass * 1e6, findings);

  // (b) Pre-flight share of a real run: one suite pass with the
  // pre-flight on (the default), charged against the measured per-pass
  // lint cost.  A direct on-vs-off wall-clock diff would drown in engine
  // noise at sub-percent scales — the ratio is the honest number.
  const auto t0 = std::chrono::steady_clock::now();
  const SuiteReport report = run_suite(suite, sopts);
  const double suite_wall = seconds_since(t0);
  std::size_t rejected = 0;
  for (const SuiteRecord& rec : report.records)
    if (rec.result.truncated_reason == stop_reason::kLintError) ++rejected;
  const double overhead_pct =
      suite_wall > 0 ? best_pass / suite_wall * 100.0 : 0.0;

  std::printf("suite wall: %.3fs (%zu records, %zu lint-rejected)\n",
              suite_wall, report.records.size(), rejected);
  std::printf("pre-flight share: %.4f%% (threshold %.2f%%)\n", overhead_pct,
              max_overhead_pct);
  if (rejected != 0)
    std::printf("WARNING: Table 1 obligations must lint clean of errors\n");

  std::string json = "{\"bench\":\"lint_throughput\",\"workload\":"
                     "\"ipcmos-table1\",\"obligations\":";
  json += std::to_string(suite.size());
  json += ",\"jobs\":" + std::to_string(jobs);
  json += ",\"reps\":" + std::to_string(reps);
  json += ",\"findings\":" + std::to_string(findings);
  json += ",\"lint_rejected\":" + std::to_string(rejected);
  char buf[160];
  std::snprintf(buf, sizeof buf,
                ",\"lint_pass_seconds\":%.9f,\"models_per_sec\":%.1f,"
                "\"suite_seconds\":%.6f,\"overhead_pct\":%.6f}",
                best_pass, models_per_sec, suite_wall, overhead_pct);
  json += buf;
  json += '\n';
  std::ofstream out(json_path);
  out << json;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 70;
  }
  std::printf("JSON written to %s\n", json_path.c_str());

  return overhead_pct <= max_overhead_pct && rejected == 0 ? 0 : 1;
}
