// `rtv serve` throughput: requests/sec and cache hit-rate at N workers.
//
// The service's value proposition is the warm path: an edited suite
// re-verifies in O(changed obligations) because everything untouched is a
// content-hash cache hit.  This bench quantifies both paths in one
// process — a daemon on a temp socket, N client threads round-tripping
// verify requests drawn from a pool of K distinct obligations:
//
//   * cold — every request is a distinct obligation (all misses, real
//     verification work through run_suite);
//   * warm — the same requests replayed (all hits, O(1) lookups);
//
// and prints requests/s, hit rate and the warm/cold speedup per worker
// count, emitting the numbers as machine-readable JSON (BENCH_serve.json
// in CI) so the trajectory is trackable across commits.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rtv/base/json.hpp"
#include "rtv/serve/client.hpp"
#include "rtv/serve/server.hpp"
#include "rtv/ts/gallery.hpp"

#include <unistd.h>

using namespace rtv;

namespace {

/// One pool of distinct obligations: scaled races with different delay
/// constants hash differently, so the cold pass is all misses.  The
/// digitized engine's work grows linearly with the constants, making the
/// cold pass real verification work (the warm pass is an O(1) lookup
/// regardless — which is the whole point being measured).
std::vector<serve::WireObligation> make_pool(std::size_t count) {
  std::vector<serve::WireObligation> pool;
  for (std::size_t i = 0; i < count; ++i) {
    serve::WireObligation ob;
    ob.name = "race-" + std::to_string(i + 1);
    ob.modules.push_back(gallery::scaled_race(static_cast<int>(100 + i)));
    ob.properties.push_back(serve::PropertySpec::deadlock());
    pool.push_back(std::move(ob));
  }
  return pool;
}

struct PassResult {
  double seconds = 0.0;
  std::size_t requests = 0;
  double requests_per_second() const {
    return seconds > 0.0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

/// `workers` threads, each its own connection, splitting the pool round-
/// robin; every request carries one obligation (the service batches
/// adjacent compatible jobs internally).
PassResult run_pass(const std::string& socket_path,
                    const std::vector<serve::WireObligation>& pool,
                    std::size_t workers) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      serve::Client client;
      client.connect(socket_path);
      for (std::size_t i = w; i < pool.size(); i += workers) {
        serve::ServeRequest req;
        req.kind = serve::RequestKind::kVerify;
        req.engines = {"discrete"};
        req.obligations.push_back(pool[i]);
        const serve::ServeResponse resp = client.call(req);
        if (!resp.ok) {
          std::fprintf(stderr, "request failed: %s\n", resp.error.c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  PassResult r;
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.requests = pool.size();
  return r;
}

struct Row {
  std::size_t workers = 0;
  PassResult cold, warm;
  double hit_rate = 0.0;  ///< of the warm pass
  double speedup() const {
    return warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }

  const std::string socket_path =
      "/tmp/rtv-bench-serve-" + std::to_string(::getpid()) + ".sock";
  const std::vector<serve::WireObligation> pool = make_pool(64);

  std::printf("rtv serve throughput — %zu distinct obligations per pass\n\n",
              pool.size());
  std::printf("%8s %14s %14s %10s %10s\n", "workers", "cold req/s",
              "warm req/s", "hit rate", "speedup");

  std::vector<Row> rows;
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    // A fresh daemon per worker count keeps the passes independent: the
    // cold pass is all misses, the warm pass all hits.
    serve::ServerOptions opts;
    opts.socket_path = socket_path;
    serve::Server server(opts);
    server.start();

    Row row;
    row.workers = workers;
    row.cold = run_pass(socket_path, pool, workers);
    const serve::ServeStats before = server.stats();
    row.warm = run_pass(socket_path, pool, workers);
    const serve::ServeStats after = server.stats();
    const std::uint64_t warm_hits = after.cache_hits - before.cache_hits;
    row.hit_rate = static_cast<double>(warm_hits) /
                   static_cast<double>(row.warm.requests);
    server.stop();
    rows.push_back(row);

    std::printf("%8zu %14.1f %14.1f %9.1f%% %9.1fx\n", row.workers,
                row.cold.requests_per_second(),
                row.warm.requests_per_second(), 100.0 * row.hit_rate,
                row.speedup());
  }

  if (!json_path.empty()) {
    std::string out = "{\"bench\":\"serve_throughput\",\"obligations\":" +
                      std::to_string(pool.size()) + ",\"rows\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      if (i) out += ",";
      out += "{\"workers\":" + std::to_string(r.workers);
      out += ",\"cold_seconds\":";
      json::append_double(out, r.cold.seconds);
      out += ",\"warm_seconds\":";
      json::append_double(out, r.warm.seconds);
      out += ",\"cold_requests_per_second\":";
      json::append_double(out, r.cold.requests_per_second());
      out += ",\"warm_requests_per_second\":";
      json::append_double(out, r.warm.requests_per_second());
      out += ",\"hit_rate\":";
      json::append_double(out, r.hit_rate);
      out += ",\"speedup\":";
      json::append_double(out, r.speedup());
      out += "}";
    }
    out += "]}\n";
    std::ofstream f(json_path);
    f << out;
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nJSON written to %s\n", json_path.c_str());
  }
  return 0;
}
