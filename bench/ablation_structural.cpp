// Ablation: the refinement engine's two pruning mechanisms.
//
//   * ordering pairs, justified per state by the enabling-instant matrix
//     (the operational form of the paper's relative timing constraints),
//   * exact window bans (one trace pattern at a time).
//
// With the ordering rule disabled, every failure interleaving must be
// banned separately — the iteration count explodes, which is why the CES
// generalisation matters (DESIGN.md "enabling-compatible product").
#include <cstdio>

#include "rtv/ipcmos/experiments.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/refinement.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

int main() {
  std::printf("%-28s %10s %14s %12s %10s\n", "system", "mode", "verdict",
              "refinements", "seconds");

  const auto report = [](const char* sys, const char* mode,
                         const VerificationResult& r) {
    std::printf("%-28s %10s %14s %12d %10.3f\n", sys, mode,
                to_string(r.verdict), r.refinements, r.seconds);
  };

  // Intro example: small enough for both modes.
  {
    const Module sys = gallery::intro_example();
    const Module mon = gallery::order_monitor("g", "d");
    const InvariantProperty bad("g before d", {{"fail", true}});
    VerifyOptions with, without;
    without.structural_rule = false;
    report("intro example", "pairs", verify_modules({&sys, &mon}, {&bad}, with));
    report("intro example", "windows",
           verify_modules({&sys, &mon}, {&bad}, without));
  }

  // Experiment 2 (containment of a transistor-level stage).
  {
    ExperimentConfig cfg;
    report("exp2: Ain||I||OUT <= Aout", "pairs", experiment2(cfg));
    ExperimentConfig win;
    win.verify.structural_rule = false;
    win.verify.max_refinements = 60;  // cap: window-only mode diverges
    const VerificationResult r = experiment2(win);
    report("exp2: Ain||I||OUT <= Aout", "windows", r);
    std::printf("  (window-only mode capped at %zu iterations: each failure\n"
                "   interleaving needs its own ban — the paper's CES-based\n"
                "   generalisation is what makes the flow converge)\n",
                win.verify.max_refinements);
  }

  // Experiment 5 with both modes.
  {
    ExperimentConfig cfg;
    report("exp5: IN||I||OUT |= S", "pairs", experiment5(cfg));
    ExperimentConfig win;
    win.verify.structural_rule = false;
    win.verify.max_refinements = 60;
    report("exp5: IN||I||OUT |= S", "windows", experiment5(win));
  }
  return 0;
}
