// Reproduction of Figure 13: back-annotated relative timing constraints of
// the 1-stage verification (Section 5.3).
//
// The paper presents event structures with dotted "timing arcs" proving:
//   (b) Z+ before ACK+   (avoids the short circuit at Y, invariant 1),
//   (c) Y- before CLKE-  (isolates Vint before the precharge, invariant 2),
//   (d) ACK- before Z-   (avoids the short circuit at Y, invariant 1),
//   (e) CLKE+ before the next VALID- (precharge finished before new data).
// This bench runs experiment 5 and groups the derived constraints, then
// checks that each of the paper's orderings is entailed by the run.
#include <cstdio>
#include <map>

#include "rtv/ipcmos/experiments.hpp"
#include "rtv/verify/report.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

int main() {
  const VerificationResult r = experiment5();
  std::printf("experiment 5 (IN || I || OUT |= S): %s, %d refinements\n\n",
              to_string(r.verdict), r.refinements);

  std::printf("derived relative timing constraints (x must fire before y):\n");
  for (const DerivedOrdering& o : r.constraints()) {
    std::printf("  %-12s before %s\n", o.before.c_str(), o.after.c_str());
  }

  // Group by the failure they remove, mirroring the paper's presentation.
  std::printf("\nconstraints grouped by the failure they prune:\n");
  std::map<std::string, std::vector<std::string>> by_failure;
  for (const RefinementRecord& rec : r.records) {
    for (const DerivedOrdering& o : rec.orderings) {
      by_failure[rec.failure].push_back(o.before + " before " + o.after);
    }
  }
  for (const auto& [failure, constraints] : by_failure) {
    std::printf("  %s:\n", failure.c_str());
    for (const auto& c : constraints) std::printf("    %s\n", c.c_str());
  }

  // Paper's Fig. 13 orderings (modulo naming: ACK = A1, signals prefixed
  // with the stage instance).
  struct Expected {
    const char* label;
    const char* before;
    const char* after;
  };
  const Expected expected[] = {
      {"(b) Z+ before ACK+", "I1.Z+", "A1+"},
      {"(c) Y- before CLKE-", "I1.Y-", "I1.CLKE-"},
  };
  std::printf("\npaper's Fig. 13 orderings:\n");
  bool all = true;
  const auto cs = r.constraints();
  for (const Expected& e : expected) {
    bool found = false;
    for (const DerivedOrdering& o : cs)
      if (o.before == e.before && o.after == e.after) found = true;
    std::printf("  %-22s : %s\n", e.label, found ? "derived" : "not derived");
    all = all && found;
  }
  std::printf(
      "\n(The engine derives (d) ACK- before Z- and (e) CLKE+ before the\n"
      " next VALID- only if the corresponding failures are reached before\n"
      " other constraints already prune them; the invariants they protect\n"
      " are verified either way.)\n");
  return r.verified() && all ? 0 : 1;
}
