// Baseline comparison: relative-timing refinement vs exact zone-graph
// (DBM) timed reachability.
//
// The paper motivates relative timing by the cost of exact timed state
// spaces (PSPACE-hard reachability, zone/region explosion).  This bench
// runs both engines on the same obligations and reports cost and verdict
// agreement — the zone engine doubles as the ground truth.
#include <cstdio>

#include "rtv/circuit/invariants.hpp"
#include "rtv/ipcmos/experiments.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/zone/zone_graph.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

int main() {
  bool agree = true;

  std::printf("%-34s %12s %12s %10s %10s %8s\n", "system", "rt-verdict",
              "zone-verdict", "rt-states", "zones", "agree");

  // Intro example.
  {
    const Module sys = gallery::intro_example();
    const Module mon = gallery::order_monitor("g", "d");
    const InvariantProperty bad("g before d", {{"fail", true}});
    const VerificationResult rt = verify_modules({&sys, &mon}, {&bad});
    const ZoneVerifyResult zn = zone_verify({&sys, &mon}, {&bad});
    const bool ok = (rt.verdict == Verdict::kVerified) == !zn.violated;
    agree = agree && ok;
    std::printf("%-34s %12s %12s %10zu %10zu %8s\n", "intro example",
                to_string(rt.verdict), zn.violated ? "violated" : "holds",
                rt.final_states_explored, zn.zones_explored, ok ? "yes" : "NO");
  }

  // 1-stage IPCMOS pipeline, correct timing.
  const auto run_stage = [&](const char* name, const ExperimentConfig& cfg,
                             bool expect_ok) {
    const VerificationResult rt = experiment5(cfg);
    const ModuleSet set = flat_pipeline(1, cfg.timing);
    const Netlist nl =
        make_stage_netlist("I1", linear_channels(1), cfg.timing.stage);
    const auto scs = short_circuit_properties(nl);
    const DeadlockFreedom dead;
    const PersistencyProperty pers;
    std::vector<const SafetyProperty*> props{&dead, &pers};
    for (const auto& p : scs) props.push_back(p.get());
    const ZoneVerifyResult zn = zone_verify(set.ptrs, props);
    const bool ok = (rt.verdict == Verdict::kVerified) == !zn.violated &&
                    (!zn.violated == expect_ok);
    agree = agree && ok;
    std::printf("%-34s %12s %12s %10zu %10zu %8s\n", name, to_string(rt.verdict),
                zn.violated ? "violated" : "holds", rt.final_states_explored,
                zn.zones_explored, ok ? "yes" : "NO");
  };

  ExperimentConfig good;
  run_stage("IPCMOS 1-stage (nominal delays)", good, true);

  ExperimentConfig slow_y;
  slow_y.timing.stage.y_fall = DelayInterval::units(6, 8);
  run_stage("IPCMOS 1-stage (slow Y-)", slow_y, false);

  ExperimentConfig slow_z;
  slow_z.timing.stage.z_rise = DelayInterval::units(9, 12);
  run_stage("IPCMOS 1-stage (slow Z+)", slow_z, false);

  std::printf("\nverdict agreement on all systems: %s\n", agree ? "yes" : "NO");
  std::printf("(the refinement engine explores the untimed product plus\n"
              " derived constraints; the zone engine pays for exact clock\n"
              " polyhedra — the paper's motivation for relative timing)\n");
  return agree ? 0 : 1;
}
