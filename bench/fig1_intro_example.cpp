// Reproduction of Figures 1 and 2: the introductory refinement example.
//
// Fig. 1 shows a small timed transition system whose untimed state space
// violates "g before d", together with the lazy transition systems after
// each refinement (states pruned as timing-inconsistent).  Fig. 2 shows
// the failure traces and their causal event structures with the derived
// timing arcs.  This bench replays the flow and reports, per iteration,
// the failure trace, the derived constraint, and the size of the refined
// state space (the analogue of the gray vs. white states of Fig. 1).
#include <cstdio>

#include "rtv/lazy/refined_system.hpp"
#include "rtv/timing/ces.hpp"
#include "rtv/timing/orderings.hpp"
#include "rtv/verify/report.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/zone/zone_graph.hpp"

using namespace rtv;

int main() {
  const Module sys = gallery::intro_example();
  const Module mon = gallery::order_monitor("g", "d");
  const InvariantProperty bad("g before d", {{"fail", true}});

  std::printf("Introductory example (Figs. 1-2): events and delays\n");
  for (const char* l : {"a", "b", "c", "g", "d"}) {
    const EventId e = sys.ts().event_by_label(l);
    std::printf("  %s %s\n", l, sys.ts().delay(e).to_string().c_str());
  }
  std::printf("property: g always fires before d\n\n");

  // The untimed state space violates the property (strip all delays)...
  {
    TransitionSystem stripped = sys.ts();
    for (std::size_t i = 0; i < stripped.num_events(); ++i)
      stripped.set_event_delay(EventId(static_cast<EventId::underlying_type>(i)),
                               DelayInterval::unbounded());
    const Module untimed_sys("intro-untimed", std::move(stripped));
    const VerificationResult u = verify_modules({&untimed_sys, &mon}, {&bad});
    std::printf("untimed check: %s (as in Fig. 1(a): d can fire before g)\n",
                u.verdict == Verdict::kViolated ? "VIOLATED"
                                                : to_string(u.verdict));
  }

  // ...the exact timed state space satisfies it...
  const ZoneVerifyResult z = zone_verify({&sys, &mon}, {&bad});
  std::printf("exact timed check (zone graph): %s\n\n",
              z.violated ? "VIOLATED" : "satisfied");

  // ...and the iterative relative-timing flow proves it.
  const VerificationResult r = verify_modules({&sys, &mon}, {&bad});
  std::printf("%s\n", format_report("relative-timing flow", r).c_str());

  // Fig. 2(c,d): causal event structure of the canonical failure trace
  // with the timing arcs derived by max-separation analysis.
  {
    const TransitionSystem& ts = sys.ts();
    Trace trace;
    StateId s = ts.initial();
    for (const char* l : {"a", "c", "d"}) {
      const EventId e = ts.event_by_label(l);
      TraceStep step{s, e, ts.enabled_events(s)};
      trace.steps.push_back(step);
      s = *ts.successor(s, e);
    }
    trace.final_state = s;
    trace.final_enabled = ts.enabled_events(s);
    const Ces ces = extract_ces(ts, trace);
    std::printf("CES of the failure trace a,c,d (Fig. 2(c) analogue):\n%s",
                ces.to_string().c_str());
    const auto orderings = derive_ces_orderings(ces);
    std::printf("derived timing arcs:\n%s\n",
                format_ces_orderings(ces, orderings).c_str());
  }
  return r.verified() && !z.violated ? 0 : 1;
}
