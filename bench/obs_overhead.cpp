// Observability overhead: metrics on vs off on the IPCMOS boundary-2
// obligation (IN || I1 || A_out(2) |= A_in(2)), the same ~1M-config
// discrete workload bench/parallel_explore shards.
//
// The obs layer's contract is near-zero cost when disabled and bounded
// cost when enabled: engines aggregate locally and flush at chunk/layer/run
// boundaries, so the per-state hot path sees at most one relaxed atomic
// load.  This bench makes that contract measurable — best-of-R wall clock
// per mode (interleaved, so thermal drift hits both equally), states/sec,
// and the enabled-mode regression in percent.  Exit 1 when the regression
// exceeds the acceptance threshold (3% by default, --max-overhead-pct to
// widen on noisy shared runners).
//
// Writes a machine-readable summary to BENCH_obs.json (--json to rename).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rtv/ipcmos/pipeline.hpp"
#include "rtv/obs/metrics.hpp"
#include "rtv/ts/compose.hpp"
#include "rtv/verify/property.hpp"
#include "rtv/zone/discrete.hpp"

using namespace rtv;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ModeResult {
  double best_seconds = 0.0;
  std::size_t states = 0;
  double states_per_sec() const {
    return best_seconds > 0 ? static_cast<double>(states) / best_seconds : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_obs.json";
  double max_overhead_pct = 3.0;
  int reps = 5;
  std::size_t jobs = 1;  // single worker: per-state overhead, lowest noise
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--json") json_path = next();
    else if (arg == "--max-overhead-pct") max_overhead_pct = std::atof(next());
    else if (arg == "--reps") reps = std::atoi(next());
    else if (arg == "--jobs") jobs = static_cast<std::size_t>(std::atoll(next()));
    else {
      std::fprintf(stderr, "usage: obs_overhead [--json FILE] [--reps N]\n"
                           "       [--jobs N] [--max-overhead-pct P]\n");
      return 64;
    }
  }

  const ipcmos::PipelineTiming t;
  const Module in = ipcmos::make_in_env(t);
  const Module stage = ipcmos::make_stage(1, t);
  const Module aout = ipcmos::make_aout(2);
  const Module ain = ipcmos::make_ain(2);
  const Module mon = ain.as_monitor("Ain2'");
  const DeadlockFreedom dead;
  const PersistencyProperty pers;
  const std::vector<const SafetyProperty*> props{&dead, &pers};
  ComposeOptions copts;
  copts.track_chokes = true;
  const Composition comp = compose({&in, &stage, &aout, &mon}, copts);

  std::printf("obs_overhead — metrics on vs off, IPCMOS boundary-2\n");
  std::printf("composed states: %zu, jobs: %zu, best of %d rep(s)\n",
              comp.ts.num_states(), jobs, reps);

  auto run_once = [&]() {
    DiscreteVerifyOptions opts;
    opts.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const DiscreteVerifyResult r =
        discrete_explore(comp.ts, props, comp.chokes, opts);
    return std::pair<double, std::size_t>(seconds_since(t0),
                                          r.states_explored);
  };

  run_once();  // warm-up: page in the composition, prime the allocator

  ModeResult on, off;
  for (int rep = 0; rep < reps; ++rep) {
    // Interleave modes so slow drift (thermal, noisy neighbours) cannot
    // systematically favour whichever mode runs last.
    obs::set_metrics_enabled(true);
    auto [on_wall, on_states] = run_once();
    obs::set_metrics_enabled(false);
    auto [off_wall, off_states] = run_once();
    obs::set_metrics_enabled(true);
    if (rep == 0 || on_wall < on.best_seconds) on.best_seconds = on_wall;
    if (rep == 0 || off_wall < off.best_seconds) off.best_seconds = off_wall;
    on.states = on_states;
    off.states = off_states;
    std::printf("  rep %d: on %.3fs, off %.3fs\n", rep + 1, on_wall, off_wall);
    std::fflush(stdout);
  }

  const double overhead_pct =
      off.best_seconds > 0
          ? (on.best_seconds - off.best_seconds) / off.best_seconds * 100.0
          : 0.0;
  std::printf("\n%-10s %12s %16s\n", "metrics", "wall [s]", "states/sec");
  std::printf("%-10s %12.3f %16.0f\n", "on", on.best_seconds,
              on.states_per_sec());
  std::printf("%-10s %12.3f %16.0f\n", "off", off.best_seconds,
              off.states_per_sec());
  std::printf("overhead: %.2f%% (threshold %.2f%%)\n", overhead_pct,
              max_overhead_pct);
  if (on.states != off.states)
    std::printf("WARNING: state counts differ (%zu vs %zu)\n", on.states,
                off.states);

  std::string json = "{\"bench\":\"obs_overhead\",\"workload\":"
                     "\"ipcmos-boundary-2\",\"jobs\":";
  json += std::to_string(jobs);
  json += ",\"reps\":" + std::to_string(reps);
  json += ",\"states\":" + std::to_string(off.states);
  char buf[160];
  std::snprintf(buf, sizeof buf,
                ",\"on_seconds\":%.6f,\"off_seconds\":%.6f,"
                "\"on_states_per_sec\":%.1f,\"off_states_per_sec\":%.1f,"
                "\"overhead_pct\":%.3f}",
                on.best_seconds, off.best_seconds, on.states_per_sec(),
                off.states_per_sec(), overhead_pct);
  json += buf;
  json += '\n';
  std::ofstream out(json_path);
  out << json;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 70;
  }
  std::printf("JSON written to %s\n", json_path.c_str());

  return overhead_pct <= max_overhead_pct && on.states == off.states ? 0 : 1;
}
