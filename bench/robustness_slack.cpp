// Delay-slack exploration (the paper's back-annotation claim):
//
//   "These constraints indicate the slacks allowable in the delays of the
//    components for which a correct behavior can still be guaranteed."
//
// For selected stage delays, sweep the parameter and report the boundary
// between VERIFIED and VIOLATED — the slack margin of the design.
// The paper's orderings predict the boundaries: e.g. Y- [1,2] must finish
// before CLKE- [3,4] (both triggered by ACK+), so Y-'s upper bound can
// grow to CLKE-'s lower bound (3) and no further.
#include <cstdio>
#include <functional>

#include "rtv/ipcmos/experiments.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

namespace {

struct Sweep {
  const char* name;
  const char* prediction;
  std::function<void(StageTiming&, double)> set;  // sets [lo, lo+1] at x = hi
  double from, to, step;
};

}  // namespace

int main() {
  const Sweep sweeps[] = {
      {"y_fall.hi (isolation after ACK+)",
       "must stay < clke_fall.lo = 3 (Fig. 13(c): Y- before CLKE-)",
       [](StageTiming& t, double hi) {
         t.y_fall = DelayInterval::units(1, hi);
       },
       2.0, 5.0, 0.5},
      {"z_rise.hi (inverter arming the Y pull-up)",
       "must stay < ack_rise.lo = 8 (Fig. 13(b): Z+ before ACK+)",
       [](StageTiming& t, double hi) {
         t.z_rise = DelayInterval::units(0, hi);
       },
       2.0, 10.0, 1.0},
      {"r_fall.hi (reset switch recording the launch)",
       "must finish inside the CLKE-low window",
       [](StageTiming& t, double hi) {
         t.r_fall = DelayInterval::units(1, hi);
       },
       2.0, 8.0, 1.0},
  };

  for (const Sweep& s : sweeps) {
    std::printf("sweep: %s\n  prediction: %s\n", s.name, s.prediction);
    double last_ok = -1, first_bad = -1;
    for (double v = s.from; v <= s.to + 1e-9; v += s.step) {
      ExperimentConfig cfg;
      s.set(cfg.timing.stage, v);
      const VerificationResult r = experiment5(cfg);
      std::printf("  %6.2f : %s (%d refinements)\n", v, to_string(r.verdict),
                  r.refinements);
      if (r.verified()) {
        last_ok = v;
      } else if (first_bad < 0) {
        first_bad = v;
      }
    }
    if (first_bad >= 0) {
      std::printf("  slack boundary between %.2f and %.2f\n\n", last_ok,
                  first_bad);
    } else {
      std::printf("  no failure in the swept range\n\n");
    }
  }
  return 0;
}
