// Intra-obligation scaling: one large obligation, sharded across workers.
//
// bench/portfolio_scaling measures obligation-level parallelism (many
// obligations, one worker each); this bench measures the complement — the
// sharded-frontier BFS inside a *single* obligation (rtv/base/parallel.hpp):
//
//   * compose() on a flat product of independent togglers (2^k states, the
//     scaling_pipeline blow-up in miniature), and
//   * discrete_explore() on the IPCMOS boundary-2 obligation
//     (IN || I1 || A_out(2) |= A_in(2), the induction base of Table 1's
//     experiment 3): ~1M digitized configs in one obligation — exactly the
//     single large obligation PR 3's scheduler could not shard.
//
// Each workload runs at jobs = 1, 2, 4, ... up to max(4, hardware),
// reporting wall-clock speedup over jobs=1 and checking that state counts
// (and compose's full output) are identical across job counts — the
// determinism contract.  On an N-core machine the 4-worker run should be
// >= 2x the sequential one; on fewer cores the bench still validates
// parity, and the speedup column simply reflects the hardware.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "rtv/ipcmos/pipeline.hpp"
#include "rtv/ts/compose.hpp"
#include "rtv/verify/property.hpp"
#include "rtv/zone/discrete.hpp"

using namespace rtv;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Two-state toggler out+/out-; k of them compose into a 2^k-state product.
Module toggler(const std::string& sig) {
  TransitionSystem ts;
  const StateId lo = ts.add_state();
  const StateId hi = ts.add_state();
  ts.add_transition(
      lo, ts.add_event(sig + "+", DelayInterval::units(1, 2), EventKind::kOutput),
      hi);
  ts.add_transition(
      hi, ts.add_event(sig + "-", DelayInterval::units(1, 2), EventKind::kOutput),
      lo);
  ts.set_initial(lo);
  return Module(sig, std::move(ts));
}

std::vector<std::size_t> job_counts() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> jobs{1};
  for (std::size_t j = 2; j <= std::max(4u, hw); j *= 2) jobs.push_back(j);
  return jobs;
}

}  // namespace

int main() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("parallel_explore — single-obligation frontier sharding\n");
  std::printf("hardware threads: %u\n", hw);
  bool consistent = true;

  // ---- compose(): flat 2^k-state product ---------------------------------
  {
    constexpr int kTogglers = 15;  // 32768 product states, 30 labels each
    std::vector<Module> owned;
    owned.reserve(kTogglers);
    std::vector<const Module*> modules;
    for (int i = 0; i < kTogglers; ++i)
      owned.push_back(toggler("t" + std::to_string(i)));
    for (const Module& m : owned) modules.push_back(&m);

    std::printf("\ncompose: %d togglers (2^%d product states)\n", kTogglers,
                kTogglers);
    std::printf("%6s %12s %10s %12s\n", "jobs", "wall [s]", "speedup",
                "states");
    double base = 0.0;
    std::size_t base_states = 0;
    for (const std::size_t jobs : job_counts()) {
      ComposeOptions opts;
      opts.jobs = jobs;
      const auto t0 = std::chrono::steady_clock::now();
      const Composition c = compose(modules, opts);
      const double wall = seconds_since(t0);
      if (jobs == 1) {
        base = wall;
        base_states = c.ts.num_states();
      }
      if (c.ts.num_states() != base_states) consistent = false;
      std::printf("%6zu %12.3f %9.2fx %12zu\n", jobs, wall,
                  wall > 0 ? base / wall : 0.0, c.ts.num_states());
      std::fflush(stdout);
    }
  }

  // ---- discrete_explore(): the IPCMOS boundary-2 obligation --------------
  {
    const ipcmos::PipelineTiming t;
    const Module in = ipcmos::make_in_env(t);
    const Module stage = ipcmos::make_stage(1, t);
    const Module aout = ipcmos::make_aout(2);
    const Module ain = ipcmos::make_ain(2);
    const Module mon = ain.as_monitor("Ain2'");
    const DeadlockFreedom dead;
    const PersistencyProperty pers;
    const std::vector<const SafetyProperty*> props{&dead, &pers};
    ComposeOptions copts;
    copts.track_chokes = true;
    const Composition comp = compose({&in, &stage, &aout, &mon}, copts);

    std::printf(
        "\ndiscrete: IPCMOS boundary-2 (IN || I1 || A_out(2) |= A_in(2)), "
        "%zu composed states\n",
        comp.ts.num_states());
    std::printf("%6s %12s %10s %12s   verdict\n", "jobs", "wall [s]",
                "speedup", "configs");
    double base = 0.0;
    std::size_t base_states = 0;
    bool base_violated = false;
    for (const std::size_t jobs : job_counts()) {
      DiscreteVerifyOptions opts;
      opts.jobs = jobs;
      const auto t0 = std::chrono::steady_clock::now();
      const DiscreteVerifyResult r =
          discrete_explore(comp.ts, props, comp.chokes, opts);
      const double wall = seconds_since(t0);
      if (jobs == 1) {
        base = wall;
        base_states = r.states_explored;
        base_violated = r.violated;
      }
      if (r.states_explored != base_states || r.violated != base_violated)
        consistent = false;
      std::printf("%6zu %12.3f %9.2fx %12zu   %s\n", jobs, wall,
                  wall > 0 ? base / wall : 0.0, r.states_explored,
                  r.violated ? "VIOLATED" : "verified");
      std::fflush(stdout);
    }
  }

  std::printf("\nresults identical across job counts: %s\n",
              consistent ? "yes" : "NO");
  return consistent ? 0 : 1;
}
