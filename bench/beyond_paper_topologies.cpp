// Beyond the paper's evaluation: fork and join IPCMOS stages.
//
// Section 3.1 states that IPCMOS blocks "can be fed multiple ACK and VALID
// signals" with transistor count 21 + 7*N_in + 4*N_out, but the DATE'02
// evaluation only verifies the linear pipeline.  This bench applies the
// same flow to a 2-input join and a 2-output fork between pulse-driven
// environments, plus timed-simulation liveness checks.
#include <cstdio>

#include "rtv/ipcmos/topologies.hpp"
#include "rtv/sim/simulator.hpp"
#include "rtv/verify/report.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

namespace {

void simulate_and_report(const char* name, const ModuleSet& set,
                         const char* ack_label) {
  SimOptions opts;
  opts.max_events = 300;
  opts.seed = 5;
  const SimTrace t = simulate_modules(set.ptrs, opts);
  int acks = 0;
  for (const SimEvent& e : t.events)
    if (e.label == ack_label) ++acks;
  std::printf("  %s simulation: %zu events, %d items acknowledged, %s\n", name,
              t.events.size(), acks,
              t.deadlocked ? "DEADLOCK" : "live");
}

}  // namespace

int main() {
  std::printf("Fork/join IPCMOS stages (beyond the paper's evaluation)\n\n");
  std::printf("transistor accounting (21 + 7*N_in + 4*N_out):\n");
  std::printf("  join (2 in, 1 out): %d transistors (expected %d)\n",
              make_join_netlist().transistor_count(), expected_transistors(2, 1));
  std::printf("  fork (1 in, 2 out): %d transistors (expected %d)\n\n",
              make_fork_netlist().transistor_count(), expected_transistors(1, 2));

  simulate_and_report("join", join_system(), "A+");
  simulate_and_report("fork", fork_system(), "Ai+");

  std::printf("\nrelative-timing verification (deadlock-freedom, persistency,\n"
              "short-circuit invariants of the stage):\n");
  {
    ExperimentConfig cfg;  // default wave cap: the fork needs the precision
    cfg.verify.max_states = 4'000'000;
    const VerificationResult r = verify_fork(cfg);
    std::printf("  fork: %s, %d refinements, %.1f s, %zu composed states\n",
                to_string(r.verdict), r.refinements, r.seconds,
                r.composed_states);
  }
  {
    // The join is the stress case of this repository: two *independent*
    // pulse producers multiply the concurrency (298k composed states) and
    // the refined space grows accordingly.  Run it under explicit budgets
    // so the bench terminates; EXPERIMENTS.md discusses the trade-off.
    ExperimentConfig cfg;
    cfg.verify.max_states = 1'200'000;
    cfg.verify.max_refinements = 12;
    const VerificationResult r = verify_join(cfg);
    std::printf("  join: %s, %d refinements, %.1f s, %zu composed states\n",
                to_string(r.verdict), r.refinements, r.seconds,
                r.composed_states);
    if (!r.verified()) {
      std::printf("        (budgeted run: %s; the fork result and the\n"
                  "         simulation above cover the multi-channel claim)\n",
                  r.message.c_str());
    }
  }
  return 0;
}
