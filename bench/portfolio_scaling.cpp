// Batch wall-clock scaling of the suite scheduler: the same suite of
// obligations — the Fig. 1 gallery systems, the Table 1 pipeline
// obligations and the join IPCMOS topology — run with 1, 2, 4, ... worker
// threads, reporting wall-clock speedup over the sequential run.  A
// portfolio pass at the end shows the racing mode on one obligation: the
// winning engine's verdict, the losers cancelled.
//
// The suite is embarrassingly parallel (independent obligations), so on an
// N-core machine the batch wall clock should approach the dominant
// obligation's own runtime; `--jobs 4` beats `--jobs 1` by roughly the
// obligation-level parallelism.  The join obligation runs under the same
// explicit refinement budget as bench/beyond_paper_topologies (its full
// refined space is out of scale for a scaling study), and the constant-
// magnitude races are pinned to the digitized engine via the
// per-obligation engine override — deterministic work per obligation, so
// job counts only change the schedule, never the verdicts.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "rtv/circuit/invariants.hpp"
#include "rtv/ipcmos/experiments.hpp"
#include "rtv/ipcmos/topologies.hpp"
#include "rtv/ts/gallery.hpp"
#include "rtv/verify/suite.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

namespace {

/// Gallery + IPCMOS topologies: the five Table 1 obligations, the intro
/// example, the join stage, and four digitized races.
Suite build_suite() {
  const ExperimentConfig cfg;
  Suite suite = table1_suite(cfg);
  {
    const Module* sys = suite.own(gallery::intro_example());
    const Module* mon = suite.own(gallery::order_monitor("g", "d"));
    const SafetyProperty* bad = suite.own(std::make_unique<InvariantProperty>(
        "g before d",
        std::vector<InvariantProperty::Literal>{{"fail", true}}));
    suite.add("gallery: intro example", {sys, mon}, {bad});
  }
  {
    ModuleSet set = join_system(cfg.timing);
    std::vector<const Module*> modules;
    for (auto& m : set.owned) modules.push_back(suite.own(std::move(*m)));
    std::vector<const SafetyProperty*> props{
        suite.own(std::make_unique<DeadlockFreedom>()),
        suite.own(std::make_unique<PersistencyProperty>())};
    for (auto& p : short_circuit_properties(make_join_netlist(cfg.timing.stage)))
      props.push_back(suite.own(std::move(p)));
    Obligation& ob = suite.add("topology: join (2 producers)",
                               std::move(modules), std::move(props));
    // The budget bench/beyond_paper_topologies documents for the join.
    ob.max_refinements = 12;
    ob.budget.max_states = 1'200'000;
  }
  for (int k = 2000; k <= 5000; k += 1000) {
    const Module* sys = suite.own(gallery::scaled_race(k));
    const Module* mon = suite.own(gallery::order_monitor("a", "c"));
    const SafetyProperty* bad = suite.own(std::make_unique<InvariantProperty>(
        "a before c",
        std::vector<InvariantProperty::Literal>{{"fail", true}}));
    Obligation& ob = suite.add("gallery: race3 k=" + std::to_string(k),
                               {sys, mon}, {bad});
    ob.engine = "discrete";  // the per-obligation override: digitized work
  }
  return suite;
}

}  // namespace

int main() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("portfolio_scaling — batch wall clock vs worker threads\n");
  std::printf("hardware threads: %u\n\n", hw);

  std::vector<std::size_t> job_counts{1};
  for (std::size_t j = 2; j <= std::max(4u, hw); j *= 2)
    job_counts.push_back(j);

  std::printf("%6s %12s %10s   verdict\n", "jobs", "wall [s]", "speedup");
  bool consistent = true;
  double base = 0.0;
  Verdict base_verdict = Verdict::kInconclusive;
  for (const std::size_t jobs : job_counts) {
    const Suite suite = build_suite();
    SuiteOptions opts;
    opts.jobs = jobs;
    const SuiteReport report = run_suite(suite, opts);
    if (jobs == job_counts.front()) {
      base = report.wall_seconds;
      base_verdict = report.overall();
    }
    if (report.overall() != base_verdict) consistent = false;
    std::printf("%6zu %12.3f %9.2fx   %s\n", jobs, report.wall_seconds,
                report.wall_seconds > 0 ? base / report.wall_seconds : 0.0,
                to_string(report.overall()));
    std::fflush(stdout);
  }
  std::printf("\nverdicts identical across job counts: %s\n",
              consistent ? "yes" : "NO");

  // Portfolio mode on the hardest obligation: every engine races, the first
  // definitive verdict wins, the losers report "cancelled by caller".
  {
    Suite one;
    const ExperimentConfig cfg;
    ModuleSet set = flat_pipeline(1, cfg.timing);
    std::vector<const Module*> modules;
    for (auto& m : set.owned) modules.push_back(one.own(std::move(*m)));
    std::vector<const SafetyProperty*> props{
        one.own(std::make_unique<DeadlockFreedom>()),
        one.own(std::make_unique<PersistencyProperty>())};
    const Netlist nl =
        make_stage_netlist("I1", linear_channels(1), cfg.timing.stage);
    for (auto& p : short_circuit_properties(nl))
      props.push_back(one.own(std::move(p)));
    one.add("IN || I || OUT |= S", std::move(modules), std::move(props));

    SuiteOptions opts;
    opts.mode = SuiteMode::kPortfolio;
    const SuiteReport report = run_suite(one, opts);
    std::printf("\nportfolio on IN || I || OUT |= S (%zu jobs):\n",
                report.jobs);
    for (const SuiteRecord& rec : report.records) {
      std::printf("  %-10s %-14s %10zu states  %8.3f s  %s%s\n",
                  rec.engine.c_str(), to_string(rec.result.verdict),
                  rec.result.states_explored, rec.result.seconds,
                  rec.result.truncated_reason.c_str(),
                  rec.winner ? "  <- winner" : "");
    }
  }
  return consistent ? 0 : 1;
}
