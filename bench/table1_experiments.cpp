// Reproduction of Table 1: the five verification steps of Section 4.2,
// expressed as a declarative rtv::Suite (ipcmos::table1_suite) and executed
// by the batch scheduler — the paper's experiment *is* a batch of
// obligations, so the bench is now just: build suite, run, check shape.
//
// The paper reports CPU time (866 MHz PIII, rounded to minutes) and the
// number of refinement iterations of the transyt tool.  Absolute times are
// hardware- and engine-bound; the comparison targets the *shape*:
//   * experiment 1 needs no refinement (pure untimed abstraction check),
//   * experiments 2-4 need a few refinements each,
//   * experiment 5 (a transistor-level stage between two pulse-driven
//     environments) needs the most refinements,
//   * every step is verified.
#include <algorithm>
#include <cstdio>

#include "rtv/ipcmos/experiments.hpp"
#include "rtv/verify/report.hpp"
#include "rtv/verify/suite.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

namespace {

int refinements_of(const SuiteRecord& rec) {
  const auto* st = std::get_if<RefineEngineStats>(&rec.result.stats);
  return st ? st->refinements : 0;
}

}  // namespace

int main() {
  std::printf("Table 1 — Summary of experimental results\n");
  std::printf("Paper (866 MHz PIII, transyt):\n");
  std::printf("  1. Ain || Aout |= S                 < 1 min   -- refinements\n");
  std::printf("  2. Ain || I || OUT <= Aout           28 min    7 refinements\n");
  std::printf("  3. IN  || I || Aout <= Ain            9 min    3 refinements\n");
  std::printf("  4. Ain || I || Aout <= Ain (f.p.)    10 min    3 refinements\n");
  std::printf("  5. IN  || I || OUT |= S              35 min   40 refinements\n");
  std::printf("\nThis reproduction (batch scheduler, refine engine):\n\n");

  const Suite suite = table1_suite();
  const SuiteReport report = run_suite(suite);  // batch, refine, all cores
  std::printf("%s", format_table(rows_from(report)).c_str());
  std::printf("(batch wall clock: %.3f s on %zu jobs)\n", report.wall_seconds,
              report.jobs);

  const std::vector<SuiteRecord>& recs = report.records;
  std::printf("\nShape checks:\n");
  const bool all_verified = report.overall() == Verdict::kVerified;
  std::printf("  all five steps verified:            %s\n",
              all_verified ? "yes" : "NO");
  std::printf("  experiment 1 needs no refinement:   %s\n",
              refinements_of(recs[0]) == 0 ? "yes" : "NO");
  // The paper's hardest steps expose a transistor-level stage to a
  // pulse-driven environment (exp 5, and exp 3's IN side); the
  // handshake-only obligations (2, 4) need fewer constraints.
  const int pulse_min =
      std::min(refinements_of(recs[2]), refinements_of(recs[4]));
  const int handshake_max =
      std::max(refinements_of(recs[1]), refinements_of(recs[3]));
  std::printf("  pulse-driven steps (3,5) hardest:   %s (min %d vs max %d)\n",
              pulse_min >= handshake_max ? "yes" : "NO", pulse_min,
              handshake_max);

  std::printf("\nBack-annotated relative timing constraints (experiment 5):\n");
  if (const auto* st = std::get_if<RefineEngineStats>(&recs[4].result.stats)) {
    for (const std::string& c : st->constraints) std::printf("%s\n", c.c_str());
  }
  return exit_code(report.overall());
}
