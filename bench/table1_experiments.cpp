// Reproduction of Table 1: the five verification steps of Section 4.2.
//
// The paper reports CPU time (866 MHz PIII, rounded to minutes) and the
// number of refinement iterations of the transyt tool.  Absolute times are
// hardware- and engine-bound; the comparison targets the *shape*:
//   * experiment 1 needs no refinement (pure untimed abstraction check),
//   * experiments 2-4 need a few refinements each,
//   * experiment 5 (a transistor-level stage between two pulse-driven
//     environments) needs the most refinements,
//   * every step is verified.
#include <cstdio>

#include "rtv/ipcmos/experiments.hpp"
#include "rtv/verify/report.hpp"

using namespace rtv;
using namespace rtv::ipcmos;

int main() {
  std::printf("Table 1 — Summary of experimental results\n");
  std::printf("Paper (866 MHz PIII, transyt):\n");
  std::printf("  1. Ain || Aout |= S                 < 1 min   -- refinements\n");
  std::printf("  2. Ain || I || OUT <= Aout           28 min    7 refinements\n");
  std::printf("  3. IN  || I || Aout <= Ain            9 min    3 refinements\n");
  std::printf("  4. Ain || I || Aout <= Ain (f.p.)    10 min    3 refinements\n");
  std::printf("  5. IN  || I || OUT |= S              35 min   40 refinements\n");
  std::printf("\nThis reproduction:\n\n");

  const auto rows = run_all_experiments();
  std::vector<ExperimentRow> table;
  for (const auto& row : rows) table.push_back(summarize(row.name, row.result));
  std::printf("%s", format_table(table).c_str());

  std::printf("\nShape checks:\n");
  const bool all_verified = [&] {
    for (const auto& r : rows)
      if (r.result.verdict != Verdict::kVerified) return false;
    return true;
  }();
  std::printf("  all five steps verified:            %s\n",
              all_verified ? "yes" : "NO");
  std::printf("  experiment 1 needs no refinement:   %s\n",
              rows[0].result.refinements == 0 ? "yes" : "NO");
  // The paper's hardest steps expose a transistor-level stage to a
  // pulse-driven environment (exp 5, and exp 3's IN side); the
  // handshake-only obligations (2, 4) need fewer constraints.
  const int pulse_min = std::min(rows[2].result.refinements,
                                 rows[4].result.refinements);
  const int handshake_max = std::max(rows[1].result.refinements,
                                     rows[3].result.refinements);
  std::printf("  pulse-driven steps (3,5) hardest:   %s (min %d vs max %d)\n",
              pulse_min >= handshake_max ? "yes" : "NO", pulse_min,
              handshake_max);

  std::printf("\nBack-annotated relative timing constraints (experiment 5):\n");
  std::printf("%s", format_constraints(rows[4].result).c_str());
  return all_verified ? 0 : 1;
}
