#include "rtv/obs/trace.hpp"

#include <cstdio>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "rtv/base/json.hpp"
#include "rtv/obs/metrics.hpp"

namespace rtv::obs {

namespace {

struct TraceEvent {
  std::string name;
  std::string category;
  char phase;  // 'B', 'E', 'i'
  std::uint64_t ts_ns;
  std::uint32_t tid;
};

struct Session {
  std::mutex mu;
  bool active = false;
  std::uint32_t generation = 0;
  std::uint64_t epoch_ns = 0;
  std::vector<TraceEvent> events;
  std::map<std::uint32_t, std::string> thread_names;  // survives sessions
};

Session& session() {
  static Session s;
  return s;
}

void append_event_json(std::string& out, const TraceEvent& e,
                       std::uint64_t epoch_ns) {
  out += "{\"name\":";
  json::append_string(out, e.name);
  out += ",\"cat\":";
  json::append_string(out, e.category);
  out += ",\"ph\":\"";
  out += e.phase;
  out += "\",\"ts\":";
  json::append_double(out, static_cast<double>(e.ts_ns - epoch_ns) * 1e-3);
  out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
  if (e.phase == 'i') out += ",\"s\":\"t\"";
  out += "}";
}

/// Drain the session into a Chrome trace-event document.  Unmatched begin
/// events are closed with synthetic ends at the stop timestamp (innermost
/// first per thread) so every track carries matched B/E pairs.
std::string serialize_locked(Session& s) {
  const std::uint64_t stop_ns = monotonic_ns();
  std::map<std::uint32_t, std::vector<const TraceEvent*>> open;
  for (const TraceEvent& e : s.events) {
    if (e.phase == 'B') {
      open[e.tid].push_back(&e);
    } else if (e.phase == 'E' && !open[e.tid].empty()) {
      open[e.tid].pop_back();
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };
  sep();
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"rtv\"}}";

  std::map<std::uint32_t, bool> seen_tids;
  for (const TraceEvent& e : s.events) seen_tids[e.tid] = true;
  for (const auto& [tid, _] : seen_tids) {
    auto it = s.thread_names.find(tid);
    const std::string name =
        it != s.thread_names.end() ? it->second
                                   : "thread " + std::to_string(tid);
    sep();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":";
    json::append_string(out, name);
    out += "}}";
  }

  for (const TraceEvent& e : s.events) {
    sep();
    append_event_json(out, e, s.epoch_ns);
  }
  for (auto& [tid, stack] : open) {
    while (!stack.empty()) {
      const TraceEvent* b = stack.back();
      stack.pop_back();
      TraceEvent end{b->name, b->category, 'E', stop_ns, tid};
      sep();
      append_event_json(out, end, s.epoch_ns);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";

  s.events.clear();
  return out;
}

}  // namespace

void start_tracing() {
#ifdef RTV_OBS_DISABLED
  return;
#else
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.active) return;
  s.active = true;
  ++s.generation;
  s.epoch_ns = monotonic_ns();
  s.events.clear();
  detail::g_tracing_active.store(true, std::memory_order_relaxed);
#endif
}

std::string stop_tracing_json() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active) return "";
  detail::g_tracing_active.store(false, std::memory_order_relaxed);
  s.active = false;
  return serialize_locked(s);
}

bool write_trace(const std::string& path) {
  const std::string doc = stop_tracing_json();
  if (doc.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

void stop_tracing() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  detail::g_tracing_active.store(false, std::memory_order_relaxed);
  s.active = false;
  s.events.clear();
}

void set_thread_name(std::string_view name) {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  s.thread_names[thread_index()] = std::string(name);
}

void trace_instant(std::string_view name, std::string_view category) {
  if (!tracing_active()) return;
  const std::uint64_t now = monotonic_ns();
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active) return;
  s.events.push_back(
      {std::string(name), std::string(category), 'i', now, thread_index()});
}

namespace detail {

std::uint64_t span_begin(std::string_view name, std::string_view category) {
  const std::uint64_t now = monotonic_ns();
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active) return 0;
  s.events.push_back(
      {std::string(name), std::string(category), 'B', now, thread_index()});
  // The ticket carries the session generation so an end outliving its
  // session (or landing in a newer one) is dropped instead of emitting an
  // unmatched E; the serializer closes such spans synthetically.
  return (static_cast<std::uint64_t>(s.generation) << 32) | 1u;
}

void span_end(std::uint64_t ticket) {
  const std::uint64_t now = monotonic_ns();
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.active || (ticket >> 32) != s.generation) return;
  s.events.push_back({std::string(), std::string(), 'E', now, thread_index()});
}

}  // namespace detail

}  // namespace rtv::obs
