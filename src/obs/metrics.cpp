#include "rtv/obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "rtv/base/json.hpp"

namespace rtv::obs {

// ---- thread identity -------------------------------------------------------

namespace {
std::atomic<std::uint32_t> g_next_thread{0};
}  // namespace

std::uint32_t thread_index() {
  thread_local const std::uint32_t id =
      g_next_thread.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  if (!metrics_enabled()) return;
  const std::size_t idx =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                                v) -
                               bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double s;
    std::memcpy(&s, &old, sizeof(s));
    s += v;
    std::uint64_t bits;
    std::memcpy(&bits, &s, sizeof(bits));
    if (sum_bits_.compare_exchange_weak(old, bits, std::memory_order_relaxed))
      return;
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::sum() const {
  const std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double s;
  std::memcpy(&s, &bits, sizeof(s));
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::time_buckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 30, 100};
}

std::vector<double> Histogram::count_buckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024};
}

// ---- Registry --------------------------------------------------------------

namespace {

struct Entry {
  std::string name;
  std::string labels;
  std::string help;
  MetricType type;
  Counter* counter = nullptr;
  Gauge* gauge = nullptr;
  Histogram* histogram = nullptr;
};

std::string full_key(std::string_view name, std::string_view labels) {
  std::string key(name);
  key += '{';
  key += labels;
  key += '}';
  return key;
}

}  // namespace

struct Registry::Impl {
  mutable std::mutex mu;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::vector<Entry> entries;  // registration order
  std::unordered_map<std::string, std::size_t> index;  // full_key -> entries
};

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name, std::string_view labels,
                           std::string_view help) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const std::string key = full_key(name, labels);
  auto it = im.index.find(key);
  if (it != im.index.end()) return *im.entries[it->second].counter;
  im.counters.emplace_back();
  Entry e{std::string(name), std::string(labels), std::string(help),
          MetricType::kCounter, &im.counters.back(), nullptr, nullptr};
  im.index.emplace(key, im.entries.size());
  im.entries.push_back(std::move(e));
  return im.counters.back();
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels,
                       std::string_view help) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const std::string key = full_key(name, labels);
  auto it = im.index.find(key);
  if (it != im.index.end()) return *im.entries[it->second].gauge;
  im.gauges.emplace_back();
  Entry e{std::string(name), std::string(labels), std::string(help),
          MetricType::kGauge, nullptr, &im.gauges.back(), nullptr};
  im.index.emplace(key, im.entries.size());
  im.entries.push_back(std::move(e));
  return im.gauges.back();
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds,
                               std::string_view labels,
                               std::string_view help) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const std::string key = full_key(name, labels);
  auto it = im.index.find(key);
  if (it != im.index.end()) return *im.entries[it->second].histogram;
  im.histograms.emplace_back(std::move(bounds));
  Entry e{std::string(name), std::string(labels), std::string(help),
          MetricType::kHistogram, nullptr, nullptr, &im.histograms.back()};
  im.index.emplace(key, im.entries.size());
  im.entries.push_back(std::move(e));
  return im.histograms.back();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
#ifdef RTV_OBS_DISABLED
  return snap;
#else
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  snap.points.reserve(im.entries.size());
  for (const Entry& e : im.entries) {
    MetricPoint p;
    p.name = e.name;
    p.labels = e.labels;
    p.help = e.help;
    p.type = e.type;
    switch (e.type) {
      case MetricType::kCounter:
        p.value = static_cast<double>(e.counter->value());
        break;
      case MetricType::kGauge:
        p.value = static_cast<double>(e.gauge->value());
        break;
      case MetricType::kHistogram:
        p.value = e.histogram->sum();
        p.count = e.histogram->count();
        p.bucket_bounds = e.histogram->bounds();
        p.bucket_counts = e.histogram->bucket_counts();
        break;
    }
    snap.points.push_back(std::move(p));
  }
  return snap;
#endif
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (Counter& c : im.counters) c.reset();
  for (Gauge& g : im.gauges) g.reset();
  for (Histogram& h : im.histograms) h.reset();
}

MetricsSnapshot snapshot() { return Registry::global().snapshot(); }

// ---- snapshots -------------------------------------------------------------

const MetricPoint* MetricsSnapshot::find(std::string_view name,
                                         std::string_view labels) const {
  for (const MetricPoint& p : points)
    if (p.name == name && p.labels == labels) return &p;
  return nullptr;
}

namespace {

void append_number(std::string& out, double v) {
  // Counters/gauges are integral in practice; emit them without
  // floating-point noise so the exposition stays human-readable.
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    out += std::to_string(static_cast<std::int64_t>(v));
    return;
  }
  // Shortest representation that round-trips: a 0.1 bucket bound must read
  // back as le="0.1", not le="0.10000000000000001".
  char buf[32];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void append_series(std::string& out, const std::string& name,
                   const std::string& labels, const char* extra_label,
                   const std::string& extra_value, double v) {
  out += name;
  const bool has_extra = extra_label != nullptr;
  if (!labels.empty() || has_extra) {
    out += '{';
    out += labels;
    if (has_extra) {
      if (!labels.empty()) out += ',';
      out += extra_label;
      out += "=\"";
      out += extra_value;
      out += '"';
    }
    out += '}';
  }
  out += ' ';
  append_number(out, v);
  out += '\n';
}

std::string bound_repr(double b) {
  std::string s;
  append_number(s, b);
  return s;
}

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "counter";
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  std::string last_name;
  for (const MetricPoint& p : snap.points) {
    if (p.name != last_name) {
      if (!p.help.empty()) out += "# HELP " + p.name + " " + p.help + "\n";
      out += "# TYPE " + p.name + " " + type_name(p.type) + "\n";
      last_name = p.name;
    }
    if (p.type != MetricType::kHistogram) {
      append_series(out, p.name, p.labels, nullptr, "", p.value);
      continue;
    }
    // Prometheus buckets are cumulative and end with le="+Inf".
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < p.bucket_bounds.size(); ++i) {
      cum += p.bucket_counts[i];
      append_series(out, p.name + "_bucket", p.labels, "le",
                    bound_repr(p.bucket_bounds[i]),
                    static_cast<double>(cum));
    }
    append_series(out, p.name + "_bucket", p.labels, "le", "+Inf",
                  static_cast<double>(p.count));
    append_series(out, p.name + "_sum", p.labels, nullptr, "", p.value);
    append_series(out, p.name + "_count", p.labels, nullptr, "",
                  static_cast<double>(p.count));
  }
  return out;
}

void append_json(std::string& out, const MetricsSnapshot& snap) {
  out += '{';
  bool first = true;
  auto emit = [&](const std::string& key, double v) {
    if (!first) out += ',';
    first = false;
    json::append_string(out, key);
    out += ':';
    append_number(out, v);
  };
  for (const MetricPoint& p : snap.points) {
    const std::string key =
        p.labels.empty() ? p.name : p.name + '{' + p.labels + '}';
    if (p.type == MetricType::kHistogram) {
      emit(key + "_sum", p.value);
      emit(key + "_count", static_cast<double>(p.count));
    } else {
      emit(key, p.value);
    }
  }
  out += '}';
}

// ---- ScopedTimer -----------------------------------------------------------

ScopedTimer::ScopedTimer(Histogram& h)
    : h_(metrics_enabled() ? &h : nullptr),
      start_ns_(h_ ? monotonic_ns() : 0) {}

ScopedTimer::~ScopedTimer() {
  if (!h_) return;
  h_->observe(static_cast<double>(monotonic_ns() - start_ns_) * 1e-9);
}

}  // namespace rtv::obs
