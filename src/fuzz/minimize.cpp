#include "rtv/fuzz/minimize.hpp"

#include <vector>

namespace rtv::fuzz {

namespace {

/// Shrink proposals for one round, biggest structural cuts first.  Each
/// proposal mutates a single dimension of `c`; the driver filters out any
/// that fail to decrease config_size() after sanitization.
std::vector<GeneratorConfig> proposals(const GeneratorConfig& c) {
  std::vector<GeneratorConfig> out;
  const auto with = [&](auto mutate) {
    GeneratorConfig p = c;
    mutate(p);
    out.push_back(p);
  };
  if (c.modules > 1) with([&](GeneratorConfig& p) { p.modules = c.modules / 2; });
  if (c.events > 1) with([&](GeneratorConfig& p) { p.events = c.events / 2; });
  if (c.properties > 0) with([&](GeneratorConfig& p) { p.properties = 0; });
  if (c.max_delay > 1) with([&](GeneratorConfig& p) { p.max_delay = 1; });
  if (!c.point_delays) with([&](GeneratorConfig& p) { p.point_delays = true; });
  if (c.unbounded_p > 0) with([&](GeneratorConfig& p) { p.unbounded_p = 0; });
  if (c.share_p > 0) with([&](GeneratorConfig& p) { p.share_p = 0; });
  if (c.gates) with([&](GeneratorConfig& p) { p.gates = false; });
  if (c.deadlock_check)
    with([&](GeneratorConfig& p) { p.deadlock_check = false; });
  if (c.persistency_check)
    with([&](GeneratorConfig& p) { p.persistency_check = false; });
  if (c.properties > 1)
    with([&](GeneratorConfig& p) { p.properties = c.properties - 1; });
  if (c.max_delay > 2)
    with([&](GeneratorConfig& p) { p.max_delay = c.max_delay / 2; });
  if (c.modules > 1)
    with([&](GeneratorConfig& p) { p.modules = c.modules - 1; });
  if (c.events > 1) with([&](GeneratorConfig& p) { p.events = c.events - 1; });
  return out;
}

}  // namespace

MinimizeResult minimize(std::uint64_t seed, const GeneratorConfig& start,
                        const FailureOracle& oracle, std::size_t max_tests) {
  MinimizeResult r;
  r.config = sanitized(start);
  bool progressed = true;
  while (progressed && r.tested < max_tests) {
    progressed = false;
    for (const GeneratorConfig& raw : proposals(r.config)) {
      const GeneratorConfig candidate = sanitized(raw);
      if (config_size(candidate) >= config_size(r.config)) continue;
      if (r.tested >= max_tests) break;
      ++r.tested;
      if (!oracle(seed, candidate)) continue;
      r.config = candidate;
      ++r.steps;
      progressed = true;  // restart the scan from the shrunk config
      break;
    }
  }
  return r;
}

}  // namespace rtv::fuzz
