#include "rtv/fuzz/generator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "rtv/base/json.hpp"
#include "rtv/base/rng.hpp"
#include "rtv/ts/gallery.hpp"

namespace rtv::fuzz {

namespace {

constexpr std::string_view kConfigContext = "fuzz generator config JSON";
constexpr const char* kConfigSchema = "rtv-fuzz-config";

// Caps keeping a hostile or over-shrunk config from exploding the campaign;
// generate() is total, so out-of-range values clamp instead of throwing.
constexpr std::uint32_t kMaxModules = 64;
constexpr std::uint32_t kMaxEvents = 256;
constexpr std::uint32_t kMaxProperties = 32;
constexpr std::uint32_t kMaxPadding = 16;
constexpr Time kMaxDelayCap = Time{1} << 40;

double clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

// One label minted by a system module, available for cross-module sharing
// and as a property endpoint.  Sharing reuses the *same* delay interval:
// the reusing module declares the event kInput, so composition synchronises
// the two modules on the label (the choke/containment-heavy workload).
struct MintedLabel {
  std::string label;
  DelayInterval delay;
};

struct Gen {
  Rng rng;
  GeneratorConfig config;
  std::vector<MintedLabel> pool;

  Gen(std::uint64_t seed, GeneratorConfig cfg)
      : rng(seed), config(std::move(cfg)) {}

  /// Log-uniform magnitude in [1, config.max_delay]: half the draws are
  /// small even when the cap is 2^40, so one system mixes tight and huge
  /// constants (the discrete engine's 64-bit ages make the latter legal).
  Time magnitude() {
    const auto cap = static_cast<std::uint64_t>(config.max_delay);
    const int bits = std::bit_width(cap);
    const std::uint64_t mag = std::uint64_t{1}
                              << rng.below(static_cast<std::uint64_t>(bits));
    return static_cast<Time>(std::min(cap, mag));
  }

  DelayInterval random_delay() {
    const Time mag = magnitude();
    const Time lo = static_cast<Time>(rng.below(static_cast<std::uint64_t>(mag) + 1));
    if (rng.chance(config.unbounded_p)) return DelayInterval(lo, kTimeInfinity);
    if (config.point_delays) return DelayInterval(lo, lo);
    const Time span = static_cast<Time>(rng.below(static_cast<std::uint64_t>(mag) + 1));
    return DelayInterval(lo, lo + span);
  }

  /// The next step event of module `mi`: with probability share_p reuse a
  /// label minted by an *earlier* module (same interval, kInput so the
  /// modules synchronise); otherwise mint a fresh kOutput label.  A label
  /// is never used twice within one module.
  struct Step {
    std::string label;
    DelayInterval delay;
    EventKind kind;
  };
  Step next_step(std::size_t mi, std::size_t ei,
                 std::size_t pool_before_module,
                 std::vector<std::string>& used) {
    if (pool_before_module > 0 && rng.chance(config.share_p)) {
      // One draw regardless of success keeps the stream aligned.
      const std::size_t pick = rng.below(pool_before_module);
      const MintedLabel& m = pool[pick];
      if (std::find(used.begin(), used.end(), m.label) == used.end()) {
        used.push_back(m.label);
        return {m.label, m.delay, EventKind::kInput};
      }
    }
    std::string label =
        "m" + std::to_string(mi) + "_e" + std::to_string(ei);
    const DelayInterval d = random_delay();
    pool.push_back({label, d});
    used.push_back(label);
    return {std::move(label), d, EventKind::kOutput};
  }

  std::vector<Step> draw_steps(std::size_t mi, std::size_t count,
                               std::size_t pool_before_module) {
    std::vector<std::string> used;
    std::vector<Step> steps;
    steps.reserve(count);
    for (std::size_t ei = 0; ei < count; ++ei)
      steps.push_back(next_step(mi, ei, pool_before_module, used));
    return steps;
  }

  /// Idle self-loop event unique to module `mi` so acyclic shapes stay
  /// live without accidentally synchronising on a shared "idle" label.
  static void add_idle(TransitionSystem& ts, StateId at, std::size_t mi) {
    const EventId idle =
        ts.add_event("m" + std::to_string(mi) + "_idle",
                     DelayInterval(kTicksPerUnit, 2 * kTicksPerUnit),
                     EventKind::kInternal);
    ts.add_transition(at, idle, at);
  }
};

void apply_kinds(Module& m, const std::vector<Gen::Step>& steps) {
  for (const auto& s : steps)
    m.ts().set_event_kind(m.ts().event_by_label(s.label), s.kind);
}

std::vector<std::pair<std::string, DelayInterval>> as_pairs(
    const std::vector<Gen::Step>& steps) {
  std::vector<std::pair<std::string, DelayInterval>> out;
  out.reserve(steps.size());
  for (const auto& s : steps) out.emplace_back(s.label, s.delay);
  return out;
}

Module build_chain(Gen& g, std::size_t mi, std::size_t pool_before) {
  const std::size_t n = 1 + g.rng.below(g.config.events);
  const auto steps = g.draw_steps(mi, n, pool_before);
  Module m = gallery::chain(as_pairs(steps));
  apply_kinds(m, steps);
  Gen::add_idle(m.ts(), StateId(static_cast<std::uint32_t>(m.ts().num_states() - 1)),
                mi);
  return m;
}

Module build_ring(Gen& g, std::size_t mi, std::size_t pool_before) {
  const std::size_t n = 1 + g.rng.below(g.config.events);
  const auto steps = g.draw_steps(mi, n, pool_before);
  Module m = gallery::ring(as_pairs(steps));
  apply_kinds(m, steps);
  return m;
}

Module build_grid(Gen& g, std::size_t mi, std::size_t pool_before) {
  // Two independent chains interleaving: the product of a row chain and a
  // column chain, idle self-loop at the far corner.
  const std::size_t half = std::max<std::size_t>(1, g.config.events / 2);
  const std::size_t rows = 1 + g.rng.below(half);
  const std::size_t cols = 1 + g.rng.below(half);
  const auto row_steps = g.draw_steps(mi, rows, pool_before);
  // Column labels continue the event numbering so labels stay unique.
  std::vector<Gen::Step> col_steps;
  {
    std::vector<std::string> used;
    for (const auto& s : row_steps) used.push_back(s.label);
    for (std::size_t ei = 0; ei < cols; ++ei)
      col_steps.push_back(g.next_step(mi, rows + ei, pool_before, used));
  }

  TransitionSystem ts;
  std::vector<EventId> row_events, col_events;
  for (const auto& s : row_steps)
    row_events.push_back(ts.add_event(s.label, s.delay, s.kind));
  for (const auto& s : col_steps)
    col_events.push_back(ts.add_event(s.label, s.delay, s.kind));
  std::vector<std::vector<StateId>> grid(rows + 1,
                                         std::vector<StateId>(cols + 1));
  for (std::size_t i = 0; i <= rows; ++i)
    for (std::size_t j = 0; j <= cols; ++j)
      grid[i][j] =
          ts.add_state("g" + std::to_string(i) + "_" + std::to_string(j));
  for (std::size_t i = 0; i <= rows; ++i)
    for (std::size_t j = 0; j <= cols; ++j) {
      if (i < rows) ts.add_transition(grid[i][j], row_events[i], grid[i + 1][j]);
      if (j < cols) ts.add_transition(grid[i][j], col_events[j], grid[i][j + 1]);
    }
  ts.set_initial(grid[0][0]);
  Gen::add_idle(ts, grid[rows][cols], mi);
  return Module("grid", std::move(ts));
}

Module build_conflict(Gen& g, std::size_t mi, std::size_t pool_before) {
  // x and y enabled together; firing y from the initial state disables x
  // (the persistency-relevant choice shape).
  const auto steps = g.draw_steps(mi, 2, pool_before);
  TransitionSystem ts;
  const EventId ex = ts.add_event(steps[0].label, steps[0].delay, steps[0].kind);
  const EventId ey = ts.add_event(steps[1].label, steps[1].delay, steps[1].kind);
  const StateId s0 = ts.add_state("c0");
  const StateId s1 = ts.add_state("c1");
  const StateId s2 = ts.add_state("c2");
  ts.add_transition(s0, ex, s1);
  ts.add_transition(s0, ey, s2);
  ts.add_transition(s1, ey, s2);
  ts.set_initial(s0);
  Gen::add_idle(ts, s2, mi);
  return Module("conflict", std::move(ts));
}

Module build_fork_join(Gen& g, std::size_t mi, std::size_t pool_before) {
  const auto steps = g.draw_steps(mi, 3, pool_before);
  Module m = gallery::fork_join(steps[0].label, steps[0].delay, steps[1].label,
                                steps[1].delay, steps[2].label, steps[2].delay);
  apply_kinds(m, steps);
  return m;
}

std::uint64_t require_u64(const json::Value& obj, std::string_view key,
                          const char* what) {
  const double v =
      json::require(obj, key, json::Value::Kind::kNumber, what, kConfigContext)
          .number;
  if (v < 0)
    throw std::runtime_error(std::string(kConfigContext) + ": \"" +
                             std::string(key) + "\" must be non-negative");
  return static_cast<std::uint64_t>(v);
}

bool require_bool(const json::Value& obj, std::string_view key,
                  const char* what) {
  return json::require(obj, key, json::Value::Kind::kBool, what, kConfigContext)
      .boolean;
}

}  // namespace

GeneratorConfig sanitized(const GeneratorConfig& config) {
  GeneratorConfig c = config;
  c.modules = std::clamp<std::uint32_t>(c.modules, 1, kMaxModules);
  c.events = std::clamp<std::uint32_t>(c.events, 1, kMaxEvents);
  c.max_delay = std::clamp<Time>(c.max_delay, 1, kMaxDelayCap);
  c.properties = std::min(c.properties, kMaxProperties);
  c.unbounded_p = clamp01(c.unbounded_p);
  c.share_p = clamp01(c.share_p);
  c.padding_modules = std::min(c.padding_modules, kMaxPadding);
  return c;
}

std::size_t config_size(const GeneratorConfig& config) {
  const GeneratorConfig c = sanitized(config);
  std::size_t size = c.modules + c.events + c.properties + c.padding_modules;
  size += static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(c.max_delay)));
  // One point each for structure the minimizer can switch off.
  size += c.unbounded_p > 0 ? 1 : 0;
  size += c.share_p > 0 ? 1 : 0;
  size += c.point_delays ? 0 : 1;
  size += c.gates ? 1 : 0;
  size += c.deadlock_check ? 1 : 0;
  size += c.persistency_check ? 1 : 0;
  return size;
}

std::uint64_t case_seed(std::uint64_t campaign_seed, std::size_t index) {
  return Rng::mix(campaign_seed, static_cast<std::uint64_t>(index));
}

const char* to_string(ModuleShape shape) {
  switch (shape) {
    case ModuleShape::kChain: return "chain";
    case ModuleShape::kRing: return "ring";
    case ModuleShape::kGrid: return "grid";
    case ModuleShape::kConflict: return "conflict";
    case ModuleShape::kForkJoin: return "fork_join";
  }
  return "?";
}

std::string GeneratorConfig::to_json() const {
  std::string out = "{\"schema\":\"";
  out += kConfigSchema;
  out += "\",\"modules\":" + std::to_string(modules);
  out += ",\"events\":" + std::to_string(events);
  out += ",\"max_delay\":" + std::to_string(max_delay);
  out += ",\"properties\":" + std::to_string(properties);
  out += ",\"unbounded_p\":";
  json::append_double(out, unbounded_p);
  out += ",\"share_p\":";
  json::append_double(out, share_p);
  out += ",\"point_delays\":";
  out += point_delays ? "true" : "false";
  out += ",\"gates\":";
  out += gates ? "true" : "false";
  out += ",\"deadlock_check\":";
  out += deadlock_check ? "true" : "false";
  out += ",\"persistency_check\":";
  out += persistency_check ? "true" : "false";
  out += ",\"padding_modules\":" + std::to_string(padding_modules);
  out += "}";
  return out;
}

GeneratorConfig GeneratorConfig::from_json(const std::string& text) {
  const json::Value root = json::parse(text, kConfigContext);
  if (root.kind != json::Value::Kind::kObject)
    throw std::runtime_error(std::string(kConfigContext) +
                             ": top level must be an object");
  const std::string& schema =
      json::require(root, "schema", json::Value::Kind::kString, "schema tag",
                    kConfigContext)
          .string;
  if (schema != kConfigSchema)
    throw std::runtime_error(std::string(kConfigContext) +
                             ": unknown schema \"" + schema + "\"");
  GeneratorConfig c;
  c.modules = static_cast<std::uint32_t>(
      require_u64(root, "modules", "module count"));
  c.events =
      static_cast<std::uint32_t>(require_u64(root, "events", "event budget"));
  c.max_delay =
      static_cast<Time>(require_u64(root, "max_delay", "delay cap in ticks"));
  c.properties = static_cast<std::uint32_t>(
      require_u64(root, "properties", "property count"));
  c.unbounded_p = json::require(root, "unbounded_p", json::Value::Kind::kNumber,
                                "unbounded-delay probability", kConfigContext)
                      .number;
  c.share_p = json::require(root, "share_p", json::Value::Kind::kNumber,
                            "label-sharing probability", kConfigContext)
                  .number;
  c.point_delays = require_bool(root, "point_delays", "point-delay flag");
  c.gates = require_bool(root, "gates", "gates flag");
  c.deadlock_check = require_bool(root, "deadlock_check", "deadlock flag");
  c.persistency_check =
      require_bool(root, "persistency_check", "persistency flag");
  // Absent in configs written before the slicer existed; 0 keeps them
  // replaying byte-identically.
  if (const json::Value* pad = root.find("padding_modules")) {
    if (pad->kind != json::Value::Kind::kNumber || pad->number < 0)
      throw std::runtime_error(
          std::string(kConfigContext) +
          ": \"padding_modules\" must be a non-negative number");
    c.padding_modules = static_cast<std::uint32_t>(pad->number);
  }
  return c;
}

bool operator==(const GeneratorConfig& a, const GeneratorConfig& b) {
  return a.modules == b.modules && a.events == b.events &&
         a.max_delay == b.max_delay && a.properties == b.properties &&
         a.unbounded_p == b.unbounded_p && a.share_p == b.share_p &&
         a.point_delays == b.point_delays && a.gates == b.gates &&
         a.deadlock_check == b.deadlock_check &&
         a.persistency_check == b.persistency_check &&
         a.padding_modules == b.padding_modules;
}

std::vector<const Module*> Scenario::module_ptrs() const {
  std::vector<const Module*> out;
  out.reserve(modules.size());
  for (const Module& m : modules) out.push_back(&m);
  return out;
}

std::vector<const SafetyProperty*> Scenario::property_ptrs() const {
  std::vector<const SafetyProperty*> out;
  out.reserve(properties.size());
  for (const auto& p : properties) out.push_back(p.get());
  return out;
}

std::string Scenario::describe() const {
  std::string out;
  for (std::size_t i = 0; i < system_modules; ++i) {
    if (i > 0) out += " || ";
    out += modules[i].name();
  }
  if (modules.size() > system_modules)
    out += " + " + std::to_string(modules.size() - system_modules) +
           " monitor(s)";
  out += ", " + std::to_string(properties.size()) + " propertie(s)";
  return out;
}

Scenario generate(std::uint64_t seed, const GeneratorConfig& raw_config) {
  Scenario sc;
  sc.seed = seed;
  sc.config = raw_config;
  const GeneratorConfig config = sanitized(raw_config);
  sc.name = "fuzz-" + std::to_string(seed);

  Gen g(seed, config);
  const std::size_t num_shapes =
      config.gates ? 5 : 4;  // kForkJoin is the gates-only family
  for (std::uint32_t mi = 0; mi < config.modules; ++mi) {
    const auto shape = static_cast<ModuleShape>(g.rng.below(num_shapes));
    const std::size_t pool_before = g.pool.size();
    Module m = [&] {
      switch (shape) {
        case ModuleShape::kChain: return build_chain(g, mi, pool_before);
        case ModuleShape::kRing: return build_ring(g, mi, pool_before);
        case ModuleShape::kGrid: return build_grid(g, mi, pool_before);
        case ModuleShape::kConflict: return build_conflict(g, mi, pool_before);
        case ModuleShape::kForkJoin: return build_fork_join(g, mi, pool_before);
      }
      return build_chain(g, mi, pool_before);
    }();
    m.set_name("m" + std::to_string(mi) + "_" + to_string(shape));
    sc.modules.push_back(std::move(m));
    sc.shapes.push_back(shape);
  }
  sc.system_modules = sc.modules.size();

  // Ordering properties: a monitor per property watching two distinct
  // system labels, trapping into a unique fail signal.
  if (g.pool.size() >= 2) {
    for (std::uint32_t k = 0; k < config.properties; ++k) {
      const std::size_t fi = g.rng.below(g.pool.size());
      std::size_t ti = g.rng.below(g.pool.size() - 1);
      if (ti >= fi) ++ti;
      const std::string& first = g.pool[fi].label;
      const std::string& then = g.pool[ti].label;
      const std::string fail = "fuzz_fail" + std::to_string(k);
      sc.modules.push_back(gallery::order_monitor(first, then, fail));
      sc.properties.push_back(std::make_unique<InvariantProperty>(
          "order(" + first + "<" + then + ")",
          std::vector<InvariantProperty::Literal>{{fail, true}}));
    }
  }
  if (config.deadlock_check)
    sc.properties.push_back(std::make_unique<DeadlockFreedom>());
  if (config.persistency_check)
    sc.properties.push_back(std::make_unique<PersistencyProperty>());

  // Padding togglers: disconnected, always-live, conflict-free and
  // signal-free, with fresh labels that never enter the sharing pool —
  // provably outside every property's cone, so the slicer must drop them
  // without changing any verdict.  Generated last: they draw nothing from
  // the rng, so the padded and unpadded scenarios agree on everything else.
  for (std::uint32_t k = 0; k < config.padding_modules; ++k) {
    const std::string base = "pad" + std::to_string(k);
    Module m = gallery::ring(
        {{base + "_a", DelayInterval(kTicksPerUnit, 2 * kTicksPerUnit)},
         {base + "_b", DelayInterval(kTicksPerUnit, 2 * kTicksPerUnit)}});
    for (std::size_t ei = 0; ei < m.ts().num_events(); ++ei)
      m.ts().set_event_kind(EventId(static_cast<std::uint32_t>(ei)),
                            EventKind::kInternal);
    m.set_name(base + "_toggler");
    sc.modules.push_back(std::move(m));
  }
  return sc;
}

}  // namespace rtv::fuzz
