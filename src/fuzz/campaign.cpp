#include "rtv/fuzz/campaign.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "rtv/analysis/slice.hpp"
#include "rtv/base/hash.hpp"
#include "rtv/base/json.hpp"
#include "rtv/lint/lint.hpp"
#include "rtv/ts/compose.hpp"
#include "rtv/verify/suite.hpp"

namespace rtv::fuzz {

namespace {

/// Walk a counterexample trace through the sequential composition.  Every
/// label must exist and have a composed transition, except the final one,
/// which may be a refusal (choke counterexamples end on the refused
/// output).  Returns false with a description of the first broken step.
bool replays(const Composition& comp, const std::vector<std::string>& labels,
             std::string& why) {
  StateId cur = comp.ts.initial();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const EventId e = comp.ts.event_by_label(labels[i]);
    if (!e.valid()) {
      why = "trace step " + std::to_string(i) + " names unknown label '" +
            labels[i] + "'";
      return false;
    }
    const auto succ = comp.ts.successor(cur, e);
    if (!succ) {
      if (i + 1 == labels.size()) return true;  // final refused label
      why = "trace breaks at step " + std::to_string(i) + " ('" + labels[i] +
            "' has no composed transition)";
      return false;
    }
    cur = *succ;
  }
  return true;
}

std::string join_trace(const std::vector<std::string>& labels) {
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i];
  }
  return out;
}

void append_verdicts(std::string& out,
                     const std::vector<EngineVerdict>& verdicts) {
  out += "[";
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"engine\":";
    json::append_string(out, verdicts[i].engine);
    out += ",\"verdict\":";
    json::append_string(out, to_string(verdicts[i].verdict));
    out += ",\"stop_reason\":";
    json::append_string(out, verdicts[i].stop_reason);
    out += "}";
  }
  out += "]";
}

void append_failure(std::string& out, const CampaignFailure& f) {
  out += "{\"kind\":";
  json::append_string(out, to_string(f.kind));
  out += ",\"case\":" + std::to_string(f.case_index);
  out += ",\"seed\":\"" + std::to_string(f.seed) + "\"";
  out += ",\"config\":" + f.config.to_json();
  out += ",\"minimized\":" + f.minimized.to_json();
  out += ",\"verdicts\":";
  append_verdicts(out, f.verdicts);
  out += ",\"detail\":";
  json::append_string(out, f.detail);
  out += "}";
}

}  // namespace

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kDisagreement: return "disagreement";
    case FailureKind::kBadTrace: return "bad-trace";
    case FailureKind::kEngineError: return "engine-error";
    case FailureKind::kLintMismatch: return "lint-mismatch";
    case FailureKind::kSliceMismatch: return "slice-mismatch";
  }
  return "?";
}

CaseResult run_case(std::uint64_t seed, const GeneratorConfig& config,
                    const CampaignOptions& options) {
  CaseResult out;
  const Scenario sc = generate(seed, config);

  Suite suite;
  suite.add(sc.name, sc.module_ptrs(), sc.property_ptrs());
  SuiteOptions sopt;
  sopt.mode = SuiteMode::kBatch;
  sopt.jobs = options.jobs;
  sopt.engines = options.engines;
  sopt.budget.max_states = options.max_states;
  sopt.budget.max_seconds = options.max_seconds;
  const SuiteReport report = run_suite(suite, sopt);

  std::vector<EngineVerdict> verdicts;
  const SuiteRecord* verified = nullptr;
  const SuiteRecord* violated = nullptr;
  const SuiteRecord* errored = nullptr;
  for (const SuiteRecord& rec : report.records) {
    verdicts.push_back(
        {rec.engine, rec.result.verdict, rec.result.truncated_reason});
    if (rec.result.truncated_reason == stop_reason::kEngineError && !errored)
      errored = &rec;
    if (rec.result.verified()) {
      ++out.definitive;
      if (!verified) verified = &rec;
    } else if (rec.result.violated()) {
      ++out.definitive;
      if (!violated) violated = &rec;
    }
  }

  const auto fail = [&](FailureKind kind, std::string detail) {
    CampaignFailure f;
    f.kind = kind;
    f.seed = seed;
    f.config = config;
    f.minimized = sanitized(config);
    f.verdicts = verdicts;
    f.detail = sc.describe() + ": " + std::move(detail);
    out.failure = std::move(f);
  };

  // Lint cross-check, both directions: the standalone analyzer and the
  // suite's pre-flight must agree on every generated scenario.  The
  // generator only builds well-formed scenarios, so direction one is the
  // interesting oracle: a lint-clean scenario dying with kLintError means
  // the pre-flight and the analyzer drifted apart.
  {
    lint::LintOptions lo;
    lo.engines = options.engines;
    lo.max_states = options.max_states;
    const lint::LintReport pre =
        lint::lint_modules(sc.module_ptrs(), sc.property_ptrs(), lo);
    bool suite_rejected = false;
    for (const SuiteRecord& rec : report.records)
      if (rec.result.truncated_reason == stop_reason::kLintError)
        suite_rejected = true;
    if (!pre.has_errors() && suite_rejected) {
      fail(FailureKind::kLintMismatch,
           "suite pre-flight rejected a lint-clean scenario");
      return out;
    }
    if (pre.has_errors() && out.definitive > 0) {
      fail(FailureKind::kLintMismatch,
           "lint reports errors yet engines returned definitive verdicts "
           "(first error: " +
               pre.diagnostics.front().format() + ")");
      return out;
    }
  }

  if (errored) {
    fail(FailureKind::kEngineError,
         errored->engine + " raised: " + errored->result.message);
    return out;
  }
  if (verified && violated) {
    fail(FailureKind::kDisagreement,
         "engines disagree (" + verified->engine + "=verified vs " +
             violated->engine + "=violated)");
    return out;
  }

  // Re-validate every violation trace against the sequential composition —
  // the cross-check test_parallel applies to the discrete engine, promoted
  // to a campaign-wide invariant.
  if (violated) {
    Composition comp;
    try {
      ComposeOptions copt;
      copt.track_chokes = true;
      copt.jobs = 1;
      comp = compose(sc.module_ptrs(), copt);
    } catch (const std::exception& e) {
      fail(FailureKind::kEngineError,
           std::string("compose() raised during replay: ") + e.what());
      return out;
    }
    if (!comp.truncated) {
      for (const SuiteRecord& rec : report.records) {
        if (!rec.result.violated() || rec.result.trace_labels.empty()) continue;
        std::string why;
        if (replays(comp, rec.result.trace_labels, why)) {
          ++out.traces_replayed;
        } else {
          fail(FailureKind::kBadTrace,
               rec.engine + " counterexample is not replayable: " + why +
                   " (trace: " + join_trace(rec.result.trace_labels) + ")");
          return out;
        }
      }
    }
  }

  // Slicing oracle: run_suite slices by default, so whenever the slice is
  // not the identity the whole case above verified a *reduced* obligation.
  // Rerun unsliced and require every engine to stand by its own verdict —
  // contradictory definitive verdicts mean the slicer dropped something
  // that mattered.  kInconclusive never counts (the unsliced run explores
  // more states, so it may hit the budget where the sliced run did not).
  {
    const analysis::SliceResult sl =
        analysis::slice(sc.module_ptrs(), sc.property_ptrs());
    if (!sl.identity) {
      SuiteOptions unsliced = sopt;
      unsliced.slice = false;
      const SuiteReport full = run_suite(suite, unsliced);
      for (const SuiteRecord& a : report.records) {
        for (const SuiteRecord& b : full.records) {
          if (a.engine != b.engine) continue;
          const bool contradictory =
              (a.result.verified() && b.result.violated()) ||
              (a.result.violated() && b.result.verified());
          if (contradictory) {
            fail(FailureKind::kSliceMismatch,
                 a.engine + " flips " + to_string(a.result.verdict) +
                     " (sliced) to " + to_string(b.result.verdict) +
                     " (unsliced) — the slicer is unsound on this case");
            return out;
          }
        }
      }
    }
  }
  return out;
}

CampaignReport run_campaign(const CampaignOptions& options) {
  if (options.cases == 0 && options.seconds <= 0)
    throw std::invalid_argument(
        "fuzz campaign needs a case limit or a time limit");

  CampaignReport report;
  report.seed = options.seed;
  report.config = options.config;
  report.engines = options.engines;

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  for (std::size_t i = 0; options.cases == 0 || i < options.cases; ++i) {
    if (options.seconds > 0 && elapsed() >= options.seconds) break;
    const std::uint64_t cs = case_seed(options.seed, i);
    CaseResult r = run_case(cs, options.config, options);
    ++report.cases;
    report.definitive_verdicts += r.definitive;
    report.traces_replayed += r.traces_replayed;
    if (!r.failure) continue;

    CampaignFailure f = std::move(*r.failure);
    f.case_index = i;
    if (options.log)
      options.log("case " + std::to_string(i) + " (seed " +
                  std::to_string(cs) + "): " + to_string(f.kind) + " — " +
                  f.detail);
    if (options.minimize) {
      const FailureKind kind = f.kind;
      const FailureOracle oracle = [&](std::uint64_t s,
                                       const GeneratorConfig& cfg) {
        CampaignOptions probe = options;
        probe.log = nullptr;
        probe.minimize = false;
        const CaseResult pr = run_case(s, cfg, probe);
        return pr.failure && pr.failure->kind == kind;
      };
      const MinimizeResult m =
          minimize(cs, f.config, oracle, options.minimize_budget);
      f.minimized = m.config;
      if (options.log && m.steps > 0)
        options.log("  minimized in " + std::to_string(m.steps) +
                    " step(s) to " + m.config.to_json());
    }
    report.failures.push_back(std::move(f));
  }
  report.wall_seconds = elapsed();
  return report;
}

std::string CampaignReport::to_json() const {
  std::string out = "{\"schema\":\"";
  out += kSchemaName;
  out += "\",\"version\":" + std::to_string(kSchemaVersion);
  out += ",\"seed\":\"" + std::to_string(seed) + "\"";
  out += ",\"config\":" + config.to_json();
  out += ",\"engines\":[";
  for (std::size_t i = 0; i < engines.size(); ++i) {
    if (i > 0) out += ",";
    json::append_string(out, engines[i]);
  }
  out += "],\"cases\":" + std::to_string(cases);
  out += ",\"definitive_verdicts\":" + std::to_string(definitive_verdicts);
  out += ",\"traces_replayed\":" + std::to_string(traces_replayed);
  out += ",\"wall_seconds\":";
  json::append_double(out, wall_seconds);
  out += ",\"ok\":";
  out += ok() ? "true" : "false";
  out += ",\"failures\":[";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) out += ",";
    append_failure(out, failures[i]);
  }
  out += "]}";
  return out;
}

std::string CampaignReport::fingerprint() const {
  // The library-wide FNV-1a idiom (rtv/base/hash.hpp): every field is
  // length- or width-delimited, so the digest is platform-stable and free
  // of concatenation ambiguity.
  Fnv1a h(0x7274762d66757a7aull);  // "rtv-fuzz" domain tag
  h.u64(static_cast<std::uint64_t>(kSchemaVersion));
  h.u64(seed);
  h.str(config.to_json());
  h.u64(engines.size());
  for (const std::string& e : engines) h.str(e);
  h.u64(cases).u64(definitive_verdicts).u64(traces_replayed);
  h.u64(failures.size());
  for (const CampaignFailure& f : failures) {
    h.str(to_string(f.kind));
    h.u64(f.case_index);
    h.u64(f.seed);
    h.str(f.minimized.to_json());
    std::string verdicts;
    append_verdicts(verdicts, f.verdicts);
    h.str(verdicts);
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h.digest()));
  return buf;
}

}  // namespace rtv::fuzz
