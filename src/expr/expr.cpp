#include "rtv/expr/expr.hpp"

#include <algorithm>
#include <cassert>

namespace rtv {

ExprPool::ExprPool() {
  false_ = intern(Node{Kind::kConst, false, NodeId::invalid(), {}});
  true_ = intern(Node{Kind::kConst, true, NodeId::invalid(), {}});
}

Expr ExprPool::intern(Node n) {
  // Linear structural hashing would be overkill here: pools stay small
  // (tens of guards per netlist).  Dedup only identical literals/constants.
  if (n.kind == Kind::kConst || n.kind == Kind::kLit) {
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      const Node& m = nodes_[i];
      if (m.kind != n.kind) continue;
      if (n.kind == Kind::kConst && m.value == n.value) return Expr(i);
      if (n.kind == Kind::kLit && m.node == n.node && m.value == n.value)
        return Expr(i);
    }
  }
  nodes_.push_back(std::move(n));
  return Expr(static_cast<std::uint32_t>(nodes_.size() - 1));
}

Expr ExprPool::lit(NodeId node, bool value) {
  assert(node.valid());
  return intern(Node{Kind::kLit, value, node, {}});
}

Expr ExprPool::conj(std::vector<Expr> operands) {
  std::vector<Expr> flat;
  for (Expr e : operands) {
    assert(e.valid());
    const Node& n = node(e);
    if (n.kind == Kind::kConst) {
      if (!n.value) return false_;
      continue;  // drop true
    }
    if (n.kind == Kind::kAnd) {
      flat.insert(flat.end(), n.operands.begin(), n.operands.end());
    } else {
      flat.push_back(e);
    }
  }
  if (flat.empty()) return true_;
  if (flat.size() == 1) return flat[0];
  return intern(Node{Kind::kAnd, false, NodeId::invalid(), std::move(flat)});
}

Expr ExprPool::disj(std::vector<Expr> operands) {
  std::vector<Expr> flat;
  for (Expr e : operands) {
    assert(e.valid());
    const Node& n = node(e);
    if (n.kind == Kind::kConst) {
      if (n.value) return true_;
      continue;  // drop false
    }
    if (n.kind == Kind::kOr) {
      flat.insert(flat.end(), n.operands.begin(), n.operands.end());
    } else {
      flat.push_back(e);
    }
  }
  if (flat.empty()) return false_;
  if (flat.size() == 1) return flat[0];
  return intern(Node{Kind::kOr, false, NodeId::invalid(), std::move(flat)});
}

Expr ExprPool::negate(Expr e) {
  const Node n = node(e);  // copy: intern() may reallocate nodes_
  switch (n.kind) {
    case Kind::kConst:
      return constant(!n.value);
    case Kind::kLit:
      return lit(n.node, !n.value);
    case Kind::kAnd: {
      std::vector<Expr> ops;
      ops.reserve(n.operands.size());
      for (Expr op : n.operands) ops.push_back(negate(op));
      return disj(std::move(ops));
    }
    case Kind::kOr: {
      std::vector<Expr> ops;
      ops.reserve(n.operands.size());
      for (Expr op : n.operands) ops.push_back(negate(op));
      return conj(std::move(ops));
    }
  }
  return false_;
}

bool ExprPool::eval(Expr e, const BitVec& valuation) const {
  const Node& n = node(e);
  switch (n.kind) {
    case Kind::kConst:
      return n.value;
    case Kind::kLit:
      return valuation.test(n.node.value()) == n.value;
    case Kind::kAnd:
      for (Expr op : n.operands)
        if (!eval(op, valuation)) return false;
      return true;
    case Kind::kOr:
      for (Expr op : n.operands)
        if (eval(op, valuation)) return true;
      return false;
  }
  return false;
}

std::vector<NodeId> ExprPool::support(Expr e) const {
  std::vector<NodeId> out;
  const Node& n = node(e);
  switch (n.kind) {
    case Kind::kConst:
      break;
    case Kind::kLit:
      out.push_back(n.node);
      break;
    case Kind::kAnd:
    case Kind::kOr:
      for (Expr op : n.operands) {
        auto sub = support(op);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      break;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool ExprPool::depends_on(Expr e, NodeId target) const {
  const auto sup = support(e);
  return std::binary_search(sup.begin(), sup.end(), target);
}

std::string ExprPool::to_string(Expr e,
                                const std::vector<std::string>& node_names) const {
  const Node& n = node(e);
  auto name = [&](NodeId id) -> std::string {
    if (id.value() < node_names.size()) return node_names[id.value()];
    return "n" + std::to_string(id.value());
  };
  switch (n.kind) {
    case Kind::kConst:
      return n.value ? "1" : "0";
    case Kind::kLit:
      return (n.value ? "" : "!") + name(n.node);
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = n.kind == Kind::kAnd ? " & " : " | ";
      std::string s = "(";
      for (std::size_t i = 0; i < n.operands.size(); ++i) {
        if (i) s += sep;
        s += to_string(n.operands[i], node_names);
      }
      return s + ")";
    }
  }
  return "?";
}

}  // namespace rtv
