#include "rtv/zone/dbm.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace rtv {

namespace {
Time add_weights(Time a, Time b) {
  if (a >= kTimeInfinity || b >= kTimeInfinity) return kTimeInfinity;
  return a + b;
}
}  // namespace

Dbm::Dbm(std::size_t clocks) : n_(clocks + 1), m_(n_ * n_, kTimeInfinity) {
  for (std::size_t i = 0; i < n_; ++i) m_[i * n_ + i] = 0;
  // x_i >= 0:  0 - x_i <= 0.
  for (std::size_t i = 1; i < n_; ++i) m_[0 * n_ + i] = 0;
}

Dbm Dbm::zero(std::size_t clocks) {
  Dbm d(clocks);
  for (std::size_t i = 0; i < d.n_; ++i)
    for (std::size_t j = 0; j < d.n_; ++j) d.m_[i * d.n_ + j] = 0;
  return d;
}

void Dbm::constrain(std::size_t i, std::size_t j, Time w) {
  assert(i < n_ && j < n_);
  if (w < m_[i * n_ + j]) m_[i * n_ + j] = w;
}

bool Dbm::canonicalize() {
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t i = 0; i < n_; ++i) {
      const Time dik = m_[i * n_ + k];
      if (dik >= kTimeInfinity) continue;
      for (std::size_t j = 0; j < n_; ++j) {
        const Time v = add_weights(dik, m_[k * n_ + j]);
        if (v < m_[i * n_ + j]) m_[i * n_ + j] = v;
      }
    }
  }
  for (std::size_t i = 0; i < n_; ++i) {
    if (m_[i * n_ + i] < 0) {
      empty_ = true;
      return false;
    }
  }
  return true;
}

void Dbm::up() {
  for (std::size_t i = 1; i < n_; ++i) m_[i * n_ + 0] = kTimeInfinity;
}

Dbm Dbm::remap(const std::vector<std::size_t>& source) const {
  // New index i maps to old index old_of(i); fresh clocks (source == 0)
  // copy the zero clock, which makes them exactly 0 relative to everything.
  Dbm out(source.size());
  auto old_of = [&](std::size_t i) {
    if (i == 0) return std::size_t{0};
    const std::size_t s = source[i - 1];
    assert(s < n_);
    return s;
  };
  for (std::size_t i = 0; i < out.n_; ++i)
    for (std::size_t j = 0; j < out.n_; ++j)
      out.m_[i * out.n_ + j] = m_[old_of(i) * n_ + old_of(j)];
  for (std::size_t i = 0; i < out.n_; ++i) out.m_[i * out.n_ + i] = 0;
  out.empty_ = empty_;
  return out;
}

Dbm Dbm::restrict_and_extend(const std::vector<std::size_t>& keep,
                             std::size_t fresh) const {
  std::vector<std::size_t> source = keep;
  source.insert(source.end(), fresh, 0);
  return remap(source);
}

bool Dbm::subset_of(const Dbm& other) const {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < n_ * n_; ++i)
    if (m_[i] > other.m_[i]) return false;
  return true;
}

void Dbm::extrapolate(const std::vector<Time>& max_const) {
  assert(max_const.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      Time& v = m_[i * n_ + j];
      if (v >= kTimeInfinity) continue;
      if (i != 0 && v > max_const[i]) {
        v = kTimeInfinity;
      } else if (j != 0 && v < -max_const[j]) {
        v = -max_const[j];
      }
    }
  }
}

std::string Dbm::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      const Time v = m_[i * n_ + j];
      if (v >= kTimeInfinity) {
        os << "   inf";
      } else {
        os << " " << units_from_ticks(v);
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rtv
