#include "rtv/zone/discrete.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "rtv/base/hash.hpp"
#include "rtv/base/log.hpp"
#include "rtv/base/parallel.hpp"

namespace rtv {

namespace {

struct Config {
  StateId state;
  /// Integer clock ages, parallel to the clocked-event list.  Full 64-bit
  /// Time range: every representable delay bound (up to kTimeInfinity)
  /// digitizes without wrapping, so large mixed-magnitude constants are
  /// limited only by the state budget, not by the age representation.
  /// (Ages were 16-bit once; constants past 65535 ticks had to be refused
  /// with stop_reason::kDigitizationRange.)
  std::vector<Time> ages;

  friend bool operator==(const Config& a, const Config& b) {
    return a.state == b.state && a.ages == b.ages;
  }
};

struct ConfigHash {
  std::size_t operator()(const Config& c) const noexcept {
    std::size_t h = std::hash<StateId>()(c.state);
    for (const Time a : c.ages) h = hash_mix(h, std::hash<Time>()(a));
    return h;
  }
};

/// Discovery metadata of one interned config: the parent pointer and firing
/// label for counterexample unwinding, plus the BFS-order key that keeps
/// discovery deterministic across job counts.  When several workers reach
/// the same config in the same layer, the smallest key (and its parent)
/// wins — the exact discovery the sequential exploration would record.
struct ConfigMeta {
  ShardHandle parent;              ///< invalid for the initial config
  EventId via = EventId::invalid();  ///< fired event; invalid = delay tick
  std::uint64_t order_key = 0;     ///< (frontier index << 16) | step ordinal
  std::uint32_t layer = 0;         ///< BFS depth at discovery
};

struct FrontierItem {
  ShardHandle handle;
  Config cfg;
};

/// First violation in BFS order this layer (guarded by a mutex; violations
/// are rare, contention is not a concern).
struct Violation {
  std::uint64_t key = 0;
  std::string description;
  ShardHandle leaf;   ///< config whose path leads to the violation
  std::string extra;  ///< label appended after the path ("" when none)
};

}  // namespace

DiscreteVerifyResult discrete_explore(
    const TransitionSystem& ts,
    const std::vector<const SafetyProperty*>& properties,
    std::span<const ChokeRecord> chokes, const DiscreteVerifyOptions& options) {
  RunBudget budget;
  budget.max_states = options.max_states;
  budget.max_seconds = options.max_seconds;
  budget.cancel = options.cancel;
  RunClock local_clock("discrete", budget, options.progress,
                       options.progress_interval);
  RunClock& clock = options.clock ? *options.clock : local_clock;
  DiscreteVerifyResult result;

  std::unordered_map<StateId::underlying_type, std::vector<const ChokeRecord*>>
      chokes_at;
  chokes_at.reserve(64);
  for (const ChokeRecord& c : chokes) chokes_at[c.state.value()].push_back(&c);

  auto pseudo_enabled = [&](StateId s) {
    std::vector<EventId> out = ts.enabled_events(s);
    const auto it = chokes_at.find(s.value());
    if (it != chokes_at.end()) {
      for (const ChokeRecord* c : it->second) out.push_back(c->event);
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
    }
    return out;
  };

  // Ages saturate: beyond the upper bound (or the lower bound for
  // unbounded events) more age is indistinguishable.
  auto saturation = [&](EventId e) -> Time {
    const DelayInterval d = ts.delay(e);
    return d.upper_bounded() ? d.hi() : d.lo();
  };

  // ---- layer-synchronous parallel BFS -------------------------------------
  //
  // The `seen` set is a sharded concurrent interner (rtv/base/parallel.hpp):
  // N workers expand disjoint chunks of the current frontier, interning
  // successors under per-shard locks with the state budget enforced as an
  // insertion-time ceiling.  Each discovery carries a BFS-order key; the
  // merge phase sorts the layer's discoveries by key, so the next frontier
  // — and with it verdicts, the chosen violation and its counterexample
  // trace — is identical for every job count.
  const std::size_t jobs = resolve_jobs(options.jobs);
  // The initial config always fits: a zero budget truncates after it.
  const std::size_t cap = std::max<std::size_t>(options.max_states, 1);
  ShardedInterner<Config, ConfigMeta, ConfigHash> interner(
      cap, jobs == 1 ? 1 : 64);
  // Digitized exploration routinely visits 10^5-10^6 configs; a generous
  // initial bucket count avoids a cascade of rehashes on the hot path.
  interner.reserve(std::min<std::size_t>(cap, 1u << 16));

  std::vector<bool> discrete_seen(ts.num_states(), false);
  std::size_t discrete_count = 0;

  std::vector<FrontierItem> frontier;
  std::vector<std::vector<std::pair<ShardHandle, Config>>> discovered(jobs);
  std::uint32_t current_layer = 0;

  std::mutex violation_mutex;
  std::optional<Violation> best;
  const auto report_violation = [&](std::uint64_t key, std::string description,
                                    ShardHandle leaf, std::string extra) {
    std::lock_guard<std::mutex> lock(violation_mutex);
    if (!best || key < best->key)
      best = Violation{key, std::move(description), leaf, std::move(extra)};
  };

  std::atomic<const char*> stop_flag{nullptr};

  const auto try_push = [&](Config&& c, ShardHandle parent, EventId via,
                            std::uint64_t key, std::size_t worker) {
    const std::uint32_t next_layer = current_layer + 1;
    const auto res = interner.insert(
        c, [&] { return ConfigMeta{parent, via, key, next_layer}; },
        [&](ConfigMeta& meta) {
          if (meta.layer == next_layer && key < meta.order_key) {
            meta.order_key = key;
            meta.parent = parent;
            meta.via = via;
          }
        });
    if (res.inserted)
      discovered[worker].emplace_back(res.handle, std::move(c));
  };

  const auto process_state = [&](std::size_t idx, const FrontierItem& item,
                                 std::size_t worker) {
    const Config& cfg = item.cfg;
    const std::uint64_t base = static_cast<std::uint64_t>(idx) << 16;
    std::uint32_t ord = 0;
    const auto next_key = [&] {
      return base | std::min<std::uint32_t>(ord++, 0xffffu);
    };

    const std::vector<EventId> clocked = pseudo_enabled(cfg.state);
    const std::vector<EventId> raw_enabled = ts.enabled_events(cfg.state);
    const PropertyContext ctx{ts, cfg.state, raw_enabled};

    for (const SafetyProperty* p : properties) {
      const std::uint64_t key = next_key();
      if (auto v = p->check_state(ctx))
        report_violation(key, *v, item.handle, {});
    }

    auto age_of = [&](EventId e) -> Time {
      const auto it = std::lower_bound(clocked.begin(), clocked.end(), e);
      return cfg.ages[static_cast<std::size_t>(it - clocked.begin())];
    };

    // Chokes firable now?
    if (auto it = chokes_at.find(cfg.state.value()); it != chokes_at.end()) {
      for (const ChokeRecord* c : it->second) {
        const std::uint64_t key = next_key();
        if (age_of(c->event) >= ts.delay(c->event).lo()) {
          report_violation(key,
                           "refusal: output '" + ts.label(c->event) +
                               "' not accepted (containment violation)",
                           item.handle, ts.label(c->event));
        }
      }
    }

    // Delay step: one tick, if no bounded deadline is overrun.
    {
      bool can_delay = true;
      for (std::size_t i = 0; i < clocked.size(); ++i) {
        const DelayInterval d = ts.delay(clocked[i]);
        if (d.upper_bounded() && cfg.ages[i] + 1 > d.hi()) {
          can_delay = false;
          break;
        }
      }
      if (can_delay && !clocked.empty()) {
        Config next = cfg;
        for (std::size_t i = 0; i < clocked.size(); ++i) {
          const Time cap_i = saturation(clocked[i]);
          if (next.ages[i] < cap_i) ++next.ages[i];
        }
        try_push(std::move(next), item.handle, EventId::invalid(), next_key(),
                 worker);
      }
    }

    // Firing steps.
    for (const Transition& t : ts.transitions_from(cfg.state)) {
      if (age_of(t.event) < ts.delay(t.event).lo()) continue;
      const std::vector<EventId> succ_enabled = ts.enabled_events(t.target);
      for (const SafetyProperty* p : properties) {
        const std::uint64_t key = next_key();
        if (auto v = p->check_event(ctx, t.event, t.target, succ_enabled))
          report_violation(key, *v, item.handle, ts.label(t.event));
      }
      const std::vector<EventId> succ_clocked = pseudo_enabled(t.target);
      Config next;
      next.state = t.target;
      next.ages.assign(succ_clocked.size(), 0);
      for (std::size_t i = 0; i < succ_clocked.size(); ++i) {
        const EventId e = succ_clocked[i];
        if (e == t.event) continue;  // refired: fresh age
        const auto it = std::lower_bound(clocked.begin(), clocked.end(), e);
        if (it != clocked.end() && *it == e) {
          next.ages[i] =
              cfg.ages[static_cast<std::size_t>(it - clocked.begin())];
        }
      }
      try_push(std::move(next), item.handle, t.event, next_key(), worker);
    }
  };

  WorkStealingRanges ranges;
  std::vector<std::uint64_t> expanded(jobs, 0);
  const auto process = [&](std::size_t worker) {
    while (const auto chunk = ranges.next(worker)) {
      if (stop_flag.load(std::memory_order_relaxed)) return;
      for (std::size_t i = chunk->begin; i != chunk->end; ++i) {
        if (worker == 0) {
          // Deadline, cancellation and progress all live in the RunClock,
          // which is not thread-safe: only worker 0 polls it, the others
          // observe the stop flag at chunk boundaries.
          if (const char* reason = clock.tick(interner.size())) {
            stop_flag.store(reason, std::memory_order_relaxed);
            return;
          }
        }
        process_state(i, frontier[i], worker);
      }
      expanded[worker] += chunk->end - chunk->begin;
    }
  };

  /// Unwind the parent chain into the firing-label trace (delay ticks have
  /// no label and are skipped, matching the zone engine's traces).
  const auto unwind_labels = [&](ShardHandle leaf) {
    std::vector<std::string> out;
    for (ShardHandle cur = leaf; cur.valid();) {
      const ConfigMeta& meta = interner.value(cur);
      if (meta.via.valid()) out.push_back(ts.label(meta.via));
      cur = meta.parent;
    }
    std::reverse(out.begin(), out.end());
    return out;
  };

  const auto finish = [&](DiscreteVerifyResult r) {
    r.states_explored = interner.size();
    r.discrete_states = discrete_count;
    r.seconds = clock.seconds();
    if (obs::metrics_enabled()) {
      // One flush per run: worker balance, steal activity, interner shape.
      obs::Registry& reg = obs::Registry::global();
      for (std::size_t w = 0; w < expanded.size(); ++w)
        reg.counter("rtv_parallel_worker_expanded_total",
                    "worker=\"" + std::to_string(w) + '"',
                    "Frontier items expanded per worker slot")
            .add(expanded[w]);
      reg.counter("rtv_parallel_steal_attempts_total", "",
                  "Entries into the work-stealing path")
          .add(ranges.steal_attempts());
      reg.counter("rtv_parallel_steals_total", "",
                  "Successful chunk-range steals")
          .add(ranges.steals());
      const auto shards = interner.shard_stats();
      reg.gauge("rtv_interner_shards_used", "",
                "Interner shards holding at least one config")
          .set(static_cast<std::int64_t>(shards.nonempty));
      reg.gauge("rtv_interner_shard_occupancy_max", "",
                "Largest interner shard's config count")
          .set(static_cast<std::int64_t>(shards.max_size));
    }
    return r;
  };

  const auto merge = [&]() -> bool {
    // Gather this layer's discoveries; their order keys are final now, so
    // sorting yields the sequential BFS queue order.
    std::vector<std::pair<std::uint64_t, FrontierItem>> gathered;
    for (auto& per_worker : discovered) {
      for (auto& [handle, cfg] : per_worker) {
        gathered.emplace_back(interner.value(handle).order_key,
                              FrontierItem{handle, std::move(cfg)});
      }
      per_worker.clear();
    }
    std::sort(gathered.begin(), gathered.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key, item] : gathered) {
      if (!discrete_seen[item.cfg.state.value()]) {
        discrete_seen[item.cfg.state.value()] = true;
        ++discrete_count;
      }
    }

    if (best) {
      result.violated = true;
      result.description = best->description;
      result.trace_labels = unwind_labels(best->leaf);
      if (!best->extra.empty()) result.trace_labels.push_back(best->extra);
      return false;
    }
    if (const char* reason = stop_flag.load(std::memory_order_relaxed)) {
      result.truncated = true;
      result.truncated_reason = reason;
      RTV_WARN << "discrete exploration stopped: " << reason;
      return false;
    }
    if (interner.budget_hit()) {
      result.truncated = true;
      result.truncated_reason = stop_reason::kStateBudget;
      RTV_WARN << "discrete exploration truncated at " << interner.size();
      return false;
    }

    frontier.clear();
    frontier.reserve(gathered.size());
    for (auto& [key, item] : gathered) frontier.push_back(std::move(item));
    ++current_layer;
    if (obs::metrics_enabled()) {
      obs::Registry& reg = obs::Registry::global();
      reg.gauge("rtv_engine_frontier_size", "engine=\"discrete\"",
                "Current BFS frontier size")
          .set(static_cast<std::int64_t>(frontier.size()));
      reg.counter("rtv_engine_frontier_layers_total", "engine=\"discrete\"",
                  "Completed BFS layers")
          .inc();
    }
    if (frontier.empty()) return false;
    ranges.reset(frontier.size(), frontier_chunk_size(frontier.size(), jobs),
                 jobs);
    return true;
  };

  // Seed layer 0 with the initial config.
  {
    Config init;
    init.state = ts.initial();
    init.ages.assign(pseudo_enabled(init.state).size(), 0);
    const auto res = interner.insert(
        init, [&] { return ConfigMeta{ShardHandle{}, EventId::invalid(), 0, 0}; },
        [](ConfigMeta&) {});
    discrete_seen[init.state.value()] = true;
    ++discrete_count;
    frontier.push_back(FrontierItem{res.handle, std::move(init)});
    ranges.reset(frontier.size(), frontier_chunk_size(frontier.size(), jobs),
                 jobs);
  }

  LayeredRunner(jobs).run(process, merge);
  return finish(result);
}

DiscreteVerifyResult discrete_verify(
    const std::vector<const Module*>& modules,
    const std::vector<const SafetyProperty*>& properties,
    const DiscreteVerifyOptions& options) {
  // One clock for the whole run: composition counts against the deadline
  // and cancellation budget, and seconds include the compose phase.
  RunBudget budget;
  budget.max_states = options.max_states;
  budget.max_seconds = options.max_seconds;
  budget.cancel = options.cancel;
  RunClock clock("discrete", budget, options.progress,
                 options.progress_interval);
  ComposeOptions copts;
  copts.track_chokes = options.track_chokes;
  copts.max_states = options.max_states;
  copts.jobs = options.jobs;
  copts.stop = [&clock](std::size_t states) { return clock.tick(states); };
  const Composition comp = compose(modules, copts);
  if (comp.truncated) {
    // A truncated composition has frontier states with no outgoing
    // transitions; exploring it would fabricate deadlocks (and mangle
    // enabled sets), so no verdict can be trusted — report inconclusive
    // without exploring, like the refinement engine does.
    DiscreteVerifyResult r;
    r.truncated = true;
    r.truncated_reason = comp.truncated_reason ? comp.truncated_reason
                                               : stop_reason::kComposeBudget;
    r.seconds = clock.seconds();
    return r;
  }
  DiscreteVerifyOptions opts = options;
  opts.clock = &clock;
  return discrete_explore(comp.ts, properties, comp.chokes, opts);
}

}  // namespace rtv
