#include "rtv/zone/discrete.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>

#include "rtv/base/log.hpp"

namespace rtv {

namespace {

struct Config {
  StateId state;
  std::vector<std::uint16_t> ages;  ///< parallel to the clocked-event list

  friend bool operator==(const Config& a, const Config& b) {
    return a.state == b.state && a.ages == b.ages;
  }
};

struct ConfigHash {
  std::size_t operator()(const Config& c) const noexcept {
    std::size_t h = std::hash<StateId>()(c.state);
    for (std::uint16_t a : c.ages)
      h ^= std::hash<std::uint16_t>()(a) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    return h;
  }
};

}  // namespace

DiscreteVerifyResult discrete_explore(
    const TransitionSystem& ts,
    const std::vector<const SafetyProperty*>& properties,
    std::span<const ChokeRecord> chokes, const DiscreteVerifyOptions& options) {
  RunBudget budget;
  budget.max_states = options.max_states;
  budget.max_seconds = options.max_seconds;
  budget.cancel = options.cancel;
  RunClock local_clock("discrete", budget, options.progress,
                       options.progress_interval);
  RunClock& clock = options.clock ? *options.clock : local_clock;
  DiscreteVerifyResult result;

  // Ages are 16-bit (Config::ages); a delay bound beyond their range
  // would silently wrap, leaving the event forever unfireable and the
  // verdict wrong.  Digitization over such constants is out of this
  // engine's range: refuse with kInconclusive instead of guessing.
  for (std::size_t e = 0; e < ts.num_events(); ++e) {
    const DelayInterval d = ts.delay(EventId(static_cast<std::uint32_t>(e)));
    const Time cap = d.upper_bounded() ? d.hi() : d.lo();
    if (cap > static_cast<Time>(std::numeric_limits<std::uint16_t>::max())) {
      result.truncated = true;
      result.truncated_reason = stop_reason::kDigitizationRange;
      result.seconds = clock.seconds();
      RTV_WARN << "discrete engine: delay bound " << cap
               << " ticks exceeds the 16-bit age range; refusing";
      return result;
    }
  }

  std::unordered_map<StateId::underlying_type, std::vector<const ChokeRecord*>>
      chokes_at;
  chokes_at.reserve(64);
  for (const ChokeRecord& c : chokes) chokes_at[c.state.value()].push_back(&c);

  auto pseudo_enabled = [&](StateId s) {
    std::vector<EventId> out = ts.enabled_events(s);
    const auto it = chokes_at.find(s.value());
    if (it != chokes_at.end()) {
      for (const ChokeRecord* c : it->second) out.push_back(c->event);
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
    }
    return out;
  };

  // Ages saturate: beyond the upper bound (or the lower bound for
  // unbounded events) more age is indistinguishable.
  auto saturation = [&](EventId e) -> Time {
    const DelayInterval d = ts.delay(e);
    return d.upper_bounded() ? d.hi() : d.lo();
  };

  std::unordered_map<Config, bool, ConfigHash> seen;
  std::deque<Config> queue;
  std::vector<bool> discrete_seen(ts.num_states(), false);
  std::size_t discrete_count = 0;
  // Digitized exploration routinely visits 10^5-10^6 configs; a generous
  // initial bucket count avoids a cascade of rehashes on the hot path.
  seen.reserve(std::min<std::size_t>(options.max_states, 1u << 16));

  auto push = [&](Config c) {
    if (seen.emplace(c, true).second) {
      if (!discrete_seen[c.state.value()]) {
        discrete_seen[c.state.value()] = true;
        ++discrete_count;
      }
      queue.push_back(std::move(c));
    }
  };

  {
    Config init;
    init.state = ts.initial();
    init.ages.assign(pseudo_enabled(init.state).size(), 0);
    push(std::move(init));
  }

  auto finish = [&](DiscreteVerifyResult r) {
    r.states_explored = seen.size();
    r.discrete_states = discrete_count;
    r.seconds = clock.seconds();
    return r;
  };

  while (!queue.empty()) {
    if (seen.size() > options.max_states) {
      result.truncated = true;
      result.truncated_reason = stop_reason::kStateBudget;
      RTV_WARN << "discrete exploration truncated at " << seen.size();
      break;
    }
    if (const char* reason = clock.tick(seen.size())) {
      result.truncated = true;
      result.truncated_reason = reason;
      RTV_WARN << "discrete exploration stopped: " << reason;
      break;
    }
    const Config cfg = queue.front();
    queue.pop_front();
    const std::vector<EventId> clocked = pseudo_enabled(cfg.state);
    const std::vector<EventId> raw_enabled = ts.enabled_events(cfg.state);
    const PropertyContext ctx{ts, cfg.state, raw_enabled};

    for (const SafetyProperty* p : properties) {
      if (auto v = p->check_state(ctx)) {
        result.violated = true;
        result.description = *v;
        return finish(result);
      }
    }

    auto age_of = [&](EventId e) -> Time {
      const auto it = std::lower_bound(clocked.begin(), clocked.end(), e);
      return cfg.ages[static_cast<std::size_t>(it - clocked.begin())];
    };

    // Chokes firable now?
    if (auto it = chokes_at.find(cfg.state.value()); it != chokes_at.end()) {
      for (const ChokeRecord* c : it->second) {
        if (age_of(c->event) >= ts.delay(c->event).lo()) {
          result.violated = true;
          result.description = "refusal: output '" + ts.label(c->event) +
                               "' not accepted (containment violation)";
          return finish(result);
        }
      }
    }

    // Delay step: one tick, if no bounded deadline is overrun.
    {
      bool can_delay = true;
      for (std::size_t i = 0; i < clocked.size(); ++i) {
        const DelayInterval d = ts.delay(clocked[i]);
        if (d.upper_bounded() && cfg.ages[i] + 1 > d.hi()) {
          can_delay = false;
          break;
        }
      }
      if (can_delay && !clocked.empty()) {
        Config next = cfg;
        for (std::size_t i = 0; i < clocked.size(); ++i) {
          const Time cap = saturation(clocked[i]);
          if (next.ages[i] < cap) ++next.ages[i];
        }
        push(std::move(next));
      }
    }

    // Firing steps.
    for (const Transition& t : ts.transitions_from(cfg.state)) {
      if (age_of(t.event) < ts.delay(t.event).lo()) continue;
      const std::vector<EventId> succ_enabled = ts.enabled_events(t.target);
      for (const SafetyProperty* p : properties) {
        if (auto v = p->check_event(ctx, t.event, t.target, succ_enabled)) {
          result.violated = true;
          result.description = *v;
          return finish(result);
        }
      }
      const std::vector<EventId> succ_clocked = pseudo_enabled(t.target);
      Config next;
      next.state = t.target;
      next.ages.assign(succ_clocked.size(), 0);
      for (std::size_t i = 0; i < succ_clocked.size(); ++i) {
        const EventId e = succ_clocked[i];
        if (e == t.event) continue;  // refired: fresh age
        const auto it = std::lower_bound(clocked.begin(), clocked.end(), e);
        if (it != clocked.end() && *it == e) {
          next.ages[i] =
              cfg.ages[static_cast<std::size_t>(it - clocked.begin())];
        }
      }
      push(std::move(next));
    }
  }

  return finish(result);
}

DiscreteVerifyResult discrete_verify(
    const std::vector<const Module*>& modules,
    const std::vector<const SafetyProperty*>& properties,
    const DiscreteVerifyOptions& options) {
  // One clock for the whole run: composition counts against the deadline
  // and cancellation budget, and seconds include the compose phase.
  RunBudget budget;
  budget.max_states = options.max_states;
  budget.max_seconds = options.max_seconds;
  budget.cancel = options.cancel;
  RunClock clock("discrete", budget, options.progress,
                 options.progress_interval);
  ComposeOptions copts;
  copts.track_chokes = options.track_chokes;
  copts.max_states = options.max_states;
  copts.stop = [&clock](std::size_t states) { return clock.tick(states); };
  const Composition comp = compose(modules, copts);
  if (comp.truncated) {
    // A truncated composition has frontier states with no outgoing
    // transitions; exploring it would fabricate deadlocks (and mangle
    // enabled sets), so no verdict can be trusted — report inconclusive
    // without exploring, like the refinement engine does.
    DiscreteVerifyResult r;
    r.truncated = true;
    r.truncated_reason = comp.truncated_reason ? comp.truncated_reason
                                               : stop_reason::kComposeBudget;
    r.seconds = clock.seconds();
    return r;
  }
  DiscreteVerifyOptions opts = options;
  opts.clock = &clock;
  return discrete_explore(comp.ts, properties, comp.chokes, opts);
}

}  // namespace rtv
