#include "rtv/zone/zone_graph.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "rtv/base/log.hpp"
#include "rtv/obs/metrics.hpp"

namespace rtv {

namespace {

struct ZoneNode {
  StateId state;
  std::vector<EventId> clocks;  ///< sorted; clock k+1 tracks clocks[k]
  Dbm zone{0};
  std::ptrdiff_t parent = -1;
  EventId via = EventId::invalid();
};

/// Key: discrete state (clock list is determined by the state itself).
using WaitIndex = std::unordered_map<StateId::underlying_type, std::vector<std::size_t>>;

}  // namespace

ZoneVerifyResult zone_explore(const TransitionSystem& ts,
                              const std::vector<const SafetyProperty*>& properties,
                              std::span<const ChokeRecord> chokes,
                              const ZoneVerifyOptions& options) {
  RunBudget budget;
  budget.max_states = options.max_zones;
  budget.max_seconds = options.max_seconds;
  budget.cancel = options.cancel;
  RunClock local_clock("zone", budget, options.progress,
                       options.progress_interval);
  RunClock& clock = options.clock ? *options.clock : local_clock;
  ZoneVerifyResult result;

  std::unordered_map<StateId::underlying_type, std::vector<const ChokeRecord*>>
      chokes_at;
  chokes_at.reserve(64);
  for (const ChokeRecord& c : chokes) chokes_at[c.state.value()].push_back(&c);

  // Clocks are tracked for "pseudo-enabled" events: composed-enabled ones
  // plus choked (refused) outputs, which are enabled in the implementation
  // even though the composed graph has no transition for them.
  auto pseudo_enabled = [&](StateId s) {
    std::vector<EventId> out = ts.enabled_events(s);
    const auto it = chokes_at.find(s.value());
    if (it != chokes_at.end()) {
      for (const ChokeRecord* c : it->second) out.push_back(c->event);
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
    }
    return out;
  };

  // Per-event extrapolation constant.
  std::vector<Time> event_const(ts.num_events());
  for (std::size_t i = 0; i < ts.num_events(); ++i) {
    const DelayInterval d =
        ts.delay(EventId(static_cast<EventId::underlying_type>(i)));
    event_const[i] = d.upper_bounded() ? d.hi() : d.lo();
  }

  std::vector<ZoneNode> nodes;
  WaitIndex stored;
  std::deque<std::size_t> queue;
  std::vector<bool> discrete_seen(ts.num_states(), false);
  std::size_t discrete_count = 0;
  // Exploration typically visits thousands of zones; pre-sizing the node
  // arena and the per-state index avoids the early rehash/realloc churn.
  nodes.reserve(std::min<std::size_t>(options.max_zones, 4096));
  stored.reserve(std::min<std::size_t>(ts.num_states(), 4096));

  auto unwind_labels = [&](std::ptrdiff_t leaf) {
    std::vector<std::string> out;
    std::ptrdiff_t cur = leaf;
    while (cur >= 0 && nodes[static_cast<std::size_t>(cur)].parent >= 0) {
      out.push_back(ts.label(nodes[static_cast<std::size_t>(cur)].via));
      cur = nodes[static_cast<std::size_t>(cur)].parent;
    }
    std::reverse(out.begin(), out.end());
    return out;
  };

  bool budget_hit = false;
  std::uint64_t subsumption_checks = 0, subsumed = 0;
  auto add_node = [&](ZoneNode node) -> std::optional<std::size_t> {
    // Subsumption against stored zones of the same discrete state.
    auto& bucket = stored[node.state.value()];
    subsumption_checks += bucket.size();
    for (std::size_t idx : bucket) {
      const ZoneNode& other = nodes[idx];
      if (other.clocks == node.clocks && node.zone.subset_of(other.zone)) {
        ++subsumed;
        return std::nullopt;
      }
    }
    // The zone budget is an insertion-time ceiling: a zone beyond the cap
    // is rejected outright (the initial zone is always admitted), so the
    // store never overshoots max_zones by a frontier layer.
    if (!nodes.empty() && nodes.size() >= options.max_zones) {
      budget_hit = true;
      return std::nullopt;
    }
    nodes.push_back(std::move(node));
    const std::size_t id = nodes.size() - 1;
    bucket.push_back(id);
    queue.push_back(id);
    if (!discrete_seen[nodes[id].state.value()]) {
      discrete_seen[nodes[id].state.value()] = true;
      ++discrete_count;
    }
    return id;
  };

  // Initial node: all initially enabled events at clock 0.
  {
    ZoneNode init;
    init.state = ts.initial();
    init.clocks = pseudo_enabled(init.state);
    init.zone = Dbm::zero(init.clocks.size());
    init.zone.canonicalize();
    add_node(std::move(init));
  }

  auto finish = [&](ZoneVerifyResult r) {
    r.zones_explored = nodes.size();
    r.discrete_states = discrete_count;
    r.seconds = clock.seconds();
    if (obs::metrics_enabled()) {
      obs::Registry& reg = obs::Registry::global();
      reg.counter("rtv_zone_subsumption_checks_total", "",
                  "Zone-vs-stored-zone subsumption comparisons")
          .add(subsumption_checks);
      reg.counter("rtv_zone_subsumed_total", "",
                  "Zones dropped as subsumed by a stored zone")
          .add(subsumed);
      reg.gauge("rtv_engine_frontier_size", "engine=\"zone\"",
                "Zone waiting-queue size at the end of the run")
          .set(static_cast<std::int64_t>(queue.size()));
    }
    return r;
  };

  while (!queue.empty()) {
    if (budget_hit) {
      result.truncated = true;
      result.truncated_reason = stop_reason::kStateBudget;
      RTV_WARN << "zone exploration truncated at " << nodes.size();
      break;
    }
    if (const char* reason = clock.tick(nodes.size())) {
      result.truncated = true;
      result.truncated_reason = reason;
      RTV_WARN << "zone exploration stopped: " << reason;
      break;
    }
    const std::size_t id = queue.front();
    queue.pop_front();
    // Copy: nodes may reallocate during expansion.
    const ZoneNode node = nodes[id];
    const std::vector<EventId> raw_enabled = ts.enabled_events(node.state);
    const PropertyContext ctx{ts, node.state, raw_enabled};

    for (const SafetyProperty* p : properties) {
      if (auto v = p->check_state(ctx)) {
        result.violated = true;
        result.description = *v;
        result.trace_labels = unwind_labels(static_cast<std::ptrdiff_t>(id));
        return finish(result);
      }
    }

    const std::size_t k = node.clocks.size();
    auto clock_of = [&](EventId e) -> std::size_t {
      const auto it = std::lower_bound(node.clocks.begin(), node.clocks.end(), e);
      return static_cast<std::size_t>(it - node.clocks.begin()) + 1;
    };

    // Delay closure under the location invariant (maximal progress).
    Dbm delayed = node.zone;
    delayed.up();
    for (std::size_t c = 0; c < k; ++c) {
      const DelayInterval d = ts.delay(node.clocks[c]);
      if (d.upper_bounded()) delayed.constrain(c + 1, 0, d.hi());
    }
    delayed.canonicalize();

    auto fireable_zone = [&](EventId e) -> std::optional<Dbm> {
      Dbm fire = delayed;
      if (fire.empty()) return std::nullopt;
      const DelayInterval d = ts.delay(e);
      // x_e >= lo:  0 - x_e <= -lo.
      fire.constrain(0, clock_of(e), -d.lo());
      if (!fire.canonicalize()) return std::nullopt;
      return fire;
    };

    // Chokes: refused outputs that are timed-fireable are true violations.
    if (auto it = chokes_at.find(node.state.value()); it != chokes_at.end()) {
      for (const ChokeRecord* c : it->second) {
        if (fireable_zone(c->event)) {
          result.violated = true;
          result.description = "refusal: output '" + ts.label(c->event) +
                               "' not accepted (containment violation)";
          result.trace_labels = unwind_labels(static_cast<std::ptrdiff_t>(id));
          result.trace_labels.push_back(ts.label(c->event));
          return finish(result);
        }
      }
    }

    for (const Transition& t : ts.transitions_from(node.state)) {
      const auto fire = fireable_zone(t.event);
      if (!fire) continue;

      const std::vector<EventId> succ_enabled = ts.enabled_events(t.target);
      const std::vector<EventId> succ_clocked = pseudo_enabled(t.target);
      for (const SafetyProperty* p : properties) {
        if (auto v = p->check_event(ctx, t.event, t.target, succ_enabled)) {
          result.violated = true;
          result.description = *v;
          result.trace_labels = unwind_labels(static_cast<std::ptrdiff_t>(id));
          result.trace_labels.push_back(ts.label(t.event));
          return finish(result);
        }
      }

      // Build the successor zone: persistent events keep clocks, the fired
      // event and newly enabled events restart at 0.
      std::vector<std::size_t> source(succ_clocked.size(), 0);
      for (std::size_t c = 0; c < succ_clocked.size(); ++c) {
        const EventId e = succ_clocked[c];
        if (e == t.event) continue;  // fired: fresh clock
        const auto it =
            std::lower_bound(node.clocks.begin(), node.clocks.end(), e);
        if (it != node.clocks.end() && *it == e) {
          source[c] = static_cast<std::size_t>(it - node.clocks.begin()) + 1;
        }
      }
      ZoneNode succ;
      succ.state = t.target;
      succ.clocks = succ_clocked;
      succ.zone = fire->remap(source);
      // Extrapolate for termination with unbounded delays.
      std::vector<Time> consts(succ.clocks.size() + 1, 0);
      for (std::size_t c = 0; c < succ.clocks.size(); ++c)
        consts[c + 1] = event_const[succ.clocks[c].value()];
      succ.zone.extrapolate(consts);
      succ.zone.canonicalize();
      if (succ.zone.empty()) continue;
      succ.parent = static_cast<std::ptrdiff_t>(id);
      succ.via = t.event;
      add_node(std::move(succ));
    }
  }

  return finish(result);
}

ZoneVerifyResult zone_verify(const std::vector<const Module*>& modules,
                             const std::vector<const SafetyProperty*>& properties,
                             const ZoneVerifyOptions& options) {
  // One clock for the whole run: composition counts against the deadline
  // and cancellation budget, and seconds include the compose phase.
  RunBudget budget;
  budget.max_states = options.max_zones;
  budget.max_seconds = options.max_seconds;
  budget.cancel = options.cancel;
  RunClock clock("zone", budget, options.progress, options.progress_interval);
  ComposeOptions copts;
  copts.track_chokes = options.track_chokes;
  copts.max_states = options.max_zones;
  copts.jobs = options.jobs;
  copts.stop = [&clock](std::size_t states) { return clock.tick(states); };
  const Composition comp = compose(modules, copts);
  if (comp.truncated) {
    // A truncated composition has frontier states with no outgoing
    // transitions; exploring it would fabricate deadlocks (and mangle
    // enabled sets), so no verdict can be trusted — report inconclusive
    // without exploring, like the refinement engine does.
    ZoneVerifyResult r;
    r.truncated = true;
    r.truncated_reason = comp.truncated_reason ? comp.truncated_reason
                                               : stop_reason::kComposeBudget;
    r.seconds = clock.seconds();
    return r;
  }
  ZoneVerifyOptions opts = options;
  opts.clock = &clock;
  return zone_explore(comp.ts, properties, comp.chokes, opts);
}

}  // namespace rtv
