// Builders for the gallery of small systems (see rtv/ts/gallery.hpp).
#include "rtv/ts/gallery.hpp"

#include <cassert>

namespace rtv::gallery {

Module intro_example() {
  TransitionSystem ts;
  // Events and delays (Fig. 1(b) spirit).
  const EventId a = ts.add_event("a", DelayInterval::units(2.5, 3), EventKind::kInternal);
  const EventId b = ts.add_event("b", DelayInterval::units(1, 2), EventKind::kInternal);
  const EventId c = ts.add_event("c", DelayInterval::units(1, 2), EventKind::kInternal);
  const EventId g = ts.add_event("g", DelayInterval::units(0.5, 0.5), EventKind::kInternal);
  const EventId d = ts.add_event("d", DelayInterval::unbounded(), EventKind::kInternal);

  // State space: product of progress {a-chain: 0(a pending),1(c pending),
  // 2(d pending),3(done)} x {b-chain: 0(b pending),1(g pending),2(done)}.
  StateId states[4][2 + 1];
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 3; ++j)
      states[i][j] = ts.add_state("a" + std::to_string(i) + "b" + std::to_string(j));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i == 0) ts.add_transition(states[i][j], a, states[1][j]);
      if (i == 1) ts.add_transition(states[i][j], c, states[2][j]);
      if (i == 2) ts.add_transition(states[i][j], d, states[3][j]);
      if (j == 0) ts.add_transition(states[i][j], b, states[i][1]);
      if (j == 1) ts.add_transition(states[i][j], g, states[i][2]);
    }
  }
  ts.set_initial(states[0][0]);
  return Module("intro", std::move(ts));
}

Module order_monitor(const std::string& first, const std::string& then,
                     const std::string& fail_signal) {
  TransitionSystem ts;
  const EventId ef = ts.add_event(first, DelayInterval::unbounded(), EventKind::kInput);
  const EventId et = ts.add_event(then, DelayInterval::unbounded(), EventKind::kInput);
  const StateId wait = ts.add_state("waiting-" + first);
  const StateId ok = ts.add_state("saw-" + first);
  const StateId fail = ts.add_state("FAIL");
  ts.add_transition(wait, ef, ok);
  ts.add_transition(wait, et, fail);
  ts.add_transition(ok, ef, ok);
  ts.add_transition(ok, et, ok);
  // The fail state is a trap: it accepts everything so that reaching it is
  // observable as an invariant violation rather than a choke.
  ts.add_transition(fail, ef, fail);
  ts.add_transition(fail, et, fail);
  ts.set_initial(wait);
  ts.set_signal_names({fail_signal});
  BitVec lo(1), hi(1);
  hi.set(0);
  ts.set_state_valuation(wait, lo);
  ts.set_state_valuation(ok, lo);
  ts.set_state_valuation(fail, hi);
  return Module("order(" + first + "<" + then + ")", std::move(ts));
}

Module chain(const std::vector<std::pair<std::string, DelayInterval>>& events) {
  TransitionSystem ts;
  StateId prev = ts.add_state("s0");
  ts.set_initial(prev);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const EventId e =
        ts.add_event(events[i].first, events[i].second, EventKind::kInternal);
    const StateId next = ts.add_state("s" + std::to_string(i + 1));
    ts.add_transition(prev, e, next);
    prev = next;
  }
  return Module("chain", std::move(ts));
}

Module ring(const std::vector<std::pair<std::string, DelayInterval>>& events) {
  TransitionSystem ts;
  assert(!events.empty());
  std::vector<StateId> states;
  for (std::size_t i = 0; i < events.size(); ++i)
    states.push_back(ts.add_state("r" + std::to_string(i)));
  for (std::size_t i = 0; i < events.size(); ++i) {
    const EventId e =
        ts.add_event(events[i].first, events[i].second, EventKind::kInternal);
    ts.add_transition(states[i], e, states[(i + 1) % events.size()]);
  }
  ts.set_initial(states[0]);
  return Module("ring", std::move(ts));
}

Module fork_join(const std::string& a, DelayInterval a_delay,
                 const std::string& b, DelayInterval b_delay,
                 const std::string& c, DelayInterval c_delay) {
  TransitionSystem ts;
  const EventId ea = ts.add_event(a, a_delay, EventKind::kInternal);
  const EventId eb = ts.add_event(b, b_delay, EventKind::kInternal);
  const EventId ec = ts.add_event(c, c_delay, EventKind::kInternal);
  StateId s[2][2];
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      s[i][j] = ts.add_state("f" + std::to_string(i) + std::to_string(j));
  for (int j = 0; j < 2; ++j) ts.add_transition(s[0][j], ea, s[1][j]);
  for (int i = 0; i < 2; ++i) ts.add_transition(s[i][0], eb, s[i][1]);
  ts.add_transition(s[1][1], ec, s[0][0]);
  ts.set_initial(s[0][0]);
  return Module("fork_join", std::move(ts));
}

Module diamond(const std::string& x, DelayInterval x_delay,
               const std::string& y, DelayInterval y_delay) {
  TransitionSystem ts;
  const EventId ex = ts.add_event(x, x_delay, EventKind::kInternal);
  const EventId ey = ts.add_event(y, y_delay, EventKind::kInternal);
  const StateId s00 = ts.add_state("00");
  const StateId s10 = ts.add_state("10");
  const StateId s01 = ts.add_state("01");
  const StateId s11 = ts.add_state("11");
  ts.add_transition(s00, ex, s10);
  ts.add_transition(s00, ey, s01);
  ts.add_transition(s10, ey, s11);
  ts.add_transition(s01, ex, s11);
  ts.set_initial(s00);
  return Module("diamond", std::move(ts));
}

Module scaled_race(int k) {
  TransitionSystem ts;
  const double s = k;
  const EventId a = ts.add_event("a", DelayInterval::units(1 * s, 2 * s));
  const EventId b = ts.add_event("b", DelayInterval::units(1 * s, 3 * s));
  const EventId c = ts.add_event("c", DelayInterval::units(2 * s, 3 * s));
  StateId grid[2][2][2];
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      for (int l = 0; l < 2; ++l) grid[i][j][l] = ts.add_state();
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j)
      for (int l = 0; l < 2; ++l) {
        if (!i) ts.add_transition(grid[i][j][l], a, grid[1][j][l]);
        if (!j) ts.add_transition(grid[i][j][l], b, grid[i][1][l]);
        if (!l) ts.add_transition(grid[i][j][l], c, grid[i][j][1]);
      }
  ts.set_initial(grid[0][0][0]);
  return Module("race3", std::move(ts));
}

}  // namespace rtv::gallery
