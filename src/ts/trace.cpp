#include "rtv/ts/trace.hpp"

#include <deque>
#include <sstream>
#include <unordered_map>

namespace rtv {

std::vector<std::string> Trace::labels(const TransitionSystem& ts) const {
  std::vector<std::string> out;
  out.reserve(steps.size());
  for (const TraceStep& s : steps) out.push_back(ts.label(s.event));
  return out;
}

std::string Trace::to_string(const TransitionSystem& ts) const {
  std::ostringstream os;
  for (const TraceStep& s : steps) {
    os << "{";
    for (std::size_t i = 0; i < s.enabled.size(); ++i) {
      if (i) os << ",";
      os << ts.label(s.enabled[i]);
    }
    os << "} --" << ts.label(s.event) << "--> ";
  }
  os << "(final)";
  return os.str();
}

namespace {

struct BfsParents {
  // parent state + event used to reach each state; -1 for unvisited.
  std::vector<StateId> parent;
  std::vector<EventId> via;
  std::vector<bool> seen;
};

BfsParents bfs(const TransitionSystem& ts) {
  BfsParents p;
  p.parent.assign(ts.num_states(), StateId::invalid());
  p.via.assign(ts.num_states(), EventId::invalid());
  p.seen.assign(ts.num_states(), false);
  if (!ts.initial().valid()) return p;
  std::deque<StateId> queue{ts.initial()};
  p.seen[ts.initial().value()] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (const Transition& t : ts.transitions_from(s)) {
      if (!p.seen[t.target.value()]) {
        p.seen[t.target.value()] = true;
        p.parent[t.target.value()] = s;
        p.via[t.target.value()] = t.event;
        queue.push_back(t.target);
      }
    }
  }
  return p;
}

Trace unwind(const TransitionSystem& ts, const BfsParents& p, StateId target) {
  // Walk parents back to the initial state, then reverse.
  std::vector<std::pair<StateId, EventId>> rev;
  StateId cur = target;
  while (cur != ts.initial()) {
    const StateId par = p.parent[cur.value()];
    rev.emplace_back(par, p.via[cur.value()]);
    cur = par;
  }
  Trace trace;
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    TraceStep step;
    step.state = it->first;
    step.event = it->second;
    step.enabled = ts.enabled_events(it->first);
    trace.steps.push_back(std::move(step));
  }
  trace.final_state = target;
  trace.final_enabled = ts.enabled_events(target);
  return trace;
}

}  // namespace

std::optional<Trace> shortest_trace_to(const TransitionSystem& ts, StateId target) {
  const BfsParents p = bfs(ts);
  if (target.value() >= ts.num_states() || !p.seen[target.value()])
    return std::nullopt;
  return unwind(ts, p, target);
}

std::optional<Trace> shortest_trace_firing(const TransitionSystem& ts,
                                           StateId from_state, EventId event) {
  auto base = shortest_trace_to(ts, from_state);
  if (!base) return std::nullopt;
  const auto succ = ts.successor(from_state, event);
  if (!succ) return std::nullopt;
  TraceStep step;
  step.state = from_state;
  step.event = event;
  step.enabled = ts.enabled_events(from_state);
  base->steps.push_back(std::move(step));
  base->final_state = *succ;
  base->final_enabled = ts.enabled_events(*succ);
  return base;
}

}  // namespace rtv
