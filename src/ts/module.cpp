#include "rtv/ts/module.hpp"

#include <algorithm>

namespace rtv {

std::vector<std::string> Module::alphabet() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < ts_.num_events(); ++i)
    out.push_back(ts_.event(EventId(static_cast<EventId::underlying_type>(i))).label);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> Module::labels_of_kind(EventKind kind) const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < ts_.num_events(); ++i) {
    const Event& e = ts_.event(EventId(static_cast<EventId::underlying_type>(i)));
    if (e.kind == kind) out.push_back(e.label);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

EventKind Module::kind_of(const std::string& label) const {
  const EventId e = ts_.event_by_label(label);
  if (!e.valid()) return EventKind::kInternal;
  return ts_.event(e).kind;
}

bool Module::has_label(const std::string& label) const {
  return ts_.event_by_label(label).valid();
}

Module Module::as_monitor(const std::string& new_name) const {
  Module m(new_name, ts_);
  for (std::size_t i = 0; i < m.ts_.num_events(); ++i) {
    const EventId e(static_cast<EventId::underlying_type>(i));
    m.ts_.set_event_kind(e, EventKind::kInput);
    // A monitor never constrains time: it only observes.
    m.ts_.set_event_delay(e, DelayInterval::unbounded());
  }
  return m;
}

Module Module::mirrored(const std::string& new_name) const {
  Module m(new_name, ts_);
  for (std::size_t i = 0; i < m.ts_.num_events(); ++i) {
    const EventId e(static_cast<EventId::underlying_type>(i));
    const EventKind k = ts_.event(e).kind;
    if (k == EventKind::kInput) {
      m.ts_.set_event_kind(e, EventKind::kOutput);
    } else if (k == EventKind::kOutput) {
      m.ts_.set_event_kind(e, EventKind::kInput);
    }
  }
  return m;
}

}  // namespace rtv
