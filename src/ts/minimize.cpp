#include "rtv/ts/minimize.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace rtv {

MinimizeResult minimize(const TransitionSystem& ts,
                        const MinimizeOptions& options) {
  const std::vector<StateId> reachable = ts.reachable_states();

  // Initial partition: by valuation (optional); unreachable states are
  // ignored entirely.
  std::vector<std::size_t> block(ts.num_states(), static_cast<std::size_t>(-1));
  {
    std::map<std::string, std::size_t> seed;
    for (StateId s : reachable) {
      std::string key;
      if (options.respect_valuations && ts.has_valuations()) {
        key = ts.valuation(s).to_string();
      }
      const auto [it, inserted] = seed.emplace(key, seed.size());
      block[s.value()] = it->second;
    }
  }

  // Refinement: signature = sorted set of (event, successor block).
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::pair<std::size_t, std::vector<std::pair<std::uint32_t, std::size_t>>>,
             std::size_t>
        next_index;
    std::vector<std::size_t> next_block(ts.num_states(),
                                        static_cast<std::size_t>(-1));
    for (StateId s : reachable) {
      std::vector<std::pair<std::uint32_t, std::size_t>> sig;
      for (const Transition& t : ts.transitions_from(s)) {
        sig.emplace_back(t.event.value(), block[t.target.value()]);
      }
      std::sort(sig.begin(), sig.end());
      sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
      const auto key = std::make_pair(block[s.value()], std::move(sig));
      const auto [it, inserted] = next_index.emplace(key, next_index.size());
      next_block[s.value()] = it->second;
    }
    // Count old blocks among reachable states.
    std::size_t old_count = 0;
    {
      std::vector<std::size_t> seen;
      for (StateId s : reachable) seen.push_back(block[s.value()]);
      std::sort(seen.begin(), seen.end());
      seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
      old_count = seen.size();
    }
    if (next_index.size() != old_count) changed = true;
    block = std::move(next_block);
  }

  // Build the quotient.
  MinimizeResult out;
  out.block_of = block;
  std::size_t n_blocks = 0;
  for (StateId s : reachable) n_blocks = std::max(n_blocks, block[s.value()] + 1);
  out.num_blocks = n_blocks;

  for (std::size_t i = 0; i < ts.num_events(); ++i) {
    const Event& e = ts.event(EventId(static_cast<EventId::underlying_type>(i)));
    out.ts.add_event(e.label, e.delay, e.kind);
  }
  std::vector<StateId> rep(n_blocks, StateId::invalid());
  for (std::size_t b = 0; b < n_blocks; ++b) out.ts.add_state();
  if (ts.has_valuations()) out.ts.set_signal_names(ts.signal_names());
  for (StateId s : reachable) {
    const std::size_t b = block[s.value()];
    if (rep[b].valid()) continue;
    rep[b] = s;
    const StateId q(static_cast<StateId::underlying_type>(b));
    out.ts.set_state_name(q, ts.state_name(s));
    if (ts.has_valuations() && options.respect_valuations)
      out.ts.set_state_valuation(q, ts.valuation(s));
  }
  // Transitions from the representatives (bisimilar states agree).
  for (std::size_t b = 0; b < n_blocks; ++b) {
    std::vector<std::pair<std::uint32_t, std::size_t>> emitted;
    for (const Transition& t : ts.transitions_from(rep[b])) {
      const auto key =
          std::make_pair(t.event.value(), block[t.target.value()]);
      if (std::find(emitted.begin(), emitted.end(), key) != emitted.end())
        continue;
      emitted.push_back(key);
      out.ts.add_transition(
          StateId(static_cast<StateId::underlying_type>(b)), t.event,
          StateId(static_cast<StateId::underlying_type>(key.second)));
    }
  }
  out.ts.set_initial(StateId(
      static_cast<StateId::underlying_type>(block[ts.initial().value()])));
  return out;
}

Module minimized(const Module& m, const MinimizeOptions& options) {
  MinimizeResult r = minimize(m.ts(), options);
  return Module(m.name() + "*", std::move(r.ts));
}

}  // namespace rtv
