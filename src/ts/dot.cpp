#include "rtv/ts/dot.hpp"

#include <algorithm>
#include <sstream>

namespace rtv {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const TransitionSystem& ts, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph ts {\n  rankdir=LR;\n  node [shape=circle];\n";

  std::vector<StateId> order = ts.reachable_states();
  if (options.max_states > 0 && order.size() > options.max_states)
    order.resize(options.max_states);
  std::vector<bool> emitted(ts.num_states(), false);
  for (StateId s : order) emitted[s.value()] = true;

  for (StateId s : order) {
    os << "  s" << s.value() << " [label=\"";
    if (options.show_state_names && !ts.state_name(s).empty()) {
      os << escape(ts.state_name(s));
    } else {
      os << "s" << s.value();
    }
    os << "\"";
    if (ts.initial() == s) os << ", penwidth=2";
    if (std::find(options.highlight.begin(), options.highlight.end(), s) !=
        options.highlight.end()) {
      os << ", style=filled, fillcolor=lightgray";
    }
    os << "];\n";
  }
  for (StateId s : order) {
    for (const Transition& t : ts.transitions_from(s)) {
      if (!emitted[t.target.value()]) continue;
      os << "  s" << s.value() << " -> s" << t.target.value() << " [label=\""
         << escape(ts.label(t.event)) << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const Ces& ces) {
  std::ostringstream os;
  os << "digraph ces {\n  rankdir=TB;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < ces.size(); ++i) {
    const CesEvent& e = ces.events[i];
    os << "  e" << i << " [label=\"" << escape(e.label) << " "
       << escape(e.delay.to_string()) << "\"";
    if (e.pending) os << ", style=dashed";
    os << "];\n";
  }
  for (std::size_t i = 0; i < ces.size(); ++i) {
    for (int p : ces.events[i].preds) {
      os << "  e" << p << " -> e" << i << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace rtv

namespace rtv {

std::string to_dot(const Netlist& netlist) {
  std::ostringstream os;
  os << "digraph netlist {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < netlist.num_nodes(); ++i) {
    const NodeId n(static_cast<NodeId::underlying_type>(i));
    os << "  n" << i << " [label=\"" << netlist.node_name(n) << "\"";
    if (netlist.is_input(n)) os << ", style=dashed";
    if (netlist.is_boundary(n)) os << ", penwidth=2";
    os << "];\n";
  }
  std::size_t stack_idx = 0;
  for (const Stack& s : netlist.stacks()) {
    const char* kind = s.type == StackType::kPullUp
                           ? "up"
                           : (s.type == StackType::kPullDown ? "down" : "pass");
    for (NodeId g : netlist.exprs().support(s.guard)) {
      os << "  n" << g.value() << " -> n" << s.target.value() << " [label=\""
         << kind << " " << s.delay.to_string() << "\"";
      if (s.weak) os << ", style=dotted";
      os << "];\n";
    }
    if (s.type == StackType::kPass) {
      os << "  n" << s.source.value() << " -> n" << s.target.value()
         << " [label=\"src\", style=bold];\n";
    }
    ++stack_idx;
  }
  (void)stack_idx;
  os << "}\n";
  return os.str();
}

}  // namespace rtv
