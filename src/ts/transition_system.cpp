#include "rtv/ts/transition_system.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>

namespace rtv {

StateId TransitionSystem::add_state(std::string name) {
  out_.emplace_back();
  state_names_.push_back(std::move(name));
  if (!valuations_.empty()) valuations_.emplace_back();
  return StateId(static_cast<StateId::underlying_type>(out_.size() - 1));
}

EventId TransitionSystem::add_event(std::string label, DelayInterval delay,
                                    EventKind kind) {
  events_.push_back(Event{std::move(label), delay, kind});
  return EventId(static_cast<EventId::underlying_type>(events_.size() - 1));
}

EventId TransitionSystem::ensure_event(const std::string& label,
                                       DelayInterval delay, EventKind kind) {
  const EventId existing = event_by_label(label);
  if (existing.valid()) return existing;
  return add_event(label, delay, kind);
}

void TransitionSystem::add_transition(StateId from, EventId event, StateId to) {
  assert(from.value() < out_.size());
  assert(to.value() < out_.size());
  assert(event.value() < events_.size());
  out_[from.value()].push_back(Transition{event, to});
}

void TransitionSystem::set_signal_names(std::vector<std::string> names) {
  signal_names_ = std::move(names);
  if (valuations_.empty()) valuations_.resize(out_.size());
}

void TransitionSystem::set_state_valuation(StateId s, BitVec valuation) {
  if (valuations_.empty()) valuations_.resize(out_.size());
  valuations_[s.value()] = std::move(valuation);
}

void TransitionSystem::set_state_name(StateId s, std::string name) {
  state_names_[s.value()] = std::move(name);
}

std::size_t TransitionSystem::num_transitions() const {
  std::size_t n = 0;
  for (const auto& v : out_) n += v.size();
  return n;
}

std::vector<EventId> TransitionSystem::enabled_events(StateId s) const {
  std::vector<EventId> out;
  for (const Transition& t : out_[s.value()]) out.push_back(t.event);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool TransitionSystem::is_enabled(StateId s, EventId e) const {
  for (const Transition& t : out_[s.value()])
    if (t.event == e) return true;
  return false;
}

std::optional<StateId> TransitionSystem::successor(StateId s, EventId e) const {
  for (const Transition& t : out_[s.value()])
    if (t.event == e) return t.target;
  return std::nullopt;
}

EventId TransitionSystem::event_by_label(std::string_view label) const {
  for (std::size_t i = 0; i < events_.size(); ++i)
    if (events_[i].label == label)
      return EventId(static_cast<EventId::underlying_type>(i));
  return EventId::invalid();
}

std::size_t TransitionSystem::signal_index(std::string_view name) const {
  for (std::size_t i = 0; i < signal_names_.size(); ++i)
    if (signal_names_[i] == name) return i;
  return static_cast<std::size_t>(-1);
}

std::vector<StateId> TransitionSystem::reachable_states() const {
  std::vector<StateId> order;
  if (!initial_.valid()) return order;
  std::vector<bool> seen(num_states(), false);
  std::deque<StateId> queue{initial_};
  seen[initial_.value()] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    order.push_back(s);
    for (const Transition& t : out_[s.value()]) {
      if (!seen[t.target.value()]) {
        seen[t.target.value()] = true;
        queue.push_back(t.target);
      }
    }
  }
  return order;
}

std::size_t TransitionSystem::num_reachable_states() const {
  return reachable_states().size();
}

std::string TransitionSystem::to_string() const {
  std::ostringstream os;
  os << "TS: " << num_states() << " states, " << num_events() << " events, "
     << num_transitions() << " transitions\n";
  for (std::size_t s = 0; s < num_states(); ++s) {
    os << "  s" << s;
    if (!state_names_[s].empty()) os << " (" << state_names_[s] << ")";
    if (initial_.valid() && initial_.value() == s) os << " [initial]";
    os << ":\n";
    for (const Transition& t : out_[s]) {
      os << "    --" << events_[t.event.value()].label << "--> s"
         << t.target.value() << "\n";
    }
  }
  return os.str();
}

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kInput:
      return "input";
    case EventKind::kOutput:
      return "output";
    case EventKind::kInternal:
      return "internal";
  }
  return "?";
}

std::string transition_label(const std::string& signal, bool rising) {
  return signal + (rising ? "+" : "-");
}

bool parse_transition_label(const std::string& label, std::string* signal,
                            bool* rising) {
  if (label.empty()) return false;
  const char last = label.back();
  if (last != '+' && last != '-') return false;
  *signal = label.substr(0, label.size() - 1);
  *rising = (last == '+');
  return true;
}

}  // namespace rtv
