#include "rtv/ts/compose.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "rtv/base/log.hpp"

namespace rtv {

namespace {

struct TupleHash {
  std::size_t operator()(const std::vector<StateId>& v) const noexcept {
    std::size_t h = v.size();
    for (StateId s : v)
      h ^= std::hash<StateId>()(s) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }
};

}  // namespace

std::string Composition::describe_state(StateId s) const {
  std::ostringstream os;
  os << "(";
  const auto& tuple = component_states[s.value()];
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i) os << ", ";
    os << module_names[i] << ":" << tuple[i].value();
  }
  os << ")";
  return os.str();
}

Composition compose(const std::vector<const Module*>& modules,
                    const ComposeOptions& options) {
  assert(!modules.empty());
  Composition out;
  for (const Module* m : modules) out.module_names.push_back(m->name());

  // ---- build the composed alphabet --------------------------------------
  // label -> (per-module local EventId or invalid)
  std::vector<std::string> labels;
  for (const Module* m : modules)
    for (const std::string& l : m->alphabet()) labels.push_back(l);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());

  const std::size_t n_mod = modules.size();
  std::vector<std::vector<EventId>> local_event(labels.size(),
                                                std::vector<EventId>(n_mod));
  std::vector<EventId> composed_event(labels.size());
  for (std::size_t li = 0; li < labels.size(); ++li) {
    DelayInterval delay = DelayInterval::unbounded();
    EventKind kind = EventKind::kInternal;
    bool any_output = false, any_input = false;
    for (std::size_t mi = 0; mi < n_mod; ++mi) {
      const EventId le = modules[mi]->ts().event_by_label(labels[li]);
      local_event[li][mi] = le;
      if (!le.valid()) continue;
      const Event& ev = modules[mi]->ts().event(le);
      delay = delay.intersect(ev.delay);
      if (ev.kind == EventKind::kOutput) any_output = true;
      if (ev.kind == EventKind::kInput) any_input = true;
    }
    if (any_output) {
      kind = EventKind::kOutput;
    } else if (any_input) {
      kind = EventKind::kInput;
    }
    composed_event[li] = out.ts.add_event(labels[li], delay, kind);
  }

  // ---- merged signal table -----------------------------------------------
  std::vector<std::string> signals;
  for (const Module* m : modules)
    for (const std::string& s : m->ts().signal_names()) signals.push_back(s);
  std::sort(signals.begin(), signals.end());
  signals.erase(std::unique(signals.begin(), signals.end()), signals.end());
  const bool with_valuations = !signals.empty();
  // per module: signal index in module -> signal index in composition
  std::vector<std::vector<std::size_t>> sig_map(n_mod);
  for (std::size_t mi = 0; mi < n_mod; ++mi) {
    const auto& names = modules[mi]->ts().signal_names();
    sig_map[mi].resize(names.size());
    for (std::size_t k = 0; k < names.size(); ++k) {
      sig_map[mi][k] = static_cast<std::size_t>(
          std::lower_bound(signals.begin(), signals.end(), names[k]) -
          signals.begin());
    }
  }
  if (with_valuations) out.ts.set_signal_names(signals);

  auto merged_valuation = [&](const std::vector<StateId>& tuple) {
    BitVec v(signals.size());
    for (std::size_t mi = 0; mi < n_mod; ++mi) {
      const TransitionSystem& mts = modules[mi]->ts();
      if (!mts.has_valuations()) continue;
      const BitVec& lv = mts.valuation(tuple[mi]);
      for (std::size_t k = 0; k < sig_map[mi].size(); ++k) {
        if (lv.test(k)) v.set(sig_map[mi][k]);
      }
    }
    return v;
  };

  // ---- reachable product exploration -------------------------------------
  std::unordered_map<std::vector<StateId>, StateId, TupleHash> index;
  std::deque<StateId> queue;

  auto intern = [&](const std::vector<StateId>& tuple) {
    auto it = index.find(tuple);
    if (it != index.end()) return it->second;
    const StateId s = out.ts.add_state();
    if (with_valuations) out.ts.set_state_valuation(s, merged_valuation(tuple));
    out.component_states.push_back(tuple);
    index.emplace(tuple, s);
    queue.push_back(s);
    return s;
  };

  std::vector<StateId> init_tuple;
  for (const Module* m : modules) {
    assert(m->ts().initial().valid());
    init_tuple.push_back(m->ts().initial());
  }
  out.ts.set_initial(intern(init_tuple));

  while (!queue.empty()) {
    if (out.ts.num_states() > options.max_states) {
      out.truncated = true;
      RTV_WARN << "composition truncated at " << out.ts.num_states() << " states";
      break;
    }
    if (options.stop) {
      if (const char* reason = options.stop(out.ts.num_states())) {
        out.truncated = true;
        out.truncated_reason = reason;
        RTV_WARN << "composition stopped: " << reason;
        break;
      }
    }
    const StateId s = queue.front();
    queue.pop_front();
    const std::vector<StateId> tuple = out.component_states[s.value()];

    for (std::size_t li = 0; li < labels.size(); ++li) {
      bool all_ready = true;
      bool producer_ready = false;
      std::size_t producer = n_mod, blocker = n_mod;
      std::vector<StateId> next = tuple;
      for (std::size_t mi = 0; mi < n_mod; ++mi) {
        const EventId le = local_event[li][mi];
        if (!le.valid()) continue;  // module does not participate
        const auto succ = modules[mi]->ts().successor(tuple[mi], le);
        if (succ) {
          next[mi] = *succ;
          if (modules[mi]->ts().event(le).kind == EventKind::kOutput) {
            producer_ready = true;
            producer = mi;
          }
        } else {
          all_ready = false;
          if (blocker == n_mod) blocker = mi;
        }
      }
      if (all_ready && producer == n_mod) {
        // Purely-input label: fires only if some module owns it as output
        // elsewhere; a label that nobody produces is driven by the implicit
        // environment, so it still fires (open-system semantics).
        producer_ready = true;
      }
      if (all_ready) {
        out.ts.add_transition(s, composed_event[li], intern(next));
      } else if (options.track_chokes && producer_ready) {
        out.chokes.push_back(ChokeRecord{s, composed_event[li], producer, blocker});
      }
    }
  }

  return out;
}

}  // namespace rtv
