#include "rtv/ts/compose.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "rtv/base/hash.hpp"
#include "rtv/base/log.hpp"
#include "rtv/base/parallel.hpp"
#include "rtv/ts/delay_bounds.hpp"

namespace rtv {

namespace {

struct TupleHash {
  std::size_t operator()(const std::vector<StateId>& v) const noexcept {
    std::size_t h = v.size();
    for (StateId s : v) h = hash_mix(h, std::hash<StateId>()(s));
    return h;
  }
};

/// One product transition discovered during a layer's expansion.  Targets
/// already interned before the layer started carry `known`; fresh tuples
/// carry the tuple plus its pre-merged valuation so the sequential merge
/// only pays for the hash-map insert.
struct PendingEdge {
  std::uint32_t src = 0;    ///< index into the current frontier
  std::uint32_t label = 0;  ///< composed label index
  StateId known = StateId::invalid();
  std::vector<StateId> tuple;
  BitVec valuation;
};

/// Per-chunk expansion output; merged in chunk-ordinal order, which equals
/// (frontier order, label order) — exactly the sequential exploration
/// order, so the composed system is bit-identical for every job count.
struct ChunkOut {
  std::vector<PendingEdge> edges;
  std::vector<ChokeRecord> chokes;
};

}  // namespace

std::string Composition::describe_state(StateId s) const {
  std::ostringstream os;
  os << "(";
  const auto& tuple = component_states[s.value()];
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i) os << ", ";
    os << module_names[i] << ":" << tuple[i].value();
  }
  os << ")";
  return os.str();
}

Composition compose(const std::vector<const Module*>& modules,
                    const ComposeOptions& options) {
  assert(!modules.empty());
  Composition out;
  for (const Module* m : modules) out.module_names.push_back(m->name());

  // ---- build the composed alphabet --------------------------------------
  // label -> (per-module local EventId or invalid)
  std::vector<std::string> labels;
  for (const Module* m : modules)
    for (const std::string& l : m->alphabet()) labels.push_back(l);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());

  const std::size_t n_mod = modules.size();
  std::vector<std::vector<EventId>> local_event(labels.size(),
                                                std::vector<EventId>(n_mod));
  std::vector<EventId> composed_event(labels.size());
  for (std::size_t li = 0; li < labels.size(); ++li) {
    DelayInterval delay = DelayInterval::unbounded();
    EventKind kind = EventKind::kInternal;
    bool any_output = false, any_input = false;
    for (std::size_t mi = 0; mi < n_mod; ++mi) {
      const EventId le = modules[mi]->ts().event_by_label(labels[li]);
      local_event[li][mi] = le;
      if (!le.valid()) continue;
      const Event& ev = modules[mi]->ts().event(le);
      delay = delay.intersect(ev.delay);
      if (ev.kind == EventKind::kOutput) any_output = true;
      if (ev.kind == EventKind::kInput) any_input = true;
    }
    if (!delay.valid()) {
      // An empty intersection would leave the event forever unfireable —
      // a modelling contradiction, not a composable system.  Fail loudly
      // with every participant's bounds instead of exploring a system
      // whose semantics nobody intended.  The message is built by the
      // same formatter the lint analyzer uses (RTV-L004), so the two can
      // never drift.
      DelayContradiction c;
      c.label = labels[li];
      for (std::size_t mi = 0; mi < n_mod; ++mi) {
        const EventId le = local_event[li][mi];
        if (!le.valid()) continue;
        c.participants.emplace_back(modules[mi]->name(),
                                    modules[mi]->ts().event(le).delay);
      }
      throw std::invalid_argument(describe_delay_contradiction(c));
    }
    if (any_output) {
      kind = EventKind::kOutput;
    } else if (any_input) {
      kind = EventKind::kInput;
    }
    composed_event[li] = out.ts.add_event(labels[li], delay, kind);
  }

  // ---- merged signal table -----------------------------------------------
  std::vector<std::string> signals;
  for (const Module* m : modules)
    for (const std::string& s : m->ts().signal_names()) signals.push_back(s);
  std::sort(signals.begin(), signals.end());
  signals.erase(std::unique(signals.begin(), signals.end()), signals.end());
  const bool with_valuations = !signals.empty();
  // per module: signal index in module -> signal index in composition
  std::vector<std::vector<std::size_t>> sig_map(n_mod);
  for (std::size_t mi = 0; mi < n_mod; ++mi) {
    const auto& names = modules[mi]->ts().signal_names();
    sig_map[mi].resize(names.size());
    for (std::size_t k = 0; k < names.size(); ++k) {
      sig_map[mi][k] = static_cast<std::size_t>(
          std::lower_bound(signals.begin(), signals.end(), names[k]) -
          signals.begin());
    }
  }
  if (with_valuations) out.ts.set_signal_names(signals);

  auto merged_valuation = [&](const std::vector<StateId>& tuple) {
    BitVec v(signals.size());
    for (std::size_t mi = 0; mi < n_mod; ++mi) {
      const TransitionSystem& mts = modules[mi]->ts();
      if (!mts.has_valuations()) continue;
      const BitVec& lv = mts.valuation(tuple[mi]);
      for (std::size_t k = 0; k < sig_map[mi].size(); ++k) {
        if (lv.test(k)) v.set(sig_map[mi][k]);
      }
    }
    return v;
  };

  // ---- reachable product exploration -------------------------------------
  //
  // Layer-synchronous parallel BFS (rtv/base/parallel.hpp): workers expand
  // disjoint chunks of the current frontier into per-chunk buckets (probing
  // the interning map read-only — it is written only between layers), then
  // the merge phase interns fresh tuples and appends transitions/chokes in
  // chunk order.  That order equals the sequential (frontier, label) order,
  // so the composition is identical for every job count.
  std::unordered_map<std::vector<StateId>, StateId, TupleHash> index;
  std::vector<StateId> frontier, next_frontier;
  bool truncated_budget = false;

  auto intern = [&](std::vector<StateId>&& tuple,
                    BitVec&& valuation) -> std::optional<StateId> {
    const auto it = index.find(tuple);
    if (it != index.end()) return it->second;
    if (out.ts.num_states() >= options.max_states) {
      truncated_budget = true;
      return std::nullopt;
    }
    const StateId s = out.ts.add_state();
    if (with_valuations) out.ts.set_state_valuation(s, std::move(valuation));
    out.component_states.push_back(tuple);
    index.emplace(std::move(tuple), s);
    next_frontier.push_back(s);
    return s;
  };

  {
    std::vector<StateId> init_tuple;
    for (const Module* m : modules) {
      assert(m->ts().initial().valid());
      init_tuple.push_back(m->ts().initial());
    }
    // The initial state bypasses the cap: a composition without its initial
    // state is meaningless.  A zero budget still yields it, truncated.
    const StateId s0 = out.ts.add_state();
    if (with_valuations)
      out.ts.set_state_valuation(s0, merged_valuation(init_tuple));
    out.component_states.push_back(init_tuple);
    index.emplace(std::move(init_tuple), s0);
    out.ts.set_initial(s0);
    next_frontier.push_back(s0);
    if (out.ts.num_states() > options.max_states) truncated_budget = true;
  }

  const std::size_t jobs = resolve_jobs(options.jobs);
  LayeredRunner runner(jobs);
  WorkStealingRanges ranges;
  std::vector<ChunkOut> buckets;
  // Cooperative stop, set by worker 0 from the caller's stop hook (which is
  // not thread-safe; only worker 0 ever polls it).
  std::atomic<const char*> stop_flag{nullptr};

  const auto process = [&](std::size_t worker) {
    while (const auto chunk = ranges.next(worker)) {
      if (stop_flag.load(std::memory_order_relaxed)) return;
      ChunkOut& bucket = buckets[chunk->ordinal];
      for (std::size_t i = chunk->begin; i != chunk->end; ++i) {
        if (worker == 0 && options.stop) {
          if (const char* reason = options.stop(out.ts.num_states())) {
            stop_flag.store(reason, std::memory_order_relaxed);
            return;
          }
        }
        const StateId s = frontier[i];
        const std::vector<StateId>& tuple = out.component_states[s.value()];
        for (std::size_t li = 0; li < labels.size(); ++li) {
          bool all_ready = true;
          bool producer_ready = false;
          std::size_t producer = n_mod, blocker = n_mod;
          std::vector<StateId> next = tuple;
          for (std::size_t mi = 0; mi < n_mod; ++mi) {
            const EventId le = local_event[li][mi];
            if (!le.valid()) continue;  // module does not participate
            const auto succ = modules[mi]->ts().successor(tuple[mi], le);
            if (succ) {
              next[mi] = *succ;
              if (modules[mi]->ts().event(le).kind == EventKind::kOutput) {
                producer_ready = true;
                producer = mi;
              }
            } else {
              all_ready = false;
              if (blocker == n_mod) blocker = mi;
            }
          }
          if (all_ready && producer == n_mod) {
            // Purely-input label: fires only if some module owns it as
            // output elsewhere; a label that nobody produces is driven by
            // the implicit environment, so it still fires (open-system
            // semantics).
            producer_ready = true;
          }
          if (all_ready) {
            PendingEdge edge;
            edge.src = static_cast<std::uint32_t>(i);
            edge.label = static_cast<std::uint32_t>(li);
            const auto it = index.find(next);
            if (it != index.end()) {
              edge.known = it->second;
            } else {
              if (with_valuations) edge.valuation = merged_valuation(next);
              edge.tuple = std::move(next);
            }
            bucket.edges.push_back(std::move(edge));
          } else if (options.track_chokes && producer_ready) {
            bucket.chokes.push_back(
                ChokeRecord{s, composed_event[li], producer, blocker});
          }
        }
      }
    }
  };

  const auto merge = [&]() -> bool {
    if (const char* reason = stop_flag.load(std::memory_order_relaxed)) {
      out.truncated = true;
      out.truncated_reason = reason;
      RTV_WARN << "composition stopped: " << reason;
      return false;
    }
    for (ChunkOut& bucket : buckets) {
      for (PendingEdge& edge : bucket.edges) {
        StateId target = edge.known;
        if (!target.valid()) {
          const auto interned =
              intern(std::move(edge.tuple), std::move(edge.valuation));
          if (!interned) break;  // budget ceiling: stop adding outright
          target = *interned;
        }
        out.ts.add_transition(frontier[edge.src], composed_event[edge.label],
                              target);
      }
      if (truncated_budget) break;
      out.chokes.insert(out.chokes.end(), bucket.chokes.begin(),
                        bucket.chokes.end());
    }
    if (truncated_budget) {
      out.truncated = true;
      RTV_WARN << "composition truncated at " << out.ts.num_states()
               << " states";
      return false;
    }
    frontier = std::move(next_frontier);
    next_frontier.clear();
    if (frontier.empty()) return false;
    ranges.reset(frontier.size(), frontier_chunk_size(frontier.size(), jobs),
                 jobs);
    buckets.clear();
    buckets.resize(ranges.num_chunks());
    return true;
  };

  // The first merge() call publishes the initial frontier (or reports the
  // degenerate zero-budget truncation) before any expansion work runs.
  {
    obs::Span span("compose", "rtv");
    if (merge()) runner.run(process, merge);
  }

  if (obs::metrics_enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("rtv_parallel_steal_attempts_total", "",
                "Entries into the work-stealing path")
        .add(ranges.steal_attempts());
    reg.counter("rtv_parallel_steals_total", "",
                "Successful chunk-range steals")
        .add(ranges.steals());
    reg.counter("rtv_compose_states_total", "",
                "Composed product states across runs")
        .add(out.ts.num_states());
  }

  return out;
}

}  // namespace rtv
