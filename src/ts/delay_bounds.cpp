#include "rtv/ts/delay_bounds.hpp"

#include <algorithm>
#include <sstream>

namespace rtv {

std::vector<DelayContradiction> find_delay_contradictions(
    const std::vector<const Module*>& modules) {
  std::vector<std::string> labels;
  for (const Module* m : modules)
    for (const std::string& l : m->alphabet()) labels.push_back(l);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());

  std::vector<DelayContradiction> out;
  for (const std::string& label : labels) {
    DelayInterval delay = DelayInterval::unbounded();
    DelayContradiction c;
    c.label = label;
    for (const Module* m : modules) {
      const EventId e = m->ts().event_by_label(label);
      if (!e.valid()) continue;
      const DelayInterval d = m->ts().event(e).delay;
      delay = delay.intersect(d);
      c.participants.emplace_back(m->name(), d);
    }
    if (!delay.valid()) out.push_back(std::move(c));
  }
  return out;
}

std::string describe_delay_contradiction(const DelayContradiction& c) {
  std::ostringstream os;
  os << "compose: contradictory delay bounds for label '" << c.label << "':";
  for (const auto& [name, delay] : c.participants)
    os << " " << name << " declares " << delay.to_string();
  os << " (empty intersection)";
  return os.str();
}

}  // namespace rtv
