#include "rtv/circuit/netlist.hpp"

#include <cassert>

namespace rtv {

NodeId Netlist::add_node(std::string name, bool initial_value, bool input,
                         bool boundary) {
  names_.push_back(std::move(name));
  initial_.push_back(initial_value);
  input_.push_back(input);
  boundary_.push_back(boundary);
  return NodeId(static_cast<NodeId::underlying_type>(names_.size() - 1));
}

void Netlist::add_stack(Stack stack) {
  assert(stack.target.valid());
  assert(stack.type != StackType::kPass || stack.source.valid());
  stacks_.push_back(std::move(stack));
}

void Netlist::pull_up(NodeId target, Expr guard, DelayInterval delay,
                      int transistors, bool weak) {
  Stack s;
  s.type = StackType::kPullUp;
  s.target = target;
  s.guard = guard;
  s.delay = delay;
  s.transistors = transistors;
  s.weak = weak;
  add_stack(std::move(s));
}

void Netlist::pull_down(NodeId target, Expr guard, DelayInterval delay,
                        int transistors, bool weak) {
  Stack s;
  s.type = StackType::kPullDown;
  s.target = target;
  s.guard = guard;
  s.delay = delay;
  s.transistors = transistors;
  s.weak = weak;
  add_stack(std::move(s));
}

void Netlist::pass(NodeId target, NodeId source, Expr gate, DelayInterval delay,
                   int transistors) {
  Stack s;
  s.type = StackType::kPass;
  s.target = target;
  s.source = source;
  s.guard = gate;
  s.delay = delay;
  s.transistors = transistors;
  add_stack(std::move(s));
}

NodeId Netlist::node_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name)
      return NodeId(static_cast<NodeId::underlying_type>(i));
  return NodeId::invalid();
}

std::vector<const Stack*> Netlist::stacks_of(NodeId n) const {
  std::vector<const Stack*> out;
  for (const Stack& s : stacks_)
    if (s.target == n) out.push_back(&s);
  return out;
}

int Netlist::transistor_count() const {
  int total = 0;
  for (const Stack& s : stacks_) total += s.transistors;
  return total;
}

std::vector<NodeId> Netlist::short_circuit_candidates() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const NodeId n(static_cast<NodeId::underlying_type>(i));
    bool up = false, down = false;
    for (const Stack* s : stacks_of(n)) {
      if (s->type == StackType::kPullUp) up = true;
      if (s->type == StackType::kPullDown) down = true;
      if (s->type == StackType::kPass) up = down = true;  // either direction
    }
    if (up && down) out.push_back(n);
  }
  return out;
}

}  // namespace rtv
