#include "rtv/circuit/invariants.hpp"

namespace rtv {

std::vector<std::unique_ptr<SafetyProperty>> short_circuit_properties(
    const Netlist& netlist) {
  std::vector<std::unique_ptr<SafetyProperty>> out;
  for (NodeId n : netlist.short_circuit_candidates()) {
    const std::string name = netlist.node_name(n);
    out.push_back(std::make_unique<InvariantProperty>(
        "short-circuit at " + name,
        std::vector<InvariantProperty::Literal>{{"SC_" + name, true}}));
  }
  return out;
}

std::unique_ptr<SafetyProperty> persistency_property(
    std::vector<std::string> exempt_labels) {
  return std::make_unique<PersistencyProperty>(std::move(exempt_labels));
}

}  // namespace rtv
