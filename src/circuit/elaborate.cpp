#include "rtv/circuit/elaborate.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace rtv {

namespace {

struct Drive {
  bool strong_up = false, weak_up = false;
  bool strong_down = false, weak_down = false;

  bool up() const { return strong_up || (weak_up && !strong_down); }
  bool down() const { return strong_down || (weak_down && !strong_up); }
  bool contested() const { return strong_up && strong_down; }
};

}  // namespace

Module elaborate(const Netlist& netlist, const CircuitElaborateOptions& options) {
  const std::size_t n_nodes = netlist.num_nodes();
  const std::vector<NodeId> sc_nodes = netlist.short_circuit_candidates();

  TransitionSystem ts;
  std::vector<std::string> signals;
  for (std::size_t i = 0; i < n_nodes; ++i)
    signals.push_back(netlist.node_name(NodeId(static_cast<NodeId::underlying_type>(i))));
  for (NodeId n : sc_nodes) signals.push_back("SC_" + netlist.node_name(n));
  ts.set_signal_names(signals);

  // Rise/fall events per node.  Delays are the union of the delays of the
  // stacks able to drive that direction (exact when one stack per
  // direction, which is the common case in the IPCMOS netlists).
  std::vector<EventId> rise(n_nodes), fall(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const NodeId n(static_cast<NodeId::underlying_type>(i));
    const std::string& name = netlist.node_name(n);
    const EventKind kind = netlist.is_input(n)
                               ? EventKind::kInput
                               : (netlist.is_boundary(n) ? EventKind::kOutput
                                                         : EventKind::kInternal);
    DelayInterval up_delay = DelayInterval::unbounded();
    DelayInterval down_delay = DelayInterval::unbounded();
    if (!netlist.is_input(n)) {
      Time up_lo = kTimeInfinity, up_hi = 0, down_lo = kTimeInfinity, down_hi = 0;
      for (const Stack* s : netlist.stacks_of(n)) {
        const bool can_up = s->type != StackType::kPullDown;
        const bool can_down = s->type != StackType::kPullUp;
        if (can_up) {
          up_lo = std::min(up_lo, s->delay.lo());
          up_hi = std::max(up_hi, s->delay.hi());
        }
        if (can_down) {
          down_lo = std::min(down_lo, s->delay.lo());
          down_hi = std::max(down_hi, s->delay.hi());
        }
      }
      if (up_lo <= up_hi) up_delay = DelayInterval(up_lo, up_hi);
      if (down_lo <= down_hi) down_delay = DelayInterval(down_lo, down_hi);
    }
    rise[i] = ts.add_event(transition_label(name, true), up_delay, kind);
    fall[i] = ts.add_event(transition_label(name, false), down_delay, kind);
  }

  auto drives = [&](const BitVec& v) {
    std::vector<Drive> d(n_nodes);
    for (const Stack& s : netlist.stacks()) {
      if (!netlist.exprs().eval(s.guard, v)) continue;
      Drive& t = d[s.target.value()];
      bool up = false, down = false;
      switch (s.type) {
        case StackType::kPullUp:
          up = true;
          break;
        case StackType::kPullDown:
          down = true;
          break;
        case StackType::kPass:
          (v.test(s.source.value()) ? up : down) = true;
          break;
      }
      if (up) (s.weak ? t.weak_up : t.strong_up) = true;
      if (down) (s.weak ? t.weak_down : t.strong_down) = true;
    }
    return d;
  };

  auto valuation_with_flags = [&](const BitVec& v, const std::vector<Drive>& d) {
    BitVec full(signals.size());
    for (std::size_t i = 0; i < n_nodes; ++i)
      if (v.test(i)) full.set(i);
    for (std::size_t k = 0; k < sc_nodes.size(); ++k)
      if (d[sc_nodes[k].value()].contested()) full.set(n_nodes + k);
    return full;
  };

  std::unordered_map<BitVec, StateId> index;
  std::deque<BitVec> queue;

  auto intern = [&](const BitVec& v) {
    auto it = index.find(v);
    if (it != index.end()) return it->second;
    const StateId s = ts.add_state();
    ts.set_state_valuation(s, valuation_with_flags(v, drives(v)));
    index.emplace(v, s);
    queue.push_back(v);
    return s;
  };

  BitVec init(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i)
    if (netlist.initial_value(NodeId(static_cast<NodeId::underlying_type>(i))))
      init.set(i);
  ts.set_initial(intern(init));

  while (!queue.empty()) {
    if (index.size() > options.max_states)
      throw std::runtime_error("circuit '" + netlist.name() +
                               "': state budget exhausted");
    const BitVec v = queue.front();
    queue.pop_front();
    const StateId from = index.at(v);
    const std::vector<Drive> d = drives(v);

    for (std::size_t i = 0; i < n_nodes; ++i) {
      const NodeId n(static_cast<NodeId::underlying_type>(i));
      const bool value = v.test(i);
      bool can_rise, can_fall;
      if (netlist.is_input(n)) {
        can_rise = !value;
        can_fall = value;
      } else {
        can_rise = !value && d[i].up() && !d[i].down();
        can_fall = value && d[i].down() && !d[i].up();
      }
      if (can_rise) {
        BitVec next = v;
        next.set(i);
        ts.add_transition(from, rise[i], intern(next));
      }
      if (can_fall) {
        BitVec next = v;
        next.reset(i);
        ts.add_transition(from, fall[i], intern(next));
      }
    }
  }

  return Module(netlist.name(), std::move(ts));
}

}  // namespace rtv
