#include "rtv/serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "rtv/base/parallel.hpp"
#include "rtv/lint/lint.hpp"
#include "rtv/obs/metrics.hpp"
#include "rtv/obs/trace.hpp"
#include "rtv/verify/engine.hpp"

namespace rtv::serve {

namespace {

/// Write the whole buffer, riding out partial writes; MSG_NOSIGNAL keeps a
/// client that hung up from killing the daemon with SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR)) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Impl
// ---------------------------------------------------------------------------

struct Server::Impl {
  /// One pending computation, keyed by its content hash; every client
  /// asking the same question holds the same Job and waits on its cv.
  struct Job {
    CacheKey key;
    WireObligation ob;  ///< modules are moved out when the batch builds
    SuiteMode mode = SuiteMode::kBatch;
    std::vector<std::string> engines;  ///< resolved selection
    std::size_t max_states = 0;
    double max_seconds = 0.0;
    std::size_t max_refinements = 500;

    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    std::string error;
    CachedOutcome outcome;
  };

  explicit Impl(ServerOptions opts)
      : options(std::move(opts)), cache(options.max_cache_entries) {
    if (options.socket_path.empty())
      throw std::runtime_error("rtv serve: socket path is required");
    if (!options.cache_path.empty()) {
      // A missing file is a cold start; anything unreadable or
      // version-skewed refuses loudly — a stale cache must never be
      // half-trusted.
      std::ifstream probe(options.cache_path);
      if (probe) {
        probe.close();
        cache.load(options.cache_path);
        log_line("loaded " + std::to_string(cache.size()) +
                 " cached verdict(s) from " + options.cache_path);
      }
    }
    bind_and_listen();
  }

  ~Impl() { stop(); }

  void log_line(const std::string& line) {
    if (options.log) options.log(line);
  }

  void bind_and_listen() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.socket_path.size() >= sizeof(addr.sun_path))
      throw std::runtime_error("rtv serve: socket path too long: " +
                               options.socket_path);
    std::memcpy(addr.sun_path, options.socket_path.c_str(),
                options.socket_path.size() + 1);

    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0)
      throw std::runtime_error("rtv serve: socket() failed: " +
                               std::string(std::strerror(errno)));
    ::unlink(options.socket_path.c_str());
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const int err = errno;
      ::close(listen_fd);
      listen_fd = -1;
      throw std::runtime_error("rtv serve: cannot bind " +
                               options.socket_path + ": " +
                               std::strerror(err));
    }
    if (::listen(listen_fd, 64) < 0) {
      const int err = errno;
      ::close(listen_fd);
      listen_fd = -1;
      throw std::runtime_error("rtv serve: listen() failed: " +
                               std::string(std::strerror(err)));
    }
  }

  // ---- lifecycle ----------------------------------------------------------

  void start() {
    started = true;
    start_time = std::chrono::steady_clock::now();
    scheduler = std::thread([this] {
      if (obs::tracing_active()) obs::set_thread_name("serve scheduler");
      scheduler_loop();
    });
    acceptor = std::thread([this] { accept_loop(); });
    if (options.heartbeat_seconds > 0.0)
      heartbeat = std::thread([this] { heartbeat_loop(); });
    log_line("listening on " + options.socket_path);
  }

  /// One structured line per period: "heartbeat {<stats counters>}", so an
  /// operator tailing the daemon log sees liveness and the cache ratio
  /// drifting without having to poll the stats op.
  void heartbeat_loop() {
    std::unique_lock<std::mutex> lock(shutdown_mutex);
    for (;;) {
      shutdown_cv.wait_for(
          lock,
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::duration<double>(options.heartbeat_seconds)),
          [this] { return stopping.load(std::memory_order_relaxed); });
      if (stopping.load(std::memory_order_relaxed)) return;
      std::string line = "heartbeat ";
      stats_to_json(line, stats());
      lock.unlock();
      log_line(line);
      lock.lock();
    }
  }

  void stop() {
    bool expected = false;
    if (!stopping.compare_exchange_strong(expected, true)) {
      join_all();
      return;
    }
    // Abort any batch inside run_suite, then wake the scheduler so it
    // fails the still-queued jobs and exits.
    cancel.cancel();
    {
      std::lock_guard<std::mutex> lock(dispatch_mutex);
      scheduler_cv.notify_all();
    }
    {
      // `stopping` is already visible; passing through the mutex means any
      // heartbeat waiter either sees it before sleeping or gets the notify.
      std::lock_guard<std::mutex> lock(shutdown_mutex);
    }
    shutdown_cv.notify_all();
    join_all();
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
      ::unlink(options.socket_path.c_str());
    }
    if (!options.cache_path.empty()) save_cache();
    request_shutdown();  // release any wait_for() caller
  }

  void join_all() {
    if (heartbeat.joinable()) heartbeat.join();
    if (scheduler.joinable()) scheduler.join();
    // Unblock connection threads stuck in recv().
    {
      std::lock_guard<std::mutex> lock(conn_mutex);
      for (int fd : conn_fds) ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptor.joinable()) acceptor.join();
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(conn_mutex);
      threads.swap(conn_threads);
    }
    for (std::thread& t : threads)
      if (t.joinable()) t.join();
  }

  bool save_cache() {
    if (options.cache_path.empty()) return false;
    try {
      cache.save(options.cache_path);
      log_line("persisted " + std::to_string(cache.size()) +
               " cached verdict(s) to " + options.cache_path);
      return true;
    } catch (const std::exception& e) {
      log_line(std::string("cache save failed: ") + e.what());
      return false;
    }
  }

  void request_shutdown() {
    {
      std::lock_guard<std::mutex> lock(shutdown_mutex);
      shutdown_flag = true;
    }
    shutdown_cv.notify_all();
  }

  bool wait_for(double seconds) {
    std::unique_lock<std::mutex> lock(shutdown_mutex);
    shutdown_cv.wait_for(lock,
                         std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::duration<double>(seconds)),
                         [this] { return shutdown_flag; });
    return shutdown_flag;
  }

  // ---- connection layer ---------------------------------------------------

  void accept_loop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, 200);
      if (r < 0 && errno != EINTR) break;
      if (r <= 0 || !(pfd.revents & POLLIN)) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      std::lock_guard<std::mutex> lock(conn_mutex);
      if (stopping.load(std::memory_order_relaxed)) {
        ::close(fd);
        return;
      }
      conn_fds.insert(fd);
      conn_threads.emplace_back([this, fd] { connection_loop(fd); });
    }
  }

  void connection_loop(int fd) {
    std::string buf;
    char chunk[4096];
    while (!stopping.load(std::memory_order_relaxed)) {
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos;
      bool write_failed = false;
      while ((pos = buf.find('\n')) != std::string::npos) {
        std::string line = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        if (line.empty()) continue;
        std::string response = handle_line(line);
        response += '\n';
        if (!send_all(fd, response)) {
          write_failed = true;
          break;
        }
      }
      if (write_failed) break;
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(conn_mutex);
    conn_fds.erase(fd);
  }

  // ---- protocol -----------------------------------------------------------

  std::string handle_line(const std::string& line) {
    requests.fetch_add(1, std::memory_order_relaxed);
    m_requests.inc();
    obs::ScopedTimer timer(m_request_seconds);
    ServeResponse resp;
    try {
      ServeRequest req = ServeRequest::parse(line);
      switch (req.kind) {
        case RequestKind::kPing:
          resp.ok = true;
          break;
        case RequestKind::kStats:
          resp.ok = true;
          resp.has_stats = true;
          resp.stats = stats();
          if (obs::metrics_enabled())
            obs::append_json(resp.metrics_json, obs::snapshot());
          break;
        case RequestKind::kMetrics:
          resp.ok = true;
          resp.metrics_text = obs::to_prometheus(obs::snapshot());
          break;
        case RequestKind::kShutdown:
          // Persist immediately, acknowledge, and flag the owner; the
          // owning thread (CLI main / test) performs the actual stop() —
          // a connection thread cannot join itself.
          if (!options.cache_path.empty()) save_cache();
          resp.ok = true;
          request_shutdown();
          break;
        case RequestKind::kVerify:
          return handle_verify(std::move(req));
      }
    } catch (const std::exception& e) {
      errors.fetch_add(1, std::memory_order_relaxed);
      m_errors.inc();
      resp.ok = false;
      resp.error = e.what();
    }
    return resp.to_json();
  }

  /// Resolve the engine selection one obligation will actually run,
  /// mirroring run_suite's defaults; throws std::runtime_error on an
  /// unregistered name.
  std::vector<std::string> resolve_engines(const ServeRequest& req,
                                           const WireObligation& ob) {
    std::vector<std::string> names;
    if (req.mode == SuiteMode::kBatch && !ob.engine.empty())
      names = {ob.engine};
    else if (!req.engines.empty())
      names = req.engines;
    else if (req.mode == SuiteMode::kBatch)
      names = {"refine"};
    else
      names = engine_registry().names();
    for (const std::string& name : names)
      if (!engine_registry().find(name))
        throw std::runtime_error("unknown engine '" + name + "'");
    return names;
  }

  std::string handle_verify(ServeRequest req) {
    const auto t0 = std::chrono::steady_clock::now();

    /// Where each requested obligation's rows come from: the cache, an
    /// in-flight twin, or a job this request created.
    struct Pending {
      std::string name;
      bool cached = false;  ///< answered without computing for this request
      std::shared_ptr<Job> job;  ///< null when `outcome` is already final
      CachedOutcome outcome;
    };

    ServeResponse resp;
    std::vector<Pending> pending;
    try {
      if (req.obligations.empty())
        throw std::runtime_error("verify request carries no obligations");
      for (WireObligation& ob : req.obligations) {
        Pending p;
        p.name = ob.name;
        const std::vector<std::string> engines = resolve_engines(req, ob);
        const std::size_t eff_states =
            ob.max_states ? ob.max_states : req.max_states;
        const double eff_seconds =
            ob.max_seconds > 0.0 ? ob.max_seconds : req.max_seconds;
        const std::size_t eff_refinements =
            ob.max_refinements ? ob.max_refinements : req.max_refinements;
        const CacheKey key = obligation_cache_key(
            ob, req.mode, engines, eff_states, eff_seconds, eff_refinements);
        obligations.fetch_add(1, std::memory_order_relaxed);

        // Lint fast-reject: an obligation whose pre-flight has errors is
        // answered right here — no job, no scheduler wake-up, and the
        // verdict cache never sees the key (a broken model must not
        // displace computable entries).
        {
          std::vector<std::unique_ptr<SafetyProperty>> props;
          std::vector<const SafetyProperty*> prop_ptrs;
          for (const PropertySpec& spec : ob.properties) {
            props.push_back(spec.instantiate());
            prop_ptrs.push_back(props.back().get());
          }
          lint::LintOptions lo;
          lo.engines = engines;
          lo.max_states = eff_states;
          const lint::LintReport pre =
              lint::lint_modules(ob.module_ptrs(), prop_ptrs, lo);
          if (pre.has_errors()) {
            lint_rejected.fetch_add(1, std::memory_order_relaxed);
            m_lint_rejected.inc();
            for (const std::string& engine : engines) {
              CachedRecord r;
              r.engine = engine;
              r.verdict = Verdict::kInconclusive;
              r.stop_reason = stop_reason::kLintError;
              r.message = pre.diagnostics.front().format();
              p.outcome.records.push_back(std::move(r));
            }
            pending.push_back(std::move(p));
            continue;
          }
        }

        std::lock_guard<std::mutex> lock(dispatch_mutex);
        if (cache.get(key, &p.outcome)) {
          p.cached = true;
          cache_hits.fetch_add(1, std::memory_order_relaxed);
          m_cache_hits.inc();
        } else if (auto it = inflight.find(key); it != inflight.end()) {
          p.cached = true;  // someone else is already computing it
          p.job = it->second;
          deduped.fetch_add(1, std::memory_order_relaxed);
          m_deduped.inc();
        } else {
          auto job = std::make_shared<Job>();
          job->key = key;
          job->ob = std::move(ob);
          job->mode = req.mode;
          job->engines = engines;
          job->max_states = eff_states;
          job->max_seconds = eff_seconds;
          job->max_refinements = eff_refinements;
          inflight.emplace(key, job);
          queue.push_back(job);
          computed.fetch_add(1, std::memory_order_relaxed);
          m_computed.inc();
          scheduler_cv.notify_one();
          p.job = job;
        }
        pending.push_back(std::move(p));
      }

      // Collect (outside the dispatch lock): every job fulfils exactly
      // once, cancellation included.
      for (Pending& p : pending) {
        if (!p.job) continue;
        std::unique_lock<std::mutex> lock(p.job->m);
        p.job->cv.wait(lock, [&] { return p.job->done; });
        if (p.job->failed)
          throw std::runtime_error("obligation '" + p.name +
                                   "': " + p.job->error);
        p.outcome = p.job->outcome;
      }
    } catch (const std::exception& e) {
      errors.fetch_add(1, std::memory_order_relaxed);
      m_errors.inc();
      resp.ok = false;
      resp.error = e.what();
      return resp.to_json();
    }

    resp.ok = true;
    resp.has_report = true;
    resp.report.mode = req.mode;
    resp.report.jobs = resolve_jobs(options.jobs);
    for (const Pending& p : pending) {
      for (const CachedRecord& r : p.outcome.records) {
        SuiteRecord rec;
        rec.obligation = p.name;
        rec.engine = r.engine;
        rec.result.verdict = r.verdict;
        rec.result.message = r.message;
        rec.result.trace_labels = r.trace_labels;
        rec.result.states_explored = r.states_explored;
        rec.result.seconds = r.seconds;
        rec.result.truncated_reason = r.stop_reason;
        rec.cpu_seconds = r.cpu_seconds;
        rec.winner = r.winner;
        rec.cached = p.cached;
        resp.report.records.push_back(std::move(rec));
      }
    }
    resp.report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return resp.to_json();
  }

  // ---- compute layer ------------------------------------------------------

  void scheduler_loop() {
    for (;;) {
      std::vector<std::shared_ptr<Job>> batch;
      {
        std::unique_lock<std::mutex> lock(dispatch_mutex);
        scheduler_cv.wait(lock, [this] {
          return stopping.load(std::memory_order_relaxed) || !queue.empty();
        });
        if (stopping.load(std::memory_order_relaxed)) {
          // Fail whatever never ran so no client waits forever.
          for (const auto& job : queue) {
            inflight.erase(job->key);
            fail_job(job, "server stopping");
          }
          queue.clear();
          return;
        }
        // One run_suite call per group of adjacent jobs sharing
        // (mode, engine selection) — batching across clients amortizes the
        // pool spin-up and keeps one global jobs budget in charge.
        const std::shared_ptr<Job> head = queue.front();
        queue.pop_front();
        batch.push_back(head);
        for (auto it = queue.begin(); it != queue.end();) {
          if ((*it)->mode == head->mode && (*it)->engines == head->engines) {
            batch.push_back(*it);
            it = queue.erase(it);
          } else {
            ++it;
          }
        }
      }
      run_batch(batch);
    }
  }

  void run_batch(const std::vector<std::shared_ptr<Job>>& batch) {
    m_batch_size.observe(static_cast<double>(batch.size()));
    obs::Span span("batch:" + std::to_string(batch.size()) + " job(s)",
                   "serve");
    Suite suite;
    for (const auto& job : batch) {
      std::vector<const Module*> mods;
      for (Module& m : job->ob.modules) mods.push_back(suite.own(std::move(m)));
      std::vector<const SafetyProperty*> props;
      for (const PropertySpec& spec : job->ob.properties)
        props.push_back(suite.own(spec.instantiate()));
      Obligation& ob = suite.add(job->ob.name, std::move(mods), props);
      ob.budget.max_states = job->max_states;
      ob.budget.max_seconds = job->max_seconds;
      ob.max_refinements = job->max_refinements;
      ob.track_chokes = job->ob.track_chokes;
    }

    SuiteOptions opts;
    opts.mode = batch.front()->mode;
    opts.engines = batch.front()->engines;
    opts.jobs = options.jobs;
    opts.budget.cancel = &cancel;

    SuiteReport report;
    try {
      report = run_suite(suite, opts);
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(dispatch_mutex);
      for (const auto& job : batch) {
        inflight.erase(job->key);
        fail_job(job, e.what());
      }
      return;
    }

    // Slice the obligation-major records back onto their jobs: every
    // obligation produced exactly one record per selected engine.
    const std::size_t per_job = batch.front()->engines.size();
    std::size_t idx = 0;
    for (const auto& job : batch) {
      CachedOutcome outcome;
      for (std::size_t k = 0; k < per_job && idx < report.records.size();
           ++k, ++idx) {
        const SuiteRecord& rec = report.records[idx];
        CachedRecord r;
        r.engine = rec.engine;
        r.verdict = rec.result.verdict;
        r.stop_reason = rec.result.truncated_reason;
        r.message = rec.result.message;
        r.trace_labels = rec.result.trace_labels;
        r.states_explored = rec.result.states_explored;
        r.seconds = rec.result.seconds;
        r.cpu_seconds = rec.cpu_seconds;
        r.winner = rec.winner;
        outcome.records.push_back(std::move(r));
      }
      {
        std::lock_guard<std::mutex> lock(dispatch_mutex);
        if (cacheable(outcome)) cache.put(job->key, outcome);
        inflight.erase(job->key);
      }
      {
        std::lock_guard<std::mutex> lock(job->m);
        job->outcome = std::move(outcome);
        job->done = true;
      }
      job->cv.notify_all();
    }
  }

  static void fail_job(const std::shared_ptr<Job>& job,
                       const std::string& error) {
    {
      std::lock_guard<std::mutex> lock(job->m);
      job->failed = true;
      job->error = error;
      job->done = true;
    }
    job->cv.notify_all();
  }

  // ---- stats --------------------------------------------------------------

  ServeStats stats() const {
    ServeStats s;
    s.requests = requests.load(std::memory_order_relaxed);
    s.obligations = obligations.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits.load(std::memory_order_relaxed);
    s.deduped = deduped.load(std::memory_order_relaxed);
    s.computed = computed.load(std::memory_order_relaxed);
    s.lint_rejected = lint_rejected.load(std::memory_order_relaxed);
    s.errors = errors.load(std::memory_order_relaxed);
    s.cache_entries = cache.size();
    s.cache_evictions = cache.stats().evictions;
    s.jobs = resolve_jobs(options.jobs);
    if (started)
      s.uptime_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_time)
                             .count();
    return s;
  }

  // ---- state --------------------------------------------------------------

  ServerOptions options;
  VerdictCache cache;
  int listen_fd = -1;
  bool started = false;
  std::chrono::steady_clock::time_point start_time{};

  std::atomic<bool> stopping{false};
  CancelToken cancel;

  std::thread acceptor;
  std::thread scheduler;
  std::thread heartbeat;

  std::mutex conn_mutex;
  std::set<int> conn_fds;
  std::vector<std::thread> conn_threads;

  std::mutex dispatch_mutex;
  std::condition_variable scheduler_cv;
  std::deque<std::shared_ptr<Job>> queue;
  std::unordered_map<CacheKey, std::shared_ptr<Job>, CacheKeyHash> inflight;

  std::mutex shutdown_mutex;
  std::condition_variable shutdown_cv;
  bool shutdown_flag = false;

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> obligations{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> deduped{0};
  std::atomic<std::uint64_t> computed{0};
  std::atomic<std::uint64_t> lint_rejected{0};
  std::atomic<std::uint64_t> errors{0};

  // Registry mirrors of the wire-visible counters, registered eagerly so
  // the metrics op exposes zeroed series before the first request.  The
  // atomics above stay authoritative for the stats op (they survive a
  // Registry::reset()); these feed the Prometheus exposition.
  obs::Counter& m_requests = obs::Registry::global().counter(
      "rtv_serve_requests_total", "", "Protocol messages handled");
  obs::Counter& m_cache_hits = obs::Registry::global().counter(
      "rtv_serve_cache_hits_total", "",
      "Obligations answered straight from the verdict cache");
  obs::Counter& m_deduped = obs::Registry::global().counter(
      "rtv_serve_deduped_total",
      "", "Obligations attached to an in-flight twin computation");
  obs::Counter& m_computed = obs::Registry::global().counter(
      "rtv_serve_computed_total", "",
      "Obligations actually dispatched to run_suite");
  obs::Counter& m_lint_rejected = obs::Registry::global().counter(
      "rtv_serve_lint_rejected_total", "",
      "Obligations fast-rejected by the lint pre-flight");
  obs::Counter& m_errors = obs::Registry::global().counter(
      "rtv_serve_errors_total", "", "Requests answered ok:false");
  obs::Histogram& m_request_seconds = obs::Registry::global().histogram(
      "rtv_serve_request_seconds", obs::Histogram::time_buckets(), "",
      "Wire request handling latency (parse to serialized response)");
  obs::Histogram& m_batch_size = obs::Registry::global().histogram(
      "rtv_serve_batch_size", obs::Histogram::count_buckets(), "",
      "Jobs grouped into one scheduler batch");
};

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() {
  if (impl_) impl_->stop();
}

void Server::start() { impl_->start(); }
bool Server::wait_for(double seconds) { return impl_->wait_for(seconds); }

bool Server::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(impl_->shutdown_mutex);
  return impl_->shutdown_flag;
}

void Server::stop() { impl_->stop(); }
bool Server::save_cache() { return impl_->save_cache(); }

const std::string& Server::socket_path() const {
  return impl_->options.socket_path;
}

ServeStats Server::stats() const { return impl_->stats(); }
VerdictCache& Server::cache() { return impl_->cache; }

}  // namespace rtv::serve
