#include "rtv/serve/wire.hpp"

#include <stdexcept>
#include <utility>

#include "rtv/ts/transition_system.hpp"

namespace rtv::serve {

namespace {

using rtv::json::append_double;
using rtv::json::append_string;
using rtv::json::Value;
using Kind = Value::Kind;

constexpr std::string_view kRequestContext = "serve request JSON";
constexpr std::string_view kResponseContext = "serve response JSON";

// Unqualified require(...) resolves to rtv::json::require via ADL on Value.

std::size_t size_from(const Value& obj, std::string_view key,
                      const char* what, std::string_view context) {
  return static_cast<std::size_t>(
      require(obj, key, Kind::kNumber, what, context).number);
}

/// Strict schema envelope check shared by both message types; names both
/// versions on a mismatch so version skew is diagnosable from the error.
void check_envelope(const Value& root, const char* schema_name,
                    int schema_version, std::string_view context) {
  if (root.kind != Kind::kObject)
    throw std::runtime_error(std::string(context) + ": root is not an object");
  if (require(root, "schema", Kind::kString, "schema tag", context).string !=
      schema_name)
    throw std::runtime_error(std::string(context) + ": wrong schema tag");
  const int version = static_cast<int>(
      require(root, "schema_version", Kind::kNumber, "schema version", context)
          .number);
  if (version > schema_version)
    throw std::runtime_error(
        std::string(context) + ": schema version " + std::to_string(version) +
        " is newer than this library supports (max " +
        std::to_string(schema_version) + ")");
  if (version < 1)
    throw std::runtime_error(std::string(context) +
                             ": invalid schema version " +
                             std::to_string(version));
}

}  // namespace

// ---------------------------------------------------------------------------
// PropertySpec
// ---------------------------------------------------------------------------

const char* to_string(PropertySpec::Kind kind) {
  switch (kind) {
    case PropertySpec::Kind::kDeadlockFreedom:
      return "deadlock";
    case PropertySpec::Kind::kPersistency:
      return "persistency";
    case PropertySpec::Kind::kInvariant:
      return "invariant";
  }
  return "deadlock";
}

PropertySpec PropertySpec::deadlock() { return {}; }

PropertySpec PropertySpec::persistency(std::vector<std::string> exempt) {
  PropertySpec spec;
  spec.kind = Kind::kPersistency;
  spec.exempt = std::move(exempt);
  return spec;
}

PropertySpec PropertySpec::invariant(std::string name,
                                     std::vector<Literal> lits) {
  PropertySpec spec;
  spec.kind = Kind::kInvariant;
  spec.name = std::move(name);
  spec.literals = std::move(lits);
  return spec;
}

std::unique_ptr<SafetyProperty> PropertySpec::instantiate() const {
  switch (kind) {
    case Kind::kDeadlockFreedom:
      return std::make_unique<DeadlockFreedom>();
    case Kind::kPersistency:
      return std::make_unique<PersistencyProperty>(exempt);
    case Kind::kInvariant: {
      std::vector<InvariantProperty::Literal> lits;
      lits.reserve(literals.size());
      for (const Literal& l : literals) lits.push_back({l.signal, l.value});
      return std::make_unique<InvariantProperty>(name, std::move(lits));
    }
  }
  return std::make_unique<DeadlockFreedom>();
}

void property_to_json(std::string& out, const PropertySpec& spec) {
  out += "{\"kind\":";
  append_string(out, to_string(spec.kind));
  if (spec.kind == PropertySpec::Kind::kInvariant) {
    out += ",\"name\":";
    append_string(out, spec.name);
    out += ",\"literals\":[";
    for (std::size_t i = 0; i < spec.literals.size(); ++i) {
      if (i) out += ",";
      out += "{\"signal\":";
      append_string(out, spec.literals[i].signal);
      out += ",\"value\":";
      out += spec.literals[i].value ? "true" : "false";
      out += "}";
    }
    out += "]";
  }
  if (spec.kind == PropertySpec::Kind::kPersistency) {
    out += ",\"exempt\":[";
    for (std::size_t i = 0; i < spec.exempt.size(); ++i) {
      if (i) out += ",";
      append_string(out, spec.exempt[i]);
    }
    out += "]";
  }
  out += "}";
}

PropertySpec property_from_json(const Value& v) {
  constexpr std::string_view ctx = kRequestContext;
  if (v.kind != Kind::kObject)
    throw std::runtime_error("serve request JSON: property is not an object");
  const std::string& kind =
      require(v, "kind", Kind::kString, "property kind", ctx).string;
  if (kind == "deadlock") return PropertySpec::deadlock();
  if (kind == "persistency") {
    std::vector<std::string> exempt;
    if (const Value* e = v.find("exempt")) {
      if (e->kind != Kind::kArray)
        throw std::runtime_error(
            "serve request JSON: persistency exempt list is not an array");
      for (const Value& label : e->array) {
        if (label.kind != Kind::kString)
          throw std::runtime_error(
              "serve request JSON: exempt label is not a string");
        exempt.push_back(label.string);
      }
    }
    return PropertySpec::persistency(std::move(exempt));
  }
  if (kind == "invariant") {
    std::vector<PropertySpec::Literal> lits;
    for (const Value& lit :
         require(v, "literals", Kind::kArray, "invariant literals", ctx)
             .array) {
      if (lit.kind != Kind::kObject)
        throw std::runtime_error(
            "serve request JSON: invariant literal is not an object");
      PropertySpec::Literal out;
      out.signal =
          require(lit, "signal", Kind::kString, "literal signal", ctx).string;
      out.value =
          require(lit, "value", Kind::kBool, "literal value", ctx).boolean;
      lits.push_back(std::move(out));
    }
    return PropertySpec::invariant(
        require(v, "name", Kind::kString, "invariant name", ctx).string,
        std::move(lits));
  }
  throw std::runtime_error("serve request JSON: unknown property kind '" +
                           kind + "'");
}

// ---------------------------------------------------------------------------
// Module serialization
// ---------------------------------------------------------------------------

void module_to_json(std::string& out, const Module& m) {
  const TransitionSystem& ts = m.ts();
  out += "{\"name\":";
  append_string(out, m.name());
  out += ",\"initial\":";
  out += ts.initial().valid() ? std::to_string(ts.initial().value()) : "-1";
  out += ",\"signals\":[";
  for (std::size_t i = 0; i < ts.signal_names().size(); ++i) {
    if (i) out += ",";
    append_string(out, ts.signal_names()[i]);
  }
  out += "],\"events\":[";
  for (std::size_t e = 0; e < ts.num_events(); ++e) {
    const Event& ev = ts.event(EventId(static_cast<std::uint32_t>(e)));
    if (e) out += ",";
    out += "{\"label\":";
    append_string(out, ev.label);
    out += ",\"lo\":" + std::to_string(static_cast<long long>(ev.delay.lo()));
    // null = the unbounded upper delay; finite Time values survive the
    // double round-trip up to 2^53 ticks (documented in docs/SERVICE.md).
    out += ",\"hi\":";
    out += ev.delay.upper_bounded()
               ? std::to_string(static_cast<long long>(ev.delay.hi()))
               : std::string("null");
    out += ",\"kind\":";
    append_string(out, rtv::to_string(ev.kind));
    out += "}";
  }
  out += "],\"states\":[";
  for (std::size_t s = 0; s < ts.num_states(); ++s) {
    const StateId sid(static_cast<std::uint32_t>(s));
    if (s) out += ",";
    out += "{\"name\":";
    append_string(out, ts.state_name(sid));
    if (ts.has_valuations()) {
      out += ",\"valuation\":";
      append_string(out, ts.valuation(sid).to_string());
    }
    out += ",\"transitions\":[";
    bool first = true;
    for (const Transition& t : ts.transitions_from(sid)) {
      if (!first) out += ",";
      first = false;
      out += "[" + std::to_string(t.event.value()) + "," +
             std::to_string(t.target.value()) + "]";
    }
    out += "]}";
  }
  out += "]}";
}

Module module_from_json(const Value& v) {
  constexpr std::string_view ctx = kRequestContext;
  if (v.kind != Kind::kObject)
    throw std::runtime_error("serve request JSON: module is not an object");

  TransitionSystem ts;
  const std::string& name =
      require(v, "name", Kind::kString, "module name", ctx).string;

  std::vector<std::string> signals;
  for (const Value& s :
       require(v, "signals", Kind::kArray, "signal names", ctx).array) {
    if (s.kind != Kind::kString)
      throw std::runtime_error(
          "serve request JSON: signal name is not a string");
    signals.push_back(s.string);
  }
  if (!signals.empty()) ts.set_signal_names(signals);

  EventKind kind_table[] = {EventKind::kInput, EventKind::kOutput,
                            EventKind::kInternal};
  for (const Value& ev :
       require(v, "events", Kind::kArray, "events", ctx).array) {
    if (ev.kind != Kind::kObject)
      throw std::runtime_error("serve request JSON: event is not an object");
    const std::string& label =
        require(ev, "label", Kind::kString, "event label", ctx).string;
    const Time lo = static_cast<Time>(
        require(ev, "lo", Kind::kNumber, "delay lower bound", ctx).number);
    const Value* hi = ev.find("hi");
    if (!hi || (hi->kind != Kind::kNull && hi->kind != Kind::kNumber))
      throw std::runtime_error(
          "serve request JSON: delay upper bound is neither number nor null");
    const Time hi_ticks =
        hi->kind == Kind::kNumber ? static_cast<Time>(hi->number)
                                  : kTimeInfinity;
    const std::string& kind_s =
        require(ev, "kind", Kind::kString, "event kind", ctx).string;
    EventKind kind = EventKind::kInternal;
    bool found = false;
    for (EventKind k : kind_table)
      if (kind_s == rtv::to_string(k)) {
        kind = k;
        found = true;
      }
    if (!found)
      throw std::runtime_error("serve request JSON: unknown event kind '" +
                               kind_s + "'");
    const DelayInterval delay(lo, hi_ticks);
    if (!delay.valid())
      throw std::runtime_error("serve request JSON: invalid delay interval [" +
                               std::to_string(static_cast<long long>(lo)) +
                               ", " +
                               std::to_string(static_cast<long long>(hi_ticks)) +
                               "] on event '" + label + "'");
    ts.add_event(label, delay, kind);
  }

  const auto& states =
      require(v, "states", Kind::kArray, "states", ctx).array;
  for (const Value& st : states) {
    if (st.kind != Kind::kObject)
      throw std::runtime_error("serve request JSON: state is not an object");
    const StateId sid =
        ts.add_state(require(st, "name", Kind::kString, "state name", ctx)
                         .string);
    if (const Value* val = st.find("valuation")) {
      if (val->kind != Kind::kString)
        throw std::runtime_error(
            "serve request JSON: state valuation is not a string");
      BitVec bits(val->string.size());
      for (std::size_t i = 0; i < val->string.size(); ++i) {
        const char c = val->string[i];
        if (c != '0' && c != '1')
          throw std::runtime_error(
              "serve request JSON: valuation must be a 0/1 string");
        if (c == '1') bits.set(i);
      }
      ts.set_state_valuation(sid, std::move(bits));
    }
  }

  // Transitions second, so targets past the current state resolve.
  for (std::size_t s = 0; s < states.size(); ++s) {
    for (const Value& tr :
         require(states[s], "transitions", Kind::kArray, "transitions", ctx)
             .array) {
      if (tr.kind != Kind::kArray || tr.array.size() != 2 ||
          tr.array[0].kind != Kind::kNumber ||
          tr.array[1].kind != Kind::kNumber)
        throw std::runtime_error(
            "serve request JSON: transition is not an [event, target] pair");
      const std::size_t event = static_cast<std::size_t>(tr.array[0].number);
      const std::size_t target = static_cast<std::size_t>(tr.array[1].number);
      if (event >= ts.num_events() || target >= ts.num_states())
        throw std::runtime_error(
            "serve request JSON: transition references an unknown event or "
            "state");
      ts.add_transition(StateId(static_cast<std::uint32_t>(s)),
                        EventId(static_cast<std::uint32_t>(event)),
                        StateId(static_cast<std::uint32_t>(target)));
    }
  }

  const double initial =
      require(v, "initial", Kind::kNumber, "initial state", ctx).number;
  if (initial >= 0) {
    const std::size_t idx = static_cast<std::size_t>(initial);
    if (idx >= ts.num_states())
      throw std::runtime_error(
          "serve request JSON: initial state is out of range");
    ts.set_initial(StateId(static_cast<std::uint32_t>(idx)));
  }

  return Module(name, std::move(ts));
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

std::vector<const Module*> WireObligation::module_ptrs() const {
  std::vector<const Module*> out;
  out.reserve(modules.size());
  for (const Module& m : modules) out.push_back(&m);
  return out;
}

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kVerify:
      return "verify";
    case RequestKind::kPing:
      return "ping";
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kMetrics:
      return "metrics";
    case RequestKind::kShutdown:
      return "shutdown";
  }
  return "verify";
}

std::string ServeRequest::to_json() const {
  std::string out = "{\"schema\":";
  append_string(out, kSchemaName);
  out += ",\"schema_version\":" + std::to_string(kSchemaVersion);
  out += ",\"kind\":";
  append_string(out, to_string(kind));
  out += ",\"mode\":";
  append_string(out, rtv::to_string(mode));
  out += ",\"engines\":[";
  for (std::size_t i = 0; i < engines.size(); ++i) {
    if (i) out += ",";
    append_string(out, engines[i]);
  }
  out += "],\"max_states\":" + std::to_string(max_states);
  out += ",\"max_seconds\":";
  append_double(out, max_seconds);
  out += ",\"max_refinements\":" + std::to_string(max_refinements);
  out += ",\"obligations\":[";
  for (std::size_t i = 0; i < obligations.size(); ++i) {
    const WireObligation& ob = obligations[i];
    if (i) out += ",";
    out += "{\"name\":";
    append_string(out, ob.name);
    out += ",\"engine\":";
    append_string(out, ob.engine);
    out += ",\"max_states\":" + std::to_string(ob.max_states);
    out += ",\"max_seconds\":";
    append_double(out, ob.max_seconds);
    out += ",\"max_refinements\":" + std::to_string(ob.max_refinements);
    out += ",\"track_chokes\":";
    out += ob.track_chokes ? "true" : "false";
    out += ",\"properties\":[";
    for (std::size_t p = 0; p < ob.properties.size(); ++p) {
      if (p) out += ",";
      property_to_json(out, ob.properties[p]);
    }
    out += "],\"modules\":[";
    for (std::size_t mi = 0; mi < ob.modules.size(); ++mi) {
      if (mi) out += ",";
      module_to_json(out, ob.modules[mi]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

ServeRequest ServeRequest::parse(const std::string& line) {
  constexpr std::string_view ctx = kRequestContext;
  const Value root = rtv::json::parse(line, ctx);
  check_envelope(root, kSchemaName, kSchemaVersion, ctx);

  ServeRequest req;
  const std::string& kind =
      require(root, "kind", Kind::kString, "request kind", ctx).string;
  if (kind == "verify")
    req.kind = RequestKind::kVerify;
  else if (kind == "ping")
    req.kind = RequestKind::kPing;
  else if (kind == "stats")
    req.kind = RequestKind::kStats;
  else if (kind == "metrics")
    req.kind = RequestKind::kMetrics;
  else if (kind == "shutdown")
    req.kind = RequestKind::kShutdown;
  else
    throw std::runtime_error("serve request JSON: unknown request kind '" +
                             kind + "'");
  if (req.kind != RequestKind::kVerify) return req;

  const std::string& mode =
      require(root, "mode", Kind::kString, "mode", ctx).string;
  if (mode == "portfolio")
    req.mode = SuiteMode::kPortfolio;
  else if (mode == "batch")
    req.mode = SuiteMode::kBatch;
  else
    throw std::runtime_error("serve request JSON: unknown mode '" + mode +
                             "'");
  for (const Value& e :
       require(root, "engines", Kind::kArray, "engines", ctx).array) {
    if (e.kind != Kind::kString)
      throw std::runtime_error(
          "serve request JSON: engine name is not a string");
    req.engines.push_back(e.string);
  }
  req.max_states = size_from(root, "max_states", "max states", ctx);
  req.max_seconds =
      require(root, "max_seconds", Kind::kNumber, "max seconds", ctx).number;
  req.max_refinements =
      size_from(root, "max_refinements", "max refinements", ctx);

  for (const Value& ob :
       require(root, "obligations", Kind::kArray, "obligations", ctx).array) {
    if (ob.kind != Kind::kObject)
      throw std::runtime_error(
          "serve request JSON: obligation is not an object");
    WireObligation out;
    out.name =
        require(ob, "name", Kind::kString, "obligation name", ctx).string;
    out.engine =
        require(ob, "engine", Kind::kString, "obligation engine", ctx).string;
    out.max_states = size_from(ob, "max_states", "obligation max states", ctx);
    out.max_seconds =
        require(ob, "max_seconds", Kind::kNumber, "obligation max seconds",
                ctx)
            .number;
    out.max_refinements =
        size_from(ob, "max_refinements", "obligation max refinements", ctx);
    out.track_chokes =
        require(ob, "track_chokes", Kind::kBool, "track chokes", ctx).boolean;
    for (const Value& p :
         require(ob, "properties", Kind::kArray, "properties", ctx).array)
      out.properties.push_back(property_from_json(p));
    for (const Value& m :
         require(ob, "modules", Kind::kArray, "modules", ctx).array)
      out.modules.push_back(module_from_json(m));
    if (out.modules.empty())
      throw std::runtime_error("serve request JSON: obligation '" + out.name +
                               "' carries no modules");
    req.obligations.push_back(std::move(out));
  }
  return req;
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

void stats_to_json(std::string& out, const ServeStats& s) {
  out += "{\"requests\":" + std::to_string(s.requests);
  out += ",\"obligations\":" + std::to_string(s.obligations);
  out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  out += ",\"deduped\":" + std::to_string(s.deduped);
  out += ",\"computed\":" + std::to_string(s.computed);
  out += ",\"lint_rejected\":" + std::to_string(s.lint_rejected);
  out += ",\"errors\":" + std::to_string(s.errors);
  out += ",\"cache_entries\":" + std::to_string(s.cache_entries);
  out += ",\"cache_evictions\":" + std::to_string(s.cache_evictions);
  out += ",\"uptime_seconds\":";
  append_double(out, s.uptime_seconds);
  out += ",\"jobs\":" + std::to_string(s.jobs);
  out += "}";
}

namespace {

std::uint64_t u64_from(const Value& obj, const char* key,
                       std::string_view ctx) {
  return static_cast<std::uint64_t>(
      require(obj, key, Kind::kNumber, key, ctx).number);
}

ServeStats stats_from_json(const Value& v) {
  constexpr std::string_view ctx = kResponseContext;
  if (v.kind != Kind::kObject)
    throw std::runtime_error("serve response JSON: stats is not an object");
  ServeStats s;
  s.requests = u64_from(v, "requests", ctx);
  s.obligations = u64_from(v, "obligations", ctx);
  s.cache_hits = u64_from(v, "cache_hits", ctx);
  s.deduped = u64_from(v, "deduped", ctx);
  s.computed = u64_from(v, "computed", ctx);
  // Optional: absent in stats written by daemons predating the lint
  // pre-flight; the default 0 is exact for them.
  if (const Value* lr = v.find("lint_rejected")) {
    if (lr->kind != Kind::kNumber)
      throw std::runtime_error(
          "serve response JSON: lint_rejected is not a number");
    s.lint_rejected = static_cast<std::uint64_t>(lr->number);
  }
  s.errors = u64_from(v, "errors", ctx);
  s.cache_entries = u64_from(v, "cache_entries", ctx);
  s.cache_evictions = u64_from(v, "cache_evictions", ctx);
  s.uptime_seconds =
      require(v, "uptime_seconds", Kind::kNumber, "uptime", ctx).number;
  s.jobs = u64_from(v, "jobs", ctx);
  return s;
}

}  // namespace

std::string ServeResponse::to_json() const {
  std::string out = "{\"schema\":";
  append_string(out, kSchemaName);
  out += ",\"schema_version\":" + std::to_string(kSchemaVersion);
  out += ",\"ok\":";
  out += ok ? "true" : "false";
  out += ",\"error\":";
  append_string(out, error);
  if (has_report) {
    // Splice the canonical SuiteReport document in as a nested object.
    // Its pretty-printing newlines would break line-delimited framing;
    // raw newlines are structural only (strings escape them), so
    // flattening them to spaces keeps the document identical JSON.
    std::string doc = report.to_json();
    for (char& c : doc)
      if (c == '\n') c = ' ';
    out += ",\"report\":" + doc;
  }
  if (has_stats) {
    out += ",\"stats\":";
    stats_to_json(out, stats);
  }
  if (!metrics_text.empty()) {
    out += ",\"metrics_text\":";
    append_string(out, metrics_text);
  }
  if (!metrics_json.empty()) {
    out += ",\"metrics_json\":";
    append_string(out, metrics_json);
  }
  out += "}";
  return out;
}

ServeResponse ServeResponse::parse(const std::string& line) {
  constexpr std::string_view ctx = kResponseContext;
  const Value root = rtv::json::parse(line, ctx);
  check_envelope(root, kSchemaName, kSchemaVersion, ctx);

  ServeResponse resp;
  resp.ok = require(root, "ok", Kind::kBool, "ok flag", ctx).boolean;
  resp.error = require(root, "error", Kind::kString, "error", ctx).string;
  if (const Value* rep = root.find("report")) {
    resp.report = parse_suite_report(*rep);
    resp.has_report = true;
  }
  if (const Value* st = root.find("stats")) {
    resp.stats = stats_from_json(*st);
    resp.has_stats = true;
  }
  if (const Value* mt = root.find("metrics_text")) {
    if (mt->kind != Kind::kString)
      throw std::runtime_error(
          "serve response JSON: metrics_text is not a string");
    resp.metrics_text = mt->string;
  }
  if (const Value* mj = root.find("metrics_json")) {
    if (mj->kind != Kind::kString)
      throw std::runtime_error(
          "serve response JSON: metrics_json is not a string");
    resp.metrics_json = mj->string;
  }
  return resp;
}

}  // namespace rtv::serve
