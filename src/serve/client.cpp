#include "rtv/serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace rtv::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

void Client::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("rtv client: socket path too long: " +
                             socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::runtime_error("rtv client: socket() failed: " +
                             std::string(std::strerror(errno)));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("rtv client: cannot connect to " + socket_path +
                             ": " + std::strerror(err));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

ServeResponse Client::call(const ServeRequest& request) {
  if (fd_ < 0) throw std::runtime_error("rtv client: not connected");

  std::string line = request.to_json();
  line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("rtv client: write failed (daemon gone?)");
    }
    off += static_cast<std::size_t>(n);
  }

  char chunk[4096];
  for (;;) {
    const std::size_t pos = buf_.find('\n');
    if (pos != std::string::npos) {
      const std::string reply = buf_.substr(0, pos);
      buf_.erase(0, pos + 1);
      return ServeResponse::parse(reply);
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw std::runtime_error(
          "rtv client: connection closed before a response arrived");
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Client::ping() {
  ServeRequest req;
  req.kind = RequestKind::kPing;
  return call(req).ok;
}

ServeStats Client::get_stats() {
  ServeRequest req;
  req.kind = RequestKind::kStats;
  ServeResponse resp = call(req);
  if (!resp.ok)
    throw std::runtime_error("rtv client: stats request failed: " +
                             resp.error);
  if (!resp.has_stats)
    throw std::runtime_error("rtv client: stats response carries no stats");
  return resp.stats;
}

std::string Client::get_metrics() {
  ServeRequest req;
  req.kind = RequestKind::kMetrics;
  ServeResponse resp = call(req);
  if (!resp.ok)
    throw std::runtime_error("rtv client: metrics request failed: " +
                             resp.error);
  return resp.metrics_text;
}

void Client::request_shutdown() {
  ServeRequest req;
  req.kind = RequestKind::kShutdown;
  ServeResponse resp = call(req);
  if (!resp.ok)
    throw std::runtime_error("rtv client: shutdown request failed: " +
                             resp.error);
}

}  // namespace rtv::serve
