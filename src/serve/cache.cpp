#include "rtv/serve/cache.hpp"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rtv/analysis/slice.hpp"
#include "rtv/base/json.hpp"
#include "rtv/verify/obligation_hash.hpp"

namespace rtv::serve {

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

std::string CacheKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

CacheKey CacheKey::from_hex(const std::string& s) {
  if (s.size() != 32 || s.find_first_not_of("0123456789abcdef") != s.npos)
    throw std::runtime_error("verdict cache: malformed cache key '" + s + "'");
  CacheKey k;
  k.hi = std::stoull(s.substr(0, 16), nullptr, 16);
  k.lo = std::stoull(s.substr(16), nullptr, 16);
  return k;
}

namespace {

/// Feed the full canonical content into one hasher.  Both halves of the
/// 128-bit key hash the same stream; only the domain seed differs.  The
/// module stream is the *sliced canonical reduced form* — the modules the
/// engines actually verify, in content-hash order — so semantically-equal
/// obligations (e.g. one padded with out-of-cone modules) share an entry.
void feed_obligation(Fnv1a& h, const WireObligation& ob,
                     const std::vector<const Module*>& canonical_modules,
                     SuiteMode mode, const std::vector<std::string>& engines,
                     std::size_t max_states, double max_seconds,
                     std::size_t max_refinements) {
  h.str("rtv-obligation-v2");
  h.str(rtv::to_string(mode));
  h.u64(engines.size());
  for (const std::string& e : engines) h.str(e);
  RunBudget budget;
  budget.max_states = max_states;
  budget.max_seconds = max_seconds;
  hash_budget(h, budget, max_refinements, ob.track_chokes);
  h.u64(ob.properties.size());
  for (const PropertySpec& p : ob.properties) {
    h.str(to_string(p.kind));
    h.str(p.name);
    h.u64(p.literals.size());
    for (const PropertySpec::Literal& l : p.literals) {
      h.str(l.signal);
      h.boolean(l.value);
    }
    h.u64(p.exempt.size());
    for (const std::string& e : p.exempt) h.str(e);
  }
  h.u64(canonical_modules.size());
  for (const Module* m : canonical_modules) hash_module(h, *m);
}

}  // namespace

CacheKey obligation_cache_key(const WireObligation& ob, SuiteMode mode,
                              const std::vector<std::string>& engines,
                              std::size_t max_states, double max_seconds,
                              std::size_t max_refinements) {
  // Slice exactly as run_suite() will (rtv/analysis/slice.hpp): the key
  // must address the question the engines answer, which is the reduced
  // obligation.  Instantiated property views only live for this call.
  std::vector<std::unique_ptr<SafetyProperty>> owned_props;
  std::vector<const SafetyProperty*> prop_ptrs;
  for (const PropertySpec& p : ob.properties) {
    owned_props.push_back(p.instantiate());
    prop_ptrs.push_back(owned_props.back().get());
  }
  analysis::SliceOptions so;
  so.track_chokes = ob.track_chokes;
  const analysis::SliceResult sl =
      analysis::slice(ob.module_ptrs(), prop_ptrs, so);
  const std::vector<const Module*> canonical = analysis::canonical_order(
      sl.bailout.empty() ? sl.modules : ob.module_ptrs());

  CacheKey key;
  Fnv1a a(0x6b65792d68690000ull);  // "key-hi" domain
  Fnv1a b(0x6b65792d6c6f0000ull);  // "key-lo" domain
  feed_obligation(a, ob, canonical, mode, engines, max_states, max_seconds,
                  max_refinements);
  feed_obligation(b, ob, canonical, mode, engines, max_states, max_seconds,
                  max_refinements);
  key.hi = a.digest();
  key.lo = b.digest();
  return key;
}

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

bool cacheable(const CachedOutcome& outcome) {
  if (outcome.records.empty()) return false;
  bool has_winner = false;
  for (const CachedRecord& r : outcome.records)
    if (r.winner) has_winner = true;
  for (const CachedRecord& r : outcome.records) {
    if (r.stop_reason == stop_reason::kEngineError) return false;
    // Lint rejections are answered on the request path without touching
    // the cache; a record that slipped through anyway (e.g. a pre-flight
    // inside run_suite) must not displace computable entries either.
    if (r.stop_reason == stop_reason::kLintError) return false;
    if (r.stop_reason == stop_reason::kCancelled && !has_winner) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

VerdictCache::VerdictCache(std::size_t max_entries)
    : max_entries_(max_entries ? max_entries : 1) {}

bool VerdictCache::get(const CacheKey& key, CachedOutcome* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.end(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  if (out) *out = it->second->second;
  return true;
}

void VerdictCache::put(const CacheKey& key, CachedOutcome outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(outcome);
    lru_.splice(lru_.end(), lru_, it->second);
    return;
  }
  lru_.emplace_back(key, std::move(outcome));
  map_.emplace(key, std::prev(lru_.end()));
  ++stats_.insertions;
  evict_to_cap_locked();
}

void VerdictCache::evict_to_cap_locked() {
  while (lru_.size() > max_entries_) {
    map_.erase(lru_.front().first);
    lru_.pop_front();
    ++stats_.evictions;
  }
}

std::size_t VerdictCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

void VerdictCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  map_.clear();
}

VerdictCache::Stats VerdictCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

namespace {

using rtv::json::append_double;
using rtv::json::append_string;
using rtv::json::Value;
using Kind = Value::Kind;

constexpr std::string_view kCacheContext = "verdict cache JSON";

const Value& require(const Value& obj, std::string_view key, Kind kind,
                     const char* what) {
  return rtv::json::require(obj, key, kind, what, kCacheContext);
}

Verdict verdict_from_string(const std::string& s) {
  if (s == "VERIFIED") return Verdict::kVerified;
  if (s == "VIOLATED") return Verdict::kViolated;
  if (s == "INCONCLUSIVE") return Verdict::kInconclusive;
  throw std::runtime_error("verdict cache JSON: unknown verdict '" + s + "'");
}

void record_to_json(std::string& out, const CachedRecord& r) {
  out += "{\"engine\":";
  append_string(out, r.engine);
  out += ",\"verdict\":";
  append_string(out, rtv::to_string(r.verdict));
  out += ",\"stop_reason\":";
  append_string(out, r.stop_reason);
  out += ",\"message\":";
  append_string(out, r.message);
  out += ",\"states\":" + std::to_string(r.states_explored);
  out += ",\"wall_seconds\":";
  append_double(out, r.seconds);
  out += ",\"cpu_seconds\":";
  append_double(out, r.cpu_seconds);
  out += ",\"winner\":";
  out += r.winner ? "true" : "false";
  out += ",\"trace\":[";
  for (std::size_t i = 0; i < r.trace_labels.size(); ++i) {
    if (i) out += ",";
    append_string(out, r.trace_labels[i]);
  }
  out += "]}";
}

CachedRecord record_from_json(const Value& v) {
  if (v.kind != Kind::kObject)
    throw std::runtime_error("verdict cache JSON: record is not an object");
  CachedRecord r;
  r.engine = require(v, "engine", Kind::kString, "engine").string;
  r.verdict = verdict_from_string(
      require(v, "verdict", Kind::kString, "verdict").string);
  r.stop_reason =
      require(v, "stop_reason", Kind::kString, "stop reason").string;
  r.message = require(v, "message", Kind::kString, "message").string;
  r.states_explored = static_cast<std::size_t>(
      require(v, "states", Kind::kNumber, "states").number);
  r.seconds =
      require(v, "wall_seconds", Kind::kNumber, "wall seconds").number;
  r.cpu_seconds =
      require(v, "cpu_seconds", Kind::kNumber, "cpu seconds").number;
  r.winner = require(v, "winner", Kind::kBool, "winner flag").boolean;
  for (const Value& label :
       require(v, "trace", Kind::kArray, "trace labels").array) {
    if (label.kind != Kind::kString)
      throw std::runtime_error(
          "verdict cache JSON: trace label is not a string");
    r.trace_labels.push_back(label.string);
  }
  return r;
}

}  // namespace

std::string VerdictCache::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"schema\":";
  append_string(out, kSchemaName);
  out += ",\"schema_version\":" + std::to_string(kSchemaVersion);
  out += ",\"entries\":[";
  bool first = true;
  for (const auto& [key, outcome] : lru_) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"key\":";
    append_string(out, key.hex());
    out += ",\"records\":[";
    for (std::size_t i = 0; i < outcome.records.size(); ++i) {
      if (i) out += ",";
      record_to_json(out, outcome.records[i]);
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

void VerdictCache::load_json(const std::string& text) {
  const Value root = rtv::json::parse(text, kCacheContext);
  if (root.kind != Kind::kObject)
    throw std::runtime_error("verdict cache JSON: root is not an object");
  if (require(root, "schema", Kind::kString, "schema tag").string !=
      kSchemaName)
    throw std::runtime_error("verdict cache JSON: wrong schema tag");
  const int version = static_cast<int>(
      require(root, "schema_version", Kind::kNumber, "schema version")
          .number);
  // Any mismatch rejects: a cache written by an older schema may hash
  // differently and must be recomputed, not trusted.
  if (version != kSchemaVersion)
    throw std::runtime_error(
        "verdict cache JSON: schema version " + std::to_string(version) +
        " does not match this library's version " +
        std::to_string(kSchemaVersion));

  std::list<std::pair<CacheKey, CachedOutcome>> lru;
  std::unordered_map<CacheKey, decltype(lru_)::iterator, CacheKeyHash> map;
  for (const Value& entry :
       require(root, "entries", Kind::kArray, "entries").array) {
    if (entry.kind != Kind::kObject)
      throw std::runtime_error("verdict cache JSON: entry is not an object");
    const CacheKey key =
        CacheKey::from_hex(require(entry, "key", Kind::kString, "key").string);
    CachedOutcome outcome;
    for (const Value& rec :
         require(entry, "records", Kind::kArray, "records").array)
      outcome.records.push_back(record_from_json(rec));
    if (map.count(key))
      throw std::runtime_error("verdict cache JSON: duplicate key " +
                               key.hex());
    lru.emplace_back(key, std::move(outcome));
    map.emplace(key, std::prev(lru.end()));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  lru_ = std::move(lru);
  map_ = std::move(map);
  evict_to_cap_locked();
}

void VerdictCache::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << to_json();
    out.flush();
    if (!out)
      throw std::runtime_error("verdict cache: cannot write " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("verdict cache: cannot rename " + tmp + " to " +
                             path);
}

void VerdictCache::load(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("verdict cache: cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  load_json(text);
}

}  // namespace rtv::serve
