// Static reachability: facts derivable from each component's own state
// graph, without composing.  These are warnings, not errors — a
// never-firing event or a constant signal is usually a modelling mistake
// (a typo in a transition, a monitor wired to the wrong node), but the
// engines still produce a sound verdict on such models.
#include <cstddef>
#include <string>
#include <vector>

#include "checks.hpp"

namespace rtv::lint {

namespace {

void check_unfireable_events(CheckContext& ctx) {
  // RTV-L007: declared but never enabled at any reachable state.
  for (std::size_t mi = 0; mi < ctx.modules.size(); ++mi) {
    const TransitionSystem& ts = ctx.modules[mi]->ts();
    if (ctx.reachable(mi).empty()) continue;  // RTV-L001 covers this module
    for (std::size_t ei = 0; ei < ts.num_events(); ++ei) {
      if (ctx.fireable(mi, ei)) continue;
      const std::string& label =
          ts.label(EventId(static_cast<std::uint32_t>(ei)));
      ctx.emit(check::kUnfireableEvent, Severity::kWarning,
               ctx.modules[mi]->name(), label,
               "event '" + label +
                   "' is declared but labels no transition from any "
                   "reachable state — it can never fire");
    }
  }
}

void check_dead_signals(CheckContext& ctx) {
  // RTV-L008: a signal whose value never changes across the reachable
  // states.  Invariants over such a signal are decided by the initial
  // valuation alone.
  for (std::size_t mi = 0; mi < ctx.modules.size(); ++mi) {
    const TransitionSystem& ts = ctx.modules[mi]->ts();
    if (!ts.has_valuations() || ts.signal_names().empty()) continue;
    if (ctx.reachable(mi).size() < 2) continue;  // trivially constant
    const BitVec& first = ts.valuation(ctx.reachable(mi).front());
    for (std::size_t si = 0; si < ts.signal_names().size(); ++si) {
      bool constant = true;
      for (const StateId s : ctx.reachable(mi)) {
        if (ts.valuation(s).test(si) != first.test(si)) {
          constant = false;
          break;
        }
      }
      if (!constant) continue;
      ctx.emit(check::kDeadSignal, Severity::kWarning,
               ctx.modules[mi]->name(), ts.signal_names()[si],
               "signal '" + ts.signal_names()[si] + "' holds value " +
                   (first.test(si) ? "1" : "0") +
                   " at every reachable state — invariants over it are "
                   "decided by the initial valuation alone");
    }
  }
}

void check_disjoint_alphabets(CheckContext& ctx) {
  // RTV-L014: in a multi-module obligation, a module sharing no label
  // with any other composes by pure interleaving — it constrains nothing
  // and multiplies the state space.
  if (ctx.modules.size() < 2) return;
  for (std::size_t mi = 0; mi < ctx.modules.size(); ++mi) {
    if (!ctx.graph.adjacent[mi].empty()) continue;
    ctx.emit(check::kDisjointAlphabet, Severity::kWarning,
             ctx.modules[mi]->name(), "",
             "module shares no label with any other module of this "
             "obligation — it composes by pure interleaving and "
             "constrains nothing");
  }
}

void check_trivial_deadlock(CheckContext& ctx) {
  // RTV-L015: for a single-module obligation the composition is the
  // module itself, so a reachable sink state *is* the deadlock the
  // engines will report.  Only statically decidable without composition
  // in the single-module case.
  if (ctx.modules.size() != 1) return;
  bool wants_deadlock_freedom = false;
  for (const SafetyProperty* p : ctx.properties)
    if (dynamic_cast<const DeadlockFreedom*>(p)) wants_deadlock_freedom = true;
  if (!wants_deadlock_freedom) return;

  const TransitionSystem& ts = ctx.modules[0]->ts();
  for (const StateId s : ctx.reachable(0)) {
    if (!ts.transitions_from(s).empty()) continue;
    std::string where = ts.state_name(s);
    if (where.empty()) where = "state #" + std::to_string(s.value());
    ctx.emit(check::kTrivialDeadlock, Severity::kWarning,
             ctx.modules[0]->name(), where,
             "deadlock-freedom is requested but reachable state '" + where +
                 "' has no outgoing transitions — the violation is "
                 "statically evident");
    return;  // one finding is enough
  }
}

}  // namespace

void check_reachability(CheckContext& ctx) {
  check_unfireable_events(ctx);
  check_dead_signals(ctx);
  check_disjoint_alphabets(ctx);
  check_trivial_deadlock(ctx);
}

}  // namespace rtv::lint
