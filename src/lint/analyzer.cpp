// Lint driver: precompute per-module reachability facts, run the check
// families, severity-sort the findings.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "checks.hpp"
#include "rtv/lint/lint.hpp"
#include "rtv/verify/engine.hpp"

namespace rtv::lint {

namespace {

bool selection_digitizes(const std::vector<std::string>& engines) {
  // An empty selection means "unknown" — keep engine-specific checks
  // armed rather than silently skipping them.
  if (engines.empty()) return true;
  return std::find(engines.begin(), engines.end(), "discrete") !=
         engines.end();
}

bool selection_only_digitizes(const std::vector<std::string>& engines) {
  if (engines.empty()) return false;  // unknown: assume a peer may decide
  return std::all_of(engines.begin(), engines.end(),
                     [](const std::string& e) { return e == "discrete"; });
}

}  // namespace

LintReport lint_modules(const std::vector<const Module*>& modules,
                        const std::vector<const SafetyProperty*>& properties,
                        const LintOptions& options) {
  LintReport report;
  CheckContext ctx{modules,
                   properties,
                   options,
                   selection_digitizes(options.engines),
                   selection_only_digitizes(options.engines),
                   {},
                   report.diagnostics};

  if (modules.empty()) {
    ctx.emit(check::kNoInitialState, Severity::kError, "", "",
             "obligation carries no modules — nothing to verify");
    return report;
  }

  // One dependency analysis per pass: per-module BFS reachability,
  // fireable events, and the shared-label structure — the same facts the
  // rtv/analysis slicer consumes.
  ctx.graph = analysis::build_depgraph(modules);

  check_well_formed(ctx);
  check_reachability(ctx);
  check_engine_range(ctx);
  check_cone(ctx);

  report.sort_by_severity();
  return report;
}

LintReport lint_obligation(const Obligation& obligation,
                           const SuiteOptions& options) {
  // Mirror run_suite()'s engine and budget resolution exactly, so the
  // pre-flight judges the obligation the scheduler will actually run.
  LintOptions lo;
  if (options.mode == SuiteMode::kBatch && !obligation.engine.empty())
    lo.engines = {obligation.engine};
  else if (!options.engines.empty())
    lo.engines = options.engines;
  else if (options.mode == SuiteMode::kBatch)
    lo.engines = {"refine"};
  else
    lo.engines = engine_registry().names();
  lo.max_states = obligation.budget.max_states ? obligation.budget.max_states
                                               : options.budget.max_states;
  return lint_modules(obligation.modules, obligation.properties, lo);
}

}  // namespace rtv::lint
