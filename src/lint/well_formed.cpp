// Well-formedness: structure of modules and properties that engines either
// reject mid-run (compose() throws on contradictory bounds) or — worse —
// silently absorb (a dangling invariant signal verifies vacuously).
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "checks.hpp"
#include "rtv/ts/delay_bounds.hpp"

namespace rtv::lint {

namespace {

bool any_module_declares_signal(const std::vector<const Module*>& modules,
                                const std::string& signal) {
  for (const Module* m : modules)
    if (m->ts().signal_index(signal) != static_cast<std::size_t>(-1))
      return true;
  return false;
}

bool any_module_declares_label(const std::vector<const Module*>& modules,
                               const std::string& label) {
  for (const Module* m : modules)
    if (m->ts().event_by_label(label).valid()) return true;
  return false;
}

void check_module_structure(CheckContext& ctx) {
  for (const Module* m : ctx.modules) {
    const TransitionSystem& ts = m->ts();

    // RTV-L001: no reachability root — every engine starts at initial().
    const StateId init = ts.initial();
    if (!init.valid() || init.value() >= ts.num_states()) {
      ctx.emit(check::kNoInitialState, Severity::kError, m->name(), "",
               "module declares no initial state; every engine needs a "
               "reachability root");
    }

    std::unordered_map<std::string, std::size_t> label_count;
    for (std::size_t ei = 0; ei < ts.num_events(); ++ei) {
      const Event& ev = ts.event(EventId(static_cast<std::uint32_t>(ei)));

      // RTV-L002: delay bounds violating the 0 <= lo <= hi invariant.
      if (!ev.delay.valid()) {
        ctx.emit(check::kInvalidInterval, Severity::kError, m->name(),
                 ev.label,
                 "event '" + ev.label + "' declares invalid delay bounds " +
                     ev.delay.to_string() + " (need 0 <= lo <= hi)");
      }
      ++label_count[ev.label];
    }

    // RTV-L003: duplicate labels — event_by_label() resolves to the first
    // declaration, so the later ones are unreachable aliases.
    for (std::size_t ei = 0; ei < ts.num_events(); ++ei) {
      const std::string& label =
          ts.label(EventId(static_cast<std::uint32_t>(ei)));
      auto it = label_count.find(label);
      if (it == label_count.end() || it->second < 2) continue;
      ctx.emit(check::kDuplicateLabel, Severity::kError, m->name(), label,
               "label '" + label + "' is declared by " +
                   std::to_string(it->second) +
                   " events of this module; lookups resolve to the first, "
                   "the others can never fire");
      label_count.erase(it);  // one finding per duplicated label
    }
  }
}

void check_delay_contradictions(CheckContext& ctx) {
  // RTV-L004: the shared compose() check (rtv/ts/delay_bounds.hpp) —
  // identical message text, reported before composition.
  for (const DelayContradiction& c : find_delay_contradictions(ctx.modules))
    ctx.emit(check::kDelayContradiction, Severity::kError, "", c.label,
             describe_delay_contradiction(c));
}

void check_properties(CheckContext& ctx) {
  for (const SafetyProperty* p : ctx.properties) {
    if (const auto* inv = dynamic_cast<const InvariantProperty*>(p)) {
      // RTV-L009: an empty forbidden conjunction holds at every state —
      // the invariant is violated everywhere, trivially unsatisfiable.
      if (inv->forbidden().empty()) {
        ctx.emit(check::kEmptyInvariant, Severity::kError, "", inv->name(),
                 "invariant '" + inv->name() +
                     "' forbids an empty conjunction, which holds at every "
                     "state — the property is trivially violated");
        continue;
      }
      bool tautological = false;
      for (const InvariantProperty::Literal& lit : inv->forbidden()) {
        // RTV-L005: a literal over a signal no module declares is never
        // satisfied — engines skip the whole conjunction, so the property
        // verifies vacuously no matter what the system does.
        if (!any_module_declares_signal(ctx.modules, lit.signal)) {
          ctx.emit(check::kDanglingSignal, Severity::kError, "", inv->name(),
                   "invariant '" + inv->name() + "' references signal '" +
                       lit.signal +
                       "' which no module declares; the property can never "
                       "fire and verifies vacuously");
        }
        // RTV-L010: s & !s can never hold together.
        for (const InvariantProperty::Literal& other : inv->forbidden())
          if (&other != &lit && other.signal == lit.signal &&
              other.value != lit.value)
            tautological = true;
      }
      if (tautological) {
        ctx.emit(check::kTautologicalInvariant, Severity::kWarning, "",
                 inv->name(),
                 "invariant '" + inv->name() +
                     "' forbids a contradictory conjunction (a signal and "
                     "its negation) — it can never fire and verifies "
                     "vacuously");
      }
    } else if (const auto* pers =
                   dynamic_cast<const PersistencyProperty*>(p)) {
      // RTV-L006: an exempt label no module declares exempts nothing.
      for (const std::string& label : pers->exempt()) {
        if (!any_module_declares_label(ctx.modules, label)) {
          ctx.emit(check::kDanglingExempt, Severity::kWarning, "", p->name(),
                   "persistency exemption names label '" + label +
                       "' which no module declares — the exemption has no "
                       "effect");
        }
      }
    }
  }
}

}  // namespace

void check_well_formed(CheckContext& ctx) {
  check_module_structure(ctx);
  check_delay_contradictions(ctx);
  check_properties(ctx);
}

}  // namespace rtv::lint
