// Cone-of-influence notes: surface in `rtv lint` what `rtv slice` would
// drop.  Notes, not warnings — an out-of-cone module is wasteful, never
// wrong, and the suite's slicer removes the waste automatically.
#include <string>

#include "checks.hpp"
#include "rtv/analysis/slice.hpp"

namespace rtv::lint {

void check_cone(CheckContext& ctx) {
  // Without properties there is no cone to be outside of — every module
  // would trivially qualify, which is noise, not a finding.
  if (ctx.modules.empty() || ctx.properties.empty()) return;

  // The slicer reuses this pass's dependency graph, so the note costs no
  // second reachability computation.  Lint has no obligation handle, so
  // it assumes choke tracking (the Obligation default) — the
  // conservative direction.
  const analysis::SliceResult sl =
      analysis::slice(ctx.modules, ctx.properties, {}, &ctx.graph);
  if (!sl.bailout.empty()) return;

  for (const analysis::SliceNote& note : sl.notes) {
    if (note.kind == "module" && !note.module.empty()) {
      ctx.emit(check::kOutsideCone, Severity::kNote, note.module, "",
               "module is outside every property's cone of influence — "
               "the suite's slicer drops it before any engine runs (" +
                   note.reason + ")");
    } else if (note.kind == "states") {
      ctx.emit(check::kSliceUnreachable, Severity::kNote, note.module,
               note.object,
               note.object +
                   " state(s) and their transitions are statically "
                   "unreachable — the suite's slicer prunes them before "
                   "any engine runs");
    }
  }
}

}  // namespace rtv::lint
