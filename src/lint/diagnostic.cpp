#include "rtv/lint/diagnostic.hpp"

#include <algorithm>
#include <stdexcept>

namespace rtv::lint {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

Severity severity_from_string(const std::string& s) {
  if (s == "error") return Severity::kError;
  if (s == "warning") return Severity::kWarning;
  if (s == "note") return Severity::kNote;
  throw std::runtime_error("lint report JSON: unknown severity '" + s + "'");
}

std::string Diagnostic::format() const {
  std::string out = to_string(severity);
  out += ' ';
  out += code;
  if (!module.empty() || !object.empty()) {
    out += " [";
    out += module;
    if (!object.empty()) {
      if (!module.empty()) out += '/';
      out += object;
    }
    out += ']';
  }
  out += ": ";
  out += message;
  return out;
}

void append_diagnostic(std::string& out, const Diagnostic& d) {
  out += "{\"code\":";
  json::append_string(out, d.code);
  out += ",\"severity\":";
  json::append_string(out, to_string(d.severity));
  out += ",\"module\":";
  json::append_string(out, d.module);
  out += ",\"object\":";
  json::append_string(out, d.object);
  out += ",\"message\":";
  json::append_string(out, d.message);
  out += "}";
}

namespace {

constexpr std::string_view kJsonContext = "lint report JSON";

}  // namespace

using json::require;

Diagnostic diagnostic_from_json(const json::Value& v,
                                std::string_view context) {
  using Kind = json::Value::Kind;
  if (v.kind != Kind::kObject)
    throw std::runtime_error(std::string(context) +
                             ": diagnostic is not an object");
  Diagnostic d;
  d.code = require(v, "code", Kind::kString, "check code", context).string;
  d.severity = severity_from_string(
      require(v, "severity", Kind::kString, "severity", context).string);
  d.module = require(v, "module", Kind::kString, "module", context).string;
  d.object = require(v, "object", Kind::kString, "object", context).string;
  d.message = require(v, "message", Kind::kString, "message", context).string;
  return d;
}

std::size_t LintReport::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == s) ++n;
  return n;
}

int LintReport::exit_code() const {
  if (has_errors()) return 2;
  if (warnings() > 0) return 1;
  return 0;
}

void LintReport::sort_by_severity() {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) <
                            static_cast<int>(b.severity);
                   });
}

std::string LintReport::format() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.format();
    out += '\n';
  }
  if (clean()) {
    out += "lint: clean\n";
    return out;
  }
  out += "lint: ";
  bool first = true;
  const auto add = [&](std::size_t n, const char* what) {
    if (n == 0) return;
    if (!first) out += ", ";
    first = false;
    out += std::to_string(n);
    out += ' ';
    out += what;
    if (n != 1) out += 's';
  };
  add(errors(), "error");
  add(warnings(), "warning");
  add(notes(), "note");
  out += '\n';
  return out;
}

std::string LintReport::to_json() const {
  std::string out = "{\"schema\":";
  json::append_string(out, kSchemaName);
  out += ",\"schema_version\":" + std::to_string(kSchemaVersion);
  out += ",\"errors\":" + std::to_string(errors());
  out += ",\"warnings\":" + std::to_string(warnings());
  out += ",\"notes\":" + std::to_string(notes());
  out += ",\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    if (i) out += ",";
    append_diagnostic(out, diagnostics[i]);
  }
  out += "]}";
  return out;
}

LintReport parse_lint_report(const std::string& json) {
  using Kind = json::Value::Kind;
  const json::Value root = json::parse(json, kJsonContext);
  if (root.kind != Kind::kObject)
    throw std::runtime_error("lint report JSON: root is not an object");
  if (require(root, "schema", Kind::kString, "schema tag", kJsonContext)
          .string != LintReport::kSchemaName)
    throw std::runtime_error("lint report JSON: wrong schema tag");
  const int version = static_cast<int>(
      require(root, "schema_version", Kind::kNumber, "schema version",
              kJsonContext)
          .number);
  if (version > LintReport::kSchemaVersion)
    throw std::runtime_error(
        "lint report JSON: schema version " + std::to_string(version) +
        " is newer than this library supports (max " +
        std::to_string(LintReport::kSchemaVersion) + ")");
  if (version < 1)
    throw std::runtime_error("lint report JSON: invalid schema version " +
                             std::to_string(version));
  LintReport report;
  for (const json::Value& d :
       require(root, "diagnostics", Kind::kArray, "diagnostics", kJsonContext)
           .array)
    report.diagnostics.push_back(diagnostic_from_json(d, kJsonContext));
  return report;
}

}  // namespace rtv::lint
