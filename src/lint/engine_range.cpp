// Engine-range prediction: delay constants vs. engine limits.
//
// The discrete engine digitizes: it steps the composition tick by tick, so
// its exploration cost is linear in the delay constants, and its config
// budget caps how far it can step.  Both facts are knowable from the model
// and the budget alone — this is where the historical 16-bit age-wrap bug
// class (a model with constants past 65535 ticks silently truncating)
// becomes a static finding instead of a mysterious inconclusive run.
#include <cstddef>
#include <string>
#include <vector>

#include "checks.hpp"
#include "rtv/zone/discrete.hpp"

namespace rtv::lint {

namespace {

std::string ticks_with_units(Time t) {
  std::string units = std::to_string(units_from_ticks(t));
  while (units.size() > 1 && units.back() == '0') units.pop_back();
  if (!units.empty() && units.back() == '.') units.pop_back();
  return std::to_string(t) + " ticks (" + units + " units)";
}

}  // namespace

void check_engine_range(CheckContext& ctx) {
  const std::size_t budget = ctx.options.max_states
                                 ? ctx.options.max_states
                                 : DiscreteVerifyOptions{}.max_states;

  for (std::size_t mi = 0; mi < ctx.modules.size(); ++mi) {
    const TransitionSystem& ts = ctx.modules[mi]->ts();
    for (std::size_t ei = 0; ei < ts.num_events(); ++ei) {
      const Event& ev = ts.event(EventId(static_cast<std::uint32_t>(ei)));
      if (!ev.delay.valid()) continue;  // RTV-L002 already covers it

      // RTV-L011: a finite bound at or above the infinity sentinel is
      // almost certainly a unit mistake, and arithmetic on it aliases the
      // "unbounded" encoding.  Engine-independent.
      if (ev.delay.lo() >= kTimeInfinity) {
        ctx.emit(check::kInfinityAliasedBound, Severity::kError,
                 ctx.modules[mi]->name(), ev.label,
                 "event '" + ev.label + "' declares lower delay bound " +
                     std::to_string(ev.delay.lo()) +
                     " ticks, at or above the unbounded-delay sentinel (2^60"
                     ") — the bound aliases infinity and the event can "
                     "never fire");
        continue;
      }

      // The remaining checks predict the digitizing engine's behaviour.
      if (!ctx.targets_discrete) continue;
      if (mi < ctx.graph.facts.size() &&
          ei < ctx.graph.facts[mi].fireable.size() && !ctx.fireable(mi, ei))
        continue;  // never enabled: its constants never drive a clock

      // The largest tick count the digitized run must age through before
      // this event's bounds are resolved.
      const Time demand =
          ev.delay.upper_bounded() ? ev.delay.hi() : ev.delay.lo();
      if (demand <= 0) continue;

      // RTV-L012: aging through `demand` ticks creates at least `demand`
      // distinct configs, so a budget at or below it makes truncation
      // certain — the run is guaranteed inconclusive before this event's
      // bounds resolve.  Fatal only when no non-digitizing engine is
      // selected; otherwise a zone/refinement peer can still decide the
      // obligation and the doomed discrete run merely wastes its budget.
      if (static_cast<std::size_t>(demand) >= budget) {
        const Severity sev =
            ctx.only_discrete ? Severity::kError : Severity::kWarning;
        ctx.emit(check::kCertainTruncation, sev, ctx.modules[mi]->name(),
                 ev.label,
                 "event '" + ev.label + "' needs " + ticks_with_units(demand) +
                     " of digitized aging, but the discrete config budget "
                     "is " +
                     std::to_string(budget) +
                     " — truncation is certain and the discrete run can "
                     "only end inconclusive; raise --max-states past " +
                     std::to_string(demand) + " or drop the discrete engine");
        continue;  // L013 would restate the same constant
      }

      // RTV-L013: past the historical 16-bit age range the model still
      // verifies correctly (ages are 64-bit), but digitized exploration
      // walks every tick — constants this large make the discrete engine
      // the wrong tool.
      if (demand > kLegacyAgeRangeTicks) {
        ctx.emit(check::kDigitizationCost, Severity::kWarning,
                 ctx.modules[mi]->name(), ev.label,
                 "event '" + ev.label + "' declares delay constant " +
                     ticks_with_units(demand) +
                     ", beyond the historical 16-bit age range (65535 "
                     "ticks); digitized exploration walks every tick, so "
                     "expect the discrete engine to be slow here — prefer "
                     "the zone or refinement engine");
      }
    }
  }
}

}  // namespace rtv::lint
