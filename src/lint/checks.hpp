// Internal seam between the lint driver (analyzer.cpp) and the check
// families.  Not installed: the public surface is rtv/lint/lint.hpp.
#pragma once

#include <vector>

#include "rtv/analysis/depgraph.hpp"
#include "rtv/lint/lint.hpp"

namespace rtv::lint {

/// Shared state of one lint pass.  The driver builds the dependency
/// graph (rtv/analysis/depgraph.hpp) once — the same per-module
/// reachability facts the slicer consumes — and every check family reads
/// it.
struct CheckContext {
  const std::vector<const Module*>& modules;
  const std::vector<const SafetyProperty*>& properties;
  const LintOptions& options;
  /// Engine-range checks only arm when the obligation can reach the
  /// digitizing engine ("discrete" selected, or selection unknown).
  bool targets_discrete = true;
  /// True when *every* selected engine digitizes: certain discrete
  /// truncation then dooms the whole obligation (error); with a
  /// non-digitizing peer in the selection it only wastes one engine's
  /// budget (warning).
  bool only_discrete = false;
  /// Per-module reachability facts plus the shared-label structure, one
  /// computation shared between lint and the slicer.
  analysis::DepGraph graph;
  std::vector<Diagnostic>& out;

  /// Reachable states of module mi in BFS order (empty when the module
  /// has no valid initial state).
  const std::vector<StateId>& reachable(std::size_t mi) const {
    return graph.facts[mi].reachable;
  }
  /// True iff event ei of module mi labels a transition from some
  /// reachable state.
  bool fireable(std::size_t mi, std::size_t ei) const {
    return graph.facts[mi].fireable[ei];
  }

  void emit(const char* code, Severity severity, std::string module,
            std::string object, std::string message) {
    out.push_back(Diagnostic{code, severity, std::move(module),
                             std::move(object), std::move(message)});
  }
};

/// RTV-L001..L006, L009, L010: structure of modules and properties.
void check_well_formed(CheckContext& ctx);

/// RTV-L007, L008, L014, L015: facts derivable from per-module
/// reachability (never from the composition).
void check_reachability(CheckContext& ctx);

/// RTV-L011..L013: delay constants vs. the time-infinity sentinel, the
/// digitized state budget and the historical 16-bit age range.
void check_engine_range(CheckContext& ctx);

/// RTV-L016, L017: what the cone-of-influence slicer would drop.
void check_cone(CheckContext& ctx);

}  // namespace rtv::lint
