// Internal seam between the lint driver (analyzer.cpp) and the check
// families.  Not installed: the public surface is rtv/lint/lint.hpp.
#pragma once

#include <vector>

#include "rtv/lint/lint.hpp"

namespace rtv::lint {

/// Shared state of one lint pass.  The driver precomputes the per-module
/// reachability facts once; every check family reads them.
struct CheckContext {
  const std::vector<const Module*>& modules;
  const std::vector<const SafetyProperty*>& properties;
  const LintOptions& options;
  /// Engine-range checks only arm when the obligation can reach the
  /// digitizing engine ("discrete" selected, or selection unknown).
  bool targets_discrete = true;
  /// True when *every* selected engine digitizes: certain discrete
  /// truncation then dooms the whole obligation (error); with a
  /// non-digitizing peer in the selection it only wastes one engine's
  /// budget (warning).
  bool only_discrete = false;
  /// Per module: reachable states in BFS order (empty when the module has
  /// no valid initial state — the well-formedness error covers that).
  std::vector<std::vector<StateId>> reachable;
  /// Per module, per event: true iff some reachable state has a
  /// transition labelled by the event (i.e. the event can ever fire).
  std::vector<std::vector<bool>> fireable;
  std::vector<Diagnostic>& out;

  void emit(const char* code, Severity severity, std::string module,
            std::string object, std::string message) {
    out.push_back(Diagnostic{code, severity, std::move(module),
                             std::move(object), std::move(message)});
  }
};

/// RTV-L001..L006, L009, L010: structure of modules and properties.
void check_well_formed(CheckContext& ctx);

/// RTV-L007, L008, L014, L015: facts derivable from per-module
/// reachability (never from the composition).
void check_reachability(CheckContext& ctx);

/// RTV-L011..L013: delay constants vs. the time-infinity sentinel, the
/// digitized state budget and the historical 16-bit age range.
void check_engine_range(CheckContext& ctx);

}  // namespace rtv::lint
