#include "rtv/base/log.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

#include "rtv/obs/metrics.hpp"

namespace rtv {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

// Monotonic epoch anchored at the first log line (close enough to process
// start for uptime stamps, and immune to wall-clock steps).
std::uint64_t monotonic_epoch_ns() {
  static const std::uint64_t epoch = obs::monotonic_ns();
  return epoch;
}

}  // namespace

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const double up =
      static_cast<double>(obs::monotonic_ns() - monotonic_epoch_ns()) * 1e-9;
  const std::time_t wall = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&wall, &tm);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm);
  std::fprintf(stderr, "[rtv %s +%.3fs %s t%02u] %s\n", level_name(level), up,
               stamp, obs::thread_index(), message.c_str());
}

}  // namespace rtv
