#include "rtv/base/rng.hpp"

#include <cassert>

namespace rtv {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : below(span));
}

double Rng::unit() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return unit() < p; }

Time Rng::sample_delay(const DelayInterval& d, Time unbounded_span) {
  const Time hi = d.upper_bounded() ? d.hi() : d.lo() + unbounded_span;
  return range(d.lo(), hi);
}

std::uint64_t Rng::mix(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t x = seed;
  const std::uint64_t a = splitmix64(x);
  x ^= 0xd1342543de82ef95ULL * (stream + 0x632be59bd9b4e019ULL);
  return splitmix64(x) ^ rotl(a, 23);
}

}  // namespace rtv
