#include "rtv/base/json.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace rtv::json {

void escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_string(std::string& out, std::string_view s) {
  out += '"';
  escape_into(out, s);
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string_view context)
      : text_(text), context_(context) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(std::string(context_) + ", offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::kString;
      v.string = parse_string();
      return v;
    }
    Value v;
    if (consume_literal("true")) {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // The writers only emit \u00XX for control characters; decode
          // the Latin-1 range as UTF-8 and reject the rest.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::string_view context_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text, std::string_view context) {
  return Parser(text, context).parse();
}

const Value& require(const Value& obj, std::string_view key, Value::Kind kind,
                     const char* what, std::string_view context) {
  const Value* v = obj.find(key);
  if (!v || v->kind != kind)
    throw std::runtime_error(std::string(context) +
                             ": missing or mistyped field '" +
                             std::string(key) + "' (" + what + ")");
  return *v;
}

}  // namespace rtv::json
