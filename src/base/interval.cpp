#include "rtv/base/interval.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>

namespace rtv {

Time ticks_from_units(double units) {
  return static_cast<Time>(std::llround(units * static_cast<double>(kTicksPerUnit)));
}

double units_from_ticks(Time t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerUnit);
}

DelayInterval DelayInterval::units(double lo, double hi) {
  return DelayInterval(ticks_from_units(lo), ticks_from_units(hi));
}

DelayInterval DelayInterval::at_least_units(double lo) {
  return DelayInterval(ticks_from_units(lo), kTimeInfinity);
}

DelayInterval DelayInterval::exactly_units(double d) {
  const Time t = ticks_from_units(d);
  return DelayInterval(t, t);
}

DelayInterval DelayInterval::intersect(const DelayInterval& other) const {
  return DelayInterval(std::max(lo_, other.lo_), std::min(hi_, other.hi_));
}

DelayInterval DelayInterval::widened(double slack) const {
  assert(slack >= 0.0);
  const Time new_lo =
      static_cast<Time>(std::llround(static_cast<double>(lo_) * (1.0 - slack)));
  Time new_hi = hi_;
  if (upper_bounded()) {
    new_hi = static_cast<Time>(std::llround(static_cast<double>(hi_) * (1.0 + slack)));
  }
  return DelayInterval(std::max<Time>(0, new_lo), new_hi);
}

std::string DelayInterval::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const DelayInterval& d) {
  os << '[' << units_from_ticks(d.lo()) << ',';
  if (d.upper_bounded()) {
    os << units_from_ticks(d.hi()) << ']';
  } else {
    os << "inf)";
  }
  return os;
}

}  // namespace rtv
