#include <deque>
#include <unordered_map>

#include "rtv/base/log.hpp"
#include "rtv/lazy/refined_system.hpp"

namespace rtv {

MaterializedLazyTs materialize(const RefinedSystem& sys, std::size_t max_states) {
  MaterializedLazyTs out;
  const TransitionSystem& base = sys.base();

  // Copy the event table so refined EventIds equal base EventIds.
  for (std::size_t i = 0; i < base.num_events(); ++i) {
    const Event& e = base.event(EventId(static_cast<EventId::underlying_type>(i)));
    out.ts.add_event(e.label, e.delay, e.kind);
  }

  std::unordered_map<RefinedState, StateId, RefinedStateHash> index;
  std::deque<RefinedState> queue;

  auto intern = [&](const RefinedState& rs) {
    auto it = index.find(rs);
    if (it != index.end()) return it->second;
    const StateId s = out.ts.add_state(base.state_name(rs.base));
    out.base_state.push_back(rs.base);
    if (base.has_valuations()) {
      if (out.ts.signal_names().empty())
        out.ts.set_signal_names(base.signal_names());
      out.ts.set_state_valuation(s, base.valuation(rs.base));
    }
    index.emplace(rs, s);
    queue.push_back(rs);
    return s;
  };

  out.ts.set_initial(intern(sys.initial()));

  while (!queue.empty()) {
    if (out.ts.num_states() > max_states) {
      out.truncated = true;
      RTV_WARN << "lazy materialisation truncated at " << out.ts.num_states();
      break;
    }
    const RefinedState rs = queue.front();
    queue.pop_front();
    const StateId from = index.at(rs);
    for (const Transition& t : base.transitions_from(rs.base)) {
      if (sys.blocked(rs, t.event)) {
        ++out.blocked_firings;
        continue;
      }
      out.ts.add_transition(from, t.event, intern(sys.advance(rs, t.event)));
    }
  }
  return out;
}

}  // namespace rtv
