#include "rtv/lazy/refined_system.hpp"

#include <algorithm>
#include <cassert>

#include "rtv/base/hash.hpp"

namespace rtv {

std::size_t RefinedStateHash::operator()(const RefinedState& s) const noexcept {
  std::size_t h = std::hash<StateId>()(s.base);
  for (std::uint32_t c : s.codes) h = hash_mix(h, c);
  for (std::uint16_t o : s.order) h = hash_mix(h, o);
  for (std::uint16_t g : s.gaps) h = hash_mix(h, g);
  return h;
}

namespace {

constexpr std::uint16_t kWaveStart = 0x8000;
constexpr std::uint16_t kIdMask = 0x7fff;

std::uint32_t code(std::size_t obs, std::uint32_t pos) {
  return static_cast<std::uint32_t>(obs << 16) | pos;
}
std::size_t code_obs(std::uint32_t c) { return c >> 16; }
std::uint32_t code_pos(std::uint32_t c) { return c & 0xffffu; }

/// Wave index of every entry of an order vector.
std::vector<std::size_t> wave_of_entries(const std::vector<std::uint16_t>& order) {
  std::vector<std::size_t> w(order.size());
  std::size_t wave = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] & kWaveStart) ++wave;
    w[i] = wave;
  }
  return w;
}

}  // namespace

void RefinedSystem::add_observer(BanObserver obs) {
  assert(!obs.window.empty());
  assert(obs.window.size() < 0x10000);
  observers_.push_back(std::move(obs));
}

void RefinedSystem::enable_age_rule(bool on) {
  age_rule_ = on;
  if (on) {
    // Cap for gap entries: anything above the largest finite upper bound
    // can never influence a blocking decision.
    cap_ = 1;
    for (std::size_t i = 0; i < base_->num_events(); ++i) {
      const DelayInterval d =
          base_->delay(EventId(static_cast<EventId::underlying_type>(i)));
      if (d.upper_bounded()) cap_ = std::max<Time>(cap_, d.hi() + 1);
    }
  }
}

void RefinedSystem::set_chokes(std::span<const ChokeRecord> chokes) {
  for (const ChokeRecord& c : chokes)
    chokes_[c.state.value()].push_back(c.event);
  for (auto& [state, events] : chokes_) {
    std::sort(events.begin(), events.end());
    events.erase(std::unique(events.begin(), events.end()), events.end());
  }
}

std::vector<EventId> RefinedSystem::pseudo_enabled(StateId s) const {
  std::vector<EventId> out = base_->enabled_events(s);
  const auto it = chokes_.find(s.value());
  if (it != chokes_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

std::vector<std::uint16_t> RefinedSystem::initial_order() const {
  std::vector<std::uint16_t> order;
  bool first = true;
  for (EventId e : pseudo_enabled(base_->initial())) {
    order.push_back(static_cast<std::uint16_t>(e.value()) |
                    (first ? kWaveStart : 0));
    first = false;
  }
  return order;
}

RefinedState RefinedSystem::initial() const {
  RefinedState s;
  s.base = base_->initial();
  for (std::size_t i = 0; i < observers_.size(); ++i) {
    const BanObserver& o = observers_[i];
    if (o.from_start || o.anchor_state == s.base) {
      s.codes.push_back(code(i, 0));
    }
  }
  std::sort(s.codes.begin(), s.codes.end());
  // Wave bookkeeping only matters once an ordering is active; the first
  // iteration explores the plain untimed product.
  if (age_rule_ && !pairs_.empty()) {
    s.order = initial_order();
    if (!s.order.empty()) s.gaps.assign(1, encode_gap(0));  // one wave
  }
  return s;
}

namespace {
constexpr std::uint16_t kGapInf = 0xffff;
}  // namespace

Time RefinedSystem::decode_gap(std::uint16_t v) const {
  return static_cast<Time>(v) - cap_;
}

std::uint16_t RefinedSystem::encode_gap(Time v) const {
  // Extrapolation: bounds beyond the cap carry no extra information for
  // any blocking decision, so they are clamped (upper bounds round up to
  // "unbounded", lower bounds saturate).
  if (v >= cap_) return kGapInf;
  if (v < -cap_) v = -cap_;
  return static_cast<std::uint16_t>(v + cap_);
}

bool RefinedSystem::activate_pair(EventId before, EventId after) {
  const auto pair = std::make_pair(before, after);
  if (std::find(pairs_.begin(), pairs_.end(), pair) != pairs_.end())
    return false;
  pairs_.push_back(pair);
  return true;
}

bool RefinedSystem::blocked_by_age(const RefinedState& s, EventId e) const {
  if (pairs_.empty()) return false;
  const Time lo = base_->delay(e).lo();
  const std::vector<std::size_t> waves = wave_of_entries(s.order);
  const std::size_t n =
      s.order.empty() ? 0 : waves.back() + 1;
  std::size_t e_wave = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < s.order.size(); ++i) {
    if (EventId(s.order[i] & kIdMask) == e) {
      e_wave = waves[i];
      break;
    }
  }
  if (e_wave == static_cast<std::size_t>(-1)) return false;

  // An activated pair (x before e) blocks e when x is pending and e's
  // earliest firing provably exceeds x's deadline:
  //   lower(t(wave_e) - t(wave_x)) + lo(e) > hi(x).
  // In every consistent timing x then fires (or is disabled) strictly
  // first, so pruning e only removes timing-inconsistent runs.
  for (std::size_t i = 0; i < s.order.size(); ++i) {
    const EventId x(s.order[i] & kIdMask);
    if (x == e) continue;
    if (std::find(pairs_.begin(), pairs_.end(), std::make_pair(x, e)) ==
        pairs_.end())
      continue;
    const DelayInterval dx = base_->delay(x);
    if (!dx.upper_bounded()) continue;
    const std::size_t w = waves[i];
    Time lower = 0;
    if (w != e_wave) {
      const std::uint16_t ub = s.gaps[w * n + e_wave];  // t(w) - t(e_wave) <= ub
      // Extrapolated ("unbounded") gaps carry no lower bound on
      // t(e_wave) - t(w).  Substituting -cap_ here would be unsound for
      // events whose *lower* bound exceeds the cap (cap_ only covers the
      // finite upper bounds): the true gap may be anywhere above cap_,
      // and the run where x fires late is exactly the failure.
      if (ub == kGapInf) continue;
      lower = -decode_gap(ub);
    }
    if (lower + lo > dx.hi()) return true;
  }
  return false;
}

bool RefinedSystem::blocked(const RefinedState& s, EventId e) const {
  if (age_rule_ && blocked_by_age(s, e)) return true;
  for (std::uint32_t c : s.codes) {
    const BanObserver& o = observers_[code_obs(c)];
    const std::uint32_t pos = code_pos(c);
    if (pos + 1 == o.window.size() && o.window[pos] == e) return true;
  }
  return false;
}

void RefinedSystem::advance_age(const RefinedState& s, EventId fired,
                                StateId succ, RefinedState* out) const {
  const std::vector<EventId> enabled = pseudo_enabled(succ);
  const std::vector<std::size_t> old_wave = wave_of_entries(s.order);
  const std::size_t n_old = s.order.empty() ? 0 : old_wave.back() + 1;

  std::size_t fired_wave = 0;
  for (std::size_t i = 0; i < s.order.size(); ++i) {
    if (EventId(s.order[i] & kIdMask) == fired) {
      fired_wave = old_wave[i];
      break;
    }
  }

  // Working DBM over the old waves plus the firing instant W = index n_old,
  // in plain Time with kTimeInfinity for "unbounded".
  const std::size_t n = n_old + 1;
  std::vector<Time> m(n * n, kTimeInfinity);
  auto at = [&](std::size_t i, std::size_t j) -> Time& { return m[i * n + j]; };
  for (std::size_t i = 0; i < n_old; ++i) {
    for (std::size_t j = 0; j < n_old; ++j) {
      const std::uint16_t v = s.gaps[i * n_old + j];
      at(i, j) = (v == kGapInf) ? kTimeInfinity : decode_gap(v);
    }
  }
  for (std::size_t i = 0; i < n; ++i) at(i, i) = 0;

  // The firing instant: within the fired event's delay window of its
  // enabling wave, no earlier than any existing instant, and no later than
  // any pending event's deadline (maximal progress).
  const DelayInterval df = base_->delay(fired);
  at(n_old, fired_wave) = std::min(at(n_old, fired_wave),
                                   df.upper_bounded() ? df.hi() : kTimeInfinity);
  at(fired_wave, n_old) = std::min(at(fired_wave, n_old), -df.lo());
  for (std::size_t j = 0; j < n_old; ++j)
    at(j, n_old) = std::min(at(j, n_old), Time{0});
  for (std::size_t i = 0; i < s.order.size(); ++i) {
    const EventId x(s.order[i] & kIdMask);
    if (x == fired) continue;
    const DelayInterval dx = base_->delay(x);
    if (dx.upper_bounded())
      at(n_old, old_wave[i]) = std::min(at(n_old, old_wave[i]), dx.hi());
  }

  // Shortest-path closure.
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) {
      if (at(i, k) >= kTimeInfinity) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (at(k, j) >= kTimeInfinity) continue;
        const Time v = at(i, k) + at(k, j);
        if (v < at(i, j)) at(i, j) = v;
      }
    }

  // Survivors and the fresh wave (events newly enabled at instant W).
  struct Entry {
    EventId event;
    std::size_t wave;
  };
  std::vector<Entry> survivors;
  survivors.reserve(s.order.size());
  for (std::size_t i = 0; i < s.order.size(); ++i) {
    const EventId e(s.order[i] & kIdMask);
    if (e == fired) continue;
    if (!std::binary_search(enabled.begin(), enabled.end(), e)) continue;
    survivors.push_back({e, old_wave[i]});
  }
  std::vector<EventId> fresh;
  fresh.reserve(enabled.size());
  for (EventId e : enabled) {
    const bool surviving =
        std::any_of(survivors.begin(), survivors.end(),
                    [&](const Entry& en) { return en.event == e; });
    if (!surviving) fresh.push_back(e);
  }

  std::vector<std::size_t> kept;  // old wave indices with survivors
  kept.reserve(survivors.size() + 1);
  for (const Entry& en : survivors) {
    if (std::find(kept.begin(), kept.end(), en.wave) == kept.end())
      kept.push_back(en.wave);
  }
  if (!fresh.empty()) kept.push_back(n_old);  // the fresh wave instant

  // Bound the tracked waves: merge the oldest two into one pseudo-instant
  // whose bounds cover both (elementwise weaker), reassigning the older
  // wave's events.  Sound: every constraint stated about the merged
  // instant holds for both original instants.
  std::vector<std::vector<std::size_t>> merged_into(kept.size());
  for (std::size_t a = 0; a < kept.size(); ++a) merged_into[a] = {kept[a]};
  while (kept.size() > std::max<std::size_t>(2, max_waves_)) {
    const std::size_t w0 = kept[0], w1 = kept[1];
    for (std::size_t j = 0; j < n; ++j) {
      at(w1, j) = std::max(at(w1, j), at(w0, j));
      at(j, w1) = std::max(at(j, w1), at(j, w0));
    }
    at(w1, w1) = 0;
    merged_into[1].insert(merged_into[1].end(), merged_into[0].begin(),
                          merged_into[0].end());
    merged_into.erase(merged_into.begin());
    kept.erase(kept.begin());
  }
  const std::size_t n_new = kept.size();

  out->order.clear();
  out->gaps.assign(n_new * n_new, kGapInf);
  for (std::size_t a = 0; a < n_new; ++a)
    for (std::size_t b = 0; b < n_new; ++b)
      out->gaps[a * n_new + b] = encode_gap(at(kept[a], kept[b]));
  for (std::size_t a = 0; a < n_new; ++a)
    out->gaps[a * n_new + a] = encode_gap(0);

  for (std::size_t a = 0; a < n_new; ++a) {
    bool first = true;
    for (std::size_t src : merged_into[a]) {
      if (src == n_old) {
        for (EventId e : fresh) {
          out->order.push_back(static_cast<std::uint16_t>(e.value()) |
                               (first ? kWaveStart : 0));
          first = false;
        }
      } else {
        for (const Entry& en : survivors) {
          if (en.wave != src) continue;
          out->order.push_back(static_cast<std::uint16_t>(en.event.value()) |
                               (first ? kWaveStart : 0));
          first = false;
        }
      }
    }
  }
}

RefinedState RefinedSystem::advance(const RefinedState& s, EventId e) const {
  assert(!blocked(s, e));
  const auto succ = base_->successor(s.base, e);
  assert(succ.has_value());
  RefinedState out;
  out.base = *succ;
  for (std::uint32_t c : s.codes) {
    const BanObserver& o = observers_[code_obs(c)];
    const std::uint32_t pos = code_pos(c);
    if (o.window[pos] == e && pos + 1 < o.window.size()) {
      out.codes.push_back(code(code_obs(c), pos + 1));
    }
    // Non-matching positions die: the run diverged from the window.
  }
  for (std::size_t i = 0; i < observers_.size(); ++i) {
    const BanObserver& o = observers_[i];
    if (!o.from_start && o.anchor_state == out.base) {
      out.codes.push_back(code(i, 0));
    }
  }
  std::sort(out.codes.begin(), out.codes.end());
  out.codes.erase(std::unique(out.codes.begin(), out.codes.end()),
                  out.codes.end());
  if (age_rule_ && !pairs_.empty()) advance_age(s, e, out.base, &out);
  return out;
}

}  // namespace rtv
