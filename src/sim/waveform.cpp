#include "rtv/sim/waveform.hpp"

#include <algorithm>
#include <sstream>

namespace rtv {

namespace {

std::vector<std::size_t> resolve(const TransitionSystem& ts,
                                 const std::vector<std::string>& signals) {
  std::vector<std::size_t> idx;
  for (const std::string& s : signals) {
    const std::size_t i = ts.signal_index(s);
    if (i != static_cast<std::size_t>(-1)) idx.push_back(i);
  }
  return idx;
}

}  // namespace

std::string ascii_waveform(const TransitionSystem& ts, const SimTrace& trace,
                           const std::vector<std::string>& signals,
                           std::size_t columns) {
  std::ostringstream os;
  const std::size_t n =
      std::min({trace.events.size(), trace.valuations.size(), columns});
  std::size_t width = 0;
  for (const std::string& s : signals) width = std::max(width, s.size());

  for (const std::string& name : signals) {
    const std::size_t idx = ts.signal_index(name);
    os << name << std::string(width - name.size(), ' ') << " ";
    if (idx == static_cast<std::size_t>(-1)) {
      os << "(unknown signal)\n";
      continue;
    }
    bool prev = false;
    bool have_prev = false;
    for (std::size_t k = 0; k < n; ++k) {
      const bool v = trace.valuations[k].test(idx);
      if (have_prev && v != prev) {
        os << (v ? '/' : '\\');
      } else {
        os << (v ? '\'' : '.');
      }
      prev = v;
      have_prev = true;
    }
    os << "\n";
  }
  os << std::string(width + 1, ' ');
  for (std::size_t k = 0; k < n; ++k) {
    os << (k % 10 == 0 ? '|' : ' ');
  }
  os << "\n";
  return os.str();
}

std::string to_vcd(const TransitionSystem& ts, const SimTrace& trace,
                   const std::vector<std::string>& signals) {
  std::vector<std::string> names = signals;
  if (names.empty()) names = ts.signal_names();
  const std::vector<std::size_t> idx = resolve(ts, names);

  std::ostringstream os;
  os << "$date today $end\n$timescale 10ps $end\n$scope module rtv $end\n";
  // VCD identifier per signal: printable chars from '!'.
  for (std::size_t k = 0; k < idx.size(); ++k) {
    os << "$var wire 1 " << static_cast<char>('!' + k) << " " << names[k]
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<int> last(idx.size(), -1);
  const std::size_t n = std::min(trace.events.size(), trace.valuations.size());
  for (std::size_t e = 0; e < n; ++e) {
    bool stamped = false;
    for (std::size_t k = 0; k < idx.size(); ++k) {
      const int v = trace.valuations[e].test(idx[k]) ? 1 : 0;
      if (v != last[k]) {
        if (!stamped) {
          os << "#" << trace.events[e].time << "\n";
          stamped = true;
        }
        os << v << static_cast<char>('!' + k) << "\n";
        last[k] = v;
      }
    }
  }
  return os.str();
}

}  // namespace rtv
