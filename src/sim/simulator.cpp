#include "rtv/sim/simulator.hpp"

#include <algorithm>

namespace rtv {

SimTrace simulate(const TransitionSystem& ts, const SimOptions& options) {
  SimTrace out;
  Rng rng(options.seed);

  StateId state = ts.initial();
  Time now = 0;
  // Scheduled firing time per pending enabled event.
  struct Pending {
    EventId event;
    Time fire_at;
  };
  std::vector<Pending> pending;
  for (EventId e : ts.enabled_events(state))
    pending.push_back({e, rng.sample_delay(ts.delay(e))});

  while (out.events.size() < options.max_events && now <= options.max_time) {
    if (pending.empty()) {
      out.deadlocked = true;
      break;
    }
    // Race semantics: the earliest schedule fires.
    auto it = std::min_element(
        pending.begin(), pending.end(),
        [](const Pending& a, const Pending& b) { return a.fire_at < b.fire_at; });
    const Pending fired = *it;
    now = fired.fire_at;
    const auto succ = ts.successor(state, fired.event);
    state = *succ;

    out.events.push_back(
        {now, fired.event, ts.label(fired.event), state});
    if (ts.has_valuations()) out.valuations.push_back(ts.valuation(state));

    // Persistent events keep their schedules; the fired event and disabled
    // events are dropped; newly enabled events are sampled from now.
    const std::vector<EventId> enabled = ts.enabled_events(state);
    std::vector<Pending> next;
    for (const Pending& p : pending) {
      if (p.event == fired.event) continue;
      if (std::binary_search(enabled.begin(), enabled.end(), p.event))
        next.push_back(p);
    }
    for (EventId e : enabled) {
      const bool already =
          std::any_of(next.begin(), next.end(),
                      [&](const Pending& p) { return p.event == e; });
      if (!already) next.push_back({e, now + rng.sample_delay(ts.delay(e))});
    }
    pending = std::move(next);
  }
  out.end_time = now;
  return out;
}

}  // namespace rtv

// ---------------------------------------------------------------------------
// On-the-fly composition simulation.

#include "rtv/ts/module.hpp"

namespace rtv {

SimTrace simulate_modules(const std::vector<const Module*>& modules,
                          const SimOptions& options) {
  SimTrace out;
  Rng rng(options.seed);
  const std::size_t n_mod = modules.size();

  // Union alphabet with participation map and tightest delays.
  std::vector<std::string> labels;
  for (const Module* m : modules)
    for (const std::string& l : m->alphabet()) labels.push_back(l);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  std::vector<std::vector<EventId>> local(labels.size(),
                                          std::vector<EventId>(n_mod));
  std::vector<DelayInterval> delay(labels.size());
  for (std::size_t li = 0; li < labels.size(); ++li) {
    DelayInterval d = DelayInterval::unbounded();
    for (std::size_t mi = 0; mi < n_mod; ++mi) {
      local[li][mi] = modules[mi]->ts().event_by_label(labels[li]);
      if (local[li][mi].valid())
        d = d.intersect(modules[mi]->ts().event(local[li][mi]).delay);
    }
    delay[li] = d;
  }

  // Merged signal table.
  std::vector<std::string> signals;
  for (const Module* m : modules)
    for (const std::string& s : m->ts().signal_names()) signals.push_back(s);
  std::sort(signals.begin(), signals.end());
  signals.erase(std::unique(signals.begin(), signals.end()), signals.end());
  out.signal_names = signals;

  std::vector<StateId> state(n_mod);
  for (std::size_t mi = 0; mi < n_mod; ++mi) state[mi] = modules[mi]->ts().initial();

  auto label_enabled = [&](std::size_t li) {
    for (std::size_t mi = 0; mi < n_mod; ++mi) {
      const EventId le = local[li][mi];
      if (le.valid() && !modules[mi]->ts().is_enabled(state[mi], le)) return false;
    }
    return true;
  };

  auto merged_valuation = [&]() {
    BitVec v(signals.size());
    for (std::size_t mi = 0; mi < n_mod; ++mi) {
      const TransitionSystem& ts = modules[mi]->ts();
      if (!ts.has_valuations()) continue;
      const BitVec& lv = ts.valuation(state[mi]);
      const auto& names = ts.signal_names();
      for (std::size_t k = 0; k < names.size(); ++k) {
        if (!lv.test(k)) continue;
        const auto it = std::lower_bound(signals.begin(), signals.end(), names[k]);
        v.set(static_cast<std::size_t>(it - signals.begin()));
      }
    }
    return v;
  };

  struct Pending {
    std::size_t label;
    Time fire_at;
  };
  std::vector<Pending> pending;
  Time now = 0;
  for (std::size_t li = 0; li < labels.size(); ++li)
    if (label_enabled(li)) pending.push_back({li, rng.sample_delay(delay[li])});

  while (out.events.size() < options.max_events && now <= options.max_time) {
    if (pending.empty()) {
      out.deadlocked = true;
      break;
    }
    auto it = std::min_element(
        pending.begin(), pending.end(),
        [](const Pending& a, const Pending& b) { return a.fire_at < b.fire_at; });
    const Pending fired = *it;
    now = fired.fire_at;
    for (std::size_t mi = 0; mi < n_mod; ++mi) {
      const EventId le = local[fired.label][mi];
      if (le.valid()) state[mi] = *modules[mi]->ts().successor(state[mi], le);
    }
    out.events.push_back({now, EventId::invalid(), labels[fired.label],
                          StateId::invalid()});
    out.valuations.push_back(merged_valuation());

    std::vector<Pending> next;
    for (const Pending& p : pending) {
      if (p.label == fired.label) continue;
      if (label_enabled(p.label)) next.push_back(p);
    }
    for (std::size_t li = 0; li < labels.size(); ++li) {
      if (!label_enabled(li)) continue;
      const bool already = std::any_of(
          next.begin(), next.end(),
          [&](const Pending& p) { return p.label == li; });
      if (!already) next.push_back({li, now + rng.sample_delay(delay[li])});
    }
    pending = std::move(next);
  }
  out.end_time = now;
  return out;
}

}  // namespace rtv
