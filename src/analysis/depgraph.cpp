#include "rtv/analysis/depgraph.hpp"

#include <algorithm>

namespace rtv::analysis {

namespace {

ModuleFacts module_facts(const Module& m) {
  ModuleFacts f;
  const TransitionSystem& ts = m.ts();
  f.fireable.assign(ts.num_events(), false);
  const StateId init = ts.initial();
  if (!init.valid() || init.value() >= ts.num_states()) return f;
  f.reachable = ts.reachable_states();
  for (const StateId s : f.reachable)
    for (const Transition& t : ts.transitions_from(s)) {
      f.fireable[t.event.value()] = true;
      f.has_reachable_transition = true;
      const DelayInterval d = ts.delay(t.event);
      if (d.upper_bounded() && d.hi() == 0) f.can_pin_time = true;
    }
  // Local conflict shapes: a reachable state where firing one enabled
  // event (any of its transitions) lands in a state that no longer
  // enables another, distinct, co-enabled event.
  for (const StateId s : f.reachable) {
    if (f.has_local_conflict) break;
    const std::vector<EventId> enabled = ts.enabled_events(s);
    if (enabled.size() < 2) continue;
    for (const Transition& t : ts.transitions_from(s)) {
      for (const EventId other : enabled) {
        if (other == t.event) continue;
        if (!ts.is_enabled(t.target, other)) {
          f.has_local_conflict = true;
          break;
        }
      }
      if (f.has_local_conflict) break;
    }
  }
  return f;
}

}  // namespace

std::vector<std::size_t> DepGraph::signal_owners(
    const std::vector<const Module*>& modules, const std::string& name) const {
  std::vector<std::size_t> owners;
  for (std::size_t mi = 0; mi < modules.size(); ++mi)
    if (modules[mi]->ts().signal_index(name) !=
        static_cast<std::size_t>(-1))
      owners.push_back(mi);
  return owners;
}

DepGraph build_depgraph(const std::vector<const Module*>& modules) {
  DepGraph g;
  g.facts.reserve(modules.size());
  for (const Module* m : modules) g.facts.push_back(module_facts(*m));

  for (std::size_t mi = 0; mi < modules.size(); ++mi)
    for (const std::string& label : modules[mi]->alphabet())
      g.label_owners[label].push_back(mi);

  g.adjacent.assign(modules.size(), {});
  for (const auto& [label, owners] : g.label_owners) {
    if (owners.size() < 2) continue;
    for (const std::size_t a : owners)
      for (const std::size_t b : owners)
        if (a != b) g.adjacent[a].push_back(b);
  }
  for (auto& adj : g.adjacent) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }

  // Connected components of the shared-label relation (iterative DFS).
  g.component.assign(modules.size(), static_cast<std::size_t>(-1));
  for (std::size_t mi = 0; mi < modules.size(); ++mi) {
    if (g.component[mi] != static_cast<std::size_t>(-1)) continue;
    const std::size_t id = g.num_components++;
    std::vector<std::size_t> stack{mi};
    g.component[mi] = id;
    while (!stack.empty()) {
      const std::size_t cur = stack.back();
      stack.pop_back();
      for (const std::size_t next : g.adjacent[cur])
        if (g.component[next] == static_cast<std::size_t>(-1)) {
          g.component[next] = id;
          stack.push_back(next);
        }
    }
  }
  return g;
}

}  // namespace rtv::analysis
