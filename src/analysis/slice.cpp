#include "rtv/analysis/slice.hpp"

#include <algorithm>
#include <utility>

#include "rtv/verify/obligation_hash.hpp"

namespace rtv::analysis {

namespace {

/// Static classification of the property bundle.  A property subclass
/// this layer does not know cannot get a cone rule, so the caller bails.
struct PropertyFacts {
  bool deadlock = false;
  bool persistency = false;
  std::vector<const InvariantProperty*> invariants;
  const SafetyProperty* unknown = nullptr;
};

PropertyFacts classify(const std::vector<const SafetyProperty*>& properties) {
  PropertyFacts f;
  for (const SafetyProperty* p : properties) {
    if (dynamic_cast<const DeadlockFreedom*>(p)) {
      f.deadlock = true;
    } else if (dynamic_cast<const PersistencyProperty*>(p)) {
      f.persistency = true;
    } else if (const auto* inv = dynamic_cast<const InvariantProperty*>(p)) {
      f.invariants.push_back(inv);
    } else if (!f.unknown) {
      f.unknown = p;
    }
  }
  return f;
}

SliceResult identity_slice(const std::vector<const Module*>& modules,
                           std::string bailout_reason) {
  SliceResult r;
  r.modules = modules;
  r.kept.resize(modules.size());
  for (std::size_t i = 0; i < modules.size(); ++i) r.kept[i] = i;
  r.identity = true;
  if (!bailout_reason.empty()) {
    r.bailout = bailout_reason;
    r.notes.push_back({"bailout", "", "", std::move(bailout_reason)});
  }
  return r;
}

/// Rebuild a module keeping only its reachable states and, where sound,
/// dropping dead events.  `drop_event[ei]` marks events that label no
/// reachable transition *and* whose label no other kept module declares
/// (removing a shared label would change the synchronization structure,
/// so those stay even when dead).
Module rebuild(const Module& m, const ModuleFacts& facts,
               const std::vector<bool>& drop_event) {
  const TransitionSystem& ts = m.ts();
  TransitionSystem out;

  std::vector<EventId> event_map(ts.num_events(), EventId::invalid());
  for (std::size_t ei = 0; ei < ts.num_events(); ++ei) {
    if (drop_event[ei]) continue;
    const EventId old(static_cast<std::uint32_t>(ei));
    event_map[ei] = out.add_event(ts.label(old), ts.delay(old),
                                  ts.event(old).kind);
  }

  std::vector<StateId> state_map(ts.num_states(), StateId::invalid());
  for (const StateId s : facts.reachable)
    state_map[s.value()] = out.add_state(ts.state_name(s));
  out.set_initial(state_map[ts.initial().value()]);

  if (!ts.signal_names().empty()) out.set_signal_names(ts.signal_names());
  for (const StateId s : facts.reachable) {
    if (ts.has_valuations())
      out.set_state_valuation(state_map[s.value()], ts.valuation(s));
    for (const Transition& t : ts.transitions_from(s))
      out.add_transition(state_map[s.value()], event_map[t.event.value()],
                         state_map[t.target.value()]);
  }
  return Module(m.name(), std::move(out));
}

}  // namespace

std::vector<const Module*> canonical_order(
    const std::vector<const Module*>& modules) {
  std::vector<const Module*> out = modules;
  std::stable_sort(out.begin(), out.end(),
                   [](const Module* a, const Module* b) {
                     return module_content_hash(*a) < module_content_hash(*b);
                   });
  return out;
}

SliceResult slice(const std::vector<const Module*>& modules,
                  const std::vector<const SafetyProperty*>& properties,
                  const SliceOptions& options, const DepGraph* graph) {
  if (modules.empty())
    return identity_slice(modules, "obligation carries no modules");

  DepGraph local;
  if (!graph) {
    local = build_depgraph(modules);
    graph = &local;
  }

  for (const Module* m : modules) {
    const StateId init = m->ts().initial();
    if (!init.valid() || init.value() >= m->ts().num_states())
      return identity_slice(modules, "module '" + m->name() +
                                         "' has no valid initial state — "
                                         "not provably sliceable");
  }

  const PropertyFacts props = classify(properties);
  if (props.unknown)
    return identity_slice(modules, "property '" + props.unknown->name() +
                                       "' has no static cone rule — "
                                       "keeping the full obligation");

  // Which connected components of the shared-label relation does some
  // property (or the choke semantics) pull into the cone?
  std::vector<bool> needed(graph->num_components, false);
  std::vector<std::size_t> component_size(graph->num_components, 0);
  for (std::size_t mi = 0; mi < modules.size(); ++mi)
    ++component_size[graph->component[mi]];

  // Choke tracking: a refused output inside a multi-module component is a
  // reportable failure on its own, independent of the property bundle, so
  // such components are never provably irrelevant.
  if (options.track_chokes)
    for (std::size_t c = 0; c < graph->num_components; ++c)
      if (component_size[c] > 1) needed[c] = true;

  // Time is a shared resource even across disconnected components: a
  // module with a fireable zero-deadline event can be forced to fire
  // without letting the clock advance, and a reachable cycle of such
  // events pins global time (a Zeno run) — masking timed behaviour in
  // every other component.  Only modules that provably let time diverge
  // are droppable, so a potential pinner pulls its component in
  // regardless of the property bundle.
  for (std::size_t mi = 0; mi < modules.size(); ++mi)
    if (graph->facts[mi].can_pin_time) needed[graph->component[mi]] = true;

  // Deadlock-freedom observes every module that can ever fire: a
  // disconnected always-live module masks every composed deadlock, and a
  // disconnected stuck module is itself at stake, so only components with
  // no reachable transition at all are irrelevant to it.
  if (props.deadlock)
    for (std::size_t mi = 0; mi < modules.size(); ++mi)
      if (graph->facts[mi].has_reachable_transition)
        needed[graph->component[mi]] = true;

  // Persistency: every composed disabling projects onto a module-local
  // conflict in a participant of the fired event, so only components
  // containing such a conflict can source a violation.
  if (props.persistency)
    for (std::size_t mi = 0; mi < modules.size(); ++mi)
      if (graph->facts[mi].has_local_conflict)
        needed[graph->component[mi]] = true;

  // Invariants: seed with every module declaring a referenced signal.
  for (const InvariantProperty* inv : props.invariants)
    for (const InvariantProperty::Literal& lit : inv->forbidden()) {
      const std::vector<std::size_t> owners =
          graph->signal_owners(modules, lit.signal);
      if (owners.empty())
        return identity_slice(
            modules, "invariant '" + inv->name() + "' references signal '" +
                         lit.signal +
                         "' that no module declares — keeping the full "
                         "obligation");
      for (const std::size_t mi : owners) needed[graph->component[mi]] = true;
    }

  SliceResult r;
  for (std::size_t mi = 0; mi < modules.size(); ++mi) {
    if (needed[graph->component[mi]]) {
      r.kept.push_back(mi);
      continue;
    }
    ++r.dropped_modules;
    r.dropped_events += modules[mi]->ts().num_events();
    std::string reason =
        "disconnected from every kept module; outside every property's "
        "cone (";
    std::vector<std::string> parts;
    if (props.deadlock)
      parts.push_back("no reachable transition, so it can neither mask nor "
                      "cause a composed deadlock");
    if (props.persistency)
      parts.push_back("conflict-free, so it cannot source a persistency "
                      "violation");
    if (!props.invariants.empty())
      parts.push_back("declares no signal any invariant references");
    if (parts.empty()) parts.push_back("no property observes it");
    for (std::size_t i = 0; i < parts.size(); ++i)
      reason += (i ? "; " : "") + parts[i];
    reason += ")";
    r.notes.push_back({"module", modules[mi]->name(), "", std::move(reason)});
  }

  if (r.kept.empty()) {
    // Deadlock-freedom never empties the cone unless every module is
    // permanently stuck — and then the initial state *is* the deadlock,
    // so the engines must see it.
    if (props.deadlock)
      return identity_slice(modules,
                            "deadlock-freedom requested and every module is "
                            "permanently stuck — the engines must witness "
                            "the initial deadlock");
    // Empty cone: no kept module means no property can be violated and
    // (all dropped components being single modules when chokes are
    // tracked) no output can be refused.  run_suite() answers VERIFIED
    // without composing anything.
    r.identity = false;
    r.notes.push_back({"module", "", "",
                       "cone is empty — every property is statically "
                       "unviolable on this obligation"});
    return r;
  }

  // Prune inside the kept modules: drop statically-unreachable states
  // and events that label no reachable transition, provided their label
  // is private to the module (a dead shared label still synchronizes —
  // removing it would free the peers that declare it).
  for (const std::size_t mi : r.kept) {
    const Module& m = *modules[mi];
    const TransitionSystem& ts = m.ts();
    const ModuleFacts& facts = graph->facts[mi];

    std::vector<bool> drop_event(ts.num_events(), false);
    std::size_t dead_events = 0;
    for (std::size_t ei = 0; ei < ts.num_events(); ++ei) {
      if (facts.fireable[ei]) continue;
      const std::string& label =
          ts.label(EventId(static_cast<std::uint32_t>(ei)));
      const auto owners = graph->label_owners.find(label);
      bool shared_with_kept = false;
      if (owners != graph->label_owners.end())
        for (const std::size_t owner : owners->second)
          if (owner != mi && needed[graph->component[owner]])
            shared_with_kept = true;
      if (shared_with_kept) continue;
      drop_event[ei] = true;
      ++dead_events;
      r.notes.push_back({"events", m.name(), label,
                         "event '" + label +
                             "' labels no transition from any reachable "
                             "state and its label is private — removed"});
    }

    const std::size_t unreachable = ts.num_states() - facts.reachable.size();
    if (dead_events == 0 && unreachable == 0) {
      r.modules.push_back(&m);
      continue;
    }
    if (unreachable > 0)
      r.notes.push_back({"states", m.name(), std::to_string(unreachable),
                         std::to_string(unreachable) +
                             " state(s) statically unreachable — pruned"});
    r.dropped_events += dead_events;
    r.pruned_states += unreachable;
    r.reduced.push_back(rebuild(m, facts, drop_event));
    r.modules.push_back(&r.reduced.back());
  }

  r.identity =
      r.dropped_modules == 0 && r.dropped_events == 0 && r.pruned_states == 0;
  return r;
}

}  // namespace rtv::analysis
