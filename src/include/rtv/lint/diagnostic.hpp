// Structured lint diagnostics.
//
// Every finding of the static analyzer (rtv/lint/lint.hpp) is one
// Diagnostic: a stable check code ("RTV-L004"), a severity, a location
// naming the module and the object inside it (event label, signal,
// property or state name), and a human-readable message.  A LintReport
// aggregates the findings of one obligation with severity counts, a
// CLI-ready text rendering and a schema-versioned JSON form
// (rtv/base/json.hpp), round-trippable through parse_lint_report() so
// scripted consumers — CI gates, the serve wire, the suite report's
// per-record `lint` field — never scrape the human text.
#pragma once

#include <string>
#include <vector>

#include "rtv/base/json.hpp"

namespace rtv::lint {

/// Severities, strictest first.  Errors predict a run that cannot give a
/// useful answer (the suite pre-flight short-circuits them to
/// kInconclusive); warnings flag likely modelling mistakes or predictable
/// engine pain but never block a run; notes are informational.
enum class Severity {
  kError,
  kWarning,
  kNote,
};

const char* to_string(Severity s);
/// Inverse of to_string(); throws std::runtime_error on an unknown name.
Severity severity_from_string(const std::string& s);

/// One finding.  `module` and `object` may be empty when the finding is
/// obligation-wide (e.g. a cross-module contradiction names the modules in
/// the message instead).
struct Diagnostic {
  std::string code;     ///< stable check code, e.g. "RTV-L004"
  Severity severity = Severity::kWarning;
  std::string module;   ///< module the finding is anchored in ("" = none)
  std::string object;   ///< event label / signal / property / state ("")
  std::string message;  ///< human-readable explanation

  /// One-line rendering: "error RTV-L004 [mod/obj]: message".
  std::string format() const;
};

/// Append one diagnostic as a JSON object (the shared shape used by the
/// lint report and by SuiteReport records).
void append_diagnostic(std::string& out, const Diagnostic& d);

/// Parse one diagnostic object; `context` prefixes error messages.
Diagnostic diagnostic_from_json(const json::Value& v, std::string_view context);

/// The findings of one lint pass, severity-ordered (errors first, then
/// warnings, then notes; stable within a severity).
struct LintReport {
  /// Bumped whenever the JSON layout changes incompatibly.
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "rtv-lint-report";

  std::vector<Diagnostic> diagnostics;

  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }
  std::size_t notes() const { return count(Severity::kNote); }
  bool has_errors() const { return errors() > 0; }
  bool clean() const { return diagnostics.empty(); }

  /// CLI/CI exit-code convention of `rtv lint`: 0 = clean (notes do not
  /// dirty a model), 1 = warnings, 2 = errors.
  int exit_code() const;

  /// Severity-sort in place (errors, warnings, notes; stable otherwise).
  void sort_by_severity();

  /// Human rendering: one format() line per diagnostic plus a summary
  /// line ("lint: 1 error, 2 warnings" or "lint: clean").
  std::string format() const;

  /// Stable machine-readable serialization (see docs/LINT.md).
  std::string to_json() const;
};

/// Parse a to_json() document back; throws std::runtime_error on malformed
/// JSON, a wrong schema tag, or a version newer than this library (strict
/// in both directions, like the suite report parser).
LintReport parse_lint_report(const std::string& json);

}  // namespace rtv::lint
