// The static model analyzer: `rtv lint`.
//
// Every soundness bug this library has shipped — the 16-bit digitization
// wrap, the lazy-ts gap extrapolation — was a property of the *input
// model* interacting with an engine limit that was knowable before any
// exploration ran.  lint_modules() closes that gap: a purely structural
// pass over an obligation (modules + properties + budget) that runs *no
// engine* and emits stable, machine-readable Diagnostics
// (rtv/lint/diagnostic.hpp).  The checks span four families:
//
//   well-formedness     missing initial states, invalid or duplicate
//                       event declarations, dangling signal/label
//                       references from properties;
//   interval contradictions
//                       per-label empty delay-bound intersections across
//                       composed modules — the exact check compose()
//                       enforces (rtv/ts/delay_bounds.hpp), reported
//                       before composition with full context;
//   static reachability events that can never fire, dead signals,
//                       trivially unsatisfiable or tautological
//                       properties, trivially violated deadlock-freedom;
//   engine-range prediction
//                       delay constants vs. the discrete engine's
//                       digitization cost and the configured state
//                       budget — the wrap-bug class flagged statically
//                       instead of discovered as a truncated run.
//
// Callers: the `rtv lint` CLI subcommand, the run_suite() pre-flight
// (errors short-circuit to kInconclusive with stop_reason::kLintError;
// warnings attach to the suite records), the serve fast-reject path, and
// the fuzz campaign's lint cross-check.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rtv/base/interval.hpp"
#include "rtv/lint/diagnostic.hpp"
#include "rtv/ts/module.hpp"
#include "rtv/verify/property.hpp"
#include "rtv/verify/suite.hpp"

namespace rtv::lint {

// ---------------------------------------------------------------------------
// Check codes (stable; see docs/LINT.md for the full catalogue).
// ---------------------------------------------------------------------------

namespace check {
// well-formedness
inline constexpr const char* kNoInitialState = "RTV-L001";    ///< error
inline constexpr const char* kInvalidInterval = "RTV-L002";   ///< error
inline constexpr const char* kDuplicateLabel = "RTV-L003";    ///< error
inline constexpr const char* kDelayContradiction = "RTV-L004";  ///< error
inline constexpr const char* kDanglingSignal = "RTV-L005";    ///< error
inline constexpr const char* kDanglingExempt = "RTV-L006";    ///< warning
// static reachability
inline constexpr const char* kUnfireableEvent = "RTV-L007";   ///< warning
inline constexpr const char* kDeadSignal = "RTV-L008";        ///< warning
inline constexpr const char* kEmptyInvariant = "RTV-L009";    ///< error
inline constexpr const char* kTautologicalInvariant = "RTV-L010";  ///< warning
// engine-range prediction
inline constexpr const char* kInfinityAliasedBound = "RTV-L011";   ///< error
inline constexpr const char* kCertainTruncation = "RTV-L012";      ///< error
inline constexpr const char* kDigitizationCost = "RTV-L013";       ///< warning
// obligation shape
inline constexpr const char* kDisjointAlphabet = "RTV-L014";  ///< warning
inline constexpr const char* kTrivialDeadlock = "RTV-L015";   ///< warning
// cone of influence (what `rtv slice` would drop; rtv/analysis/slice.hpp)
inline constexpr const char* kOutsideCone = "RTV-L016";       ///< note
inline constexpr const char* kSliceUnreachable = "RTV-L017";  ///< note
}  // namespace check

/// Constants past this many ticks fall outside the historical 16-bit
/// digitized age range (the PR 3 wrap-bug class).  Ages are 64-bit now, so
/// such models verify correctly — but the discrete engine's tick-stepping
/// cost is linear in the constants, so RTV-L013 flags them as a cost
/// hazard, and RTV-L012 escalates to an error when the configured state
/// budget makes truncation certain.
inline constexpr Time kLegacyAgeRangeTicks = 65535;

struct LintOptions {
  /// Engines the obligation is destined for; engine-range checks
  /// (RTV-L011..L013) only fire for engines that digitize.  Empty means
  /// "unknown" and keeps every engine-specific check armed.
  std::vector<std::string> engines;
  /// Effective per-engine state budget; 0 = each engine's native default
  /// (the discrete engine's 4M configs).  Feeds RTV-L012's certain-
  /// truncation prediction.
  std::size_t max_states = 0;
};

/// Lint one obligation: modules composed over shared labels plus the
/// properties checked against the composition.  Purely structural — never
/// composes, never runs an engine; cost is linear in the component sizes.
/// The report comes back severity-sorted (errors first).
LintReport lint_modules(const std::vector<const Module*>& modules,
                        const std::vector<const SafetyProperty*>& properties,
                        const LintOptions& options = {});

/// Lint one suite obligation with the engine selection and budget
/// run_suite() would resolve for it (per-obligation overrides included) —
/// exactly the pre-flight the scheduler runs.
LintReport lint_obligation(const Obligation& obligation,
                           const SuiteOptions& options = {});

}  // namespace rtv::lint
