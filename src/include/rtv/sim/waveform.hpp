// Waveform rendering of simulation traces: ASCII (the Fig. 7 reproduction)
// and VCD for external viewers.
#pragma once

#include <string>
#include <vector>

#include "rtv/sim/simulator.hpp"

namespace rtv {

/// ASCII waveform of the selected signals, one row per signal, sampled on
/// every event of the trace.  `columns` caps the width (events beyond it
/// are dropped).
std::string ascii_waveform(const TransitionSystem& ts, const SimTrace& trace,
                           const std::vector<std::string>& signals,
                           std::size_t columns = 120);

/// IEEE 1364 VCD dump of the selected signals (all signals if empty).
std::string to_vcd(const TransitionSystem& ts, const SimTrace& trace,
                   const std::vector<std::string>& signals = {});

}  // namespace rtv
