// Timed discrete-event simulation of a composed transition system.
//
// Each enabled event is scheduled at enabling-time + a delay sampled
// uniformly from its interval; the earliest schedule fires (race semantics
// matching the TTS model).  Used to produce the Fig. 7 waveform and for
// randomized conformance testing against the verifier.
#pragma once

#include <string>
#include <vector>

#include "rtv/base/rng.hpp"
#include "rtv/ts/transition_system.hpp"

namespace rtv {

struct SimEvent {
  Time time = 0;
  EventId event;
  std::string label;
  StateId state_after;
};

struct SimTrace {
  std::vector<SimEvent> events;
  /// Signal values sampled after each event (parallel to `events`) when the
  /// system carries valuations.
  std::vector<BitVec> valuations;
  /// Signal table the valuations refer to (empty: use the system's own).
  std::vector<std::string> signal_names;
  bool deadlocked = false;
  Time end_time = 0;
};

struct SimOptions {
  std::size_t max_events = 10000;
  Time max_time = 1000 * kTicksPerUnit;
  std::uint64_t seed = 1;
};

SimTrace simulate(const TransitionSystem& ts, const SimOptions& options = {});

/// On-the-fly timed simulation of a module composition (no product
/// construction — scales to pipelines whose flat composition would not fit
/// in memory).  Semantics match compose() + simulate().
class Module;  // fwd
SimTrace simulate_modules(const std::vector<const Module*>& modules,
                          const SimOptions& options = {});

}  // namespace rtv
