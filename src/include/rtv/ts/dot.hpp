// Graphviz (DOT) export of transition systems and causal event structures,
// for documentation and debugging (the diagrams of Figs. 1-2 are DOT-able
// views of these structures).
#pragma once

#include <string>

#include "rtv/circuit/netlist.hpp"
#include "rtv/timing/ces.hpp"
#include "rtv/ts/transition_system.hpp"

namespace rtv {

struct DotOptions {
  bool show_state_names = true;
  /// Limit on emitted states (BFS order); 0 = no limit.
  std::size_t max_states = 0;
  /// Highlight these states (filled).
  std::vector<StateId> highlight;
};

/// DOT digraph of the reachable part of a transition system.
std::string to_dot(const TransitionSystem& ts, const DotOptions& options = {});

/// DOT digraph of a CES: solid arcs = causality, dashed = pending events'
/// membership; node labels carry the delay intervals (as in Fig. 2(c,d)).
std::string to_dot(const Ces& ces);

/// DOT digraph of a transistor netlist (the Fig. 11 structural view):
/// boxes = nodes (inputs dashed, boundary outputs bold), one edge per
/// transistor stack from each gate signal to the driven node, labelled
/// with the stack type and delay; weak stacks dotted.
std::string to_dot(const Netlist& netlist);

}  // namespace rtv
