// Cross-module delay-bound consistency: the one check shared by compose()
// and the lint analyzer (rtv/lint/lint.hpp).
//
// A label synchronised by several modules fires under the *intersection*
// of every participant's delay bounds; an empty intersection leaves the
// event forever unfireable — a modelling contradiction, not a composable
// system.  compose() throws std::invalid_argument the moment it meets one;
// `rtv lint` reports the same finding (code RTV-L004) *before* composition
// with full context.  Both sides build their message with
// describe_delay_contradiction(), so the runtime error text and the lint
// diagnostic can never drift apart.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "rtv/base/interval.hpp"
#include "rtv/ts/module.hpp"

namespace rtv {

/// One label whose per-module delay bounds intersect to the empty set.
struct DelayContradiction {
  std::string label;
  /// Every module declaring the label, with its declared bounds, in
  /// module order (matching the modules vector the check ran over).
  std::vector<std::pair<std::string, DelayInterval>> participants;
};

/// Scan every shared label of `modules` and collect the ones whose bound
/// intersection is empty, in sorted label order.  Purely structural: no
/// state exploration, no composition.
std::vector<DelayContradiction> find_delay_contradictions(
    const std::vector<const Module*>& modules);

/// The canonical message for one contradiction — exactly the text
/// compose() throws, e.g.:
///   compose: contradictory delay bounds for label 'x+': early declares
///   [0.25, 0.50] late declares [1.25, 2.25] (empty intersection)
std::string describe_delay_contradiction(const DelayContradiction& c);

}  // namespace rtv
