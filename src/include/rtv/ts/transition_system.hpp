// Explicit-state (timed) transition systems.
//
// This is the central model of the library (the paper's TTS: a TS whose
// events carry [delta_l, delta_u] delay bounds).  Component models — STGs,
// transistor netlists, hand-built examples — are all elaborated into this
// representation before verification.
//
// States may optionally carry a boolean signal valuation (used to evaluate
// short-circuit invariants on circuit states) and a human-readable name.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rtv/base/bitvec.hpp"
#include "rtv/base/ids.hpp"
#include "rtv/ts/event.hpp"

namespace rtv {

struct Transition {
  EventId event;
  StateId target;
};

class TransitionSystem {
 public:
  // ---- construction ------------------------------------------------------

  StateId add_state(std::string name = {});
  EventId add_event(std::string label,
                    DelayInterval delay = DelayInterval::unbounded(),
                    EventKind kind = EventKind::kInternal);
  /// Returns the existing event with this label, or adds a new one.
  EventId ensure_event(const std::string& label,
                       DelayInterval delay = DelayInterval::unbounded(),
                       EventKind kind = EventKind::kInternal);
  void add_transition(StateId from, EventId event, StateId to);
  void set_initial(StateId s) { initial_ = s; }

  /// Declare the signal alphabet used by state valuations.
  void set_signal_names(std::vector<std::string> names);
  void set_state_valuation(StateId s, BitVec valuation);
  void set_state_name(StateId s, std::string name);

  void set_event_delay(EventId e, DelayInterval d) { events_[e.value()].delay = d; }
  void set_event_kind(EventId e, EventKind k) { events_[e.value()].kind = k; }

  // ---- queries -----------------------------------------------------------

  std::size_t num_states() const { return out_.size(); }
  std::size_t num_events() const { return events_.size(); }
  std::size_t num_transitions() const;
  StateId initial() const { return initial_; }

  const Event& event(EventId e) const { return events_[e.value()]; }
  const std::string& label(EventId e) const { return events_[e.value()].label; }
  DelayInterval delay(EventId e) const { return events_[e.value()].delay; }

  /// All transitions leaving s.
  std::span<const Transition> transitions_from(StateId s) const {
    return out_[s.value()];
  }

  /// Event ids with at least one transition from s (deduplicated, sorted).
  std::vector<EventId> enabled_events(StateId s) const;

  /// True iff some transition from s is labelled by e.
  bool is_enabled(StateId s, EventId e) const;

  /// First successor of s under e (systems built by this library are
  /// deterministic per event).  nullopt if e is not enabled.
  std::optional<StateId> successor(StateId s, EventId e) const;

  /// Event with the given label, or invalid id.
  EventId event_by_label(std::string_view label) const;

  const std::vector<std::string>& signal_names() const { return signal_names_; }
  /// Index of a signal name, or npos.
  std::size_t signal_index(std::string_view name) const;

  bool has_valuations() const { return !valuations_.empty(); }
  const BitVec& valuation(StateId s) const { return valuations_[s.value()]; }

  const std::string& state_name(StateId s) const { return state_names_[s.value()]; }

  /// States reachable from the initial state (BFS order).
  std::vector<StateId> reachable_states() const;

  /// Number of states reachable from the initial state.
  std::size_t num_reachable_states() const;

  /// Multi-line human-readable dump (for debugging and docs).
  std::string to_string() const;

 private:
  std::vector<Event> events_;
  std::vector<std::vector<Transition>> out_;
  std::vector<std::string> state_names_;
  std::vector<BitVec> valuations_;  // empty, or one per state
  std::vector<std::string> signal_names_;
  StateId initial_ = StateId::invalid();
};

}  // namespace rtv
