// Events of (timed) transition systems.
//
// An event models a signal transition (e.g. "ACK+") or an abstract action
// (e.g. "a").  Each event carries a delay interval: the time that may elapse
// between the event becoming enabled and it firing (inertial delay model).
#pragma once

#include <string>

#include "rtv/base/ids.hpp"
#include "rtv/base/interval.hpp"

namespace rtv {

/// Direction of an event relative to the module that declares it.
enum class EventKind {
  kInput,    ///< produced by the environment, module must be receptive
  kOutput,   ///< produced by this module
  kInternal  ///< not observable outside the module
};

const char* to_string(EventKind kind);

struct Event {
  std::string label;                          ///< global synchronisation label
  DelayInterval delay = DelayInterval::unbounded();
  EventKind kind = EventKind::kInternal;
};

/// Builds the conventional label of a signal transition, e.g. "ACK+"/"ACK-".
std::string transition_label(const std::string& signal, bool rising);

/// Splits "ACK+" into ("ACK", true).  Returns false if the label does not
/// end in '+' or '-'.
bool parse_transition_label(const std::string& label, std::string* signal,
                            bool* rising);

}  // namespace rtv
