// Traces with enabling information.
//
// A trace sigma = E1 --e1--> E2 --e2--> ... records, for every fired event,
// the set of events enabled just before the firing (the paper's "trace with
// enabling information").  Enabling sets are what causality extraction and
// timing analysis operate on.
#pragma once

#include <string>
#include <vector>

#include "rtv/ts/transition_system.hpp"

namespace rtv {

struct TraceStep {
  StateId state;                 ///< state the step fires from
  EventId event;                 ///< fired event
  std::vector<EventId> enabled;  ///< events enabled in `state`
};

struct Trace {
  std::vector<TraceStep> steps;
  StateId final_state = StateId::invalid();
  std::vector<EventId> final_enabled;  ///< events enabled in the final state

  std::size_t length() const { return steps.size(); }
  bool empty() const { return steps.empty(); }

  /// Labels of fired events, in order.
  std::vector<std::string> labels(const TransitionSystem& ts) const;

  /// "E{a,b} --a--> E{b,c} --c--> ..." rendering.
  std::string to_string(const TransitionSystem& ts) const;
};

/// Shortest path (BFS) from the initial state to `target`; the returned
/// trace carries enabling sets.  Empty optional if unreachable.
std::optional<Trace> shortest_trace_to(const TransitionSystem& ts, StateId target);

/// Shortest trace whose last step fires `event` from `from_state`.
std::optional<Trace> shortest_trace_firing(const TransitionSystem& ts,
                                           StateId from_state, EventId event);

}  // namespace rtv
