// A Module is a transition system with an interface: each event label is an
// input, an output, or internal.  Modules are the unit of parallel
// composition and of assume-guarantee reasoning.
#pragma once

#include <string>
#include <vector>

#include "rtv/ts/transition_system.hpp"

namespace rtv {

class Module {
 public:
  Module() = default;
  Module(std::string name, TransitionSystem ts)
      : name_(std::move(name)), ts_(std::move(ts)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  TransitionSystem& ts() { return ts_; }
  const TransitionSystem& ts() const { return ts_; }

  /// Labels this module synchronises on (its whole alphabet).
  std::vector<std::string> alphabet() const;

  /// Labels of the given kind.
  std::vector<std::string> labels_of_kind(EventKind kind) const;

  /// Kind of the event with this label; kInternal if absent.
  EventKind kind_of(const std::string& label) const;

  bool has_label(const std::string& label) const;

  /// Marks every event of this module as input (useful when re-using a
  /// specification STG as a passive monitor).
  Module as_monitor(const std::string& new_name) const;

  /// Mirror: inputs become outputs and vice versa (environment construction
  /// from a specification, as the paper does for IN and OUT).
  Module mirrored(const std::string& new_name) const;

 private:
  std::string name_;
  TransitionSystem ts_;
};

}  // namespace rtv
