// Parallel composition of modules.
//
// Modules synchronise CSP-style on shared event labels: a label fires in the
// composition iff every module having that label in its alphabet can fire
// it.  The composed event's delay interval is the intersection of the
// participants' intervals (monitors contribute [0, inf), i.e. nothing).
//
// For refinement ("diamond") checks the composition can additionally track
// "chokes": composed states where a module is ready to *produce* an output
// but another participant that listens to it cannot accept it.  A choke is
// exactly a language-containment violation of the producer against the
// listener.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "rtv/ts/module.hpp"

namespace rtv {

struct ChokeRecord {
  StateId state;        ///< composed state where the choke occurs
  EventId event;        ///< composed event that is refused
  std::size_t producer; ///< index of the module producing the event
  std::size_t blocker;  ///< index of the module refusing it
};

struct ComposeOptions {
  bool track_chokes = false;
  /// Hard ceiling on composed states, enforced at insertion: the result
  /// never holds more than max_states states (the initial state is always
  /// admitted); a rejected insertion truncates the composition.
  std::size_t max_states = 2'000'000;
  /// Worker threads for the product BFS (0 = one per hardware thread,
  /// 1 = sequential).  The result is bit-identical for every job count:
  /// state numbering, transition order and choke order all match the
  /// sequential exploration.
  std::size_t jobs = 1;
  /// Optional cooperative stop hook, polled once per expanded composed
  /// state with the current state count.  A non-null return aborts the
  /// composition (truncated, with that reason) — the verification engines
  /// hook their wall-clock deadline / cancellation checks in here.
  std::function<const char*(std::size_t)> stop;
};

struct Composition {
  TransitionSystem ts;
  std::vector<std::string> module_names;
  /// Per composed state: the tuple of component states.
  std::vector<std::vector<StateId>> component_states;
  std::vector<ChokeRecord> chokes;
  bool truncated = false;
  /// Why composition stopped early (static storage); null when not
  /// truncated or truncated by the state cap.
  const char* truncated_reason = nullptr;

  /// Component-state tuple rendering for diagnostics.
  std::string describe_state(StateId s) const;
};

/// Compose modules over their shared alphabets.  The result's initial state
/// is the tuple of component initial states; only reachable product states
/// are materialised.
///
/// Throws std::invalid_argument when two modules declare contradictory
/// delay bounds for the same label (an empty intersection would silently
/// make the event unfireable); the message names the label and every
/// participating module with its interval.
Composition compose(const std::vector<const Module*>& modules,
                    const ComposeOptions& options = {});

}  // namespace rtv
