// Bisimulation minimization of transition systems.
//
// Partition refinement over (label, successor-block) signatures — strong
// bisimulation, which preserves every property this library checks
// (enabledness, traces, refusals, signal valuations when compatible).
// Useful for shrinking abstraction monitors before composition and for
// comparing elaborations structurally.
#pragma once

#include "rtv/ts/module.hpp"

namespace rtv {

struct MinimizeResult {
  TransitionSystem ts;
  /// block index per original state (the quotient map).
  std::vector<std::size_t> block_of;
  std::size_t num_blocks = 0;
};

struct MinimizeOptions {
  /// When set, states with different signal valuations are never merged
  /// (needed if invariant properties will read the quotient's states).
  bool respect_valuations = true;
};

/// Quotient of the reachable part of `ts` under the coarsest strong
/// bisimulation.  Deterministic systems: this is language-minimal.
MinimizeResult minimize(const TransitionSystem& ts,
                        const MinimizeOptions& options = {});

/// Convenience: minimized module (same name + "*", same event kinds).
Module minimized(const Module& m, const MinimizeOptions& options = {});

}  // namespace rtv
