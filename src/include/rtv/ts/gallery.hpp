// Small hand-built timed transition systems used throughout tests, examples
// and benches — most importantly the paper's introductory example
// (Figures 1 and 2): a system where event `g` precedes event `d` in every
// *timed* run although the untimed state space admits `d` first.
#pragma once

#include "rtv/ts/module.hpp"

namespace rtv::gallery {

/// The introductory example, spirit of Fig. 1:
///
///   a [2.5,3] and b [1,2] are concurrent from the initial state;
///   c [1,2] is triggered by a; g [0.5,0.5] is triggered by b;
///   d [0,inf) is triggered by c.
///
/// Untimed, `d` may fire before `g`; with delays, g's latest firing
/// (2 + 0.5) precedes d's earliest (2.5 + 1), so "g before d" holds.
Module intro_example();

/// Monitor for "g always fires before d": exposes a `fail` signal that goes
/// high iff d fires while g has not fired yet.  Compose with the system and
/// check the invariant !fail.
Module order_monitor(const std::string& first, const std::string& then,
                     const std::string& fail_signal = "fail");

/// A linear chain s0 -e1-> s1 -e2-> ... useful in unit tests.
Module chain(const std::vector<std::pair<std::string, DelayInterval>>& events);

/// A cyclic ring s0 -e1-> s1 -e2-> ... -en-> s0: the smallest always-live
/// shape (the fuzz generator's repeating-producer family).
Module ring(const std::vector<std::pair<std::string, DelayInterval>>& events);

/// Fork-join: `a` and `b` concurrent from the initial state, `c` enabled
/// once both have fired, looping back to the start — a C-element in the
/// inertial-delay model (the fuzz generator's gate-level family).
Module fork_join(const std::string& a, DelayInterval a_delay,
                 const std::string& b, DelayInterval b_delay,
                 const std::string& c, DelayInterval c_delay);

/// Two concurrent events x [x_delay] and y [y_delay] in a diamond.
Module diamond(const std::string& x, DelayInterval x_delay,
               const std::string& y, DelayInterval y_delay);

/// A 3-way race with delay constants scaled by `k`: a [1,2]·k, b [1,3]·k
/// and c [2,3]·k concurrent from the initial state (a 2×2×2 cube of
/// interleavings).  Zones and relative timing decide it in a handful of
/// states no matter the scale, while the digitized engine's work grows
/// linearly with k — the asymmetry the engines-comparison sweep and the
/// portfolio-cancellation tests rely on.  "a before c" is genuinely
/// violated (c may fire together with a at exactly 2k).
Module scaled_race(int k);

}  // namespace rtv::gallery
