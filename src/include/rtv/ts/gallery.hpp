// Small hand-built timed transition systems used throughout tests, examples
// and benches — most importantly the paper's introductory example
// (Figures 1 and 2): a system where event `g` precedes event `d` in every
// *timed* run although the untimed state space admits `d` first.
#pragma once

#include "rtv/ts/module.hpp"

namespace rtv::gallery {

/// The introductory example, spirit of Fig. 1:
///
///   a [2.5,3] and b [1,2] are concurrent from the initial state;
///   c [1,2] is triggered by a; g [0.5,0.5] is triggered by b;
///   d [0,inf) is triggered by c.
///
/// Untimed, `d` may fire before `g`; with delays, g's latest firing
/// (2 + 0.5) precedes d's earliest (2.5 + 1), so "g before d" holds.
Module intro_example();

/// Monitor for "g always fires before d": exposes a `fail` signal that goes
/// high iff d fires while g has not fired yet.  Compose with the system and
/// check the invariant !fail.
Module order_monitor(const std::string& first, const std::string& then,
                     const std::string& fail_signal = "fail");

/// A linear chain s0 -e1-> s1 -e2-> ... useful in unit tests.
Module chain(const std::vector<std::pair<std::string, DelayInterval>>& events);

/// Two concurrent events x [x_delay] and y [y_delay] in a diamond.
Module diamond(const std::string& x, DelayInterval x_delay,
               const std::string& y, DelayInterval y_delay);

}  // namespace rtv::gallery
