// Seeded random scenario generation for differential fuzzing.
//
// A scenario is a complete verification obligation — system modules,
// ordering monitors and safety properties — grown from a 64-bit seed and a
// GeneratorConfig.  Generation is fully deterministic: the same (seed,
// config) pair always yields byte-identical systems, so any campaign
// finding is reproducible from those two values alone (the shape the
// delta-debugging minimizer serializes, see rtv/fuzz/minimize.hpp).
//
// The generator grows the gallery's hand-built shapes (rtv/ts/gallery.hpp)
// into five parameterized families — chains, rings, interleaving grids,
// conflicts and fork-join "gates" — composed over randomly shared labels
// with per-label delay bounds, in the spirit of Csmith-style differential
// compiler fuzzing: generate well-formed inputs, use engine agreement as
// the oracle.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "rtv/base/interval.hpp"
#include "rtv/ts/module.hpp"
#include "rtv/verify/property.hpp"

namespace rtv::fuzz {

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Size/shape knobs of one scenario family.  Every field is a shrinkable
/// dimension for the minimizer; keep them ordered from "most structure" to
/// "least" so config_size() reads naturally.
struct GeneratorConfig {
  /// System modules composed over shared labels (monitors come on top).
  std::uint32_t modules = 2;
  /// Budget of step events per module (each shape draws 1..events).
  std::uint32_t events = 4;
  /// Magnitude cap for delay constants, in ticks.  Sampling is
  /// log-uniform, so one system mixes small and large constants (the
  /// mixed-magnitude workload the 64-bit discrete ages unlock).
  Time max_delay = 16;
  /// Random ordering properties ("a before b" monitors).
  std::uint32_t properties = 1;
  /// Probability that a delay keeps an unbounded upper bound.
  double unbounded_p = 0.1;
  /// Probability that a module reuses (synchronises on) a label of an
  /// earlier module instead of minting a fresh one.
  double share_p = 0.3;
  /// Collapse every interval to a point delay [lo, lo] (a minimizer move:
  /// point delays remove all timing slack from a reproducer).
  bool point_delays = false;
  /// Allow the fork-join "gates" shape (concurrent inputs joined by one
  /// output, a C-element in the inertial-delay model).
  bool gates = true;
  /// Also check DeadlockFreedom / PersistencyProperty on every scenario.
  bool deadlock_check = false;
  bool persistency_check = false;
  /// Disconnected always-live toggler modules appended after the monitors
  /// (fresh labels, never shared, no signals) — out of every property's
  /// cone by construction, so they exercise the suite's slicer: the
  /// campaign cross-checks sliced against unsliced verdicts
  /// (FailureKind::kSliceMismatch).
  std::uint32_t padding_modules = 0;

  /// Stable JSON round-trip (campaign reports embed configs; `rtv fuzz`
  /// replays them).  See docs/FUZZING.md for the schema.
  std::string to_json() const;
  static GeneratorConfig from_json(const std::string& json);

  friend bool operator==(const GeneratorConfig& a, const GeneratorConfig& b);
};

/// Shrink metric for the minimizer: strictly decreasing along every
/// accepted delta-debugging step.
std::size_t config_size(const GeneratorConfig& config);

/// The seed of campaign case `index`: splitmix-derived so neighbouring
/// cases are statistically independent, and stable so one case replays
/// without rerunning the campaign.
std::uint64_t case_seed(std::uint64_t campaign_seed, std::size_t index);

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// Structural family of one generated system module.
enum class ModuleShape {
  kChain,     ///< linear event chain, idle self-loop at the end (acyclic)
  kRing,      ///< cyclic event ring (always live)
  kGrid,      ///< two independent chains interleaving (acyclic)
  kConflict,  ///< x/y choice where y disables x (persistency stake)
  kForkJoin,  ///< concurrent a, b joined by c, cyclic ("gates")
};

const char* to_string(ModuleShape shape);

/// One generated obligation with owned storage.  modules[0..system_modules)
/// are the system; the rest are ordering monitors referencing system labels.
struct Scenario {
  std::uint64_t seed = 0;
  GeneratorConfig config;
  std::string name;
  std::deque<Module> modules;
  std::size_t system_modules = 0;
  /// Shape of each system module, parallel to modules[0..system_modules).
  std::vector<ModuleShape> shapes;
  std::vector<std::unique_ptr<SafetyProperty>> properties;

  std::vector<const Module*> module_ptrs() const;
  std::vector<const SafetyProperty*> property_ptrs() const;

  /// Human-readable shape summary for failure logs ("m0_ring(4ev) || ...").
  std::string describe() const;
};

/// Generate the scenario of (seed, config).  Deterministic and total:
/// every config yields a well-formed scenario (invalid field values are
/// clamped to their minimums, see sanitized()).
Scenario generate(std::uint64_t seed, const GeneratorConfig& config);

/// The config actually used by generate(): sizes clamped to >= 1 (0
/// properties stays 0), probabilities to [0, 1].
GeneratorConfig sanitized(const GeneratorConfig& config);

}  // namespace rtv::fuzz
