// Delta-debugging minimizer for differential-fuzzing failures.
//
// Rather than shrinking a concrete system — which would need its own
// serialization and well-formedness repair — the minimizer shrinks the
// (seed, config) pair the generator is deterministic over: propose a
// structurally smaller config (fewer modules/events/properties, delay cap
// tightened, sharing or gates switched off, intervals collapsed to
// points), regenerate from the *same* seed, and keep the proposal iff the
// failure oracle still fires.  Every accepted step strictly decreases
// config_size(), so minimization is monotone and terminates; the result is
// a minimal reproducer serializable as seed + config JSON.
#pragma once

#include <cstdint>
#include <functional>

#include "rtv/fuzz/generator.hpp"

namespace rtv::fuzz {

/// True when generate(seed, config) still exhibits the failure under
/// investigation (a verdict disagreement, a non-replayable trace, ...).
using FailureOracle =
    std::function<bool(std::uint64_t seed, const GeneratorConfig& config)>;

struct MinimizeResult {
  /// Smallest failing config found (sanitized); reproduce with
  /// generate(seed, config).
  GeneratorConfig config;
  std::size_t tested = 0;  ///< oracle invocations spent
  std::size_t steps = 0;   ///< accepted shrink steps
};

/// Greedy delta debugging over the config dimensions.  `start` is assumed
/// to fail (it is returned unshrunk when nothing smaller fails).  Proposals
/// are tried largest-cut-first — halve module/event counts, zero the
/// probabilities, drop flags — then by single decrements, restarting after
/// every accepted step; `max_tests` caps total oracle invocations.
MinimizeResult minimize(std::uint64_t seed, const GeneratorConfig& start,
                        const FailureOracle& oracle,
                        std::size_t max_tests = 256);

}  // namespace rtv::fuzz
