// Differential fuzzing campaign: generated scenarios, engine agreement as
// the oracle.
//
// Each case generates one scenario (rtv/fuzz/generator.hpp) and runs it
// through every selected engine via the Suite scheduler.  A case fails
// when
//
//   * two engines return contradictory *definitive* verdicts (one
//     kVerified, one kViolated) — kInconclusive never counts, so budget
//     truncation can't fake or mask a disagreement;
//   * a violated verdict's counterexample trace does not replay through
//     the sequential composition (every step must have a composed
//     transition, except a final refused label);
//   * an engine throws instead of returning a result; or
//   * the static analyzer (rtv/lint) and the suite scheduler disagree
//     about the scenario: a lint-clean scenario dies with a lint
//     pre-flight rejection, or a scenario lint calls broken still gets
//     definitive verdicts from the engines; or
//   * the cone-of-influence slicer (rtv/analysis/slice.hpp) changes a
//     verdict: whenever the slice is not the identity the case reruns
//     with slicing disabled, and any engine contradicting its own sliced
//     verdict is a kSliceMismatch (GeneratorConfig::padding_modules
//     appends provably-out-of-cone modules to keep this oracle busy).
//
// Failures carry a self-contained reproducer — the case seed plus the
// generator config, delta-debugged down to a minimal failing config when
// minimization is enabled (rtv/fuzz/minimize.hpp) — and the campaign
// report serializes to stable JSON for scripted/CI consumers.
//
// Reproducibility: with a case limit and no per-engine wall-clock deadline
// (the defaults), a campaign is a pure function of (seed, config, engines)
// and two runs emit identical reports up to wall-clock fields —
// CampaignReport::fingerprint() is the exact invariant.  Wall-clock
// cutoffs (`seconds`, `max_seconds`) trade that determinism for bounded
// runtime, as the nightly CI job does.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "rtv/fuzz/generator.hpp"
#include "rtv/fuzz/minimize.hpp"
#include "rtv/verify/engine.hpp"

namespace rtv::fuzz {

struct CampaignOptions {
  std::uint64_t seed = 1;
  /// Generator config for every case (case variety comes from per-case
  /// seeds, see case_seed()).
  GeneratorConfig config;
  /// Stop after this many cases; 0 = no case limit (then `seconds` must be
  /// positive).
  std::size_t cases = 100;
  /// Stop once the campaign has run this long in seconds; 0 = no deadline.
  double seconds = 0.0;
  /// Engines compared per case; at least two are needed for disagreements
  /// to be observable.  run_campaign throws std::invalid_argument on an
  /// unregistered name.
  std::vector<std::string> engines = {"refine", "zone", "discrete"};
  /// Worker budget of the per-case Suite scheduler (0 = hardware
  /// concurrency).  Case i+1 starts only after case i finished, so reports
  /// are job-count independent.
  std::size_t jobs = 1;
  /// Per-engine state budget; exhaustion is kInconclusive and never a
  /// disagreement.
  std::size_t max_states = 200'000;
  /// Per-engine wall-clock deadline in seconds; 0 (default) keeps the
  /// campaign deterministic.
  double max_seconds = 0.0;
  /// Delta-debug every failure down to a minimal config.
  bool minimize = true;
  /// Oracle invocations per minimization.
  std::size_t minimize_budget = 160;
  /// Optional sink for human-readable progress lines (failures, mostly).
  std::function<void(const std::string&)> log;
};

enum class FailureKind {
  kDisagreement,  ///< contradictory definitive verdicts
  kBadTrace,      ///< a violation trace that does not replay
  kEngineError,   ///< an engine threw
  kLintMismatch,  ///< lint and the suite scheduler disagree on the scenario
  kSliceMismatch, ///< sliced and unsliced runs return contradictory verdicts
};

const char* to_string(FailureKind kind);

/// One engine's verdict on a case (stop_reason empty unless truncated).
struct EngineVerdict {
  std::string engine;
  Verdict verdict = Verdict::kInconclusive;
  std::string stop_reason;
};

/// One failing case with its self-contained reproducer.
struct CampaignFailure {
  FailureKind kind = FailureKind::kDisagreement;
  std::size_t case_index = 0;
  /// The case seed: generate(seed, config) rebuilds the failing scenario.
  std::uint64_t seed = 0;
  GeneratorConfig config;
  /// Delta-debugged config; equals `config` when minimization is off or
  /// found nothing smaller.
  GeneratorConfig minimized;
  std::vector<EngineVerdict> verdicts;
  /// Human-readable summary (scenario shape, offending engines/trace).
  std::string detail;
};

/// Differential outcome of a single (seed, config) case.
struct CaseResult {
  /// Engines returning a definitive verdict (kVerified or kViolated).
  std::size_t definitive = 0;
  /// Violation traces successfully replayed through the composition.
  std::size_t traces_replayed = 0;
  /// Engaged when the case failed; case_index and minimized are left for
  /// the campaign driver to fill in.
  std::optional<CampaignFailure> failure;
};

/// Run one scenario through options.engines and compare.  This is the
/// campaign's unit of work, exposed for tests (inject a deliberately lying
/// engine, check it is caught) and for replaying minimized reproducers.
CaseResult run_case(std::uint64_t seed, const GeneratorConfig& config,
                    const CampaignOptions& options);

struct CampaignReport {
  /// Bumped whenever the JSON layout changes incompatibly.
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "rtv-fuzz-report";

  std::uint64_t seed = 0;
  GeneratorConfig config;
  std::vector<std::string> engines;
  std::size_t cases = 0;
  std::size_t definitive_verdicts = 0;
  std::size_t traces_replayed = 0;
  double wall_seconds = 0.0;
  std::vector<CampaignFailure> failures;

  bool ok() const { return failures.empty(); }

  /// Stable machine-readable serialization (see docs/FUZZING.md for the
  /// schema).  Seeds are emitted as decimal *strings*: 64-bit values do
  /// not survive a double round-trip.
  std::string to_json() const;

  /// Wall-clock-free FNV-1a digest (rtv/base/hash.hpp) of everything
  /// else, as a 16-hex-digit string: two runs with identical (seed,
  /// config, engines, cases) produce identical fingerprints — the
  /// reproducibility contract `rtv fuzz` and the campaign tests check.
  std::string fingerprint() const;
};

/// Run the campaign: cases keyed off case_seed(options.seed, i), failures
/// minimized per options, stopping at the case or time limit.
CampaignReport run_campaign(const CampaignOptions& options);

}  // namespace rtv::fuzz
