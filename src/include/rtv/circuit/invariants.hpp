// CMOS correctness conditions as safety properties (Section 5.1):
// short-circuit freedom per candidate node, and persistency of the
// circuit-driven events.
#pragma once

#include <memory>
#include <vector>

#include "rtv/circuit/netlist.hpp"
#include "rtv/verify/property.hpp"

namespace rtv {

/// One invariant per short-circuit candidate node: the derived SC_<node>
/// signal emitted by the elaboration must never be true.
std::vector<std::unique_ptr<SafetyProperty>> short_circuit_properties(
    const Netlist& netlist);

/// Persistency of non-input events (glitch freedom under inertial delays).
std::unique_ptr<SafetyProperty> persistency_property(
    std::vector<std::string> exempt_labels = {});

}  // namespace rtv
