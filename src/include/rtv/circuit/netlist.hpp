// Transistor-level netlists.
//
// A node (wire) is driven by stacks of pull-up and pull-down transistors
// and possibly pass-transistors (Section 5.1 of the paper).  Each stack is
// modelled by a guard (the series/parallel gate network), a delay interval
// for the switch once enabled, and a transistor count for the paper's
//   N_transistors = 21 + 7*N_inputs + 4*N_outputs
// accounting.  Weak stacks (keepers) drive only when no opposing strong
// stack is active.  Bidirectional pass-transistors are not modelled, as in
// the paper.
#pragma once

#include <string>
#include <vector>

#include "rtv/base/ids.hpp"
#include "rtv/base/interval.hpp"
#include "rtv/expr/expr.hpp"

namespace rtv {

enum class StackType {
  kPullUp,    ///< drives 1 when the guard holds
  kPullDown,  ///< drives 0 when the guard holds
  kPass       ///< copies `source` when the guard holds
};

struct Stack {
  StackType type = StackType::kPullUp;
  NodeId target;
  Expr guard;      ///< over node values
  NodeId source;   ///< kPass only
  DelayInterval delay = DelayInterval::units(1, 2);
  int transistors = 1;
  bool weak = false;
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  ExprPool& exprs() { return pool_; }
  const ExprPool& exprs() const { return pool_; }

  /// `input`: node driven by the environment (its rise/fall events become
  /// module inputs).  `boundary`: node observable at the interface (its
  /// events become module outputs rather than internal).
  NodeId add_node(std::string name, bool initial_value, bool input = false,
                  bool boundary = false);

  void add_stack(Stack stack);

  // Convenience builders.
  void pull_up(NodeId target, Expr guard, DelayInterval delay, int transistors,
               bool weak = false);
  void pull_down(NodeId target, Expr guard, DelayInterval delay,
                 int transistors, bool weak = false);
  void pass(NodeId target, NodeId source, Expr gate, DelayInterval delay,
            int transistors);

  std::size_t num_nodes() const { return names_.size(); }
  const std::string& node_name(NodeId n) const { return names_[n.value()]; }
  NodeId node_by_name(const std::string& name) const;
  bool initial_value(NodeId n) const { return initial_[n.value()]; }
  bool is_input(NodeId n) const { return input_[n.value()]; }
  bool is_boundary(NodeId n) const { return boundary_[n.value()]; }
  const std::vector<Stack>& stacks() const { return stacks_; }

  /// Stacks driving a given node.
  std::vector<const Stack*> stacks_of(NodeId n) const;

  /// Total transistor count (sums the per-stack counts).
  int transistor_count() const;

  /// Nodes that have both an up-driver and a down-driver and can therefore
  /// short-circuit.
  std::vector<NodeId> short_circuit_candidates() const;

 private:
  std::string name_;
  ExprPool pool_;
  std::vector<std::string> names_;
  std::vector<bool> initial_;
  std::vector<bool> input_;
  std::vector<bool> boundary_;
  std::vector<Stack> stacks_;
};

}  // namespace rtv
