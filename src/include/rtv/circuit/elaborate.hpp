// Netlist -> Module elaboration.
//
// Circuit states are node valuations; events are rise/fall transitions of
// nodes.  A non-input node rises when some up-driver is active and no
// opposing drive wins (weak stacks yield to strong ones); input nodes are
// receptive — their transitions are always enabled at the opposite value
// and the composed environment decides when they fire.
//
// Besides the node signals, the elaborated states expose one derived
// signal "SC_<node>" per short-circuit candidate, true whenever both an
// up-drive and a down-drive are simultaneously active — the paper's
// Section 5.1 short-circuit invariants become plain invariant properties
// over these signals.
#pragma once

#include "rtv/circuit/netlist.hpp"
#include "rtv/ts/module.hpp"

namespace rtv {

struct CircuitElaborateOptions {
  std::size_t max_states = 2'000'000;
};

Module elaborate(const Netlist& netlist,
                 const CircuitElaborateOptions& options = {});

}  // namespace rtv
