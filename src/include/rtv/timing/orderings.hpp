// Global ordering derivation on causal event structures.
//
// Given a CES annotated with delay intervals, derive every pair (a, b) such
// that a provably fires before b in all max-causality timings — the "dotted
// arc" relative timing constraints the paper back-annotates (Fig. 13).
#pragma once

#include <string>
#include <vector>

#include "rtv/timing/ces.hpp"
#include "rtv/timing/trace_timing.hpp"

namespace rtv {

struct CesOrdering {
  int before = -1;  ///< CES event index
  int after = -1;
  Time slack = 0;   ///< -max(t[before]-t[after]): margin by which the ordering holds
};

/// All provable orderings between pairs not already causally related.
/// Quadratic in CES size with a max-separation query per pair.
std::vector<CesOrdering> derive_ces_orderings(const Ces& ces);

/// Render as "a before b (slack s)" lines.
std::string format_ces_orderings(const Ces& ces,
                                 const std::vector<CesOrdering>& orderings);

}  // namespace rtv
