// Causal event structures (CES).
//
// A CES is an acyclic graph capturing the causality between the event
// occurrences of a trace: occurrence i precedes occurrence j iff j only
// became enabled after i fired (the paper: e_i < e_j iff i < j and no
// enabling set contains both).  Pending occurrences — enabled at the end of
// the trace but never fired, like Z+ in Fig. 13(a) — are first-class: the
// key timing constraints of the paper relate a fired event to a pending one.
//
// Timing semantics (max causality): t(v) = max over direct predecessors of
// t(p), plus a delay within v's interval; sources anchor at time 0.
#pragma once

#include <string>
#include <vector>

#include "rtv/base/interval.hpp"
#include "rtv/ts/trace.hpp"

namespace rtv {

struct CesEvent {
  std::string label;
  EventId event = EventId::invalid();  ///< event in the underlying system
  DelayInterval delay;
  int trace_point = -1;  ///< firing position in the source trace; -1 if pending
  bool pending = false;  ///< enabled at the end of the trace, never fired
  std::vector<int> preds;  ///< direct causal predecessors (indices)
};

struct Ces {
  std::vector<CesEvent> events;  ///< topologically ordered

  std::size_t size() const { return events.size(); }

  /// Indices of all (transitive) ancestors of v, including v.
  std::vector<int> cone(int v) const;

  /// Index of the first occurrence with this label, or -1.
  int find_label(const std::string& label) const;

  std::string to_string() const;
};

/// Extract the CES of a trace.  When `include_pending` is set, events
/// enabled in the final state that never fired are added as pending
/// occurrences.
Ces extract_ces(const TransitionSystem& ts, const Trace& trace,
                bool include_pending = true);

/// Conservative earliest/latest firing-time bounds per event via interval
/// propagation: Emin(v) = max_p Emin(p) + lo(v), Emax(v) = max_p Emax(p)
/// + hi(v).  Sound outer bounds on every max-causality timing.
struct CesBounds {
  std::vector<Time> earliest;
  std::vector<Time> latest;  ///< kTimeInfinity when unbounded
};
CesBounds propagate_bounds(const Ces& ces);

}  // namespace rtv
