// Difference-constraint systems.
//
// Every timing question this library asks — is a failure trace timing
// consistent? what is the maximal separation between two events? — reduces
// to systems of constraints  t[a] - t[b] <= w  solved with Bellman-Ford.
// Infeasibility witnesses (negative cycles) are reported as sets of
// constraint indices; the refinement engine maps them back to trace steps
// to localise *why* a trace cannot happen in time.
#pragma once

#include <cstdint>
#include <vector>

#include "rtv/base/interval.hpp"

namespace rtv {

struct DiffConstraint {
  int a = 0;       ///< constrained as t[a] - t[b] <= w
  int b = 0;
  Time w = 0;
  int tag = -1;    ///< caller-defined provenance
};

class DiffSystem {
 public:
  explicit DiffSystem(int num_vars) : n_(num_vars) {}

  int num_vars() const { return n_; }
  std::size_t num_constraints() const { return cs_.size(); }
  const std::vector<DiffConstraint>& constraints() const { return cs_; }

  /// Add t[a] - t[b] <= w.  Constraints with w >= kTimeInfinity are ignored.
  void add(int a, int b, Time w, int tag = -1);

  /// Add l <= t[a] - t[b] <= u (two constraints; infinite u ignored).
  void add_bounds(int a, int b, Time l, Time u, int tag = -1);

  struct SolveResult {
    bool feasible = false;
    /// A satisfying assignment (one of many) when feasible.
    std::vector<Time> solution;
    /// Indices into constraints() forming a negative cycle when infeasible.
    std::vector<std::size_t> core;
  };

  /// Feasibility via Bellman-Ford; extracts a negative cycle on failure.
  SolveResult solve() const;

  /// max(t[a] - t[b]) subject to the constraints.  Requires feasibility;
  /// returns kTimeInfinity when unbounded.
  Time max_separation(int a, int b) const;

 private:
  int n_;
  std::vector<DiffConstraint> cs_;
};

}  // namespace rtv
