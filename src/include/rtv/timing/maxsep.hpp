// Maximal time separation between two events of a CES.
//
// Computes  max over all timing-consistent executions of  t(a) - t(b)
// under max-causality semantics with interval delays (the McMillan-Dill
// interface-timing question [10]).  If the result is < 0 then a fires
// strictly before b in *every* execution — the basis for deriving relative
// timing constraints.
//
// Exact method: the max over predecessors is resolved by enumerating, for
// every event in the relevant cone with several predecessors, which one
// arrives last ("choice function").  Each choice yields a difference-
// constraint polytope over firing times on which the separation is a
// shortest-path query.  The trace-sized CESs of this library keep the
// enumeration tiny; a conservative interval-propagation bound is used when
// the enumeration would exceed `max_combinations`.
#pragma once

#include <cstddef>

#include "rtv/timing/ces.hpp"

namespace rtv {

struct MaxSepResult {
  Time separation = kTimeInfinity;  ///< max(t[a] - t[b]); kTimeInfinity if unbounded
  bool exact = true;                ///< false if the conservative bound was used
  std::size_t combinations = 0;     ///< choice functions explored
};

MaxSepResult max_separation(const Ces& ces, int a, int b,
                            std::size_t max_combinations = 200000);

/// True iff a provably fires strictly before b in every execution of the
/// CES (max(t[a]-t[b]) < 0).
bool always_strictly_before(const Ces& ces, int a, int b);

}  // namespace rtv
