// Exact timing analysis of a failure trace.
//
// A trace fixes a total firing order and, at every step, the set of
// still-pending enabled events.  Timing consistency is then a system of
// difference constraints over firing times:
//
//   * monotonicity of firing times,
//   * for each fired occurrence: its delay bounds anchored at its enabling
//     point,
//   * for each pending occurrence at a firing step: the firing cannot
//     happen later than the pending event's deadline (enabling + upper
//     bound) — the inertial-delay urgency that makes traces like
//     Fig. 13(a) infeasible.  Events whose firing self-loops on the
//     current state are exempt when their upper bound is positive: they can
//     fire (and re-arm) any number of times without perturbing the trace,
//     pushing the deadline forward indefinitely — an untimed search that
//     skips revisited states can't spell those firings out, and charging
//     their urgency against longer traces would (unsoundly) ban reachable
//     failures.  A zero-deadline self-loop is NOT exempt: re-arming never
//     advances its deadline, so it pins time at its enabling instant and
//     genuinely blocks any later firing.
//
// When a trace is infeasible, the negative cycle of the system localises a
// *ban window* [anchor..last]: a contiguous slice of the trace that is
// timing-impossible on its own.  Two validity flavours exist:
//
//   * from_start: the window starts at the initial point of the run; lower
//     bounds of initially-enabled events hold exactly (time 0 anchoring);
//   * anchored: the window may be entered at *any* visit of the anchor
//     state; boundary-crossing enabling is clamped conservatively (lower
//     bounds dropped, deadlines anchored at the window entry, which can
//     only weaken the system), so infeasibility of the clamped system
//     proves the pattern impossible regardless of history.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rtv/timing/difference_constraints.hpp"
#include "rtv/ts/compose.hpp"
#include "rtv/ts/trace.hpp"

namespace rtv {

/// Provenance of one difference constraint of a trace system.
struct TraceConstraintInfo {
  enum class Kind { kMonotonic, kFiringLower, kFiringUpper, kPendingDeadline };
  Kind kind = Kind::kMonotonic;
  int point = 0;       ///< firing point the constraint talks about
  int anchor = 0;      ///< enabling point it is anchored at
  EventId event = EventId::invalid();  ///< event involved (fired or pending)
};

struct BuiltTraceSystem {
  DiffSystem system;
  std::vector<TraceConstraintInfo> info;  ///< indexed by constraint tag
  BuiltTraceSystem() : system(0) {}
};

/// A window of the trace proven timing-impossible.
struct BanWindow {
  bool from_start = false;  ///< anchored at the run's start vs at a state visit
  int anchor_point = 0;     ///< first point of the window
  int last_point = 0;       ///< point whose firing is blocked
};

/// Back-annotated ordering: `before` must fire before `after` (a relative
/// timing constraint in the sense of [16]).
struct DerivedOrdering {
  std::string before;
  std::string after;

  friend bool operator==(const DerivedOrdering& a, const DerivedOrdering& b) {
    return a.before == b.before && a.after == b.after;
  }
  friend bool operator<(const DerivedOrdering& a, const DerivedOrdering& b) {
    return a.before != b.before ? a.before < b.before : a.after < b.after;
  }
};

class TraceTimingModel {
 public:
  /// `virtual_final`: an event treated as fired from the trace's final
  /// state as an extra last point (used for refused/choked events that have
  /// no transition in the composed graph).
  ///
  /// `chokes`: the composition's refusal records.  A choked output has no
  /// composed transition, so it is invisible in the trace's enabled sets —
  /// but the producer's clock is still running.  The model treats choked
  /// events as enabled at their choke states, anchoring a refused firing
  /// at its true enabling point instead of at the refusal itself (without
  /// this, exact delay bounds start too late and feasible refusals are
  /// judged impossible — an unsound "verified").
  TraceTimingModel(const TransitionSystem& ts, const Trace& trace,
                   EventId virtual_final = EventId::invalid(),
                   std::span<const ChokeRecord> chokes = {});

  int num_points() const { return n_points_; }
  EventId fired(int point) const;
  StateId state_at(int point) const;
  const std::vector<EventId>& enabled_at(int point) const;

  /// Enabling point of the occurrence of `event` pending/firing at `point`.
  int enabling_point(EventId event, int point) const;

  /// True iff every arrival into `state` freshly enables `event`: no
  /// predecessor state has it enabled (except via the event's own firing).
  /// Fresh events may keep exact bounds at a window boundary, since any
  /// run entering the anchor state enables them exactly on arrival.
  bool freshly_enabled_at(StateId state, EventId event) const;

  /// Build the system for points [win_start..win_last].  When `clamped`,
  /// enabling crossing the window start is weakened so the system is valid
  /// for any entry into the window's anchor state.
  BuiltTraceSystem build_system(int win_start, int win_last, bool clamped) const;

  /// Exact feasibility of the whole trace (run-start anchoring).
  bool consistent() const;

  /// Localise a ban window; nullopt if the trace is consistent.
  std::optional<BanWindow> find_ban_window() const;

  /// Human-meaningful orderings explaining why the window is infeasible:
  /// pending or earlier-fired events whose deadline constraints are
  /// responsible for banning the window's last firing.
  std::vector<DerivedOrdering> explain(const BanWindow& win) const;

 private:
  /// True iff `event` is enabled at `state` in the producer sense: a
  /// composed transition exists, or the event is choked there.
  bool enabled_or_choked(StateId state, EventId event) const;

  const TransitionSystem& ts_;
  const Trace& trace_;
  EventId virtual_final_;
  int n_points_;
  /// (state, event) choke pairs, sorted for binary search.
  std::vector<std::pair<StateId::underlying_type, EventId::underlying_type>>
      choked_;
  /// Per-point enabled sets augmented with the state's choked events
  /// (sorted); empty when no augmentation was needed at that point.
  std::vector<std::vector<EventId>> augmented_;
  /// Reverse adjacency (built lazily): predecessor (state, event) pairs.
  mutable std::vector<std::vector<std::pair<StateId, EventId>>> preds_;
  mutable bool preds_built_ = false;
};

}  // namespace rtv
