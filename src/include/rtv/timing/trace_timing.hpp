// Exact timing analysis of a failure trace.
//
// A trace fixes a total firing order and, at every step, the set of
// still-pending enabled events.  Timing consistency is then a system of
// difference constraints over firing times:
//
//   * monotonicity of firing times,
//   * for each fired occurrence: its delay bounds anchored at its enabling
//     point,
//   * for each pending occurrence at a firing step: the firing cannot
//     happen later than the pending event's deadline (enabling + upper
//     bound) — the inertial-delay urgency that makes traces like
//     Fig. 13(a) infeasible.
//
// When a trace is infeasible, the negative cycle of the system localises a
// *ban window* [anchor..last]: a contiguous slice of the trace that is
// timing-impossible on its own.  Two validity flavours exist:
//
//   * from_start: the window starts at the initial point of the run; lower
//     bounds of initially-enabled events hold exactly (time 0 anchoring);
//   * anchored: the window may be entered at *any* visit of the anchor
//     state; boundary-crossing enabling is clamped conservatively (lower
//     bounds dropped, deadlines anchored at the window entry, which can
//     only weaken the system), so infeasibility of the clamped system
//     proves the pattern impossible regardless of history.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rtv/timing/difference_constraints.hpp"
#include "rtv/ts/trace.hpp"

namespace rtv {

/// Provenance of one difference constraint of a trace system.
struct TraceConstraintInfo {
  enum class Kind { kMonotonic, kFiringLower, kFiringUpper, kPendingDeadline };
  Kind kind = Kind::kMonotonic;
  int point = 0;       ///< firing point the constraint talks about
  int anchor = 0;      ///< enabling point it is anchored at
  EventId event = EventId::invalid();  ///< event involved (fired or pending)
};

struct BuiltTraceSystem {
  DiffSystem system;
  std::vector<TraceConstraintInfo> info;  ///< indexed by constraint tag
  BuiltTraceSystem() : system(0) {}
};

/// A window of the trace proven timing-impossible.
struct BanWindow {
  bool from_start = false;  ///< anchored at the run's start vs at a state visit
  int anchor_point = 0;     ///< first point of the window
  int last_point = 0;       ///< point whose firing is blocked
};

/// Back-annotated ordering: `before` must fire before `after` (a relative
/// timing constraint in the sense of [16]).
struct DerivedOrdering {
  std::string before;
  std::string after;

  friend bool operator==(const DerivedOrdering& a, const DerivedOrdering& b) {
    return a.before == b.before && a.after == b.after;
  }
  friend bool operator<(const DerivedOrdering& a, const DerivedOrdering& b) {
    return a.before != b.before ? a.before < b.before : a.after < b.after;
  }
};

class TraceTimingModel {
 public:
  /// `virtual_final`: an event treated as fired from the trace's final
  /// state as an extra last point (used for refused/choked events that have
  /// no transition in the composed graph).
  TraceTimingModel(const TransitionSystem& ts, const Trace& trace,
                   EventId virtual_final = EventId::invalid());

  int num_points() const { return n_points_; }
  EventId fired(int point) const;
  StateId state_at(int point) const;
  const std::vector<EventId>& enabled_at(int point) const;

  /// Enabling point of the occurrence of `event` pending/firing at `point`.
  int enabling_point(EventId event, int point) const;

  /// True iff every arrival into `state` freshly enables `event`: no
  /// predecessor state has it enabled (except via the event's own firing).
  /// Fresh events may keep exact bounds at a window boundary, since any
  /// run entering the anchor state enables them exactly on arrival.
  bool freshly_enabled_at(StateId state, EventId event) const;

  /// Build the system for points [win_start..win_last].  When `clamped`,
  /// enabling crossing the window start is weakened so the system is valid
  /// for any entry into the window's anchor state.
  BuiltTraceSystem build_system(int win_start, int win_last, bool clamped) const;

  /// Exact feasibility of the whole trace (run-start anchoring).
  bool consistent() const;

  /// Localise a ban window; nullopt if the trace is consistent.
  std::optional<BanWindow> find_ban_window() const;

  /// Human-meaningful orderings explaining why the window is infeasible:
  /// pending or earlier-fired events whose deadline constraints are
  /// responsible for banning the window's last firing.
  std::vector<DerivedOrdering> explain(const BanWindow& win) const;

 private:
  const TransitionSystem& ts_;
  const Trace& trace_;
  EventId virtual_final_;
  int n_points_;
  /// Reverse adjacency (built lazily): predecessor (state, event) pairs.
  mutable std::vector<std::vector<std::pair<StateId, EventId>>> preds_;
  mutable bool preds_built_ = false;
};

}  // namespace rtv
