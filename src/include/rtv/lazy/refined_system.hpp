// Lazy refinement of a transition system by ban observers.
//
// Each refinement iteration of the verification flow (Fig. 3) proves that a
// window of a failure trace is timing-impossible and registers it as a
// *ban observer*: a linear pattern (anchor, e_1 ... e_k) whose completion is
// blocked.  The refined system is the enabling-compatible product of the
// base system with these observers, explored on the fly:
//
//   * enabling is untouched (laziness: timing knowledge delays firings,
//     it never changes what is enabled),
//   * a firing is blocked iff it would complete an observer's window.
//
// Two anchoring flavours (see trace_timing.hpp): `from_start` patterns are
// armed only at the start of a run; anchored patterns re-arm at every visit
// of their anchor state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <unordered_map>

#include "rtv/ts/compose.hpp"
#include "rtv/ts/transition_system.hpp"

namespace rtv {

struct BanObserver {
  bool from_start = false;
  StateId anchor_state;           ///< ignored when from_start
  std::vector<EventId> window;    ///< completing window.back() is blocked
  std::string description;
};

/// A state of the refined system: a base state plus, per observer, the set
/// of active match positions.  Codes are (observer_index << 16) | position,
/// kept sorted so states hash canonically.
///
/// When the structural relative-timing rule is enabled the state also
/// carries the *enabling order* of the currently enabled events: event ids
/// grouped into waves (events of one wave became enabled at the same
/// firing instant).  Bit 15 of an entry marks the start of a new wave.
struct RefinedState {
  StateId base;
  std::vector<std::uint32_t> codes;
  std::vector<std::uint16_t> order;
  /// Capped difference-bound matrix over wave-creation instants, row-major
  /// n x n for n waves: decoded entry (i, j) bounds t(wave_i) - t(wave_j).
  /// Entries are biased by the system cap; 0xffff encodes "unbounded".
  /// Extrapolated to the cap so the state space stays finite.
  std::vector<std::uint16_t> gaps;

  friend bool operator==(const RefinedState& a, const RefinedState& b) {
    return a.base == b.base && a.codes == b.codes && a.order == b.order &&
           a.gaps == b.gaps;
  }
};

struct RefinedStateHash {
  std::size_t operator()(const RefinedState& s) const noexcept;
};

class RefinedSystem {
 public:
  explicit RefinedSystem(const TransitionSystem& base) : base_(&base) {}

  const TransitionSystem& base() const { return *base_; }

  /// Enable the relative-timing bookkeeping: refined states track a capped
  /// difference-bound matrix over the enabling instants of pending events.
  /// Blocking is *lazy*: a firing of y is pruned only when some refinement
  /// iteration activated the ordering (x before y) and the matrix justifies
  /// it in the current state (y's earliest firing provably exceeds x's
  /// deadline, so urgency makes x fire or disable strictly first).  Each
  /// activated pair is exactly one of the paper's back-annotated relative
  /// timing constraints.
  void enable_age_rule(bool on = true);
  bool age_rule() const { return age_rule_; }

  /// Cap on tracked waves: beyond it the two oldest waves merge with
  /// weaker-bound joins (sound — the merged instant covers both).  Smaller
  /// caps bound the refined state space at the cost of justification
  /// precision.
  void set_max_waves(std::size_t n) { max_waves_ = n; }

  /// Activate the ordering "before fires before after while both pending".
  /// Returns false if the pair was already active.
  bool activate_pair(EventId before, EventId after);
  std::size_t num_active_pairs() const { return pairs_.size(); }

  /// Register refused outputs (containment chokes): they are enabled in the
  /// implementation even though the composed graph has no transition, so
  /// the wave tracking must include them — both to time their own firing
  /// and to account for their deadlines.
  void set_chokes(std::span<const ChokeRecord> chokes);

  void add_observer(BanObserver obs);
  std::size_t num_observers() const { return observers_.size(); }
  const BanObserver& observer(std::size_t i) const { return observers_[i]; }

  RefinedState initial() const;

  /// True iff firing e from s would complete some observer window.
  bool blocked(const RefinedState& s, EventId e) const;

  /// Successor after firing e (e must be base-enabled and not blocked).
  RefinedState advance(const RefinedState& s, EventId e) const;

 private:
  bool blocked_by_age(const RefinedState& s, EventId e) const;
  /// Base-enabled events plus choked events of this state, sorted.
  std::vector<EventId> pseudo_enabled(StateId s) const;
  std::vector<std::uint16_t> initial_order() const;
  void advance_age(const RefinedState& s, EventId fired, StateId succ,
                   RefinedState* out) const;
  Time decode_gap(std::uint16_t v) const;
  std::uint16_t encode_gap(Time v) const;

  const TransitionSystem* base_;
  std::vector<BanObserver> observers_;
  std::vector<std::pair<EventId, EventId>> pairs_;  ///< activated orderings
  std::unordered_map<StateId::underlying_type, std::vector<EventId>> chokes_;
  bool age_rule_ = false;
  Time cap_ = 1;
  std::size_t max_waves_ = 6;
};

/// Materialised refined system, for inspection and statistics (the paper's
/// Fig. 1(c,d) LzTS snapshots).
struct MaterializedLazyTs {
  TransitionSystem ts;              ///< refined (pruned) graph
  std::vector<StateId> base_state;  ///< per refined state
  std::size_t blocked_firings = 0;  ///< transitions removed by observers
  bool truncated = false;
};

MaterializedLazyTs materialize(const RefinedSystem& sys,
                               std::size_t max_states = 1'000'000);

}  // namespace rtv
