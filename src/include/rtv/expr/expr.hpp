// Boolean guard expressions over circuit nodes.
//
// Transistor stacks are described by guards: a series (AND) / parallel (OR)
// network of gate literals.  Guards are immutable DAG nodes managed by an
// arena (ExprPool) so copies are cheap handles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtv/base/bitvec.hpp"
#include "rtv/base/ids.hpp"

namespace rtv {

class ExprPool;

/// Handle to an expression node inside an ExprPool.
class Expr {
 public:
  Expr() = default;

  bool valid() const { return index_ != kInvalid; }
  std::uint32_t index() const { return index_; }

  friend bool operator==(Expr a, Expr b) { return a.index_ == b.index_; }
  friend bool operator!=(Expr a, Expr b) { return a.index_ != b.index_; }

 private:
  friend class ExprPool;
  explicit Expr(std::uint32_t i) : index_(i) {}
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t index_ = kInvalid;
};

/// Arena of hash-consed boolean expressions.
///
/// Supported forms: constants, positive/negative literals over NodeId,
/// n-ary AND, n-ary OR.  Negation is pushed to the literals on construction
/// (guards arising from transistor networks are unate, so this loses no
/// expressiveness and keeps evaluation branch-free).
class ExprPool {
 public:
  ExprPool();

  Expr constant(bool value) const { return value ? true_ : false_; }
  Expr true_expr() const { return true_; }
  Expr false_expr() const { return false_; }

  /// Literal: node == value.  `lit(n, true)` is "n is high".
  Expr lit(NodeId node, bool value);

  Expr conj(std::vector<Expr> operands);
  Expr disj(std::vector<Expr> operands);

  Expr conj2(Expr a, Expr b) { return conj({a, b}); }
  Expr disj2(Expr a, Expr b) { return disj({a, b}); }

  /// Negation via De Morgan push-down to literals.
  Expr negate(Expr e);

  /// Evaluate under a node valuation (bit i = value of NodeId(i)).
  bool eval(Expr e, const BitVec& valuation) const;

  /// Union of the NodeIds appearing in e.
  std::vector<NodeId> support(Expr e) const;

  /// True iff the node appears (with either polarity) in e.
  bool depends_on(Expr e, NodeId node) const;

  /// Human-readable rendering using the given node-name lookup.
  std::string to_string(Expr e,
                        const std::vector<std::string>& node_names) const;

  std::size_t size() const { return nodes_.size(); }

 private:
  enum class Kind : std::uint8_t { kConst, kLit, kAnd, kOr };

  struct Node {
    Kind kind;
    bool value;           // kConst: constant; kLit: required node value
    NodeId node;          // kLit only
    std::vector<Expr> operands;  // kAnd / kOr
  };

  Expr intern(Node n);
  const Node& node(Expr e) const { return nodes_[e.index()]; }

  std::vector<Node> nodes_;
  Expr true_, false_;
};

}  // namespace rtv
