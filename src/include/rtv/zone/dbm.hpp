// Difference Bound Matrices over event clocks.
//
// The zone engine is the library's exact-baseline: it explores the timed
// state space of a TTS directly (one clock per enabled event) and serves to
// cross-validate the relative-timing engine's verdicts and to quantify the
// cost the paper's method avoids.
//
// Representation: clock 0 is the constant zero; entry (i, j) bounds
// x_i - x_j <= d[i][j] (non-strict; the library's intervals are closed).
// kTimeInfinity encodes "unbounded".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rtv/base/interval.hpp"

namespace rtv {

class Dbm {
 public:
  /// Zone over `clocks` clocks (plus the implicit zero clock), initialised
  /// to the unconstrained zone x_i >= 0.
  explicit Dbm(std::size_t clocks);

  /// The point zone: all clocks equal 0.
  static Dbm zero(std::size_t clocks);

  std::size_t clocks() const { return n_ - 1; }

  Time at(std::size_t i, std::size_t j) const { return m_[i * n_ + j]; }
  void set(std::size_t i, std::size_t j, Time v) { m_[i * n_ + j] = v; }

  /// Tighten with x_i - x_j <= w (indices include the zero clock 0).
  void constrain(std::size_t i, std::size_t j, Time w);

  /// Shortest-path closure.  Returns false (and marks empty) on negative
  /// cycle.
  bool canonicalize();

  bool empty() const { return empty_; }

  /// Delay: remove all upper bounds on clocks (future closure).
  void up();

  /// Project to a subset of clocks and append fresh clocks equal to 0.
  /// `keep` holds indices (1-based clock indices) into this zone, in the
  /// order they appear in the result.
  Dbm restrict_and_extend(const std::vector<std::size_t>& keep,
                          std::size_t fresh) const;

  /// General clock remapping: the result has source.size() clocks; new
  /// clock k+1 copies old clock source[k] (1-based), or is a fresh clock
  /// equal to 0 when source[k] == 0.
  Dbm remap(const std::vector<std::size_t>& source) const;

  /// Zone inclusion (both canonical).
  bool subset_of(const Dbm& other) const;

  /// Classic k-extrapolation with per-clock max constants (index 0 unused).
  void extrapolate(const std::vector<Time>& max_const);

  std::string to_string() const;

 private:
  std::size_t n_;  // matrix dimension = clocks + 1
  bool empty_ = false;
  std::vector<Time> m_;
};

}  // namespace rtv
