// Exact timed reachability of a composed TTS via zone-graph exploration.
//
// Semantics (timed transition systems with inertial delays, [7]): every
// enabled event owns a clock measuring how long it has been enabled; an
// event may fire when its clock is within [lo, hi] and time cannot pass
// beyond any enabled event's upper bound (maximal progress).  Events that
// stay enabled across a firing keep their clocks; newly enabled events (and
// re-enabled ones) restart at 0.
//
// This is the library's ground-truth engine: exponential in clocks, used to
// cross-validate the relative-timing flow and to measure the cost it
// avoids.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rtv/ts/compose.hpp"
#include "rtv/verify/property.hpp"
#include "rtv/zone/dbm.hpp"

namespace rtv {

struct ZoneVerifyOptions {
  std::size_t max_zones = 2'000'000;
  bool track_chokes = true;
};

struct ZoneVerifyResult {
  bool violated = false;
  bool truncated = false;
  std::string description;                 ///< first violation found
  std::vector<std::string> trace_labels;   ///< events leading to it
  std::size_t zones_explored = 0;
  std::size_t discrete_states = 0;         ///< distinct TTS states reached in time
  double seconds = 0.0;
};

/// Explore the timed state space of the composition of `modules`, checking
/// `properties` plus containment chokes.
ZoneVerifyResult zone_verify(const std::vector<const Module*>& modules,
                             const std::vector<const SafetyProperty*>& properties,
                             const ZoneVerifyOptions& options = {});

/// Timed reachability over an already-built transition system.
ZoneVerifyResult zone_explore(const TransitionSystem& ts,
                              const std::vector<const SafetyProperty*>& properties,
                              std::span<const ChokeRecord> chokes,
                              const ZoneVerifyOptions& options = {});

}  // namespace rtv
