// Exact timed reachability of a composed TTS via zone-graph exploration.
//
// Semantics (timed transition systems with inertial delays, [7]): every
// enabled event owns a clock measuring how long it has been enabled; an
// event may fire when its clock is within [lo, hi] and time cannot pass
// beyond any enabled event's upper bound (maximal progress).  Events that
// stay enabled across a firing keep their clocks; newly enabled events (and
// re-enabled ones) restart at 0.
//
// This is the library's ground-truth engine: exponential in clocks, used to
// cross-validate the relative-timing flow and to measure the cost it
// avoids.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rtv/ts/compose.hpp"
#include "rtv/verify/engine.hpp"
#include "rtv/verify/property.hpp"
#include "rtv/zone/dbm.hpp"

namespace rtv {

struct ZoneVerifyOptions {
  /// Hard ceiling on stored zones, enforced at insertion (the initial zone
  /// is always admitted): the run never stores more zones than this.
  std::size_t max_zones = 2'000'000;
  bool track_chokes = true;
  /// Worker threads (0 = one per hardware thread, 1 = sequential).  Only
  /// the composition phase is parallel today: the zone expansion itself
  /// stays sequential because subsumption makes its exploration order
  /// load-bearing (sharding it is future work), but the knob is plumbed
  /// through so a parallel zone backend can slot in without API churn.
  std::size_t jobs = 1;
  /// Wall-clock deadline in seconds; 0 means none.
  double max_seconds = 0.0;
  /// Optional cooperative cancellation (not owned; may be null).
  const CancelToken* cancel = nullptr;
  /// Invoked every progress_interval explored zones when set.
  ProgressFn progress;
  std::size_t progress_interval = kDefaultProgressInterval;
  /// Advanced: share an external RunClock (deadline/cancel/progress state
  /// and elapsed-seconds origin) instead of starting a fresh one —
  /// zone_verify uses this so composition time counts against the budget.
  RunClock* clock = nullptr;
};

struct ZoneVerifyResult {
  bool violated = false;
  bool truncated = false;
  std::string truncated_reason;            ///< why, when truncated
  std::string description;                 ///< first violation found
  std::vector<std::string> trace_labels;   ///< events leading to it
  std::size_t zones_explored = 0;
  std::size_t discrete_states = 0;         ///< distinct TTS states reached in time
  double seconds = 0.0;

  /// The unified three-valued verdict: a truncated run is never verified.
  Verdict verdict() const {
    if (violated) return Verdict::kViolated;
    return truncated ? Verdict::kInconclusive : Verdict::kVerified;
  }
};

/// Explore the timed state space of the composition of `modules`, checking
/// `properties` plus containment chokes.
ZoneVerifyResult zone_verify(const std::vector<const Module*>& modules,
                             const std::vector<const SafetyProperty*>& properties,
                             const ZoneVerifyOptions& options = {});

/// Timed reachability over an already-built transition system.
ZoneVerifyResult zone_explore(const TransitionSystem& ts,
                              const std::vector<const SafetyProperty*>& properties,
                              std::span<const ChokeRecord> chokes,
                              const ZoneVerifyOptions& options = {});

}  // namespace rtv
