// Discrete-time (digitized) reachability.
//
// The paper cites digitization [8] ("What good are digital clocks?") as an
// alternative to dense-time analysis and notes it "poses serious problems
// when the number of clocks or the constants of the timing constraints are
// large".  This engine makes that claim measurable: it explores states
// (location, integer clock valuation) with one clock per enabled event,
// advancing time in one-tick quanta, with per-clock saturation at the
// event's upper bound (bounded counters).
//
// For closed delay intervals on the integer tick grid, digitization is
// exact for reachability of discrete states: the verdicts must match the
// zone engine — a property test checks it.  The cost difference (states
// scale with the magnitude of the constants) vs zones (polyhedra) vs
// relative timing (untimed graph + derived constraints) is reported by the
// engines bench.
#pragma once

#include "rtv/ts/compose.hpp"
#include "rtv/verify/engine.hpp"
#include "rtv/verify/property.hpp"

namespace rtv {

struct DiscreteVerifyOptions {
  /// Hard ceiling on explored (location, valuation) configs, enforced at
  /// insertion: the run never retains more configs than this.
  std::size_t max_states = 4'000'000;
  bool track_chokes = true;
  /// Worker threads for the digitized BFS (0 = one per hardware thread,
  /// 1 = sequential).  Verdicts, violation choice and counterexample
  /// traces are identical for every job count: exploration is
  /// layer-synchronous and the first violation in BFS order wins.
  std::size_t jobs = 1;
  /// Wall-clock deadline in seconds; 0 means none.
  double max_seconds = 0.0;
  /// Optional cooperative cancellation (not owned; may be null).
  const CancelToken* cancel = nullptr;
  /// Invoked every progress_interval explored configs when set.
  ProgressFn progress;
  std::size_t progress_interval = kDefaultProgressInterval;
  /// Advanced: share an external RunClock (deadline/cancel/progress state
  /// and elapsed-seconds origin) instead of starting a fresh one —
  /// discrete_verify uses this so composition time counts against the
  /// budget.
  RunClock* clock = nullptr;
};

struct DiscreteVerifyResult {
  bool violated = false;
  bool truncated = false;
  std::string truncated_reason;      ///< why, when truncated
  std::string description;
  /// Event labels leading to the violation (delay ticks are implicit, as
  /// in the zone engine's traces); empty when not violated.
  std::vector<std::string> trace_labels;
  std::size_t states_explored = 0;   ///< (location, valuation) pairs
  std::size_t discrete_states = 0;   ///< distinct locations reached
  double seconds = 0.0;

  /// The unified three-valued verdict: a truncated run is never verified.
  Verdict verdict() const {
    if (violated) return Verdict::kViolated;
    return truncated ? Verdict::kInconclusive : Verdict::kVerified;
  }
};

/// Digitized exploration of the composition of `modules`.
DiscreteVerifyResult discrete_verify(
    const std::vector<const Module*>& modules,
    const std::vector<const SafetyProperty*>& properties,
    const DiscreteVerifyOptions& options = {});

/// Digitized exploration over an already-built system.
DiscreteVerifyResult discrete_explore(
    const TransitionSystem& ts,
    const std::vector<const SafetyProperty*>& properties,
    std::span<const ChokeRecord> chokes,
    const DiscreteVerifyOptions& options = {});

}  // namespace rtv
