// Minimal leveled logging.
//
// The refinement engine logs one line per iteration at Info level; detailed
// trace/CES dumps go to Debug.  Logging is globally configurable and cheap
// when disabled.
//
// Every emitted line carries a monotonic uptime stamp, a wall-clock UTC
// timestamp and the dense thread id from rtv/obs, so daemon heartbeats and
// multi-worker runs are attributable and mergeable:
//
//   [rtv INFO  +12.034s 2026-08-08T09:15:02Z t03] message
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace rtv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
// Inline atomic so the RTV_LOG gate is a single relaxed load and
// set_log_level racing concurrent readers is well-defined (TSan-clean).
inline std::atomic<LogLevel> g_log_level{LogLevel::kWarn};
}  // namespace detail

/// Global threshold; messages below it are discarded.
inline void set_log_level(LogLevel level) {
  detail::g_log_level.store(level, std::memory_order_relaxed);
}
inline LogLevel log_level() {
  return detail::g_log_level.load(std::memory_order_relaxed);
}

/// Emit a single log line (newline appended) if level passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rtv

#define RTV_LOG(level_)                              \
  if (static_cast<int>(level_) < static_cast<int>(::rtv::log_level())) { \
  } else                                             \
    ::rtv::detail::LogMessage(level_)

#define RTV_DEBUG RTV_LOG(::rtv::LogLevel::kDebug)
#define RTV_INFO RTV_LOG(::rtv::LogLevel::kInfo)
#define RTV_WARN RTV_LOG(::rtv::LogLevel::kWarn)
#define RTV_ERROR RTV_LOG(::rtv::LogLevel::kError)
