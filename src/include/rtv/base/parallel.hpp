// Intra-obligation concurrency substrate.
//
// PR 3's suite scheduler parallelizes *across* obligations; this header is
// the substrate for parallelizing *inside* one: the BFS hot loops of
// compose() (src/ts/compose.cpp) and discrete_explore()
// (src/zone/discrete.cpp) are rebuilt on it so N workers expand disjoint
// slices of one frontier.
//
// The building blocks:
//
//   * resolve_jobs()       — the one "0 = all hardware threads" rule;
//   * LayeredRunner        — a persistent worker pool around
//                            layer-synchronous BFS: every worker processes
//                            the current frontier, a barrier, then the
//                            caller merges results and publishes the next
//                            layer;
//   * WorkStealingRanges   — the frontier scheduler: the layer is cut into
//                            fixed chunks, each worker owns a contiguous
//                            chunk range and steals the tail half of the
//                            largest victim when its own range drains.
//                            Chunk ordinals are stable, so per-chunk output
//                            buckets can be merged in deterministic order
//                            no matter which worker ran them;
//   * ShardedInterner      — a hash-partitioned `seen`/`index` map
//                            (per-shard mutex + arena) with a global
//                            atomic size cap, so the state budget is a
//                            real insertion-time ceiling even when N
//                            workers insert concurrently.
//
// Determinism contract (docs/ARCHITECTURE.md has the long form): the set of
// states discovered per BFS layer is schedule-independent, violations are
// reported earliest-in-BFS-order, and compose() merges per-chunk buckets in
// chunk order — so verdicts never depend on the worker count.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rtv/base/hash.hpp"
#include "rtv/obs/metrics.hpp"
#include "rtv/obs/trace.hpp"

namespace rtv {

/// The library-wide jobs convention: 0 = one worker per hardware thread,
/// otherwise exactly `jobs` workers (never less than one).
inline std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<std::size_t>(hw) : 1;
}

/// Chunk granularity for splitting a frontier of `items` across `jobs`
/// workers: one chunk for a single worker (no scheduling overhead), else
/// ~8 chunks per worker bounded away from degenerate sizes.
inline std::size_t frontier_chunk_size(std::size_t items, std::size_t jobs) {
  if (jobs <= 1 || items == 0) return items ? items : 1;
  const std::size_t target = items / (jobs * 8) + 1;
  const std::size_t lo = 16, hi = 1024;
  return target < lo ? lo : (target > hi ? hi : target);
}

/// Reusable barrier (mutex + condvar; portable and TSan-clean).
class CyclicBarrier {
 public:
  explicit CyclicBarrier(std::size_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::uint64_t phase = phase_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++phase_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return phase_ != phase; });
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t phase_ = 0;
};

/// Layer-synchronous execution: `process(worker)` runs on every worker
/// (the calling thread is worker 0), then the calling thread runs `merge()`
/// alone; a false return from merge() ends the run.  With one job no
/// threads are spawned and the loop runs inline — the sequential and
/// parallel paths are the same code.
///
/// A worker exception is captured, the run winds down at the next barrier,
/// and the exception is rethrown on the calling thread.
class LayeredRunner {
 public:
  explicit LayeredRunner(std::size_t jobs) : jobs_(jobs ? jobs : 1) {}

  std::size_t jobs() const { return jobs_; }

  void run(const std::function<void(std::size_t)>& process,
           const std::function<bool()>& merge) {
    if (jobs_ <= 1) {
      for (;;) {
        {
          obs::Span span("layer", "parallel");
          process(0);
        }
        obs::Span span("merge", "parallel");
        if (!merge()) return;
      }
    }

    CyclicBarrier start(jobs_), end(jobs_);
    std::atomic<bool> done{false};
    std::mutex error_mutex;
    std::exception_ptr error;

    const auto guarded = [&](std::size_t worker) {
      obs::Span span("layer", "parallel");
      try {
        process(worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    };

    // Per-worker barrier wait, accumulated locally and flushed once per
    // run — the steady_clock reads happen at layer boundaries only.
    const bool timing = obs::metrics_enabled();
    const auto timed_wait = [timing](CyclicBarrier& b,
                                     std::uint64_t& wait_ns) {
      if (!timing) {
        b.arrive_and_wait();
        return;
      }
      const std::uint64_t t0 = obs::monotonic_ns();
      b.arrive_and_wait();
      wait_ns += obs::monotonic_ns() - t0;
    };
    const auto flush_wait = [timing](std::uint64_t wait_ns) {
      if (!timing) return;
      obs::Registry::global()
          .histogram("rtv_parallel_barrier_wait_seconds",
                     obs::Histogram::time_buckets(), "",
                     "Per-worker total barrier wait per run")
          .observe(static_cast<double>(wait_ns) * 1e-9);
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs_ - 1);
    for (std::size_t id = 1; id < jobs_; ++id) {
      pool.emplace_back([&, id] {
        if (obs::tracing_active())
          obs::set_thread_name("worker " + std::to_string(id));
        std::uint64_t wait_ns = 0;
        for (;;) {
          timed_wait(start, wait_ns);
          if (done.load(std::memory_order_acquire)) {
            flush_wait(wait_ns);
            return;
          }
          guarded(id);
          timed_wait(end, wait_ns);
        }
      });
    }

    std::uint64_t wait_ns = 0;
    bool more = true;
    while (more) {
      timed_wait(start, wait_ns);
      guarded(0);
      timed_wait(end, wait_ns);
      bool failed;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        failed = static_cast<bool>(error);
      }
      if (failed) {
        more = false;
      } else {
        // merge() may throw (e.g. bad_alloc interning a huge layer); the
        // exception must not escape before the shutdown handshake below,
        // or the parked workers would be destroyed while joinable.
        try {
          obs::Span span("merge", "parallel");
          more = merge();
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          more = false;
        }
      }
    }
    done.store(true, std::memory_order_release);
    start.arrive_and_wait();
    flush_wait(wait_ns);
    for (std::thread& t : pool) t.join();
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (error) std::rethrow_exception(error);
    }
  }

 private:
  std::size_t jobs_;
};

/// Work-stealing partition of one BFS layer.  The layer's item indices
/// [0, items) are cut into fixed chunks; reset() deals the chunk ordinals
/// [0, num_chunks) to the workers as contiguous ranges.  next(w) pops the
/// front chunk of w's range; a drained worker steals the tail half of the
/// victim with the most chunks left.  Every chunk is returned exactly once;
/// chunk `c` always covers items [c*chunk, min((c+1)*chunk, items)), so
/// per-chunk output buckets line up deterministically.
class WorkStealingRanges {
 public:
  void reset(std::size_t items, std::size_t chunk, std::size_t workers) {
    items_ = items;
    chunk_ = chunk ? chunk : 1;
    num_chunks_ = items_ ? (items_ + chunk_ - 1) / chunk_ : 0;
    if (slots_.size() < workers) {
      slots_ = std::vector<Slot>(workers);
    }
    workers_ = workers;
    // Deal contiguous, balanced chunk ranges.
    const std::size_t base = workers ? num_chunks_ / workers : 0;
    const std::size_t extra = workers ? num_chunks_ % workers : 0;
    std::size_t lo = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t take = base + (w < extra ? 1 : 0);
      slots_[w].range.store(pack(static_cast<std::uint32_t>(lo),
                                 static_cast<std::uint32_t>(lo + take)),
                            std::memory_order_relaxed);
      lo += take;
    }
  }

  struct Chunk {
    std::size_t ordinal;  ///< chunk index (stable bucket id)
    std::size_t begin;    ///< first item index
    std::size_t end;      ///< one past the last item index
  };

  std::size_t num_chunks() const { return num_chunks_; }

  /// The next chunk for this worker, or nullopt when the layer is drained.
  std::optional<Chunk> next(std::size_t worker) {
    for (;;) {
      // Pop the front chunk of our own range.
      std::uint64_t cur = slots_[worker].range.load(std::memory_order_relaxed);
      for (;;) {
        const std::uint32_t lo = unpack_lo(cur), hi = unpack_hi(cur);
        if (lo >= hi) break;
        if (slots_[worker].range.compare_exchange_weak(
                cur, pack(lo + 1, hi), std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
          return make_chunk(lo);
        }
      }
      // Empty: steal the tail half of the fullest victim.
      steal_attempts_.fetch_add(1, std::memory_order_relaxed);
      std::size_t victim = workers_;
      std::uint32_t best = 0;
      for (std::size_t v = 0; v < workers_; ++v) {
        if (v == worker) continue;
        const std::uint64_t r = slots_[v].range.load(std::memory_order_relaxed);
        const std::uint32_t size = unpack_hi(r) - std::min(unpack_lo(r), unpack_hi(r));
        if (size > best) {
          best = size;
          victim = v;
        }
      }
      if (victim == workers_) return std::nullopt;  // nothing left anywhere
      std::uint64_t r = slots_[victim].range.load(std::memory_order_relaxed);
      const std::uint32_t lo = unpack_lo(r), hi = unpack_hi(r);
      if (lo >= hi) continue;  // drained meanwhile; rescan
      const std::uint32_t mid = lo + (hi - lo) / 2;  // victim keeps [lo, mid)
      if (slots_[victim].range.compare_exchange_strong(
              r, pack(lo, mid), std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        slots_[worker].range.store(pack(mid, hi), std::memory_order_release);
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
      // Either way, loop back and retry from our own range.
    }
  }

  /// Cumulative steal activity since construction (reset() keeps the
  /// tallies: a run spans many layers).  Attempts count every entry into
  /// the steal path; steals count the successful CAS handoffs.
  std::uint64_t steal_attempts() const {
    return steal_attempts_.load(std::memory_order_relaxed);
  }
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> range{0};
  };

  static std::uint64_t pack(std::uint32_t lo, std::uint32_t hi) {
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }
  static std::uint32_t unpack_lo(std::uint64_t r) {
    return static_cast<std::uint32_t>(r >> 32);
  }
  static std::uint32_t unpack_hi(std::uint64_t r) {
    return static_cast<std::uint32_t>(r);
  }

  Chunk make_chunk(std::size_t ordinal) const {
    const std::size_t begin = ordinal * chunk_;
    const std::size_t end = std::min(begin + chunk_, items_);
    return Chunk{ordinal, begin, end};
  }

  std::vector<Slot> slots_;
  std::size_t workers_ = 0;
  std::size_t items_ = 0;
  std::size_t chunk_ = 1;
  std::size_t num_chunks_ = 0;
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> steals_{0};
};

/// Stable reference into a ShardedInterner: (shard, slot-in-shard).
struct ShardHandle {
  std::uint32_t shard = kInvalid;
  std::uint32_t index = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  constexpr bool valid() const { return shard != kInvalid; }

  friend constexpr bool operator==(ShardHandle a, ShardHandle b) {
    return a.shard == b.shard && a.index == b.index;
  }
};

/// Hash-partitioned concurrent interner: Key -> stable slot carrying a
/// Value.  Each shard holds a mutex, a map and a deque arena, so inserts in
/// different shards never contend; a global atomic count enforces
/// `max_size` as a hard insertion-time ceiling (an insert that would exceed
/// it is rejected and budget_hit() latches).
///
/// Concurrency contract: insert() may be called from any number of threads.
/// value() must not race with insert() into the same interner — the BFS
/// loops only call it between layers (after the barrier) and when unwinding
/// a finished run; during expansion, existing slots are touched only via
/// the on_existing callback, which runs under the shard lock.
template <class Key, class Value, class Hash = std::hash<Key>>
class ShardedInterner {
 public:
  /// `max_size` caps the number of retained keys (inserts beyond it are
  /// rejected); shard_count is rounded up to a power of two.
  explicit ShardedInterner(std::size_t max_size, std::size_t shard_count = 1)
      : max_size_(max_size) {
    std::size_t n = 1;
    while (n < shard_count && n < 256) n <<= 1;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      shards_.push_back(std::make_unique<Shard>());
    shift_ = 64;
    for (std::size_t s = n; s > 1; s >>= 1) --shift_;
  }

  struct InsertResult {
    bool inserted = false;     ///< key was new and retained
    bool over_budget = false;  ///< key was new but the size cap rejected it
    ShardHandle handle;        ///< valid when retained or already present
  };

  /// Intern `key`.  When the key is new and within budget, `make_value()`
  /// builds its slot; when it is already present, `on_existing(Value&)`
  /// runs under the shard lock (the hook the BFS loops use to keep the
  /// earliest-discovery metadata deterministic).
  template <class MakeValue, class OnExisting>
  InsertResult insert(const Key& key, MakeValue&& make_value,
                      OnExisting&& on_existing) {
    const std::size_t h = Hash{}(key);
    const std::uint32_t si = shard_of(h);
    Shard& shard = *shards_[si];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      on_existing(shard.values[it->second]);
      return InsertResult{false, false, ShardHandle{si, it->second}};
    }
    const std::size_t n = count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n > max_size_) {
      count_.fetch_sub(1, std::memory_order_relaxed);
      budget_hit_.store(true, std::memory_order_relaxed);
      return InsertResult{false, true, ShardHandle{}};
    }
    const std::uint32_t idx = static_cast<std::uint32_t>(shard.values.size());
    shard.values.push_back(make_value());
    shard.map.emplace(key, idx);
    return InsertResult{true, false, ShardHandle{si, idx}};
  }

  Value& value(ShardHandle h) { return shards_[h.shard]->values[h.index]; }
  const Value& value(ShardHandle h) const {
    return shards_[h.shard]->values[h.index];
  }

  /// Number of retained keys (never exceeds max_size).
  std::size_t size() const { return count_.load(std::memory_order_relaxed); }
  /// True once any insert was rejected by the size cap.
  bool budget_hit() const {
    return budget_hit_.load(std::memory_order_relaxed);
  }

  /// Pre-size every shard's map for ~expected total keys.
  void reserve(std::size_t expected_total) {
    const std::size_t per_shard = expected_total / shards_.size() + 1;
    for (auto& s : shards_) s->map.reserve(per_shard);
  }

  struct ShardStats {
    std::size_t shards = 0;     ///< total shard count
    std::size_t nonempty = 0;   ///< shards holding at least one key
    std::size_t max_size = 0;   ///< largest shard's key count
  };

  /// Occupancy snapshot (locks each shard briefly — call between layers or
  /// after a run, not from the expansion hot path).
  ShardStats shard_stats() const {
    ShardStats st;
    st.shards = shards_.size();
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      const std::size_t n = s->values.size();
      if (n) ++st.nonempty;
      st.max_size = std::max(st.max_size, n);
    }
    return st;
  }

 private:
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, std::uint32_t, Hash> map;
    std::deque<Value> values;
  };

  std::uint32_t shard_of(std::size_t h) const {
    if (shards_.size() == 1) return 0;
    return static_cast<std::uint32_t>(hash_spread(h) >> shift_);
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  unsigned shift_ = 64;
  std::atomic<std::size_t> count_{0};
  std::atomic<bool> budget_hit_{false};
  std::size_t max_size_;
};

}  // namespace rtv
