// Deterministic pseudo-random number generation for property tests,
// randomized system generators, and the timed simulator.
//
// xoshiro256** seeded via splitmix64; identical sequences across platforms,
// unlike std::default_random_engine.
#pragma once

#include <cstdint>

#include "rtv/base/interval.hpp"

namespace rtv {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  std::uint64_t next_u64();

  /// Uniform in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double unit();

  /// True with probability p.
  bool chance(double p);

  /// A delay drawn uniformly from the interval; unbounded upper bounds are
  /// clamped to lo + `unbounded_span` ticks so simulation always progresses.
  Time sample_delay(const DelayInterval& d, Time unbounded_span = 10 * kTicksPerUnit);

  /// Derive the seed of stream `stream` within the seed space of `seed`
  /// (splitmix64-based): neighbouring streams are statistically
  /// independent.  The fuzz campaign keys case i off mix(campaign_seed, i)
  /// so any case replays without rerunning its predecessors.
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t stream);

 private:
  std::uint64_t s_[4];
};

}  // namespace rtv
