// Time values and delay intervals.
//
// Time is modelled as a fixed-point integer number of "ticks"
// (4 ticks == 1 delay unit of the paper).  Integer arithmetic keeps the
// difference-constraint solver and the max-separation engine exact; the
// paper's fractional constants (0.5, 2.5, 15+eps) are all representable,
// with eps == one tick == 0.25 units.  The coarse grid also keeps the
// refined-state timing annotations (wave matrices) compact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace rtv {

/// Scalar time in ticks (see kTicksPerUnit).
using Time = std::int64_t;

/// Ticks per user-facing time unit.
inline constexpr Time kTicksPerUnit = 4;

/// Sentinel for an unbounded upper delay.  Chosen far below INT64_MAX so
/// sums of a few infinities never overflow.
inline constexpr Time kTimeInfinity = (std::int64_t{1} << 60);

/// Smallest representable positive time; used to encode the paper's
/// "15 + eps" style strict bounds.
inline constexpr Time kTimeEpsilon = 1;

/// Convert user units (e.g. 2.5) to ticks (250).  Rounds to nearest tick.
Time ticks_from_units(double units);

/// Convert ticks back to user units for reporting.
double units_from_ticks(Time t);

/// A closed delay interval [lo, hi] with hi possibly infinite.
///
/// Invariant: 0 <= lo <= hi.
class DelayInterval {
 public:
  /// Default: the completely unconstrained delay [0, inf).
  constexpr DelayInterval() = default;

  constexpr DelayInterval(Time lo, Time hi) : lo_(lo), hi_(hi) {}

  /// [lo, hi] given in user units.
  static DelayInterval units(double lo, double hi);
  /// [lo, inf) given in user units.
  static DelayInterval at_least_units(double lo);
  /// The unconstrained interval [0, inf).
  static constexpr DelayInterval unbounded() { return DelayInterval(0, kTimeInfinity); }
  /// The exact delay [d, d].
  static DelayInterval exactly_units(double d);

  constexpr Time lo() const { return lo_; }
  constexpr Time hi() const { return hi_; }
  constexpr bool upper_bounded() const { return hi_ < kTimeInfinity; }
  constexpr bool valid() const { return 0 <= lo_ && lo_ <= hi_; }

  /// True iff this interval imposes no constraint at all.
  constexpr bool is_unbounded() const { return lo_ == 0 && !upper_bounded(); }

  /// Tightest interval containing behaviours allowed by both: used when a
  /// synchronised event carries bounds in several components.
  DelayInterval intersect(const DelayInterval& other) const;

  /// Widen both bounds by the given relative slack (for robustness sweeps):
  /// lo * (1 - s), hi * (1 + s).  Unbounded hi stays unbounded.
  DelayInterval widened(double slack) const;

  std::string to_string() const;

  friend constexpr bool operator==(const DelayInterval& a, const DelayInterval& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  Time lo_ = 0;
  Time hi_ = kTimeInfinity;
};

std::ostream& operator<<(std::ostream& os, const DelayInterval& d);

}  // namespace rtv
