// Strong integer id types used across the library.
//
// Every arena-indexed entity (states, events, places, circuit nodes, ...)
// gets its own id type so that an EventId cannot silently be used where a
// StateId is expected.  Ids are trivially copyable and hashable.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <limits>

namespace rtv {

/// CRTP-free tagged index.  `Tag` is an empty struct used only to
/// distinguish id spaces at compile time.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  /// Sentinel meaning "no entity".
  static constexpr Id invalid() {
    return Id(std::numeric_limits<underlying_type>::max());
  }

  constexpr bool valid() const { return value_ != invalid().value_; }
  constexpr underlying_type value() const { return value_; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

 private:
  underlying_type value_ = std::numeric_limits<underlying_type>::max();
};

struct StateTag {};
struct EventTag {};
struct NodeTag {};
struct PlaceTag {};
struct SignalTag {};

/// A state of a (timed) transition system.
using StateId = Id<StateTag>;
/// An event (labelled transition) of a (timed) transition system.
using EventId = Id<EventTag>;
/// A circuit node (wire) in a transistor netlist.
using NodeId = Id<NodeTag>;
/// A place of a Petri net / STG.
using PlaceId = Id<PlaceTag>;
/// A named boolean signal shared between composed modules.
using SignalId = Id<SignalTag>;

}  // namespace rtv

namespace std {
template <typename Tag>
struct hash<rtv::Id<Tag>> {
  size_t operator()(rtv::Id<Tag> id) const noexcept {
    return std::hash<typename rtv::Id<Tag>::underlying_type>()(id.value());
  }
};
}  // namespace std
