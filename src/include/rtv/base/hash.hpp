// One hashing idiom for the whole library.
//
// Three primitives cover every hashing need in the tree:
//
//   * mix(h, v)      — the splitmix-style combine used by every state/tuple
//                      hash (compose tuples, digitized configs, refined
//                      states, bit vectors).  Order-sensitive.
//   * spread(h)      — a single golden-ratio multiply turning a possibly
//                      clustered hash into well-distributed high bits (the
//                      sharded interner picks shards from them).
//   * Fnv1a          — an incremental FNV-1a byte hasher for *content*
//                      hashes that must be stable across runs and across
//                      processes: cache keys, report fingerprints.  Feed it
//                      typed values (u64/i64/str/...) so the encoding is
//                      unambiguous — every value is length- or
//                      width-delimited, so "ab","c" never collides with
//                      "a","bc".
//
// In-memory hashes (mix/spread) may differ between platforms via
// std::hash; Fnv1a digests are platform-independent by construction and
// safe to persist.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rtv {

/// Splitmix-style order-sensitive combine: fold `v` into the running hash
/// `h`.  This is the one combine used by the library's hot-loop state
/// hashes.
constexpr std::size_t hash_mix(std::size_t h, std::size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

/// Golden-ratio multiply: redistributes a clustered hash so its *high*
/// bits are usable (shard selection, open-addressing probes).
constexpr std::uint64_t hash_spread(std::uint64_t h) {
  return h * 0x9e3779b97f4a7c15ull;
}

/// Incremental 64-bit FNV-1a over a typed byte stream.  Deterministic
/// across platforms and runs; use for content-addressed keys and
/// fingerprints, not for hot-loop hashing (mix() is cheaper).
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  constexpr Fnv1a() = default;
  /// Domain-separated hasher: the seed folds in first, so two hashers with
  /// different seeds never agree by construction.
  constexpr explicit Fnv1a(std::uint64_t seed) { u64(seed); }

  constexpr Fnv1a& byte(unsigned char b) {
    state_ = (state_ ^ b) * kPrime;
    return *this;
  }

  /// Fixed-width little-endian encoding: width-delimited by construction.
  constexpr Fnv1a& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
    return *this;
  }
  constexpr Fnv1a& i64(std::int64_t v) {
    return u64(static_cast<std::uint64_t>(v));
  }
  constexpr Fnv1a& u32(std::uint32_t v) { return u64(v); }
  constexpr Fnv1a& boolean(bool v) { return byte(v ? 1 : 0); }

  /// Length-prefixed, so consecutive strings cannot alias each other.
  constexpr Fnv1a& str(std::string_view s) {
    u64(s.size());
    for (char c : s) byte(static_cast<unsigned char>(c));
    return *this;
  }

  /// Bit-exact double encoding (NaNs collapse per their bit pattern).
  Fnv1a& f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }

  constexpr std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

}  // namespace rtv
