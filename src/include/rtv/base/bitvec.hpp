// A small dynamic bitset used to encode boolean state vectors
// (circuit node valuations, STG markings, enabled-event sets).
//
// Header-only; optimised for the <= few-hundred-bit vectors this library
// manipulates.  Provides hashing and ordering so vectors can key hash maps
// during reachability analysis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rtv/base/hash.hpp"

namespace rtv {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n_bits, bool value = false)
      : n_bits_(n_bits), words_((n_bits + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    trim();
  }

  std::size_t size() const { return n_bits_; }
  bool empty() const { return n_bits_ == 0; }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  bool operator[](std::size_t i) const { return test(i); }

  void set(std::size_t i, bool v = true) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }
  void reset(std::size_t i) { set(i, false); }
  void flip(std::size_t i) { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  void clear_all() {
    for (auto& w : words_) w = 0;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }
  bool none() const { return !any(); }

  /// True iff every set bit of this is also set in other.
  bool is_subset_of(const BitVec& other) const {
    for (std::size_t k = 0; k < words_.size(); ++k)
      if (words_[k] & ~other.words_[k]) return false;
    return true;
  }

  BitVec& operator|=(const BitVec& o) {
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] |= o.words_[k];
    return *this;
  }
  BitVec& operator&=(const BitVec& o) {
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] &= o.words_[k];
    return *this;
  }

  /// Iterate set bits, calling f(index).
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t k = 0; k < words_.size(); ++k) {
      std::uint64_t w = words_[k];
      while (w) {
        const int b = __builtin_ctzll(w);
        f(k * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  std::string to_string() const {
    std::string s;
    s.reserve(n_bits_);
    for (std::size_t i = 0; i < n_bits_; ++i) s.push_back(test(i) ? '1' : '0');
    return s;
  }

  friend bool operator==(const BitVec& a, const BitVec& b) {
    return a.n_bits_ == b.n_bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const BitVec& a, const BitVec& b) { return !(a == b); }
  friend bool operator<(const BitVec& a, const BitVec& b) {
    if (a.n_bits_ != b.n_bits_) return a.n_bits_ < b.n_bits_;
    return a.words_ < b.words_;
  }

  std::size_t hash() const {
    std::size_t h = n_bits_;
    for (auto w : words_) h = hash_mix(h, static_cast<std::size_t>(w));
    return h;
  }

 private:
  void trim() {
    const std::size_t extra = words_.size() * 64 - n_bits_;
    if (!words_.empty() && extra > 0) {
      words_.back() &= (~std::uint64_t{0}) >> extra;
    }
  }

  std::size_t n_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rtv

namespace std {
template <>
struct hash<rtv::BitVec> {
  size_t operator()(const rtv::BitVec& v) const noexcept { return v.hash(); }
};
}  // namespace std
