// Minimal JSON support shared by the machine-readable report writers and
// parsers (suite reports, fuzz campaign reports, generator configs).
//
// The writer side is a handful of append helpers; the reader side is a
// strict recursive-descent parser for exactly the grammar the writers emit
// (objects, arrays, strings with escapes, numbers, booleans, null), so a
// corrupted document fails loudly instead of round-tripping garbage.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rtv::json {

// ---- emission --------------------------------------------------------------

/// Append `s` with JSON escaping (no surrounding quotes).
void escape_into(std::string& out, std::string_view s);

/// Append `s` as a quoted, escaped JSON string.
void append_string(std::string& out, std::string_view s);

/// Append a double with 17 significant digits: every finite double
/// round-trips exactly.
void append_double(std::string& out, double v);

// ---- parsing ---------------------------------------------------------------

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First member with this key, or null (objects only).
  const Value* find(std::string_view key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parse one JSON document.  `context` prefixes every error message
/// (e.g. "suite report JSON"); throws std::runtime_error on malformed
/// input or trailing characters.
Value parse(const std::string& text, std::string_view context);

/// Fetch a required object member of the given kind; throws
/// std::runtime_error naming `context`, the key and `what` when the member
/// is missing or mistyped.
const Value& require(const Value& obj, std::string_view key, Value::Kind kind,
                     const char* what, std::string_view context);

}  // namespace rtv::json
