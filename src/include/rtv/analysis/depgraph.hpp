// Static dependency analysis over an obligation's modules.
//
// One untimed pass per module (reachable states, fireable events, local
// conflict shapes) plus the synchronization structure between modules
// (which modules share which labels, and the connected components of that
// relation).  Both rtv/lint and the rtv/analysis slicer read these facts,
// so the per-module BFS runs exactly once per obligation no matter how
// many consumers look at it.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "rtv/ts/module.hpp"

namespace rtv::analysis {

/// Untimed facts about one module, derivable without composing.
struct ModuleFacts {
  /// Reachable states in BFS order (empty when the module has no valid
  /// initial state — lint's well-formedness error covers that case).
  std::vector<StateId> reachable;
  /// Per event id: true iff some reachable state has a transition
  /// labelled by the event (i.e. the event can ever fire locally).
  std::vector<bool> fireable;
  /// True iff any reachable state has an outgoing transition.
  bool has_reachable_transition = false;
  /// True iff some fireable event carries a zero upper delay bound.  Such
  /// an event can be forced to fire without letting time advance — a
  /// reachable zero-deadline cycle pins the *global* clock (a Zeno run),
  /// so even a fully disconnected module with this shape can mask timed
  /// behaviour everywhere else in the composition.
  bool can_pin_time = false;
  /// True iff some reachable state enables events e != f such that firing
  /// e can lead to a state where f is no longer enabled.  Every composed
  /// persistency violation projects onto such a module-local conflict in
  /// one of the fired event's participants, so a module without one can
  /// never be the source of a persistency failure.
  bool has_local_conflict = false;
};

/// The event/signal/module dependency graph of one obligation.
struct DepGraph {
  /// One entry per module, same order as the input vector.
  std::vector<ModuleFacts> facts;
  /// Label -> indices of the modules declaring it (ascending).
  std::map<std::string, std::vector<std::size_t>, std::less<>> label_owners;
  /// Per module: the other modules sharing at least one label with it
  /// (ascending, unique).  Empty means the module composes by pure
  /// interleaving (lint's RTV-L014 condition).
  std::vector<std::vector<std::size_t>> adjacent;
  /// Connected-component id per module over the shared-label relation;
  /// ids are dense in [0, num_components).
  std::vector<std::size_t> component;
  std::size_t num_components = 0;

  /// Indices of the modules declaring a signal of this name (ascending).
  std::vector<std::size_t> signal_owners(
      const std::vector<const Module*>& modules, const std::string& name) const;
};

/// Build the graph: one BFS per module plus a label-ownership sweep.
DepGraph build_depgraph(const std::vector<const Module*>& modules);

}  // namespace rtv::analysis
