// Property-directed cone-of-influence slicing of obligations.
//
// The engines pay for the full composed product even when whole modules
// cannot influence the checked properties.  slice() computes, per
// property kind, which modules are provably irrelevant — outside the
// cone of influence of every referenced signal, label and synchronization
// — drops them, and prunes statically-unreachable states (plus dead,
// unshared events) inside the kept modules.  The result is
// verdict-preserving by construction: whenever a construct is not
// provably irrelevant the slicer bails out to the identity slice and says
// why.  See docs/ANALYSIS.md for the cone rules and the soundness
// arguments behind them.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "rtv/analysis/depgraph.hpp"
#include "rtv/verify/property.hpp"

namespace rtv::analysis {

struct SliceOptions {
  /// Mirror of Obligation::track_chokes.  With choke tracking on, a
  /// refused output anywhere inside a multi-module component is itself a
  /// reportable failure, so only single-module components (which cannot
  /// choke) are ever droppable.
  bool track_chokes = true;
};

/// One provenance entry: what the slicer dropped, or why it refused.
struct SliceNote {
  /// "module" (whole module dropped), "events" (dead unshared events
  /// removed from a kept module), "states" (statically-unreachable states
  /// pruned from a kept module), or "bailout" (identity slice forced).
  std::string kind;
  std::string module;  ///< module the note anchors in ("" for bailout)
  std::string object;  ///< event label or count ("" when not applicable)
  std::string reason;
};

/// A reduced obligation plus the provenance of everything removed.
struct SliceResult {
  /// Kept modules in original relative order.  Pointers reference either
  /// the caller's modules (kept untouched) or entries of `reduced`
  /// (pruned rebuilds); both stay valid as long as this result and the
  /// caller's modules live.
  std::vector<const Module*> modules;
  /// Index into the caller's vector for each kept module.
  std::vector<std::size_t> kept;
  /// Owned pruned rebuilds (deque: stable addresses for `modules`).
  std::deque<Module> reduced;
  /// True when the slice is the input unchanged: every module kept, no
  /// state or event pruned.
  bool identity = true;
  /// Non-empty when the slicer conservatively refused to slice; the
  /// result is then the identity slice and `notes` holds one "bailout"
  /// entry with this reason.
  std::string bailout;
  std::vector<SliceNote> notes;

  std::size_t dropped_modules = 0;
  /// Events removed: the whole alphabet of dropped modules plus dead
  /// events pruned from kept ones.
  std::size_t dropped_events = 0;
  std::size_t pruned_states = 0;
};

/// Compute the cone-of-influence slice of `modules` under `properties`.
/// Pass a prebuilt `graph` to reuse an existing dependency analysis (it
/// must describe exactly these modules); nullptr builds one internally.
SliceResult slice(const std::vector<const Module*>& modules,
                  const std::vector<const SafetyProperty*>& properties,
                  const SliceOptions& options = {},
                  const DepGraph* graph = nullptr);

/// Canonical module order: ascending 64-bit content hash, stable for
/// ties.  Two obligations with the same cone enumerate byte-identical
/// module streams in this order no matter how their inputs were arranged
/// — the serve cache keys on it (rtv/verify/obligation_hash.hpp).
std::vector<const Module*> canonical_order(
    const std::vector<const Module*>& modules);

}  // namespace rtv::analysis
