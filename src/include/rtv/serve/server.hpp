// The `rtv serve` daemon: a persistent verification service.
//
// Architecture (three layers, one process):
//
//   * connection layer — a Unix-domain stream listener; one thread per
//     client connection, line-delimited JSON requests/responses
//     (rtv/serve/wire.hpp);
//   * dispatch layer — every verify obligation is content-hashed
//     (rtv/serve/cache.hpp).  A hit answers in O(1) from the verdict
//     cache.  A miss registers an in-flight job keyed by the hash, so N
//     clients asking the same question trigger exactly ONE computation —
//     later askers attach to the pending job and share its outcome.
//     Incremental re-verification falls out of the same mechanism: an
//     edited suite re-runs only the obligations whose content hash
//     changed, the rest are served from cache with `cached: true`;
//   * compute layer — a single scheduler thread drains the pending-job
//     queue in arrival order, groups adjacent jobs sharing (mode, engine
//     selection) into one Suite, and dispatches it through the existing
//     run_suite scheduler with the daemon's global --jobs budget — so
//     total worker concurrency is capped no matter how many clients are
//     connected.
//
// Lifecycle: construct (binds the socket; loads the verdict cache,
// refusing corrupt or version-skewed files), start(), then wait_for() /
// shutdown_requested() until a shutdown request or an external signal,
// then stop() — which persists the cache when a cache path is configured.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "rtv/serve/cache.hpp"
#include "rtv/serve/wire.hpp"

namespace rtv::serve {

struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket (required).  An
  /// existing socket file is replaced.
  std::string socket_path;
  /// Verdict-cache persistence file; empty = in-memory only.  Loaded at
  /// construction (a missing file starts empty; a corrupt or
  /// version-skewed file throws) and saved by stop() and shutdown
  /// requests.
  std::string cache_path;
  /// Global worker budget handed to run_suite (0 = hardware concurrency).
  std::size_t jobs = 0;
  /// Verdict-cache entry cap (LRU eviction past it).
  std::size_t max_cache_entries = 4096;
  /// Optional sink for human-readable log lines.
  std::function<void(const std::string&)> log;
  /// Heartbeat period in seconds; > 0 starts a thread that logs one
  /// structured line ("heartbeat {...}" with the stats counters as JSON)
  /// per period through the log sink.
  double heartbeat_seconds = 0.0;
};

class Server {
 public:
  /// Binds + listens and loads the cache; throws std::runtime_error on
  /// socket failure or a rejected cache file.
  explicit Server(ServerOptions options);
  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawn the accept loop and the scheduler thread.
  void start();

  /// Block up to `seconds` or until a shutdown request arrives; returns
  /// true once shutdown was requested.  Poll this from the owning thread
  /// (which also watches its own signals), then call stop().
  bool wait_for(double seconds);
  bool shutdown_requested() const;

  /// Stop accepting, fail pending jobs, join every thread, persist the
  /// cache (when configured).  Idempotent.  Must not be called from a
  /// connection thread — shutdown *requests* only flag, the owner stops.
  void stop();

  /// Persist the cache now; false (with a log line) on I/O failure.
  bool save_cache();

  const std::string& socket_path() const;
  ServeStats stats() const;
  VerdictCache& cache();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rtv::serve
