// The content-addressed verdict cache behind `rtv serve`.
//
// Key: a 128-bit FNV-1a digest (two domain-separated 64-bit runs) of the
// *semantic* content of one obligation —
//
//   (mode, resolved engine selection, resolved budget
//    [max_states, max_seconds, max_refinements, track_chokes],
//    property specs, module contents in composition order)
//
// — computed by obligation_cache_key().  Obligation *names*, worker counts
// and cancellation/progress plumbing are deliberately excluded: renaming
// an obligation or changing --jobs must not invalidate a verdict (the
// parallel substrate guarantees jobs-independent verdicts), while any
// budget change *must* miss — a cached Inconclusive at a small budget can
// never answer a bigger-budget request.
//
// Value: the obligation's full record set (one CachedRecord per engine the
// request ran), so a hit replays the exact SuiteReport rows with
// `cached: true`.
//
// The store is in-memory, LRU-evicted past a configurable entry cap, and
// persists to a versioned JSON file that survives daemon restarts; load()
// rejects corrupt documents and any schema-version mismatch loudly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtv/base/hash.hpp"
#include "rtv/serve/wire.hpp"
#include "rtv/verify/suite.hpp"

namespace rtv::serve {

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  std::string hex() const;
  /// Inverse of hex(); throws std::runtime_error on malformed input.
  static CacheKey from_hex(const std::string& s);

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    return static_cast<std::size_t>(k.hi ^ hash_spread(k.lo));
  }
};

/// The canonical content hash of one obligation (see the header comment
/// for exactly what is and is not covered).  `engines` must be the
/// *resolved* selection the obligation will actually run (per-obligation
/// override or request/mode default), and the budget fields the *resolved*
/// effective values.
CacheKey obligation_cache_key(const WireObligation& ob, SuiteMode mode,
                              const std::vector<std::string>& engines,
                              std::size_t max_states, double max_seconds,
                              std::size_t max_refinements);

// ---------------------------------------------------------------------------
// Cached outcomes
// ---------------------------------------------------------------------------

/// One obligation×engine row of a cached outcome — everything needed to
/// replay the SuiteRecord (the obligation name is supplied by the serving
/// request; it is not part of the content).
struct CachedRecord {
  std::string engine;
  Verdict verdict = Verdict::kInconclusive;
  std::string stop_reason;
  std::string message;
  std::vector<std::string> trace_labels;
  std::size_t states_explored = 0;
  double seconds = 0.0;      ///< original computation wall time
  double cpu_seconds = 0.0;  ///< original computation CPU time
  bool winner = false;
};

struct CachedOutcome {
  std::vector<CachedRecord> records;
};

/// Storage policy: an outcome may enter the cache unless its records are
/// tainted by execution accidents that the key cannot capture — a
/// cancellation without a deciding winner (portfolio losers cancelled *by*
/// a winner are fine: they are part of the deterministic outcome) or an
/// engine error (possibly environmental, e.g. out of memory).  Budget
/// truncation (state budget, deadline) IS cacheable: the budget is part of
/// the key, so the same question gets the same honest Inconclusive.
bool cacheable(const CachedOutcome& outcome);

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

class VerdictCache {
 public:
  /// On-disk format version; load() rejects any mismatch.
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "rtv-verdict-cache";

  /// `max_entries` caps the resident entry count; inserting past it evicts
  /// least-recently-used entries (0 is clamped to 1).
  explicit VerdictCache(std::size_t max_entries = 4096);

  /// Hit: copies the outcome into *out, refreshes recency, returns true.
  bool get(const CacheKey& key, CachedOutcome* out);
  /// Insert or overwrite; evicts LRU entries past the cap.
  void put(const CacheKey& key, CachedOutcome outcome);

  std::size_t size() const;
  std::size_t max_entries() const { return max_entries_; }
  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;

  /// Serialize every entry (least-recently-used first, so a load replays
  /// recency) to a versioned JSON document.
  std::string to_json() const;
  /// Replace the contents from a to_json() document.  Throws
  /// std::runtime_error on malformed JSON, a wrong schema tag, or ANY
  /// schema-version mismatch (both directions, version named in the
  /// error): a stale or corrupt cache must never be half-loaded.
  void load_json(const std::string& text);

  /// Atomic save (temp file + rename); throws std::runtime_error on I/O
  /// failure.
  void save(const std::string& path) const;
  /// load_json() from a file; throws on I/O failure or rejected content.
  void load(const std::string& path);

 private:
  void evict_to_cap_locked();

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  /// Front = least recently used, back = most recently used.
  std::list<std::pair<CacheKey, CachedOutcome>> lru_;
  std::unordered_map<CacheKey, decltype(lru_)::iterator, CacheKeyHash> map_;
  Stats stats_;
};

}  // namespace rtv::serve
