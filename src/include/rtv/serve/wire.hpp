// Wire format of the `rtv serve` verification service.
//
// The protocol is line-delimited JSON over a Unix-domain stream socket:
// one request per line, one response line per request, every message
// schema-versioned and strictly parsed (a document written by a newer
// library fails loudly, naming both versions — no best-effort skew).
//
// A request carries complete obligations — full module content (states,
// events, delays, transitions, valuations) plus *declarative* property
// specs — so the daemon can content-hash exactly what it is asked and
// answer repeats from the verdict cache.  Responses embed the standard
// schema-versioned SuiteReport (rtv/verify/suite.hpp) with the
// serve-specific `cached` marker per record.
//
// Properties travel as PropertySpec, not as polymorphic SafetyProperty
// objects: the three built-in property families are closed under a small
// declarative description, which is what makes them hashable and
// transportable at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "rtv/base/json.hpp"
#include "rtv/ts/module.hpp"
#include "rtv/verify/property.hpp"
#include "rtv/verify/suite.hpp"

namespace rtv::serve {

// ---------------------------------------------------------------------------
// Declarative properties.
// ---------------------------------------------------------------------------

/// Serializable description of one safety property; instantiate() builds
/// the checker object.  Covers the library's three built-in families.
struct PropertySpec {
  enum class Kind {
    kDeadlockFreedom,
    kPersistency,
    kInvariant,
  };

  struct Literal {
    std::string signal;
    bool value = true;

    friend bool operator==(const Literal&, const Literal&) = default;
  };

  Kind kind = Kind::kDeadlockFreedom;
  /// Invariant only: the property's reported name.
  std::string name;
  /// Invariant only: the forbidden conjunction of signal literals.
  std::vector<Literal> literals;
  /// Persistency only: event labels exempt from the persistency check.
  std::vector<std::string> exempt;

  static PropertySpec deadlock();
  static PropertySpec persistency(std::vector<std::string> exempt = {});
  static PropertySpec invariant(std::string name, std::vector<Literal> lits);

  std::unique_ptr<SafetyProperty> instantiate() const;

  friend bool operator==(const PropertySpec&, const PropertySpec&) = default;
};

const char* to_string(PropertySpec::Kind kind);

// ---------------------------------------------------------------------------
// Obligations and requests.
// ---------------------------------------------------------------------------

/// One wire obligation with owned storage.  Zero-valued budget fields
/// inherit the request-level defaults (resolved by the daemon before
/// hashing, so "explicit 500" and "inherited 500" share a cache entry).
struct WireObligation {
  std::string name;
  std::deque<Module> modules;  ///< deque: stable addresses for Obligation
  std::vector<PropertySpec> properties;
  std::size_t max_states = 0;   ///< 0 = request default
  double max_seconds = 0.0;     ///< 0 = request default
  std::size_t max_refinements = 0;  ///< 0 = request default
  bool track_chokes = true;
  /// Batch mode only: run this engine instead of the request selection.
  std::string engine;

  std::vector<const Module*> module_ptrs() const;
};

enum class RequestKind {
  kVerify,    ///< check the carried obligations
  kPing,      ///< liveness probe
  kStats,     ///< server + cache counters
  kMetrics,   ///< full metrics registry, Prometheus text exposition
  kShutdown,  ///< persist the cache and stop the daemon
};

const char* to_string(RequestKind kind);

struct ServeRequest {
  /// Bumped whenever the wire layout changes incompatibly.
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "rtv-serve-request";

  RequestKind kind = RequestKind::kVerify;
  SuiteMode mode = SuiteMode::kBatch;
  /// Engine selection; empty = the run_suite default for the mode
  /// ({"refine"} in batch, every registered engine in portfolio).
  std::vector<std::string> engines;
  /// Request-wide budget defaults, overridable per obligation.
  std::size_t max_states = 0;
  double max_seconds = 0.0;
  std::size_t max_refinements = 500;
  std::vector<WireObligation> obligations;

  /// One line, no embedded newlines.
  std::string to_json() const;
  /// Throws std::runtime_error on malformed input, a wrong schema tag, or
  /// an unsupported schema version (named in the error).
  static ServeRequest parse(const std::string& line);
};

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

/// Server-side counters, serialized in stats responses.
struct ServeStats {
  std::uint64_t requests = 0;        ///< protocol messages handled
  std::uint64_t obligations = 0;     ///< obligations across verify requests
  std::uint64_t cache_hits = 0;      ///< answered straight from the cache
  std::uint64_t deduped = 0;         ///< attached to an in-flight twin
  std::uint64_t computed = 0;        ///< actually dispatched to run_suite
  std::uint64_t lint_rejected = 0;   ///< fast-rejected by the lint pre-flight
  std::uint64_t errors = 0;          ///< requests answered ok:false
  std::uint64_t cache_entries = 0;   ///< current resident cache entries
  std::uint64_t cache_evictions = 0;
  double uptime_seconds = 0.0;
  std::uint64_t jobs = 0;            ///< the daemon's global worker budget
};

struct ServeResponse {
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "rtv-serve-response";

  bool ok = false;
  std::string error;  ///< non-empty iff !ok
  /// Engaged for verify responses: the standard SuiteReport, records
  /// carrying the `cached` marker.
  bool has_report = false;
  SuiteReport report;
  /// Engaged for stats responses.
  bool has_stats = false;
  ServeStats stats;
  /// Engaged for metrics responses: the daemon's full metrics registry in
  /// Prometheus text-exposition format (carried as a JSON string).
  std::string metrics_text;
  /// Engaged for stats responses when the daemon has metrics enabled: the
  /// flat JSON snapshot of the daemon's registry (rtv::obs::append_json),
  /// spliceable into machine-readable stats output.
  std::string metrics_json;

  std::string to_json() const;
  static ServeResponse parse(const std::string& line);
};

/// Append the stats counters as a JSON object (shared by the wire response
/// serializer and `rtv client --stats --json`).
void stats_to_json(std::string& out, const ServeStats& s);

// ---------------------------------------------------------------------------
// Module serialization (also reused by tests and tools).
// ---------------------------------------------------------------------------

/// Append the module's full content as a JSON object (single line).
void module_to_json(std::string& out, const Module& m);

/// Rebuild a module from module_to_json() output; throws
/// std::runtime_error on malformed/mistyped content.
Module module_from_json(const rtv::json::Value& v);

/// Parse one property spec / serialize one property spec.
void property_to_json(std::string& out, const PropertySpec& spec);
PropertySpec property_from_json(const rtv::json::Value& v);

}  // namespace rtv::serve
