// Blocking client for the `rtv serve` daemon.
//
// One Client = one Unix-domain connection.  call() writes one
// line-delimited JSON request and blocks for the matching response line —
// the protocol is strictly request/response per connection, so no
// correlation ids are needed.  Clients are cheap; concurrent callers each
// open their own (a Client is not thread-safe).
#pragma once

#include <string>

#include "rtv/serve/wire.hpp"

namespace rtv::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to a daemon's listening socket; throws std::runtime_error
  /// when the socket is absent or refuses.
  void connect(const std::string& socket_path);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Send one request, block for its response.  Throws std::runtime_error
  /// on transport failure (daemon gone mid-call) or an unparseable
  /// response; protocol-level failures come back as resp.ok == false.
  ServeResponse call(const ServeRequest& request);

  /// True iff the daemon answered a ping with ok.
  bool ping();
  /// Throws when the daemon answers with an error.
  ServeStats get_stats();
  /// The daemon's metrics registry in Prometheus text-exposition format;
  /// throws when the daemon answers with an error.
  std::string get_metrics();
  /// Ask the daemon to persist its cache and shut down (the daemon's
  /// owner performs the actual stop).  Throws on transport failure.
  void request_shutdown();

 private:
  int fd_ = -1;
  std::string buf_;  ///< bytes received past the last response line
};

}  // namespace rtv::serve
