// Non-linear IPCMOS topologies.
//
// The paper (Section 3.1): "Generally IPCMOS blocks can be fed multiple ACK
// and VALID signals to enable safely processing data from multiple sources
// and feeding the result to multiple destinations", with the transistor
// count 21 + 7*N_in + 4*N_out.  The DATE'02 evaluation only exercises the
// linear pipeline; these builders extend the reproduction to the join
// (2 producers -> 1 stage -> 1 consumer) and fork (1 producer -> 1 stage ->
// 2 consumers) cases:
//
//   join:  IN_a --Va/A-->  J  --Vo/Ao--> OUT        (N_in = 2)
//          IN_b --Vb/A-->
//
//   fork:  IN --Vi/Ai-->  F  --Va/Aa--> OUT_a       (N_out = 2)
//                            --Vb/Ab--> OUT_b
#pragma once

#include "rtv/ipcmos/experiments.hpp"
#include "rtv/ipcmos/pipeline.hpp"
#include "rtv/verify/refinement.hpp"

namespace rtv::ipcmos {

/// 2-input join stage plus its environments (two pulse-driven producers,
/// one pulse-driven consumer).
ModuleSet join_system(const PipelineTiming& t = {});

/// 1-input fork stage plus its environments (one producer, two consumers).
ModuleSet fork_system(const PipelineTiming& t = {});

/// The join/fork netlists alone (for properties and accounting).
Netlist make_join_netlist(const StageTiming& t = {});
Netlist make_fork_netlist(const StageTiming& t = {});

/// Verify a topology against S (deadlock-freedom, persistency and the
/// stage's short-circuit invariants) with the relative-timing flow.
VerificationResult verify_join(const ExperimentConfig& cfg = {});
VerificationResult verify_fork(const ExperimentConfig& cfg = {});

}  // namespace rtv::ipcmos
