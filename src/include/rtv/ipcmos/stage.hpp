// Transistor-level reconstruction of one IPCMOS control stage.
//
// The DATE'02 paper gives the stack-level behaviour of the strobe and
// strobe-switch circuits (Fig. 11 and Section 5.1); the full ISSCC'00
// schematics are not public, so this is a behaviour-preserving
// reconstruction documented in DESIGN.md.  Per input channel i and output
// channel j, a stage has:
//
//   strobe switch i (7 transistors):
//     Vint_i : precharged sense line.  Discharged through the pass
//              n-transistor (gate Y_i) when VALID_i is low; precharged by
//              the p-transistor on CLKE; weak keeper holds it high while
//              Z_i is low.  Short-circuit candidate (paper invariant 2).
//     Z_i    : inverter of Vint_i.
//     Y_i    : isolation control; pulled up by a p-transistor on Z_i
//              (En(Y+) = !Y & !Z), pulled down by the n-transistor on ACK
//              (En(Y-) = Y & ACK).  Short-circuit candidate (invariant 1).
//
//   strobe core (21 transistors):
//     X    : self-resetting strobe state; set when all Vint_i are low and
//            all reset switches report ready, cleared when Vint precharges.
//     ACK  : buffered acknowledge pulse to the senders (follows X, then
//            self-resets through the pulse stage A2).
//     CLKE : local clock pulse, inverted follower of ACK.
//     D    : delay line matching the worst-case logic delay.
//     VALID_out j : follower of D (the "valid module" of Fig. 5).
//
//   reset switch j (4 transistors):
//     R_j  : ready flag; cleared while the delayed strobe D is low (data
//            launched), set again by the receiver's ACK_j.
//
// Every delay is a parameter (StageTiming); the defaults were chosen so
// that the circuit is correct exactly when the paper's Fig. 13 orderings
// (Z+ before ACK+, Y- before CLKE-, ACK- before Z-, CLKE+ before the next
// VALID-) hold, which the verification flow then derives.
#pragma once

#include <string>
#include <vector>

#include "rtv/circuit/netlist.hpp"
#include "rtv/ts/module.hpp"

namespace rtv::ipcmos {

struct StageTiming {
  // Strobe switch.
  DelayInterval vint_fall = DelayInterval::units(0, 2);   ///< pass discharge
  DelayInterval vint_rise = DelayInterval::units(2, 3);   ///< CLKE precharge
  DelayInterval z_rise = DelayInterval::units(0, 2);
  DelayInterval z_fall = DelayInterval::units(3, 4);
  DelayInterval y_rise = DelayInterval::units(6, 7);   ///< re-arm after CLKE+
  DelayInterval y_fall = DelayInterval::units(1, 2);
  // Strobe core.
  DelayInterval x_rise = DelayInterval::units(1, 2);
  DelayInterval x_fall = DelayInterval::units(1, 2);
  DelayInterval ack_rise = DelayInterval::units(8, 11);   ///< big driver
  DelayInterval a2_rise = DelayInterval::units(4, 5);     ///< pulse width stage
  DelayInterval a2_fall = DelayInterval::units(1, 2);
  DelayInterval ack_fall = DelayInterval::units(1, 2);    ///< self-reset
  DelayInterval clke_fall = DelayInterval::units(3, 4);
  DelayInterval clke_rise = DelayInterval::units(4, 5);
  // Valid module / delay line.
  DelayInterval d_fall = DelayInterval::units(3, 4);
  DelayInterval d_rise = DelayInterval::units(3, 4);
  DelayInterval valid_fall = DelayInterval::units(1, 2);
  DelayInterval valid_rise = DelayInterval::units(1, 2);
  // Reset switch.
  DelayInterval r_fall = DelayInterval::units(1, 2);
  DelayInterval r_rise = DelayInterval::units(1, 2);
};

/// Builds the netlist of one stage.  `inputs[i]` names the input channels
/// (signals VALID=<name>, consumed ACK=<ack_out> is shared), `outputs[j]`
/// the output channels.  For the linear pipeline of the paper each stage
/// has exactly one of each.
struct StageChannels {
  std::vector<std::string> valid_in;   ///< VALID lines from the senders
  std::string ack_out;                 ///< ACK line to all senders
  std::vector<std::string> valid_out;  ///< VALID lines to the receivers
  std::vector<std::string> ack_in;     ///< ACK lines from the receivers
};

Netlist make_stage_netlist(const std::string& name, const StageChannels& ch,
                           const StageTiming& timing = {});

/// Elaborated stage module.
Module stage_module(const std::string& name, const StageChannels& ch,
                    const StageTiming& timing = {});

/// Linear-pipeline channels of stage k: VALID_k/ACK_k on the left,
/// VALID_{k+1}/ACK_{k+1} on the right.
StageChannels linear_channels(int k);

/// The paper's transistor count: 21 + 7*N_in + 4*N_out.
int expected_transistors(int n_inputs, int n_outputs);

}  // namespace rtv::ipcmos
