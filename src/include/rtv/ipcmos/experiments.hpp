// The five verification experiments of Table 1 (Section 4.2):
//
//   1. A_in || A_out |= S                (assume: abstractions meet the spec)
//   2. A_in || I || OUT  <=  A_out       (guarantee A_out)
//   3. IN  || I || A_out <=  A_in        (guarantee A_in, induction base)
//   4. A_in || I || A_out <=  A_in       (A_in is a behavioural fixed point)
//   5. IN  || I || OUT  |= S             (1-stage pipeline, both ends pulsed)
//
// S ("every data item is acknowledged once and only once at every stage")
// is checked as deadlock-freedom of the closed control system plus the
// protocol conformance embodied by the environment/abstraction STGs (an
// extra or missing ACK chokes them), plus the CMOS correctness conditions
// (short-circuit invariants and persistency) whenever a transistor-level
// stage is present.
#pragma once

#include "rtv/ipcmos/pipeline.hpp"
#include "rtv/verify/refinement.hpp"
#include "rtv/verify/suite.hpp"

namespace rtv::ipcmos {

struct ExperimentConfig {
  PipelineTiming timing;
  VerifyOptions verify;
};

VerificationResult experiment1(const ExperimentConfig& cfg = {});
VerificationResult experiment2(const ExperimentConfig& cfg = {});
VerificationResult experiment3(const ExperimentConfig& cfg = {});
VerificationResult experiment4(const ExperimentConfig& cfg = {});
VerificationResult experiment5(const ExperimentConfig& cfg = {});

/// All five in order, with the paper's row labels.
struct NamedResult {
  std::string name;
  VerificationResult result;
};
std::vector<NamedResult> run_all_experiments(const ExperimentConfig& cfg = {});

/// The five Table 1 obligations as a declarative batch: the suite owns the
/// pipeline modules, containment monitors and property bundles, so it can
/// be handed straight to run_suite() — obligations in parallel, any engine
/// selection, machine-readable report.  Obligation names match
/// run_all_experiments().
Suite table1_suite(const ExperimentConfig& cfg = {});

/// Flat (no abstraction) verification of an n-stage pipeline:
/// IN || I1 || ... || In || OUT |= S.  Used by the scaling bench to
/// reproduce the paper's observation that flat verification is impractical
/// beyond ~2 stages.
VerificationResult flat_experiment(int n_stages, const ExperimentConfig& cfg = {});

}  // namespace rtv::ipcmos
