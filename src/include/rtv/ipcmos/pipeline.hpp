// n-stage linear IPCMOS pipelines and their environments/abstractions,
// using the boundary naming  IN --V1/A1--> I1 --V2/A2--> ... --V{n+1}/A{n+1}--> OUT.
#pragma once

#include <memory>
#include <vector>

#include "rtv/ipcmos/stage.hpp"
#include "rtv/stg/library.hpp"
#include "rtv/ts/module.hpp"

namespace rtv::ipcmos {

struct PipelineTiming {
  StageTiming stage;
  stg_library::EnvTiming env;
};

/// Owning bundle of modules ready for composition.
struct ModuleSet {
  std::vector<std::unique_ptr<Module>> owned;
  std::vector<const Module*> ptrs;

  Module& add(Module m) {
    owned.push_back(std::make_unique<Module>(std::move(m)));
    ptrs.push_back(owned.back().get());
    return *owned.back();
  }
};

/// Stage k of a linear pipeline (boundaries V{k}/A{k} and V{k+1}/A{k+1}).
Module make_stage(int k, const PipelineTiming& t = {});

/// IN feeding boundary 1; OUT consuming boundary n+1.
Module make_in_env(const PipelineTiming& t = {});
Module make_out_env(int n_stages, const PipelineTiming& t = {});

/// Untimed abstractions at a given boundary.
Module make_ain(int boundary);
Module make_aout(int boundary);

/// IN || I1 || ... || In || OUT — the full flat pipeline (experiment 5 for
/// n = 1; the scaling bench for larger n).
ModuleSet flat_pipeline(int n_stages, const PipelineTiming& t = {});

}  // namespace rtv::ipcmos
