// Reader/writer for the textual STG interchange format (.g / "astg") used
// by the asynchronous-circuit tool tradition (SIS, petrify, transyt):
//
//   .model name
//   .inputs  a b
//   .outputs c
//   .graph
//   a+ c+            # arcs from transition to transition (implicit place)
//   p0 a+            # or via explicit places declared by use
//   c+/2 b-          # indexed occurrences of the same signal transition
//   .marking { p0 <a+,c+> }
//   .end
//
// Supported subset: signal transitions with occurrence indices, dummy
// transitions (.dummy), explicit and implicit places, the initial marking
// (including implicit-place <t1,t2> syntax), and a non-standard but
// backwards-compatible delay annotation:
//
//   .delay a+ 1 2      # [1, 2] time units
//   .delay b- 5 inf    # [5, inf)
//   .initial c d       # signals whose initial value is high
#pragma once

#include <iosfwd>
#include <string>

#include "rtv/stg/stg.hpp"

namespace rtv {

/// Parse an STG from .g text.  Throws std::runtime_error with a line
/// number on malformed input.
Stg parse_astg(std::istream& in);
Stg parse_astg_string(const std::string& text);

/// Serialise; parse_astg(write_astg(s)) is structurally equivalent to s.
std::string write_astg(const Stg& stg);

}  // namespace rtv
