// The paper's environment and abstraction models.
//
//  * IN (Fig. 12 left): pulse-driven data producer — lowers VALID, raises
//    it again after the pulse width, and issues no new data until the stage
//    acknowledged (ACK+); both resets are independent.
//  * OUT (Fig. 12 right): pulse-driven consumer — acknowledges a low VALID
//    with a positive ACK pulse of a guaranteed minimum width.
//  * A_in (Fig. 10a): untimed abstraction of IN || I_1 || ... || I_{n-1}:
//    lowers VALID, raises it only after ACK+; handshake completes with the
//    independent reset of ACK.
//  * A_out (Fig. 10b): untimed abstraction of I || OUT: acknowledges a low
//    VALID with an ACK pulse; accepts VALID+ only after ACK+.
//
// All builders are parameterised on the boundary's signal names so several
// instances can be composed along a pipeline.
#pragma once

#include "rtv/stg/elaborate.hpp"
#include "rtv/stg/stg.hpp"
#include "rtv/ts/module.hpp"

namespace rtv::stg_library {

/// Delay parameters of the pulse-driven environment (defaults follow the
/// annotations visible in Fig. 13; units are the paper's delay units).
struct EnvTiming {
  DelayInterval valid_fall = DelayInterval::at_least_units(14);  ///< VALID- issue
  /// Width of the negative VALID pulse ("15 + eps" in Fig. 13; the upper
  /// bound is the pulse-length restriction IPCMOS imposes on its
  /// environment).
  DelayInterval valid_rise =
      DelayInterval(15 * kTicksPerUnit + kTimeEpsilon, 16 * kTicksPerUnit);
  DelayInterval ack_rise = DelayInterval::units(8, 11);  ///< OUT's ACK+ response
  /// Minimum positive ACK pulse width (the paper's explicit restriction on
  /// OUT to avoid early resetting of ACK).
  DelayInterval ack_fall = DelayInterval::units(5, 10);
};

Stg make_in(const std::string& valid, const std::string& ack,
            const EnvTiming& timing = {});
Stg make_out(const std::string& valid, const std::string& ack,
             const EnvTiming& timing = {});
Stg make_ain(const std::string& valid, const std::string& ack);
Stg make_aout(const std::string& valid, const std::string& ack);

/// Elaborated conveniences.
Module in_module(const std::string& valid, const std::string& ack,
                 const EnvTiming& timing = {});
Module out_module(const std::string& valid, const std::string& ack,
                  const EnvTiming& timing = {});
Module ain_module(const std::string& valid, const std::string& ack);
Module aout_module(const std::string& valid, const std::string& ack);

}  // namespace rtv::stg_library
