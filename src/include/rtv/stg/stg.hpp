// Signal Transition Graphs: 1-safe Petri nets whose transitions are
// interpreted as rising/falling edges of boolean signals.
//
// STGs are the modelling front-end for environments (IN, OUT of Fig. 12)
// and abstractions (A_in, A_out of Fig. 10).  They are elaborated into
// transition systems (marking graphs) before composition; signal values are
// tracked per marking so invariant properties can observe them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtv/base/ids.hpp"
#include "rtv/base/interval.hpp"
#include "rtv/ts/event.hpp"

namespace rtv {

struct StgTransition {
  std::string signal;   ///< empty for a dummy (lambda) transition
  bool rising = true;
  std::string dummy_name;  ///< label used when signal is empty
  DelayInterval delay = DelayInterval::unbounded();
  EventKind kind = EventKind::kOutput;
  std::vector<PlaceId> preset;
  std::vector<PlaceId> postset;

  std::string label() const {
    return signal.empty() ? dummy_name : transition_label(signal, rising);
  }
};

class Stg {
 public:
  explicit Stg(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  PlaceId add_place(std::string name = {}, bool initially_marked = false);
  void mark(PlaceId p, bool marked = true);

  /// Adds a signal transition; connect with connect()/arc helpers.
  std::size_t add_transition(const std::string& signal, bool rising,
                             DelayInterval delay = DelayInterval::unbounded(),
                             EventKind kind = EventKind::kOutput);
  std::size_t add_dummy(const std::string& name,
                        DelayInterval delay = DelayInterval::unbounded());

  void arc(PlaceId from, std::size_t to_transition);
  void arc(std::size_t from_transition, PlaceId to);
  /// Implicit place between two transitions (t1 -> p -> t2).
  PlaceId chain(std::size_t t1, std::size_t t2, bool initially_marked = false);

  /// Initial value of a signal (default low).
  void set_initial_value(const std::string& signal, bool value);

  std::size_t num_places() const { return places_.size(); }
  std::size_t num_transitions() const { return transitions_.size(); }
  const StgTransition& transition(std::size_t t) const { return transitions_[t]; }
  StgTransition& transition(std::size_t t) { return transitions_[t]; }
  bool initially_marked(PlaceId p) const { return marked_[p.value()]; }
  const std::string& place_name(PlaceId p) const { return places_[p.value()]; }

  /// All distinct signal names, sorted.
  std::vector<std::string> signals() const;
  bool initial_value(const std::string& signal) const;

 private:
  std::string name_;
  std::vector<std::string> places_;
  std::vector<bool> marked_;
  std::vector<StgTransition> transitions_;
  std::vector<std::pair<std::string, bool>> initial_values_;
};

}  // namespace rtv
