// Marking-graph elaboration: STG -> Module (transition system with signal
// valuations per state).
#pragma once

#include "rtv/stg/stg.hpp"
#include "rtv/ts/module.hpp"

namespace rtv {

struct StgElaborateOptions {
  std::size_t max_markings = 1'000'000;
  /// Reject non-1-safe behaviour (a transition firing into a marked place).
  bool require_one_safe = true;
};

/// Explore the reachable markings of the STG.  Throws std::runtime_error on
/// safety violations or budget exhaustion.  The module's alphabet carries
/// the transitions' labels, delays and kinds; states carry the signal
/// valuation (and the marking as the state name).
Module elaborate(const Stg& stg, const StgElaborateOptions& options = {});

}  // namespace rtv
