// Breadth-first failure search over a refined system.
//
// Finds the shallowest violation of any property — a bad state, a bad
// firing (persistency), or a choke (an output refused by a monitor during a
// containment check).  The returned trace carries base states and raw
// enabled sets, ready for timing analysis.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "rtv/lazy/refined_system.hpp"
#include "rtv/ts/compose.hpp"
#include "rtv/ts/trace.hpp"
#include "rtv/verify/engine.hpp"
#include "rtv/verify/property.hpp"

namespace rtv {

struct Failure {
  Trace trace;
  /// Set when the failing firing has no transition in the composed graph
  /// (a choke); the event is then appended as a virtual final point.
  EventId virtual_event = EventId::invalid();
  std::string description;
};

struct FailureSearchStats {
  std::size_t states_explored = 0;
  bool truncated = false;
  /// Why the search stopped early (a rtv::stop_reason string, static
  /// storage); null when not truncated.
  const char* stop_reason = nullptr;
};

/// BFS over `sys`; `chokes` (may be empty) come from the composition.
/// Property and choke checks skip firings blocked by the refinement
/// observers — blocked firings are timing-impossible.  `clock` (optional)
/// threads a shared wall-clock deadline / cancellation / progress guard
/// through the loop.
std::optional<Failure> find_failure(
    const RefinedSystem& sys, std::span<const ChokeRecord> chokes,
    std::span<const SafetyProperty* const> properties, std::size_t max_states,
    FailureSearchStats* stats, RunClock* clock = nullptr);

}  // namespace rtv
