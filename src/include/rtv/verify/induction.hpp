// Induction over replicated structures (the paper's Section 2.2 /
// experiments 3-4, after [17]'s behavioural fixed points).
//
// To prove that `abstraction` soundly abstracts  base_env || C || C || ...
// for any number of components C, two obligations suffice:
//
//   base:  base_env || C || context          <=  abstraction
//   step:  left_abstraction || C || context  <=  abstraction
//
// where `left_abstraction` is the abstraction instantiated at the
// component's left boundary (the induction hypothesis) and `context`
// closes the right side.  Both checks run the full relative-timing flow.
#pragma once

#include "rtv/verify/containment.hpp"

namespace rtv {

struct InductionResult {
  VerificationResult base;
  VerificationResult step;

  bool proved() const {
    return base.verdict == Verdict::kVerified &&
           step.verdict == Verdict::kVerified;
  }

  /// Union of the relative timing constraints of both obligations.
  std::vector<DerivedOrdering> constraints() const;
};

InductionResult prove_fixed_point(
    const Module& base_env, const Module& left_abstraction,
    const Module& component, const Module& context, const Module& abstraction,
    const std::vector<const SafetyProperty*>& properties = {},
    const VerifyOptions& options = {});

}  // namespace rtv
