// Language-containment ("diamond") checks for assume-guarantee reasoning.
//
// check_containment(system, abstraction) verifies that every output the
// system produces on the abstraction's alphabet can also be produced by the
// abstraction under the same stimuli (the paper's Section 2.2): the
// abstraction runs as a passive monitor and any refusal is a failure that
// the relative-timing flow then tries to prove timing-impossible.
#pragma once

#include "rtv/verify/refinement.hpp"

namespace rtv {

/// Verify  (|| system)  <=  abstraction  restricted to the abstraction's
/// alphabet.  Extra properties (e.g. deadlock-freedom of the closed system)
/// can be checked in the same run.
VerificationResult check_containment(
    const std::vector<const Module*>& system, const Module& abstraction,
    const std::vector<const SafetyProperty*>& extra_properties = {},
    const VerifyOptions& options = {});

}  // namespace rtv
