// Canonical content hashing of verification obligations.
//
// The `rtv serve` verdict cache (rtv/serve/cache.hpp) is content-addressed:
// two requests share a cache entry iff the *semantics* of the question are
// identical.  This header defines the canonical hash of the semantic
// inputs that live in the verify layer — module content and budgets — on
// the library-wide FNV-1a idiom (rtv/base/hash.hpp), so the encoding is
// platform-stable and safe to persist.
//
// What a module hash covers (and deliberately does not):
//
//   * covered — the initial state, every event in id order (label, delay
//     bounds, kind), every state's outgoing transitions in stored order,
//     the signal-name alphabet and per-state valuations (invariant
//     properties read them);
//   * excluded — the module *name* and state *names*: pure presentation,
//     renaming must not invalidate cached verdicts.
//
// Budgets are part of the key because they change the *answer*, not just
// the cost: a cached Inconclusive at max_states=1000 must never answer a
// request with max_states=10000.  The worker count (jobs) is excluded: the
// parallel substrate's determinism contract guarantees jobs-independent
// verdicts and traces.
#pragma once

#include <cstdint>

#include "rtv/base/hash.hpp"
#include "rtv/ts/module.hpp"
#include "rtv/verify/engine.hpp"

namespace rtv {

/// Fold one module's semantic content into `h` (see the header comment
/// for the exact field list).
void hash_module(Fnv1a& h, const Module& m);

/// Standalone content hash of one module.
std::uint64_t module_content_hash(const Module& m);

/// Fold the budget-relevant request knobs into `h`: max_states,
/// max_seconds, max_refinements, track_chokes.  Cancellation tokens,
/// progress callbacks and jobs are execution details, never part of a key.
void hash_budget(Fnv1a& h, const RunBudget& budget,
                 std::size_t max_refinements, bool track_chokes);

}  // namespace rtv
