// Batch verification: many obligations, many engines, one scheduler.
//
// The paper's core experiment (Table 1) is a *batch* of obligations checked
// by *competing* decision procedures.  This header turns that shape into an
// API:
//
//   * a declarative Suite of named Obligations (modules + properties +
//     per-obligation budget overrides), with storage helpers so monitors
//     and properties built on the fly outlive the run;
//   * run_suite(), a scheduler executing the suite on an internal thread
//     pool (SuiteOptions::jobs) in two modes —
//       - kBatch: every (obligation, selected engine) pair runs to
//         completion, obligations in parallel;
//       - kPortfolio: the selected engines *race* on each obligation; the
//         first definitive kVerified/kViolated verdict wins and cancels the
//         engine's peers through their CancelToken.  kInconclusive finishes
//         never decide and never mask a definitive peer.
//   * a SuiteReport with one SuiteRecord per obligation×engine (verdict,
//     stop reason, states, wall/CPU time, winner flag) and a stable,
//     schema-versioned JSON serialization for scripted/CI consumers,
//     round-trippable through parse_suite_report().
//
// Engines run concurrently, which is safe by the Engine::run contract
// (engine.hpp): run() is const and shares no mutable state between calls.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rtv/base/json.hpp"
#include "rtv/lint/diagnostic.hpp"
#include "rtv/ts/module.hpp"
#include "rtv/verify/engine.hpp"
#include "rtv/verify/property.hpp"

namespace rtv {

// ---------------------------------------------------------------------------
// Obligations and suites.
// ---------------------------------------------------------------------------

/// One named verification obligation.  Modules and properties are
/// non-owning views; anything built on the fly (monitors, property
/// bundles) can be parked in the Suite with Suite::own().
struct Obligation {
  std::string name;
  /// Modules composed CSP-style over shared labels (monitors included).
  std::vector<const Module*> modules;
  std::vector<const SafetyProperty*> properties;
  /// Per-obligation budget; fields left at their zero value inherit
  /// SuiteOptions::budget (the cancel token is suite-wide and cannot be
  /// overridden per obligation).
  RunBudget budget;
  /// Batch mode only: run this registry engine instead of the suite-wide
  /// selection.  Empty = use SuiteOptions::engines.
  std::string engine;
  /// Refinement-engine iteration cap; exact engines ignore it.
  std::size_t max_refinements = 500;
  bool track_chokes = true;
};

/// A declarative batch of obligations plus the storage keeping their
/// modules and properties alive.  Obligation references returned by add()
/// stay valid for the suite's lifetime (deque storage, no relocation).
class Suite {
 public:
  /// Park a module in the suite; the returned pointer is stable.
  const Module* own(Module m);
  /// Park a property in the suite; the returned pointer is stable.
  const SafetyProperty* own(std::unique_ptr<SafetyProperty> p);

  /// Append an empty obligation to configure in place.
  Obligation& add(std::string name);
  /// Append a fully-formed obligation.
  Obligation& add(std::string name, std::vector<const Module*> modules,
                  std::vector<const SafetyProperty*> properties);

  const std::deque<Obligation>& obligations() const { return obligations_; }
  /// Mutable view for post-construction tweaks (per-obligation engine or
  /// budget overrides).
  std::deque<Obligation>& obligations() { return obligations_; }
  std::size_t size() const { return obligations_.size(); }
  bool empty() const { return obligations_.empty(); }

 private:
  std::deque<Module> owned_modules_;
  std::vector<std::unique_ptr<SafetyProperty>> owned_properties_;
  std::deque<Obligation> obligations_;
};

// ---------------------------------------------------------------------------
// Scheduler options.
// ---------------------------------------------------------------------------

enum class SuiteMode {
  kBatch,      ///< every (obligation, engine) pair runs to completion
  kPortfolio,  ///< engines race per obligation; first definitive verdict wins
};

const char* to_string(SuiteMode mode);

struct SuiteOptions {
  SuiteMode mode = SuiteMode::kBatch;
  /// Global worker budget; 0 = std::thread::hardware_concurrency().  The
  /// scheduler first parallelizes across obligation×engine tasks (clamped
  /// to the task count, at least 1); when fewer tasks than workers remain,
  /// the surplus is handed to the engines as intra-obligation workers
  /// (EngineRequest::jobs), so `jobs` caps total concurrency either way.
  std::size_t jobs = 0;
  /// Registry names of the engines to run.  Empty selects the default:
  /// {"refine"} in batch mode, every registered engine in portfolio mode.
  /// An unknown name makes run_suite throw std::invalid_argument.
  std::vector<std::string> engines;
  /// Suite-wide default budget.  Nonzero per-obligation fields override
  /// max_states / max_seconds; budget.cancel aborts the whole suite
  /// (checked before each task starts and, while an engine runs, every
  /// progress_interval explored states).
  RunBudget budget;
  /// Default refinement cap for obligations that keep the constructor value.
  std::size_t max_refinements = 500;
  /// Optional progress stream, serialized across workers (called under a
  /// lock, from worker threads).
  ProgressFn progress;
  std::size_t progress_interval = kDefaultProgressInterval;
  /// Run the lint pre-flight (rtv/lint/lint.hpp) over every obligation
  /// before scheduling.  Obligations with error-severity diagnostics are
  /// answered kInconclusive with stop_reason::kLintError without invoking
  /// any engine; warnings attach to the obligation's SuiteRecords.
  bool preflight = true;
  /// Run the cone-of-influence slicer (rtv/analysis/slice.hpp) over every
  /// obligation after the pre-flight: engines then verify the reduced
  /// obligation (out-of-cone modules dropped, unreachable states pruned)
  /// — verdict-preserving by construction, identity whenever a construct
  /// is not provably irrelevant.  An obligation whose cone is *empty* is
  /// answered kVerified without invoking any engine.
  bool slice = true;
};

// ---------------------------------------------------------------------------
// Results.
// ---------------------------------------------------------------------------

/// One obligation×engine outcome.
struct SuiteRecord {
  std::string obligation;
  std::string engine;
  EngineResult result;
  /// Thread CPU time of the run in seconds (0 when the platform cannot
  /// measure per-thread CPU time, or when the task never ran).
  double cpu_seconds = 0.0;
  /// True iff this record decided the obligation's verdict: the first
  /// definitive finish in portfolio mode, any definitive verdict in batch.
  bool winner = false;
  /// True iff the record was answered from a verdict cache instead of
  /// being computed for this request (the `rtv serve` daemon sets it;
  /// run_suite always computes, so it leaves the flag false).  seconds /
  /// cpu_seconds then report the *original* computation, not this
  /// request's O(1) lookup.
  bool cached = false;
  /// Lint diagnostics of the obligation's pre-flight (empty when the
  /// pre-flight is disabled or found nothing).  With errors present the
  /// record is a short-circuit: verdict kInconclusive, truncated_reason
  /// stop_reason::kLintError, no engine ran.
  std::vector<lint::Diagnostic> lint;
  /// Modules dropped by the cone-of-influence slicer before the engine
  /// ran (0 when slicing is off or the slice was the identity).
  std::size_t sliced_modules = 0;
  /// Events removed by the slicer: whole alphabets of dropped modules
  /// plus dead events pruned inside kept modules.
  std::size_t sliced_events = 0;
};

/// Per-obligation roll-up of a report's records.
struct ObligationSummary {
  std::string obligation;
  /// The winning record's verdict; kInconclusive when no engine decided.
  Verdict verdict = Verdict::kInconclusive;
  /// Engine of the winning record ("" when no engine decided).
  std::string winner;
  /// Max wall-clock seconds over the obligation's records.
  double wall_seconds = 0.0;
};

struct SuiteReport {
  /// Bumped whenever the JSON layout changes incompatibly.
  static constexpr int kSchemaVersion = 1;
  /// The "schema" tag emitted in the JSON.
  static constexpr const char* kSchemaName = "rtv-suite-report";

  SuiteMode mode = SuiteMode::kBatch;
  std::size_t jobs = 1;
  /// Whole-suite wall-clock seconds.
  double wall_seconds = 0.0;
  /// One record per obligation×engine, in deterministic obligation-major
  /// order (independent of completion order).
  std::vector<SuiteRecord> records;

  /// Roll-ups in first-appearance obligation order.
  std::vector<ObligationSummary> summaries() const;
  /// Verdict of one obligation (kInconclusive if absent or undecided).
  Verdict verdict_of(std::string_view obligation) const;
  /// kViolated if any obligation is violated, else kInconclusive if any is
  /// undecided, else kVerified (an empty report is vacuously verified).
  Verdict overall() const;

  /// Stable machine-readable serialization (see docs/API.md for the
  /// schema).  Always emits the current kSchemaVersion.
  std::string to_json() const;
};

/// Parse a to_json() document back into a SuiteReport; throws
/// std::runtime_error on malformed JSON, a wrong schema tag, or a schema
/// version newer than this library understands (the error names both the
/// document's version and the newest supported one — the wire/cache layer
/// depends on version mismatches failing loudly in both directions).
SuiteReport parse_suite_report(const std::string& json);

/// Same, from an already-parsed JSON value (e.g. a report object embedded
/// in a larger wire message, see rtv/serve/wire.hpp).
SuiteReport parse_suite_report(const json::Value& root);

/// Map a verdict to the CLI/CI exit-code convention: 0 = verified,
/// 1 = violated, 2 = inconclusive (64 is reserved for usage errors).
int exit_code(Verdict v);

// ---------------------------------------------------------------------------
// The scheduler.
// ---------------------------------------------------------------------------

/// Execute every obligation of the suite per SuiteOptions on an internal
/// thread pool and collect one record per obligation×engine.  Throws
/// std::invalid_argument when an engine name (per-obligation or in
/// options.engines) is not registered.
SuiteReport run_suite(const Suite& suite, const SuiteOptions& options = {});

}  // namespace rtv
