// Safety properties checked during reachability.
//
// All properties of the paper reduce to 1-step checks (its Section 3.2):
// state invariants (short-circuits), transition checks (persistency,
// ordering via monitor signals) and deadlock-freedom.  Properties observe
// the *raw* enabled set: timing refinements delay firings but never change
// enabling, so enabling-based checks are evaluated on the untimed relation.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rtv/ts/transition_system.hpp"

namespace rtv {

struct PropertyContext {
  const TransitionSystem& ts;
  StateId state;
  const std::vector<EventId>& raw_enabled;
};

class SafetyProperty {
 public:
  virtual ~SafetyProperty() = default;
  virtual std::string name() const = 0;

  /// Violation at a state; nullopt when the state is fine.
  virtual std::optional<std::string> check_state(const PropertyContext&) const {
    return std::nullopt;
  }

  /// Violation caused by firing `event` from the context state into
  /// `successor` (whose raw enabled set is provided).
  virtual std::optional<std::string> check_event(
      const PropertyContext&, EventId event, StateId successor,
      const std::vector<EventId>& successor_enabled) const {
    (void)event;
    (void)successor;
    (void)successor_enabled;
    return std::nullopt;
  }
};

/// Forbidden conjunction of signal literals, e.g. the strobe-switch
/// short-circuit  !Z & ACK  (invariant 1 of Section 5.1).
class InvariantProperty final : public SafetyProperty {
 public:
  struct Literal {
    std::string signal;
    bool value = true;
  };

  InvariantProperty(std::string name, std::vector<Literal> forbidden);

  std::string name() const override { return name_; }
  std::optional<std::string> check_state(const PropertyContext&) const override;

  /// The forbidden conjunction, for static analysis (rtv/lint): dangling
  /// signal references and contradictory literals are knowable without
  /// running any engine.
  const std::vector<Literal>& forbidden() const { return forbidden_; }

 private:
  std::string name_;
  std::vector<Literal> forbidden_;
};

/// The control circuit must never deadlock (the paper's encoding of
/// "every data item is acknowledged once and only once").
class DeadlockFreedom final : public SafetyProperty {
 public:
  std::string name() const override { return "deadlock-freedom"; }
  std::optional<std::string> check_state(const PropertyContext&) const override;
};

/// Persistency: an enabled non-input event must not be disabled by the
/// firing of another event (inertial-delay glitch freedom, Section 5.1).
class PersistencyProperty final : public SafetyProperty {
 public:
  /// Events whose labels are listed in `exempt` (e.g. environment pulses
  /// that may be withdrawn) are not required to be persistent; inputs are
  /// always exempt.
  explicit PersistencyProperty(std::vector<std::string> exempt = {});

  std::string name() const override { return "persistency"; }
  std::optional<std::string> check_event(
      const PropertyContext&, EventId event, StateId successor,
      const std::vector<EventId>& successor_enabled) const override;

  /// Exempt labels (sorted), for static analysis (rtv/lint): an exempt
  /// label no module declares is a dangling reference.
  const std::vector<std::string>& exempt() const { return exempt_; }

 private:
  std::vector<std::string> exempt_;
};

}  // namespace rtv
