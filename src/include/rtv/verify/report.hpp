// Human-readable reporting of verification results: per-iteration
// refinement logs, back-annotated relative timing constraints (the paper's
// Fig. 13 deliverable) and experiment summary tables (Table 1).
#pragma once

#include <string>
#include <vector>

#include "rtv/verify/refinement.hpp"

namespace rtv {

/// Full textual report of one verification run.
std::string format_report(const std::string& title,
                          const VerificationResult& result);

/// Only the deduplicated relative timing constraints.
std::string format_constraints(const VerificationResult& result);

/// A Table-1-style summary row: name, verdict, CPU time, refinements.
struct ExperimentRow {
  std::string name;
  Verdict verdict = Verdict::kInconclusive;
  double seconds = 0.0;
  int refinements = 0;
  std::size_t states = 0;
};

ExperimentRow summarize(const std::string& name, const VerificationResult& r);

/// Render rows as an aligned text table.
std::string format_table(const std::vector<ExperimentRow>& rows);

}  // namespace rtv
