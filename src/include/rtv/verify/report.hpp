// Human-readable reporting of verification results: per-iteration
// refinement logs, back-annotated relative timing constraints (the paper's
// Fig. 13 deliverable) and experiment summary tables (Table 1).
//
// The tables are built on the batch-verification records of
// rtv/verify/suite.hpp: a SuiteReport renders directly, and the legacy
// ExperimentRow entry points feed the same aligned-table renderer.
#pragma once

#include <string>
#include <vector>

#include "rtv/verify/refinement.hpp"
#include "rtv/verify/suite.hpp"

namespace rtv {

/// Full textual report of one verification run.
std::string format_report(const std::string& title,
                          const VerificationResult& result);

/// Only the deduplicated relative timing constraints.
std::string format_constraints(const VerificationResult& result);

/// A Table-1-style summary row: name, verdict, CPU time, refinements.
struct ExperimentRow {
  std::string name;
  Verdict verdict = Verdict::kInconclusive;
  double seconds = 0.0;
  int refinements = 0;
  std::size_t states = 0;
};

ExperimentRow summarize(const std::string& name, const VerificationResult& r);

/// Summary of a unified engine result: refinement count from
/// RefineEngineStats when present (0 otherwise), states from
/// states_explored (the engine's own exploration unit).
ExperimentRow summarize(const std::string& name, const EngineResult& r);

/// One row per suite record, named "obligation" (single-engine reports) or
/// "obligation [engine]" (several engines per obligation).
std::vector<ExperimentRow> rows_from(const SuiteReport& report);

/// Render rows as an aligned text table.
std::string format_table(const std::vector<ExperimentRow>& rows);

/// Render a whole suite report as an aligned text table: one line per
/// obligation×engine record with verdict, stop reason, states and times,
/// followed by a one-line roll-up (overall verdict, wall clock, jobs).
std::string format_table(const SuiteReport& report);

}  // namespace rtv
