// Timed witnesses: a concrete firing-time assignment for a
// timing-consistent failure trace.
//
// When the flow reports a counterexample the trace's difference-constraint
// system is feasible; the Bellman-Ford solution is a valid schedule.  This
// turns "the failure is timing-consistent" into an executable scenario
// ("at t = 14.25 V1- fires, ...") that a designer can replay in the
// simulator or against a SPICE deck.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rtv/ts/compose.hpp"
#include "rtv/ts/trace.hpp"

namespace rtv {

struct TimedStep {
  Time time = 0;
  std::string label;
};

struct TimedWitness {
  std::vector<TimedStep> steps;
  std::string to_string() const;
};

/// Concrete schedule for a timing-consistent trace; nullopt if the trace is
/// inconsistent (then there is nothing to witness).  Pass the composition's
/// choke records when the trace ends in a refused output so the refusal is
/// anchored at its true enabling point (see rtv/timing/trace_timing.hpp).
std::optional<TimedWitness> make_witness(
    const TransitionSystem& ts, const Trace& trace,
    EventId virtual_final = EventId::invalid(),
    std::span<const ChokeRecord> chokes = {});

}  // namespace rtv
