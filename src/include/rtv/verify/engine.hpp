// The unified verification-engine seam.
//
// The paper's contribution is a *comparison of engines* — relative-timing
// refinement (transyt, [13]) against exact dense-time zones and
// digitization [8] — so the library exposes every decision procedure
// behind one polymorphic interface:
//
//   Engine::run(EngineRequest) -> EngineResult
//
// A request carries the composed obligation (modules + properties), a
// shared RunBudget (state cap, wall-clock deadline, cooperative
// cancellation) and an optional progress callback; a result carries a
// common three-valued Verdict plus engine-specific statistics.  Engines
// register in engine_registry() under stable names ("refine", "zone",
// "discrete"), so callers — the CLI, benches, parity tests, future
// sharded backends — enumerate and swap them generically.
//
// Adding a backend is a one-file drop-in: subclass Engine, map your
// native options/result to EngineRequest/EngineResult, and register an
// instance (see docs/API.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "rtv/ts/module.hpp"
#include "rtv/verify/property.hpp"

namespace rtv {

namespace obs {
struct MetricsSnapshot;
}  // namespace obs

// ---------------------------------------------------------------------------
// Verdict — the one three-valued answer every engine must give.
// ---------------------------------------------------------------------------

/// Truncation (state budget, deadline, cancellation) may only surface as
/// kInconclusive: an exhausted run is never "verified".
enum class Verdict {
  kVerified,
  kViolated,
  kInconclusive,
  /// Deprecated historical alias from the refinement flow, where a
  /// violation always comes with a concrete timed counterexample trace.
  /// Use kViolated; this alias will be removed in a future release.
  kCounterexample [[deprecated("use Verdict::kViolated")]] = kViolated,
};

const char* to_string(Verdict v);

// ---------------------------------------------------------------------------
// Budgets, cancellation, progress.
// ---------------------------------------------------------------------------

/// Cooperative cancellation: hand a token to a run, call cancel() from any
/// thread; the engine observes it in its exploration loop and stops with
/// Verdict::kInconclusive.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// Resource limits shared by every engine.  Exceeding any limit stops the
/// run early with Verdict::kInconclusive and a stop_reason.
struct RunBudget {
  /// Cap on explored states (composed states / zones / digitized configs —
  /// each engine counts its own exploration unit).  0 keeps the engine's
  /// native default (2M states/zones for refine/zone, 4M configs for
  /// discrete).
  std::size_t max_states = 0;
  /// Wall-clock deadline in seconds; 0 means no deadline.
  double max_seconds = 0.0;
  /// Optional cancellation token (not owned; may be null).
  const CancelToken* cancel = nullptr;
};

/// Progress snapshot handed to the callback every progress_interval
/// explored states.
struct EngineProgress {
  std::string_view engine;        ///< registry name of the running engine
  std::size_t states_explored = 0;
  double seconds = 0.0;           ///< elapsed wall-clock time
  /// Point-in-time view of the global metrics registry, or null when
  /// metrics are disabled.  Valid only for the duration of the callback.
  const obs::MetricsSnapshot* metrics = nullptr;
};

using ProgressFn = std::function<void(const EngineProgress&)>;

inline constexpr std::size_t kDefaultProgressInterval = 8192;

/// Stable stop reasons reported via EngineResult::truncated_reason.
namespace stop_reason {
inline constexpr const char* kStateBudget = "state budget exhausted";
inline constexpr const char* kDeadline = "wall-clock deadline exceeded";
inline constexpr const char* kCancelled = "cancelled by caller";
inline constexpr const char* kComposeBudget =
    "state budget exhausted during composition";
/// Refinement engine only: the iteration cap was reached.
inline constexpr const char* kRefinementBudget =
    "refinement budget exhausted";
/// Historical (discrete engine): emitted while digitized ages were 16-bit
/// and delay bounds past 65535 ticks had to be refused.  Ages are 64-bit
/// now, so the built-in engines no longer emit it; the constant stays so
/// stored reports keep parsing and custom backends can reuse it.
inline constexpr const char* kDigitizationRange =
    "timing constants exceed the digitized age range";
/// The engine threw instead of returning a result (e.g. compose() rejects
/// contradictory delay bounds); the what() string goes in
/// EngineResult::message.
inline constexpr const char* kEngineError = "engine raised an error";
/// The obligation never reached an engine: the run_suite() / serve lint
/// pre-flight (rtv/lint/lint.hpp) found error-severity diagnostics.  The
/// first error's formatted text goes in EngineResult::message.
inline constexpr const char* kLintError = "rejected by lint pre-flight";
}  // namespace stop_reason

/// Hot-loop guard threading one RunBudget's deadline + cancellation (and
/// the progress callback) through an exploration loop.  Engines call
/// tick(n) once per explored state; a non-null return is the stop reason.
/// The deadline is polled every 64th tick (the very first tick included),
/// keeping the steady_clock cost out of the per-state path.
class RunClock {
 public:
  RunClock(std::string_view engine, const RunBudget& budget,
           ProgressFn progress = nullptr,
           std::size_t progress_interval = kDefaultProgressInterval);

  /// Null if the run may continue, else a stable stop_reason string.
  const char* tick(std::size_t states_explored);

  double seconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
  /// Deadline kept in double seconds and compared against seconds() —
  /// converting huge budgets (1e300, inf) to a clock duration would
  /// overflow the integer representation (UB).
  double deadline_seconds_ = 0.0;
  bool has_deadline_ = false;
  const CancelToken* cancel_ = nullptr;
  ProgressFn progress_;
  std::size_t progress_interval_ = kDefaultProgressInterval;
  std::size_t ticks_ = 0;
  std::string_view engine_;
};

// ---------------------------------------------------------------------------
// Request / result.
// ---------------------------------------------------------------------------

/// One verification obligation, engine-agnostic.
struct EngineRequest {
  /// Modules composed CSP-style over shared labels (monitors included).
  std::vector<const Module*> modules;
  std::vector<const SafetyProperty*> properties;
  RunBudget budget;
  /// Invoked every progress_interval explored states when set.
  ProgressFn progress;
  std::size_t progress_interval = kDefaultProgressInterval;
  /// Track refused outputs (chokes) for containment checking.
  bool track_chokes = true;
  /// Refinement-engine knob (iteration cap); exact engines ignore it.
  std::size_t max_refinements = 500;
  /// Worker threads *inside* this one obligation (0 = one per hardware
  /// thread, 1 = sequential).  Parallel engines shard their frontier
  /// across the workers (compose() for every engine, the digitized BFS
  /// for "discrete"); verdicts never depend on the worker count.
  std::size_t jobs = 1;
};

/// Engine-specific statistics, carried alongside the common fields.
struct RefineEngineStats {
  int refinements = 0;
  std::size_t composed_states = 0;
  /// Back-annotated relative timing constraints ("a before b"), the
  /// paper's Fig. 13 deliverable.
  std::vector<std::string> constraints;
};

/// For zone/discrete, EngineResult::states_explored already counts the
/// engine's exploration unit (zones / integer-age configs); the stats add
/// only what is not derivable from the common fields.
struct ZoneEngineStats {
  std::size_t discrete_states = 0;  ///< distinct TTS states reached in time
};

struct DiscreteEngineStats {
  std::size_t discrete_states = 0;  ///< distinct locations reached
};

using EngineStats = std::variant<std::monostate, RefineEngineStats,
                                 ZoneEngineStats, DiscreteEngineStats>;

struct EngineResult {
  Verdict verdict = Verdict::kInconclusive;
  /// Human-readable note: the violation description, or an engine-specific
  /// remark (may be empty; truncation causes go in truncated_reason).
  std::string message;
  /// Event labels leading to the violation (empty when none or unknown).
  std::vector<std::string> trace_labels;
  /// Explored states in the engine's own unit (see RunBudget::max_states).
  std::size_t states_explored = 0;
  double seconds = 0.0;
  /// Non-empty iff the run stopped early (see stop_reason); implies
  /// verdict != kVerified.
  std::string truncated_reason;
  EngineStats stats;

  bool verified() const { return verdict == Verdict::kVerified; }
  bool violated() const { return verdict == Verdict::kViolated; }
  bool inconclusive() const { return verdict == Verdict::kInconclusive; }
};

// ---------------------------------------------------------------------------
// Engine interface + registry.
// ---------------------------------------------------------------------------

class Engine {
 public:
  virtual ~Engine() = default;
  /// Stable registry key ("refine", "zone", "discrete", ...).
  virtual std::string_view name() const = 0;
  /// One-line description for listings.
  virtual std::string_view description() const = 0;
  /// Decide one obligation.
  ///
  /// Thread-safety contract: run() must be safe to call concurrently from
  /// multiple threads on the same Engine instance — implementations keep
  /// all run state local to the call and never mutate members (the method
  /// is const for exactly this reason).  The three built-in engines are
  /// stateless and honour this; the batch scheduler (rtv/verify/suite.hpp)
  /// relies on it to race engines and to run obligations in parallel.
  /// Requests are shared by value-ish views: the modules, properties and
  /// cancel token behind a request must stay alive and unmodified for the
  /// duration of the call (CancelToken::cancel() is the one exception —
  /// it may be fired from any thread at any time).
  virtual EngineResult run(const EngineRequest& request) const = 0;
};

class EngineRegistry {
 public:
  /// Registers (or replaces, matching by name) an engine.
  void add(std::unique_ptr<Engine> engine);
  /// Null when no engine has that name.
  const Engine* find(std::string_view name) const;
  /// All engines in registration order.
  std::vector<const Engine*> engines() const;
  std::vector<std::string> names() const;

 private:
  std::vector<std::unique_ptr<Engine>> engines_;
};

/// The process-wide registry, pre-seeded with the three built-in engines:
/// "refine" (relative-timing refinement), "zone" (dense-time DBM zones)
/// and "discrete" (digitized integer ages).
///
/// Construction is thread-safe (magic static, built exactly once on first
/// use) and the returned reference is const: concurrent find()/engines()
/// lookups are safe without synchronization.  Extra backends register
/// through register_engine().
const EngineRegistry& engine_registry();

/// Register (or replace, matching by name) an engine in the process-wide
/// registry.  Registration itself is serialized by an internal mutex, but
/// it is NOT safe to register concurrently with lookups or running suites:
/// register custom backends during single-threaded startup, before the
/// first verification runs.
void register_engine(std::unique_ptr<Engine> engine);

}  // namespace rtv
