// The relative-timing verification flow (the paper's Fig. 3, as implemented
// by the transyt tool of [13]):
//
//   compose -> search failure -> timing-consistent? -> counterexample
//                     ^                |no
//                     |   extract window / derive constraints
//                     +---- refine (enabling-compatible product) ----+
//
// Iterates until no failure remains (verified, with back-annotated relative
// timing constraints), a timing-consistent failure is found (a true
// counterexample), or the iteration budget is exhausted (inconclusive).
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rtv/timing/trace_timing.hpp"
#include "rtv/ts/compose.hpp"
#include "rtv/ts/module.hpp"
#include "rtv/verify/engine.hpp"
#include "rtv/verify/property.hpp"

namespace rtv {

struct VerifyOptions {
  std::size_t max_refinements = 500;
  std::size_t max_states = 2'000'000;
  bool track_chokes = true;
  /// Wall-clock deadline in seconds; 0 means none.  Checked between
  /// refinement iterations and inside the failure-search loop.
  double max_seconds = 0.0;
  /// Optional cooperative cancellation (not owned; may be null).
  const CancelToken* cancel = nullptr;
  /// Invoked every progress_interval explored states when set.
  ProgressFn progress;
  std::size_t progress_interval = kDefaultProgressInterval;
  /// Apply the structural relative-timing rule (see RefinedSystem) from the
  /// first iteration.  Off reproduces the pure trace-by-trace flow.
  bool structural_rule = true;
  /// Wave cap of the refined states' timing annotation (see
  /// RefinedSystem::set_max_waves); smaller = coarser but cheaper.
  std::size_t max_waves = 6;
  /// Worker threads for the composition phase (0 = one per hardware
  /// thread, 1 = sequential).  The refinement loop itself is sequential:
  /// each iteration's failure search depends on the previous iteration's
  /// derived constraints.
  std::size_t jobs = 1;
};

/// One refinement iteration: the failure that was found and the relative
/// timing information that removed it.
struct RefinementRecord {
  int iteration = 0;
  std::string failure;                       ///< description of the violation
  std::vector<std::string> window_labels;    ///< banned window (event labels)
  bool from_start = false;
  bool used_window = false;                  ///< window ban vs ordering pairs
  std::string anchor;                        ///< anchor description
  std::vector<DerivedOrdering> orderings;    ///< back-annotated constraints
};

struct VerificationResult {
  Verdict verdict = Verdict::kInconclusive;
  int refinements = 0;
  std::optional<Trace> counterexample;
  std::string counterexample_text;
  /// Event labels of the counterexample (the virtual choked event, if any,
  /// appended last); empty when there is no counterexample.
  std::vector<std::string> counterexample_labels;
  std::string message;
  /// Non-empty iff a budget stopped the run early (see rtv::stop_reason);
  /// the verdict is then kInconclusive.
  std::string truncated_reason;
  std::vector<RefinementRecord> records;
  std::size_t composed_states = 0;
  std::size_t final_states_explored = 0;
  double seconds = 0.0;

  bool verified() const { return verdict == Verdict::kVerified; }

  /// Union of all back-annotated orderings, deduplicated.
  std::vector<DerivedOrdering> constraints() const;
};

/// Run the full flow on the composition of `modules` against `properties`.
VerificationResult verify_modules(const std::vector<const Module*>& modules,
                                  const std::vector<const SafetyProperty*>& properties,
                                  const VerifyOptions& options = {});

}  // namespace rtv
