// Low-overhead metrics registry: named counters, gauges, and histograms
// with Prometheus text-exposition and JSON snapshot serialization.
//
// Design constraints, in order:
//
//   1. Near-zero cost when disabled.  Every mutation starts with one
//      relaxed atomic load (`metrics_enabled()`); building with
//      -DRTV_OBS_DISABLED compiles the whole layer out (mutations become
//      empty inline functions, snapshots come back empty).
//   2. Cheap when enabled.  Counters are sharded across cache lines and
//      bumped with relaxed fetch_add; hot loops are still expected to
//      aggregate locally and flush at chunk/layer/run boundaries rather
//      than per state (see docs/OBSERVABILITY.md).
//   3. Snapshotable while concurrently mutated.  `snapshot()` reads with
//      relaxed loads — each point is individually coherent; the snapshot
//      as a whole is not a cross-metric atomic cut, which is fine for
//      telemetry.
//
// Metric identity is (name, labels) where `labels` is a pre-rendered
// Prometheus label body such as `engine="zone"` (no braces).  Lookups take
// a mutex — cache the returned reference when instrumenting anything
// hotter than once-per-run.  References stay valid for the registry's
// lifetime (deque storage, metrics are never unregistered).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rtv::obs {

// ---- runtime switch --------------------------------------------------------

namespace detail {
inline std::atomic<bool> g_metrics_enabled{true};
}  // namespace detail

/// Global runtime switch.  Mutations are dropped while disabled; already
/// accumulated values are kept (reset separately via Registry::reset()).
inline void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

inline bool metrics_enabled() {
#ifdef RTV_OBS_DISABLED
  return false;
#else
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
#endif
}

// ---- thread identity -------------------------------------------------------

/// Small dense id for the calling thread: 0 for the first thread that asks,
/// 1 for the second, and so on for the life of the process.  Shared by the
/// logger (thread ids in log lines), the tracer (one track per thread) and
/// the counter shard selector.
std::uint32_t thread_index();

// ---- metric primitives -----------------------------------------------------

/// Monotonically increasing u64, sharded across cache lines so concurrent
/// writers from different threads rarely contend.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n) {
    if (!metrics_enabled() || n == 0) return;
    shards_[thread_index() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-writer-wins signed value (queue depths, occupancy).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) {
    if (!metrics_enabled()) return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: an observation
/// lands in the first bucket whose upper bound is >= the value, or the
/// implicit +Inf bucket.  Bounds are set at registration and immutable.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Upper bounds, ascending, excluding the implicit +Inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative per-bucket counts; size() == bounds().size() + 1, the
  /// last entry being the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  void reset();

  /// Default bounds for latencies/durations in seconds: 1us .. ~100s.
  static std::vector<double> time_buckets();
  /// Default bounds for small cardinalities (batch sizes, iterations).
  static std::vector<double> count_buckets();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // CAS-accumulated double
};

// ---- snapshots -------------------------------------------------------------

enum class MetricType { kCounter, kGauge, kHistogram };

/// One metric's point-in-time value.  For histograms `value` is the sum,
/// `count` the observation count, and `bucket_bounds`/`bucket_counts` the
/// (non-cumulative) bucket table.
struct MetricPoint {
  std::string name;    // Prometheus base name, e.g. "rtv_engine_runs_total"
  std::string labels;  // pre-rendered label body, e.g. engine="zone"; may be ""
  std::string help;
  MetricType type = MetricType::kCounter;
  double value = 0.0;
  std::uint64_t count = 0;  // histograms only
  std::vector<double> bucket_bounds;
  std::vector<std::uint64_t> bucket_counts;
};

struct MetricsSnapshot {
  std::vector<MetricPoint> points;  // registration order

  /// Point with this exact (name, labels), or null.
  const MetricPoint* find(std::string_view name,
                          std::string_view labels = "") const;
};

/// Prometheus text exposition (one # HELP / # TYPE block per base name,
/// cumulative `le` buckets, `_sum`/`_count` series for histograms).
std::string to_prometheus(const MetricsSnapshot& snap);

/// Flat JSON object: {"name{labels}": value, ...} with histograms expanded
/// to name_sum / name_count members.  Shared by `--progress-json`, the
/// daemon stats op and the overhead bench.
void append_json(std::string& out, const MetricsSnapshot& snap);

// ---- registry --------------------------------------------------------------

/// Process-wide named-metric table.  Registration and lookup are
/// mutex-guarded; returned references live as long as the registry.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name, std::string_view labels = "",
                   std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view labels = "",
               std::string_view help = "");
  /// `bounds` apply on first registration only; later lookups of the same
  /// (name, labels) return the existing histogram unchanged.
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view labels = "",
                       std::string_view help = "");

  MetricsSnapshot snapshot() const;

  /// Zero every registered metric (tests and benches; metrics stay
  /// registered so cached references remain valid).
  void reset();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Impl;
  Impl& impl() const;
};

/// Snapshot of the global registry (empty when built with
/// RTV_OBS_DISABLED).
MetricsSnapshot snapshot();

// ---- scoped timers ---------------------------------------------------------

/// RAII stopwatch: observes elapsed seconds into `h` on destruction.
/// No-op (never reads the clock) while metrics are disabled at
/// construction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_ns_;
};

/// Monotonic nanoseconds since an arbitrary process-local epoch.  The one
/// steady-clock read shared by metrics timers, trace timestamps, and log
/// uptime stamps.
std::uint64_t monotonic_ns();

}  // namespace rtv::obs
