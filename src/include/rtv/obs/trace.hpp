// Scoped-span tracing with Chrome trace-event / Perfetto-compatible JSON
// output.
//
// A single process-wide session collects begin/end (ph "B"/"E") events;
// `Span` is the RAII emitter.  When no session is active a span costs one
// relaxed atomic load at construction and nothing else — hot code can keep
// spans unconditionally around layer/merge/request boundaries.  Spans are
// expected at *coarse* granularity (per layer, per merge, per request),
// never per state.
//
// Tracks: each OS thread that emits events becomes one track (tid is the
// dense `obs::thread_index()`), named via `set_thread_name()` which emits
// the usual thread_name metadata record.  Timestamps are microseconds from
// the session start on the shared monotonic clock.
//
// Lifecycle: `start_tracing()` begins collection, `stop_tracing_json()` /
// `write_trace(path)` ends it and serializes.  A span that straddles
// stop still records its end event: spans register their begin index and
// the session keeps events until every open span has closed or the
// serializer patches unmatched begins with synthetic ends — so the output
// always contains matched B/E pairs per thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace rtv::obs {

namespace detail {
inline std::atomic<bool> g_tracing_active{false};
}  // namespace detail

inline bool tracing_active() {
#ifdef RTV_OBS_DISABLED
  return false;
#else
  return detail::g_tracing_active.load(std::memory_order_relaxed);
#endif
}

/// Begin collecting trace events (idempotent; a second start while active
/// is ignored).  Resets the session clock to "now".
void start_tracing();

/// Stop collecting and return the full Chrome trace-event JSON document
/// ({"traceEvents":[...]}).  Returns "" if tracing was never started.
std::string stop_tracing_json();

/// Stop collecting and write the JSON document to `path`.  Returns false
/// (and writes nothing) if tracing was never started or the file cannot
/// be opened.
bool write_trace(const std::string& path);

/// Discard a running session without serializing.
void stop_tracing();

/// Name the calling thread's track ("worker 3", "serve scheduler", ...).
/// Effective for the whole session regardless of when it is called.
void set_thread_name(std::string_view name);

/// Single instantaneous event (ph "i"), for marking moments like
/// "portfolio winner" or "cache hit" on a track.
void trace_instant(std::string_view name, std::string_view category = "rtv");

namespace detail {
/// Returns an opaque begin ticket (0 when inactive / dropped).
std::uint64_t span_begin(std::string_view name, std::string_view category);
void span_end(std::uint64_t ticket);
}  // namespace detail

/// RAII scoped span: emits ph "B" at construction and the matching ph "E"
/// at destruction on the same thread.  Safe (and free) when tracing is
/// inactive.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "rtv")
      : ticket_(tracing_active() ? detail::span_begin(name, category) : 0) {}
  ~Span() {
    if (ticket_) detail::span_end(ticket_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::uint64_t ticket_;
};

}  // namespace rtv::obs
