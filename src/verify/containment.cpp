#include "rtv/verify/containment.hpp"

namespace rtv {

VerificationResult check_containment(
    const std::vector<const Module*>& system, const Module& abstraction,
    const std::vector<const SafetyProperty*>& extra_properties,
    const VerifyOptions& options) {
  // The abstraction participates as a monitor: it observes every event of
  // its alphabet, constrains neither timing nor enabling, and any event it
  // cannot accept surfaces as a choke in the composition.
  const Module monitor = abstraction.as_monitor(abstraction.name() + "'");
  std::vector<const Module*> modules = system;
  modules.push_back(&monitor);

  VerifyOptions opts = options;
  opts.track_chokes = true;
  return verify_modules(modules, extra_properties, opts);
}

}  // namespace rtv
