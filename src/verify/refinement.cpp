#include "rtv/verify/refinement.hpp"

#include <algorithm>
#include <sstream>

#include "rtv/base/log.hpp"
#include "rtv/lazy/refined_system.hpp"
#include "rtv/obs/trace.hpp"
#include "rtv/verify/failure_search.hpp"

namespace rtv {

std::vector<DerivedOrdering> VerificationResult::constraints() const {
  std::vector<DerivedOrdering> all;
  for (const RefinementRecord& r : records)
    all.insert(all.end(), r.orderings.begin(), r.orderings.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

VerificationResult verify_modules(
    const std::vector<const Module*>& modules,
    const std::vector<const SafetyProperty*>& properties,
    const VerifyOptions& options) {
  RunBudget budget;
  budget.max_states = options.max_states;
  budget.max_seconds = options.max_seconds;
  budget.cancel = options.cancel;
  RunClock clock("refine", budget, options.progress,
                 options.progress_interval);
  VerificationResult result;

  auto finish = [&](const char* truncated_reason) {
    if (truncated_reason) {
      result.truncated_reason = truncated_reason;
      if (result.message.empty()) result.message = truncated_reason;
    }
    result.seconds = clock.seconds();
    return result;
  };

  ComposeOptions copts;
  copts.track_chokes = options.track_chokes;
  copts.max_states = options.max_states;
  copts.jobs = options.jobs;
  copts.stop = [&clock](std::size_t states) { return clock.tick(states); };
  const Composition comp = compose(modules, copts);
  result.composed_states = comp.ts.num_states();
  if (comp.truncated) {
    result.message = "composition truncated; verdict unavailable";
    return finish(comp.truncated_reason ? comp.truncated_reason
                                        : stop_reason::kComposeBudget);
  }
  RTV_INFO << "composed " << comp.ts.num_states() << " states, "
           << comp.chokes.size() << " potential refusals";

  RefinedSystem refined(comp.ts);
  refined.enable_age_rule(options.structural_rule);
  refined.set_max_waves(options.max_waves);
  refined.set_chokes(comp.chokes);

  std::string last_signature;
  for (std::size_t iter = 0; iter <= options.max_refinements; ++iter) {
    obs::Span span("refine iteration " + std::to_string(iter), "engine");
    FailureSearchStats stats;
    const auto failure = find_failure(refined, comp.chokes, properties,
                                      options.max_states, &stats, &clock);
    result.final_states_explored = stats.states_explored;
    if (stats.truncated) {
      const char* reason = stats.stop_reason ? stats.stop_reason
                                             : stop_reason::kStateBudget;
      result.message =
          std::string(reason) + " during failure search";
      return finish(reason);
    }
    if (!failure) {
      result.verdict = Verdict::kVerified;
      result.message = "no failure reachable under derived timing constraints";
      break;
    }

    const TraceTimingModel model(comp.ts, failure->trace, failure->virtual_event,
                                 comp.chokes);
    if (model.consistent()) {
      result.verdict = Verdict::kViolated;
      result.counterexample = failure->trace;
      for (const TraceStep& st : failure->trace.steps)
        result.counterexample_labels.push_back(comp.ts.label(st.event));
      if (failure->virtual_event.valid())
        result.counterexample_labels.push_back(
            comp.ts.label(failure->virtual_event));
      std::ostringstream os;
      os << failure->description << " via "
         << failure->trace.to_string(comp.ts);
      if (failure->virtual_event.valid())
        os << " then " << comp.ts.label(failure->virtual_event);
      result.counterexample_text = os.str();
      result.message = "timing-consistent failure: " + failure->description;
      break;
    }

    if (iter == options.max_refinements) {
      result.message = stop_reason::kRefinementBudget;
      return finish(stop_reason::kRefinementBudget);
    }

    const auto window = model.find_ban_window();
    if (!window) {
      // Cannot happen: an inconsistent trace always yields a window.
      result.message = "internal: inconsistent trace without ban window";
      break;
    }

    RefinementRecord rec;
    rec.iteration = static_cast<int>(iter) + 1;
    rec.failure = failure->description;
    rec.from_start = window->from_start;
    rec.orderings = model.explain(*window);

    // Preferred refinement: activate the derived orderings as relative
    // timing constraints (justified per state by the enabling-instant
    // matrix).  Fall back to banning the exact window when no new ordering
    // emerges or the same failure keeps recurring.
    std::string signature = failure->description;
    for (const TraceStep& st : failure->trace.steps)
      signature += "|" + comp.ts.label(st.event);
    bool progressed = false;
    for (const DerivedOrdering& o : rec.orderings) {
      const EventId before = comp.ts.event_by_label(o.before);
      const EventId after = comp.ts.event_by_label(o.after);
      if (before.valid() && after.valid() &&
          refined.activate_pair(before, after)) {
        progressed = true;
        RTV_INFO << "refinement " << rec.iteration << ": " << rec.failure
                 << " -> constraint " << o.before << " before " << o.after;
      }
    }
    if (!progressed || signature == last_signature) {
      rec.used_window = true;
      BanObserver obs;
      obs.from_start = window->from_start;
      obs.anchor_state = model.state_at(window->anchor_point);
      for (int k = window->anchor_point; k <= window->last_point; ++k) {
        obs.window.push_back(model.fired(k));
        rec.window_labels.push_back(comp.ts.label(model.fired(k)));
      }
      rec.anchor = window->from_start
                       ? std::string("run start")
                       : "state " + comp.describe_state(obs.anchor_state);
      {
        std::ostringstream os;
        os << "ban[";
        for (std::size_t i = 0; i < rec.window_labels.size(); ++i) {
          if (i) os << " ";
          os << rec.window_labels[i];
        }
        os << "] @ " << rec.anchor;
        obs.description = os.str();
      }
      RTV_INFO << "refinement " << rec.iteration << ": " << rec.failure
               << " -> " << obs.description;
      refined.add_observer(std::move(obs));
    }
    last_signature = std::move(signature);
    result.records.push_back(std::move(rec));
    result.refinements = static_cast<int>(iter) + 1;
  }

  return finish(nullptr);
}

}  // namespace rtv
