#include "rtv/verify/obligation_hash.hpp"

#include "rtv/ts/transition_system.hpp"

namespace rtv {

void hash_module(Fnv1a& h, const Module& m) {
  const TransitionSystem& ts = m.ts();
  h.str("module");
  h.u64(ts.num_states());
  h.u64(ts.num_events());
  h.u64(ts.initial().valid() ? ts.initial().value() : ~std::uint64_t{0});

  for (std::size_t e = 0; e < ts.num_events(); ++e) {
    const Event& ev = ts.event(EventId(static_cast<std::uint32_t>(e)));
    h.str(ev.label);
    h.i64(ev.delay.lo());
    h.i64(ev.delay.hi());
    h.str(to_string(ev.kind));
  }

  for (std::size_t s = 0; s < ts.num_states(); ++s) {
    const StateId sid(static_cast<std::uint32_t>(s));
    const auto out = ts.transitions_from(sid);
    h.u64(out.size());
    for (const Transition& t : out) {
      h.u32(t.event.value());
      h.u32(t.target.value());
    }
  }

  const auto& signals = ts.signal_names();
  h.u64(signals.size());
  for (const std::string& name : signals) h.str(name);
  h.boolean(ts.has_valuations());
  if (ts.has_valuations()) {
    for (std::size_t s = 0; s < ts.num_states(); ++s)
      h.str(ts.valuation(StateId(static_cast<std::uint32_t>(s))).to_string());
  }
}

std::uint64_t module_content_hash(const Module& m) {
  Fnv1a h;
  hash_module(h, m);
  return h.digest();
}

void hash_budget(Fnv1a& h, const RunBudget& budget,
                 std::size_t max_refinements, bool track_chokes) {
  h.str("budget");
  h.u64(budget.max_states);
  h.f64(budget.max_seconds);
  h.u64(max_refinements);
  h.boolean(track_chokes);
}

}  // namespace rtv
