#include "rtv/verify/induction.hpp"

#include <algorithm>

namespace rtv {

std::vector<DerivedOrdering> InductionResult::constraints() const {
  std::vector<DerivedOrdering> all = base.constraints();
  const std::vector<DerivedOrdering> s = step.constraints();
  all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

InductionResult prove_fixed_point(
    const Module& base_env, const Module& left_abstraction,
    const Module& component, const Module& context, const Module& abstraction,
    const std::vector<const SafetyProperty*>& properties,
    const VerifyOptions& options) {
  InductionResult r;
  r.base = check_containment({&base_env, &component, &context}, abstraction,
                             properties, options);
  r.step = check_containment({&left_abstraction, &component, &context},
                             abstraction, properties, options);
  return r;
}

}  // namespace rtv
