#include "rtv/verify/engine.hpp"

#include <mutex>
#include <string>
#include <utility>

#include "rtv/obs/metrics.hpp"
#include "rtv/obs/trace.hpp"
#include "rtv/verify/refinement.hpp"
#include "rtv/zone/discrete.hpp"
#include "rtv/zone/zone_graph.hpp"

namespace rtv {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kVerified:
      return "VERIFIED";
    case Verdict::kViolated:
      return "VIOLATED";
    case Verdict::kInconclusive:
      return "INCONCLUSIVE";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// RunClock
// ---------------------------------------------------------------------------

RunClock::RunClock(std::string_view engine, const RunBudget& budget,
                   ProgressFn progress, std::size_t progress_interval)
    : start_(std::chrono::steady_clock::now()),
      cancel_(budget.cancel),
      progress_(std::move(progress)),
      progress_interval_(progress_interval == 0 ? kDefaultProgressInterval
                                                : progress_interval),
      engine_(engine) {
  if (budget.max_seconds > 0.0) {
    has_deadline_ = true;
    deadline_seconds_ = budget.max_seconds;
  }
}

double RunClock::seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

const char* RunClock::tick(std::size_t states_explored) {
  if (cancel_ && cancel_->cancelled()) return stop_reason::kCancelled;
  if (has_deadline_ && (ticks_ % 64) == 0 && seconds() > deadline_seconds_)
    return stop_reason::kDeadline;
  ++ticks_;
  if (progress_ && (ticks_ % progress_interval_) == 0) {
    EngineProgress p{engine_, states_explored, seconds(), nullptr};
    if (obs::metrics_enabled()) {
      // Snapshot cost is amortized over progress_interval explored states
      // (default 8192), so attaching it here stays off the per-state path.
      const obs::MetricsSnapshot snap = obs::snapshot();
      p.metrics = &snap;
      progress_(p);
    } else {
      progress_(p);
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Built-in engines
// ---------------------------------------------------------------------------

namespace {

/// One flush per finished run: cheap enough to do unconditionally from the
/// engine adapters, so every caller (CLI, suite, serve, fuzz) gets the
/// per-engine counters without opting in.
void record_run_metrics(std::string_view engine, const EngineResult& r) {
  if (!obs::metrics_enabled()) return;
  obs::Registry& reg = obs::Registry::global();
  const std::string label = "engine=\"" + std::string(engine) + '"';
  reg.counter("rtv_engine_runs_total", label, "Finished engine runs").inc();
  reg.counter("rtv_engine_states_explored_total", label,
              "Explored states in the engine's own unit")
      .add(r.states_explored);
  reg.counter("rtv_engine_verdicts_total",
              label + ",verdict=\"" + to_string(r.verdict) + '"',
              "Run verdict tally")
      .inc();
  reg.histogram("rtv_engine_run_seconds", obs::Histogram::time_buckets(),
                label, "Wall-clock seconds per run")
      .observe(r.seconds);
  if (const auto* st = std::get_if<RefineEngineStats>(&r.stats))
    reg.counter("rtv_engine_refinement_iterations_total", "",
                "Refinement loop iterations across runs")
        .add(static_cast<std::uint64_t>(
            st->refinements < 0 ? 0 : st->refinements));
}

class RefineEngine final : public Engine {
 public:
  std::string_view name() const override { return "refine"; }
  std::string_view description() const override {
    return "relative-timing refinement (the paper's flow: untimed search + "
           "derived timing constraints)";
  }

  EngineResult run(const EngineRequest& request) const override {
    obs::Span span("engine:refine", "engine");
    VerifyOptions opts;
    opts.max_refinements = request.max_refinements;
    if (request.budget.max_states) opts.max_states = request.budget.max_states;
    opts.max_seconds = request.budget.max_seconds;
    opts.cancel = request.budget.cancel;
    opts.progress = request.progress;
    opts.progress_interval = request.progress_interval;
    opts.track_chokes = request.track_chokes;
    opts.jobs = request.jobs;
    const VerificationResult r =
        verify_modules(request.modules, request.properties, opts);

    EngineResult out;
    out.verdict = r.verdict;
    out.message =
        r.verdict == Verdict::kViolated ? r.counterexample_text : r.message;
    out.trace_labels = r.counterexample_labels;
    out.states_explored = r.final_states_explored;
    out.seconds = r.seconds;
    out.truncated_reason = r.truncated_reason;

    RefineEngineStats st;
    st.refinements = r.refinements;
    st.composed_states = r.composed_states;
    for (const DerivedOrdering& o : r.constraints())
      st.constraints.push_back(o.before + " before " + o.after);
    out.stats = std::move(st);
    record_run_metrics(name(), out);
    return out;
  }
};

class ZoneEngine final : public Engine {
 public:
  std::string_view name() const override { return "zone"; }
  std::string_view description() const override {
    return "exact dense-time reachability over DBM zones (ground truth, "
           "exponential in clocks)";
  }

  EngineResult run(const EngineRequest& request) const override {
    obs::Span span("engine:zone", "engine");
    ZoneVerifyOptions opts;
    if (request.budget.max_states) opts.max_zones = request.budget.max_states;
    opts.max_seconds = request.budget.max_seconds;
    opts.cancel = request.budget.cancel;
    opts.progress = request.progress;
    opts.progress_interval = request.progress_interval;
    opts.track_chokes = request.track_chokes;
    opts.jobs = request.jobs;
    const ZoneVerifyResult r =
        zone_verify(request.modules, request.properties, opts);

    EngineResult out;
    out.verdict = r.verdict();
    if (r.violated) out.message = r.description;
    out.trace_labels = r.trace_labels;
    out.states_explored = r.zones_explored;
    out.seconds = r.seconds;
    out.truncated_reason = r.truncated_reason;
    out.stats = ZoneEngineStats{r.discrete_states};
    record_run_metrics(name(), out);
    return out;
  }
};

class DiscreteEngine final : public Engine {
 public:
  std::string_view name() const override { return "discrete"; }
  std::string_view description() const override {
    return "digitized reachability with integer ages (cost grows with the "
           "timing constants)";
  }

  EngineResult run(const EngineRequest& request) const override {
    obs::Span span("engine:discrete", "engine");
    DiscreteVerifyOptions opts;
    if (request.budget.max_states) opts.max_states = request.budget.max_states;
    opts.max_seconds = request.budget.max_seconds;
    opts.cancel = request.budget.cancel;
    opts.progress = request.progress;
    opts.progress_interval = request.progress_interval;
    opts.track_chokes = request.track_chokes;
    opts.jobs = request.jobs;
    const DiscreteVerifyResult r =
        discrete_verify(request.modules, request.properties, opts);

    EngineResult out;
    out.verdict = r.verdict();
    if (r.violated) out.message = r.description;
    out.trace_labels = r.trace_labels;
    out.states_explored = r.states_explored;
    out.seconds = r.seconds;
    out.truncated_reason = r.truncated_reason;
    out.stats = DiscreteEngineStats{r.discrete_states};
    record_run_metrics(name(), out);
    return out;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

void EngineRegistry::add(std::unique_ptr<Engine> engine) {
  for (auto& existing : engines_) {
    if (existing->name() == engine->name()) {
      existing = std::move(engine);
      return;
    }
  }
  engines_.push_back(std::move(engine));
}

const Engine* EngineRegistry::find(std::string_view name) const {
  for (const auto& e : engines_)
    if (e->name() == name) return e.get();
  return nullptr;
}

std::vector<const Engine*> EngineRegistry::engines() const {
  std::vector<const Engine*> out;
  out.reserve(engines_.size());
  for (const auto& e : engines_) out.push_back(e.get());
  return out;
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(engines_.size());
  for (const auto& e : engines_) out.emplace_back(e->name());
  return out;
}

namespace {

/// The one mutable handle on the process-wide registry.  Construction is a
/// C++11 magic static (thread-safe, exactly once); mutation afterwards
/// only happens through register_engine() under the registration mutex.
EngineRegistry& mutable_registry() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry;
    r->add(std::make_unique<RefineEngine>());
    r->add(std::make_unique<ZoneEngine>());
    r->add(std::make_unique<DiscreteEngine>());
    return r;
  }();
  return *registry;
}

}  // namespace

const EngineRegistry& engine_registry() { return mutable_registry(); }

void register_engine(std::unique_ptr<Engine> engine) {
  static std::mutex registration_mutex;
  std::lock_guard<std::mutex> lock(registration_mutex);
  mutable_registry().add(std::move(engine));
}

}  // namespace rtv
