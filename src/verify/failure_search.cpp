#include "rtv/verify/failure_search.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "rtv/base/log.hpp"

namespace rtv {

namespace {

/// Rebuild a trace (over base states, with raw enabling sets) from BFS
/// parent pointers in refined-state space.
Trace unwind(const TransitionSystem& base,
             const std::vector<RefinedState>& states,
             const std::vector<std::ptrdiff_t>& parent,
             const std::vector<EventId>& via, std::ptrdiff_t leaf) {
  std::vector<std::pair<StateId, EventId>> rev;
  std::ptrdiff_t cur = leaf;
  while (parent[static_cast<std::size_t>(cur)] >= 0) {
    const std::ptrdiff_t par = parent[static_cast<std::size_t>(cur)];
    rev.emplace_back(states[static_cast<std::size_t>(par)].base,
                     via[static_cast<std::size_t>(cur)]);
    cur = par;
  }
  Trace t;
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    TraceStep step;
    step.state = it->first;
    step.event = it->second;
    step.enabled = base.enabled_events(it->first);
    t.steps.push_back(std::move(step));
  }
  t.final_state = states[static_cast<std::size_t>(leaf)].base;
  t.final_enabled = base.enabled_events(t.final_state);
  return t;
}

}  // namespace

std::optional<Failure> find_failure(
    const RefinedSystem& sys, std::span<const ChokeRecord> chokes,
    std::span<const SafetyProperty* const> properties, std::size_t max_states,
    FailureSearchStats* stats, RunClock* clock) {
  const TransitionSystem& base = sys.base();

  // Chokes indexed by base state for O(1) lookup.
  std::unordered_map<StateId::underlying_type, std::vector<const ChokeRecord*>>
      chokes_at;
  for (const ChokeRecord& c : chokes) chokes_at[c.state.value()].push_back(&c);

  std::unordered_map<RefinedState, std::ptrdiff_t, RefinedStateHash> index;
  std::vector<RefinedState> states;
  std::vector<std::ptrdiff_t> parent;
  std::vector<EventId> via;
  std::deque<std::ptrdiff_t> queue;
  // Pre-sizing skips the early growth reallocations; the hint is capped
  // because find_failure runs once per refinement iteration and most
  // iterations stop at a shallow failure — sizing to the full base graph
  // would pay MBs of zeroed memory hundreds of times per run.
  const std::size_t hint = std::min<std::size_t>(
      {std::max<std::size_t>(base.num_states(), 256), max_states, 4096});
  index.reserve(hint);
  states.reserve(hint);
  parent.reserve(hint);
  via.reserve(hint);

  auto intern = [&](const RefinedState& rs, std::ptrdiff_t par, EventId e) {
    auto it = index.find(rs);
    if (it != index.end()) return;
    const std::ptrdiff_t id = static_cast<std::ptrdiff_t>(states.size());
    index.emplace(rs, id);
    states.push_back(rs);
    parent.push_back(par);
    via.push_back(e);
    queue.push_back(id);
  };

  intern(sys.initial(), -1, EventId::invalid());

  while (!queue.empty()) {
    if (states.size() > max_states) {
      if (stats) {
        stats->truncated = true;
        stats->stop_reason = stop_reason::kStateBudget;
      }
      RTV_WARN << "failure search truncated at " << states.size() << " states";
      break;
    }
    if (clock) {
      if (const char* reason = clock->tick(states.size())) {
        if (stats) {
          stats->truncated = true;
          stats->stop_reason = reason;
        }
        RTV_WARN << "failure search stopped: " << reason;
        break;
      }
    }
    const std::ptrdiff_t id = queue.front();
    queue.pop_front();
    const RefinedState rs = states[static_cast<std::size_t>(id)];
    const std::vector<EventId> raw_enabled = base.enabled_events(rs.base);
    const PropertyContext ctx{base, rs.base, raw_enabled};

    // 1. State violations.
    for (const SafetyProperty* p : properties) {
      if (auto v = p->check_state(ctx)) {
        Failure f;
        f.trace = unwind(base, states, parent, via, id);
        f.description = *v;
        if (stats) stats->states_explored = states.size();
        return f;
      }
    }

    // 2. Chokes at this base state (virtual firings refused by a monitor).
    if (auto it = chokes_at.find(rs.base.value()); it != chokes_at.end()) {
      for (const ChokeRecord* c : it->second) {
        if (sys.blocked(rs, c->event)) continue;  // timing-pruned
        Failure f;
        f.trace = unwind(base, states, parent, via, id);
        f.virtual_event = c->event;
        f.description = "refusal: output '" + base.label(c->event) +
                        "' not accepted (containment violation)";
        if (stats) stats->states_explored = states.size();
        return f;
      }
    }

    // 3. Firings: event checks, then expansion.
    for (const Transition& t : base.transitions_from(rs.base)) {
      if (sys.blocked(rs, t.event)) continue;
      const std::vector<EventId> succ_enabled = base.enabled_events(t.target);
      for (const SafetyProperty* p : properties) {
        if (auto v = p->check_event(ctx, t.event, t.target, succ_enabled)) {
          Failure f;
          f.trace = unwind(base, states, parent, via, id);
          // The violating firing becomes the last step of the trace.
          TraceStep step;
          step.state = rs.base;
          step.event = t.event;
          step.enabled = raw_enabled;
          f.trace.steps.push_back(std::move(step));
          f.trace.final_state = t.target;
          f.trace.final_enabled = succ_enabled;
          f.description = *v;
          if (stats) stats->states_explored = states.size();
          return f;
        }
      }
      intern(sys.advance(rs, t.event), id, t.event);
    }
  }

  if (stats) stats->states_explored = states.size();
  return std::nullopt;
}

}  // namespace rtv
