#include "rtv/verify/witness.hpp"

#include <sstream>

#include "rtv/timing/trace_timing.hpp"

namespace rtv {

std::string TimedWitness::to_string() const {
  std::ostringstream os;
  for (const TimedStep& s : steps) {
    os << "  t=" << units_from_ticks(s.time) << "\t" << s.label << "\n";
  }
  return os.str();
}

std::optional<TimedWitness> make_witness(const TransitionSystem& ts,
                                         const Trace& trace,
                                         EventId virtual_final,
                                         std::span<const ChokeRecord> chokes) {
  const TraceTimingModel model(ts, trace, virtual_final, chokes);
  if (model.num_points() == 0) return TimedWitness{};
  const BuiltTraceSystem built =
      model.build_system(0, model.num_points() - 1, /*clamped=*/false);
  const auto solved = built.system.solve();
  if (!solved.feasible) return std::nullopt;

  // Var k+1 is the firing time of point k; shift so the run starts at 0.
  const Time base = solved.solution[0];
  TimedWitness w;
  for (int k = 0; k < model.num_points(); ++k) {
    TimedStep step;
    step.time = solved.solution[static_cast<std::size_t>(k) + 1] - base;
    step.label = ts.label(model.fired(k));
    if (k == model.num_points() - 1 && virtual_final.valid()) {
      step.label += " (refused)";
    }
    w.steps.push_back(std::move(step));
  }
  return w;
}

}  // namespace rtv
