#include "rtv/verify/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace rtv {

std::string format_report(const std::string& title,
                          const VerificationResult& result) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  os << "verdict:      " << to_string(result.verdict) << "\n";
  os << "refinements:  " << result.refinements << "\n";
  os << "composed:     " << result.composed_states << " states\n";
  os << "explored:     " << result.final_states_explored
     << " refined states (final iteration)\n";
  os << "time:         " << std::fixed << std::setprecision(3) << result.seconds
     << " s\n";
  if (!result.message.empty()) os << "note:         " << result.message << "\n";
  if (result.counterexample) {
    os << "counterexample: " << result.counterexample_text << "\n";
  }
  for (const RefinementRecord& r : result.records) {
    os << "  iter " << std::setw(3) << r.iteration << ": " << r.failure << "\n";
    os << "           banned [";
    for (std::size_t i = 0; i < r.window_labels.size(); ++i) {
      if (i) os << " ";
      os << r.window_labels[i];
    }
    os << "] anchored at " << (r.from_start ? "run start" : r.anchor) << "\n";
    for (const DerivedOrdering& o : r.orderings) {
      os << "           constraint: " << o.before << " before " << o.after
         << "\n";
    }
  }
  return os.str();
}

std::string format_constraints(const VerificationResult& result) {
  std::ostringstream os;
  for (const DerivedOrdering& o : result.constraints()) {
    os << o.before << " before " << o.after << "\n";
  }
  return os.str();
}

ExperimentRow summarize(const std::string& name, const VerificationResult& r) {
  ExperimentRow row;
  row.name = name;
  row.verdict = r.verdict;
  row.seconds = r.seconds;
  row.refinements = r.refinements;
  row.states = r.composed_states;
  return row;
}

ExperimentRow summarize(const std::string& name, const EngineResult& r) {
  ExperimentRow row;
  row.name = name;
  row.verdict = r.verdict;
  row.seconds = r.seconds;
  if (const auto* st = std::get_if<RefineEngineStats>(&r.stats)) {
    row.refinements = st->refinements;
    row.states = st->composed_states;
  } else {
    row.states = r.states_explored;
  }
  return row;
}

std::vector<ExperimentRow> rows_from(const SuiteReport& report) {
  // Name rows by obligation alone when every obligation ran on one engine,
  // else disambiguate with the engine.
  bool multi_engine = false;
  for (const SuiteRecord& rec : report.records)
    for (const SuiteRecord& other : report.records)
      if (&rec != &other && rec.obligation == other.obligation)
        multi_engine = true;
  std::vector<ExperimentRow> rows;
  rows.reserve(report.records.size());
  for (const SuiteRecord& rec : report.records) {
    const std::string name = multi_engine
                                 ? rec.obligation + " [" + rec.engine + "]"
                                 : rec.obligation;
    rows.push_back(summarize(name, rec.result));
  }
  return rows;
}

std::string format_table(const std::vector<ExperimentRow>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(44) << "Experiment" << std::setw(16) << "Verdict"
     << std::setw(12) << "CPU time" << std::setw(13) << "Refinements"
     << "States\n";
  os << std::string(95, '-') << "\n";
  for (const ExperimentRow& r : rows) {
    std::ostringstream secs;
    secs << std::fixed << std::setprecision(3) << r.seconds << " s";
    os << std::left << std::setw(44) << r.name << std::setw(16)
       << to_string(r.verdict) << std::setw(12) << secs.str() << std::setw(13)
       << r.refinements << r.states << "\n";
  }
  return os.str();
}

std::string format_table(const SuiteReport& report) {
  // Column widths adapt to content so long obligation names do not shear
  // the table.
  std::size_t name_w = std::string("Obligation").size();
  std::size_t engine_w = std::string("Engine").size();
  std::size_t reason_w = std::string("Stop reason").size();
  for (const SuiteRecord& rec : report.records) {
    name_w = std::max(name_w, rec.obligation.size());
    engine_w = std::max(engine_w, rec.engine.size());
    reason_w = std::max(reason_w, rec.result.truncated_reason.size());
  }

  std::ostringstream os;
  os << std::left << std::setw(static_cast<int>(name_w + 2)) << "Obligation"
     << std::setw(static_cast<int>(engine_w + 2)) << "Engine" << std::setw(16)
     << "Verdict" << std::setw(12) << "States" << std::setw(11) << "Wall"
     << std::setw(11) << "CPU" << "Stop reason\n";
  os << std::string(name_w + engine_w + 4 + 16 + 12 + 22 +
                        std::max<std::size_t>(reason_w, 11),
                    '-')
     << "\n";
  for (const SuiteRecord& rec : report.records) {
    std::ostringstream wall, cpu;
    wall << std::fixed << std::setprecision(3) << rec.result.seconds << " s";
    cpu << std::fixed << std::setprecision(3) << rec.cpu_seconds << " s";
    os << std::left << std::setw(static_cast<int>(name_w + 2))
       << rec.obligation << std::setw(static_cast<int>(engine_w + 2))
       << rec.engine << std::setw(16)
       << (std::string(to_string(rec.result.verdict)) +
           (rec.winner ? " *" : ""))
       << std::setw(12) << rec.result.states_explored << std::setw(11)
       << wall.str() << std::setw(11) << cpu.str()
       << rec.result.truncated_reason << "\n";
  }
  os << "overall: " << to_string(report.overall()) << "  ("
     << to_string(report.mode) << " mode, " << report.jobs << " job"
     << (report.jobs == 1 ? "" : "s") << ", " << std::fixed
     << std::setprecision(3) << report.wall_seconds << " s wall";
  if (!report.records.empty()) os << ", * = decided the obligation";
  os << ")\n";
  return os.str();
}

}  // namespace rtv
