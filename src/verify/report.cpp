#include "rtv/verify/report.hpp"

#include <iomanip>
#include <sstream>

namespace rtv {

std::string format_report(const std::string& title,
                          const VerificationResult& result) {
  std::ostringstream os;
  os << "== " << title << " ==\n";
  os << "verdict:      " << to_string(result.verdict) << "\n";
  os << "refinements:  " << result.refinements << "\n";
  os << "composed:     " << result.composed_states << " states\n";
  os << "explored:     " << result.final_states_explored
     << " refined states (final iteration)\n";
  os << "time:         " << std::fixed << std::setprecision(3) << result.seconds
     << " s\n";
  if (!result.message.empty()) os << "note:         " << result.message << "\n";
  if (result.counterexample) {
    os << "counterexample: " << result.counterexample_text << "\n";
  }
  for (const RefinementRecord& r : result.records) {
    os << "  iter " << std::setw(3) << r.iteration << ": " << r.failure << "\n";
    os << "           banned [";
    for (std::size_t i = 0; i < r.window_labels.size(); ++i) {
      if (i) os << " ";
      os << r.window_labels[i];
    }
    os << "] anchored at " << (r.from_start ? "run start" : r.anchor) << "\n";
    for (const DerivedOrdering& o : r.orderings) {
      os << "           constraint: " << o.before << " before " << o.after
         << "\n";
    }
  }
  return os.str();
}

std::string format_constraints(const VerificationResult& result) {
  std::ostringstream os;
  for (const DerivedOrdering& o : result.constraints()) {
    os << o.before << " before " << o.after << "\n";
  }
  return os.str();
}

ExperimentRow summarize(const std::string& name, const VerificationResult& r) {
  ExperimentRow row;
  row.name = name;
  row.verdict = r.verdict;
  row.seconds = r.seconds;
  row.refinements = r.refinements;
  row.states = r.composed_states;
  return row;
}

std::string format_table(const std::vector<ExperimentRow>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(44) << "Experiment" << std::setw(16) << "Verdict"
     << std::setw(12) << "CPU time" << std::setw(13) << "Refinements"
     << "States\n";
  os << std::string(95, '-') << "\n";
  for (const ExperimentRow& r : rows) {
    std::ostringstream secs;
    secs << std::fixed << std::setprecision(3) << r.seconds << " s";
    os << std::left << std::setw(44) << r.name << std::setw(16)
       << to_string(r.verdict) << std::setw(12) << secs.str() << std::setw(13)
       << r.refinements << r.states << "\n";
  }
  return os.str();
}

}  // namespace rtv
