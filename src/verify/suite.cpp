#include "rtv/verify/suite.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "rtv/analysis/slice.hpp"
#include "rtv/base/json.hpp"
#include "rtv/base/parallel.hpp"
#include "rtv/lint/lint.hpp"
#include "rtv/obs/metrics.hpp"
#include "rtv/obs/trace.hpp"

namespace rtv {

// ---------------------------------------------------------------------------
// Suite storage
// ---------------------------------------------------------------------------

const Module* Suite::own(Module m) {
  owned_modules_.push_back(std::move(m));
  return &owned_modules_.back();
}

const SafetyProperty* Suite::own(std::unique_ptr<SafetyProperty> p) {
  owned_properties_.push_back(std::move(p));
  return owned_properties_.back().get();
}

Obligation& Suite::add(std::string name) {
  obligations_.emplace_back();
  obligations_.back().name = std::move(name);
  return obligations_.back();
}

Obligation& Suite::add(std::string name, std::vector<const Module*> modules,
                       std::vector<const SafetyProperty*> properties) {
  Obligation& ob = add(std::move(name));
  ob.modules = std::move(modules);
  ob.properties = std::move(properties);
  return ob;
}

const char* to_string(SuiteMode mode) {
  return mode == SuiteMode::kPortfolio ? "portfolio" : "batch";
}

int exit_code(Verdict v) {
  switch (v) {
    case Verdict::kVerified:
      return 0;
    case Verdict::kViolated:
      return 1;
    case Verdict::kInconclusive:
      return 2;
  }
  return 2;
}

// ---------------------------------------------------------------------------
// The scheduler
// ---------------------------------------------------------------------------

namespace {

bool definitive(Verdict v) { return v != Verdict::kInconclusive; }

/// Per-thread CPU clock; 0 when the platform has no per-thread clock.
double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
  return 0.0;
}

/// Shared race state of one obligation's portfolio.
struct ObligationControl {
  /// Handed to every run of the obligation; cancelled when a peer decides
  /// (portfolio) or when a suite-wide cancellation is observed.
  CancelToken token;
  /// Set once by the first definitive finisher (compare-exchange).
  std::atomic<bool> decided{false};
  /// Monotonic stamp of the winner's cancel() (0 = never fired), so losers
  /// can report how long the cancellation took to land.
  std::atomic<std::uint64_t> cancel_ns{0};
};

struct Task {
  const Obligation* obligation = nullptr;
  ObligationControl* control = nullptr;
  const Engine* engine = nullptr;
  /// Position of the obligation in the suite (indexes the pre-flight
  /// lint reports).
  std::size_t ob_index = 0;
};

const Engine* find_engine_or_throw(std::string_view name) {
  const Engine* e = engine_registry().find(name);
  if (!e)
    throw std::invalid_argument("run_suite: unknown engine '" +
                                std::string(name) + "'");
  return e;
}

}  // namespace

SuiteReport run_suite(const Suite& suite, const SuiteOptions& options) {
  // Resolve the suite-wide engine selection up front so a typo fails fast,
  // before any thread spawns.
  std::vector<const Engine*> selected;
  if (options.engines.empty()) {
    if (options.mode == SuiteMode::kPortfolio) {
      selected = engine_registry().engines();
    } else {
      selected.push_back(find_engine_or_throw("refine"));
    }
  } else {
    for (const std::string& name : options.engines)
      selected.push_back(find_engine_or_throw(name));
  }

  // One control block per obligation, one task per obligation×engine, in
  // deterministic obligation-major order (records mirror this order no
  // matter which worker finishes first).
  std::deque<ObligationControl> controls;
  std::vector<Task> tasks;
  std::size_t ob_index = 0;
  for (const Obligation& ob : suite.obligations()) {
    controls.emplace_back();
    ObligationControl& ctl = controls.back();
    if (options.mode == SuiteMode::kBatch && !ob.engine.empty()) {
      tasks.push_back({&ob, &ctl, find_engine_or_throw(ob.engine), ob_index});
    } else {
      for (const Engine* e : selected)
        tasks.push_back({&ob, &ctl, e, ob_index});
    }
    ++ob_index;
  }

  // Lint pre-flight: a cheap structural pass per obligation, before any
  // engine thread spawns.  Error-severity findings short-circuit every
  // record of the obligation to kInconclusive/kLintError inside run_task;
  // warnings ride along on the records.
  std::vector<lint::LintReport> preflights;
  if (options.preflight) {
    preflights.reserve(suite.size());
    for (const Obligation& ob : suite.obligations())
      preflights.push_back(lint::lint_obligation(ob, options));
  }

  // Cone-of-influence slicing (rtv/analysis/slice.hpp): verdict-preserving
  // reduction computed once per obligation, before any engine thread
  // spawns; the results own the pruned module rebuilds, so they must
  // outlive the pool.  Lint-rejected obligations never reach an engine,
  // so their slice is skipped.
  std::vector<const analysis::SliceResult*> slice_of(suite.size(), nullptr);
  std::deque<analysis::SliceResult> slices;
  if (options.slice) {
    std::size_t si = 0;
    for (const Obligation& ob : suite.obligations()) {
      const bool rejected =
          !preflights.empty() && preflights[si].has_errors();
      if (!rejected) {
        analysis::SliceOptions so;
        so.track_chokes = ob.track_chokes;
        slices.push_back(analysis::slice(ob.modules, ob.properties, so));
        slice_of[si] = &slices.back();
      }
      ++si;
    }
  }

  SuiteReport report;
  report.mode = options.mode;
  report.records.resize(tasks.size());

  // One global worker budget: obligation-level workers and the workers
  // sharding a single obligation's frontier share options.jobs, so
  // `--jobs N` is a true cap on concurrency.  With fewer tasks than
  // workers, the surplus goes to intra-obligation sharding.
  const std::size_t requested = resolve_jobs(options.jobs);
  const std::size_t jobs =
      std::min(requested, std::max<std::size_t>(tasks.size(), 1));
  const std::size_t intra_jobs = std::max<std::size_t>(1, requested / jobs);
  report.jobs = jobs;

  const CancelToken* suite_cancel = options.budget.cancel;
  const auto suite_aborted = [suite_cancel] {
    return suite_cancel && suite_cancel->cancelled();
  };

  std::mutex progress_mutex;

  const auto t0 = std::chrono::steady_clock::now();
  const auto run_task = [&](const Task& task, SuiteRecord& rec) {
    const Obligation& ob = *task.obligation;
    ObligationControl& ctl = *task.control;
    rec.obligation = ob.name;
    rec.engine = std::string(task.engine->name());

    const bool metered = obs::metrics_enabled();
    if (metered) {
      obs::Registry& reg = obs::Registry::global();
      reg.counter("rtv_suite_tasks_total", "", "Scheduled suite tasks").inc();
      reg.histogram("rtv_suite_queue_wait_seconds",
                    obs::Histogram::time_buckets(), "",
                    "Suite start to task pickup")
          .observe(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
    }
    obs::Span span("ob:" + ob.name + " [" + rec.engine + "]", "suite");

    // A decided portfolio obligation (or an aborted suite) skips the run
    // outright: the loser is recorded as cancelled without exploring a
    // single state, so cancellation is observable even with one worker.
    if (suite_aborted() || ctl.token.cancelled()) {
      rec.result.verdict = Verdict::kInconclusive;
      rec.result.truncated_reason = stop_reason::kCancelled;
      return;
    }

    // Pre-flight verdict: errors mean no engine run can be useful, so the
    // record short-circuits without invoking the engine at all; warnings
    // only annotate the record.
    if (!preflights.empty()) {
      const lint::LintReport& pre = preflights[task.ob_index];
      rec.lint = pre.diagnostics;
      if (pre.has_errors()) {
        rec.result.verdict = Verdict::kInconclusive;
        rec.result.truncated_reason = stop_reason::kLintError;
        rec.result.message = pre.diagnostics.front().format();
        if (metered)
          obs::Registry::global()
              .counter("rtv_suite_lint_rejected_total", "",
                       "Suite tasks short-circuited by the lint pre-flight")
              .inc();
        return;
      }
    }

    // Apply the cone-of-influence slice: engines verify the reduced
    // obligation.  An empty cone means no property can be violated (and,
    // all dropped components being choke-free, no output refused), so the
    // record is answered kVerified without running any engine.
    const analysis::SliceResult* sl = slice_of[task.ob_index];
    if (sl) {
      rec.sliced_modules = sl->dropped_modules;
      rec.sliced_events = sl->dropped_events;
      if (sl->modules.empty() && sl->bailout.empty()) {
        rec.result.verdict = Verdict::kVerified;
        rec.result.message =
            "statically verified: every module is outside the cone of "
            "influence of every property";
        if (options.mode == SuiteMode::kPortfolio) {
          bool expected = false;
          if (ctl.decided.compare_exchange_strong(expected, true)) {
            rec.winner = true;
            ctl.token.cancel();
          }
        } else {
          rec.winner = true;
        }
        if (metered)
          obs::Registry::global()
              .counter("rtv_suite_sliced_verified_total", "",
                       "Suite tasks answered by an empty property cone")
              .inc();
        return;
      }
    }

    EngineRequest req;
    req.modules = sl && !sl->identity ? sl->modules : ob.modules;
    req.properties = ob.properties;
    req.budget.max_states = ob.budget.max_states ? ob.budget.max_states
                                                 : options.budget.max_states;
    req.budget.max_seconds = ob.budget.max_seconds > 0.0
                                 ? ob.budget.max_seconds
                                 : options.budget.max_seconds;
    req.budget.cancel = &ctl.token;
    req.max_refinements = ob.max_refinements != 500 ? ob.max_refinements
                                                    : options.max_refinements;
    req.track_chokes = ob.track_chokes;
    req.jobs = intra_jobs;
    req.progress_interval = options.progress_interval;
    // The wrapper piggybacks suite-wide cancellation on the progress hook:
    // engines poll ctl.token every tick, so cancelling it here stops the
    // run within one progress interval of the external token firing.
    const CancelToken* ob_cancel = ob.budget.cancel;
    req.progress = [&, ob_cancel](const EngineProgress& p) {
      if ((suite_cancel && suite_cancel->cancelled()) ||
          (ob_cancel && ob_cancel->cancelled()))
        ctl.token.cancel();
      if (options.progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        options.progress(p);
      }
    };

    const double cpu0 = thread_cpu_seconds();
    try {
      rec.result = task.engine->run(req);
    } catch (const std::exception& e) {
      // An engine throw (compose() rejects contradictory delay bounds, a
      // worker ran out of memory, ...) must not escape a pool thread —
      // that would std::terminate the whole batch.  Record it against this
      // obligation and let the rest of the suite finish.
      rec.result = EngineResult{};
      rec.result.verdict = Verdict::kInconclusive;
      rec.result.truncated_reason = stop_reason::kEngineError;
      rec.result.message = e.what();
    }
    rec.cpu_seconds = thread_cpu_seconds() - cpu0;

    // Portfolio cancel latency: how long after the winner's cancel() this
    // loser actually stopped.
    if (metered && rec.result.truncated_reason == stop_reason::kCancelled) {
      const std::uint64_t fired = ctl.cancel_ns.load(std::memory_order_relaxed);
      if (fired) {
        obs::Registry::global()
            .histogram("rtv_suite_cancel_latency_seconds",
                       obs::Histogram::time_buckets(), "",
                       "Portfolio winner cancel() to loser stop")
            .observe(static_cast<double>(obs::monotonic_ns() - fired) * 1e-9);
      }
    }

    if (!definitive(rec.result.verdict)) return;
    if (options.mode == SuiteMode::kPortfolio) {
      bool expected = false;
      if (ctl.decided.compare_exchange_strong(expected, true)) {
        rec.winner = true;
        ctl.cancel_ns.store(obs::monotonic_ns(), std::memory_order_relaxed);
        ctl.token.cancel();  // the verdict is in; stop the peers
        obs::trace_instant("winner: " + rec.obligation + " [" + rec.engine +
                           "]", "suite");
      }
    } else {
      rec.winner = true;
    }
    if (metered && rec.winner)
      obs::Registry::global()
          .counter("rtv_suite_winner_total",
                   "engine=\"" + rec.engine + '"',
                   "Definitive verdicts per engine")
          .inc();
  };

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      run_task(tasks[i], report.records[i]);
    }
  };
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i)
      pool.emplace_back([&worker, i] {
        if (obs::tracing_active())
          obs::set_thread_name("suite worker " + std::to_string(i + 1));
        worker();
      });
    for (std::thread& t : pool) t.join();
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

// ---------------------------------------------------------------------------
// Roll-ups
// ---------------------------------------------------------------------------

std::vector<ObligationSummary> SuiteReport::summaries() const {
  std::vector<ObligationSummary> out;
  for (const SuiteRecord& rec : records) {
    ObligationSummary* s = nullptr;
    for (ObligationSummary& existing : out)
      if (existing.obligation == rec.obligation) {
        s = &existing;
        break;
      }
    if (!s) {
      out.emplace_back();
      s = &out.back();
      s->obligation = rec.obligation;
    }
    s->wall_seconds = std::max(s->wall_seconds, rec.result.seconds);
    // In batch mode several records of one obligation can be definitive;
    // a violation is concrete evidence and outranks a verified peer (the
    // two disagreeing at all is a cross-validation failure worth surfacing).
    if (rec.winner &&
        (s->winner.empty() || rec.result.verdict == Verdict::kViolated)) {
      if (s->verdict != Verdict::kViolated) {
        s->verdict = rec.result.verdict;
        s->winner = rec.engine;
      }
    }
  }
  return out;
}

Verdict SuiteReport::verdict_of(std::string_view obligation) const {
  for (const ObligationSummary& s : summaries())
    if (s.obligation == obligation) return s.verdict;
  return Verdict::kInconclusive;
}

Verdict SuiteReport::overall() const {
  Verdict out = Verdict::kVerified;
  for (const ObligationSummary& s : summaries()) {
    if (s.verdict == Verdict::kViolated) return Verdict::kViolated;
    if (s.verdict == Verdict::kInconclusive) out = Verdict::kInconclusive;
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON writer (emission helpers shared via rtv/base/json.hpp)
// ---------------------------------------------------------------------------

namespace {

using json::append_double;
using json::append_string;

}  // namespace

std::string SuiteReport::to_json() const {
  std::string out;
  out += "{\n  \"schema\": ";
  append_string(out, kSchemaName);
  out += ",\n  \"schema_version\": " + std::to_string(kSchemaVersion);
  out += ",\n  \"mode\": ";
  append_string(out, to_string(mode));
  out += ",\n  \"jobs\": " + std::to_string(jobs);
  out += ",\n  \"wall_seconds\": ";
  append_double(out, wall_seconds);
  out += ",\n  \"records\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SuiteRecord& r = records[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\n      \"obligation\": ";
    append_string(out, r.obligation);
    out += ",\n      \"engine\": ";
    append_string(out, r.engine);
    out += ",\n      \"verdict\": ";
    append_string(out, to_string(r.result.verdict));
    out += ",\n      \"stop_reason\": ";
    append_string(out, r.result.truncated_reason);
    out += ",\n      \"states\": " + std::to_string(r.result.states_explored);
    out += ",\n      \"wall_seconds\": ";
    append_double(out, r.result.seconds);
    out += ",\n      \"cpu_seconds\": ";
    append_double(out, r.cpu_seconds);
    out += ",\n      \"winner\": ";
    out += r.winner ? "true" : "false";
    out += ",\n      \"cached\": ";
    out += r.cached ? "true" : "false";
    // Optional (like "cached" on the way in): only present when the lint
    // pre-flight had findings, so reports from lint-clean runs are
    // byte-identical to pre-lint ones.
    if (!r.lint.empty()) {
      out += ",\n      \"lint\": [";
      for (std::size_t j = 0; j < r.lint.size(); ++j) {
        if (j) out += ", ";
        lint::append_diagnostic(out, r.lint[j]);
      }
      out += "]";
    }
    // Optional likewise: only present when the slicer actually removed
    // something, so reports from identity slices stay byte-identical.
    if (r.sliced_modules || r.sliced_events) {
      out += ",\n      \"sliced_modules\": " + std::to_string(r.sliced_modules);
      out += ",\n      \"sliced_events\": " + std::to_string(r.sliced_events);
    }
    out += ",\n      \"message\": ";
    append_string(out, r.result.message);
    out += ",\n      \"trace\": [";
    for (std::size_t j = 0; j < r.result.trace_labels.size(); ++j) {
      if (j) out += ", ";
      append_string(out, r.result.trace_labels[j]);
    }
    out += "]\n    }";
  }
  out += records.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// JSON parser — shared grammar support lives in rtv/base/json.hpp; this
// file only maps the parsed document back onto a SuiteReport, staying
// strict about structure so a corrupted report fails loudly.
// ---------------------------------------------------------------------------

namespace {

constexpr std::string_view kJsonContext = "suite report JSON";

const json::Value& require(const json::Value& obj, std::string_view key,
                           json::Value::Kind kind, const char* what) {
  return json::require(obj, key, kind, what, kJsonContext);
}

Verdict verdict_from_string(const std::string& s) {
  if (s == "VERIFIED") return Verdict::kVerified;
  if (s == "VIOLATED") return Verdict::kViolated;
  if (s == "INCONCLUSIVE") return Verdict::kInconclusive;
  throw std::runtime_error("suite report JSON: unknown verdict '" + s + "'");
}

}  // namespace

SuiteReport parse_suite_report(const std::string& json) {
  return parse_suite_report(json::parse(json, kJsonContext));
}

SuiteReport parse_suite_report(const json::Value& root) {
  if (root.kind != json::Value::Kind::kObject)
    throw std::runtime_error("suite report JSON: root is not an object");

  using Kind = json::Value::Kind;
  if (require(root, "schema", Kind::kString, "schema tag").string !=
      SuiteReport::kSchemaName)
    throw std::runtime_error("suite report JSON: wrong schema tag");
  const int version = static_cast<int>(
      require(root, "schema_version", Kind::kNumber, "schema version").number);
  // Strict in both directions: a report written by a *newer* library must
  // not be best-effort parsed — the verdict cache and the serve wire
  // protocol rely on version skew failing loudly, naming both versions.
  if (version > SuiteReport::kSchemaVersion)
    throw std::runtime_error(
        "suite report JSON: schema version " + std::to_string(version) +
        " is newer than this library supports (max " +
        std::to_string(SuiteReport::kSchemaVersion) + ")");
  if (version < 1)
    throw std::runtime_error("suite report JSON: invalid schema version " +
                             std::to_string(version));

  SuiteReport report;
  const std::string& mode =
      require(root, "mode", Kind::kString, "mode").string;
  if (mode == "portfolio")
    report.mode = SuiteMode::kPortfolio;
  else if (mode == "batch")
    report.mode = SuiteMode::kBatch;
  else
    throw std::runtime_error("suite report JSON: unknown mode '" + mode + "'");
  report.jobs = static_cast<std::size_t>(
      require(root, "jobs", Kind::kNumber, "jobs").number);
  report.wall_seconds =
      require(root, "wall_seconds", Kind::kNumber, "wall seconds").number;

  for (const json::Value& rec :
       require(root, "records", Kind::kArray, "records").array) {
    if (rec.kind != Kind::kObject)
      throw std::runtime_error("suite report JSON: record is not an object");
    SuiteRecord out;
    out.obligation =
        require(rec, "obligation", Kind::kString, "obligation name").string;
    out.engine = require(rec, "engine", Kind::kString, "engine name").string;
    out.result.verdict = verdict_from_string(
        require(rec, "verdict", Kind::kString, "verdict").string);
    out.result.truncated_reason =
        require(rec, "stop_reason", Kind::kString, "stop reason").string;
    out.result.states_explored = static_cast<std::size_t>(
        require(rec, "states", Kind::kNumber, "states").number);
    out.result.seconds =
        require(rec, "wall_seconds", Kind::kNumber, "wall seconds").number;
    out.cpu_seconds =
        require(rec, "cpu_seconds", Kind::kNumber, "cpu seconds").number;
    out.winner = require(rec, "winner", Kind::kBool, "winner flag").boolean;
    // Absent in reports written before the serve layer existed; those
    // records were always computed, so the default false is exact.
    if (const json::Value* cached = rec.find("cached")) {
      if (cached->kind != Kind::kBool)
        throw std::runtime_error(
            "suite report JSON: cached flag is not a boolean");
      out.cached = cached->boolean;
    }
    // Absent when the pre-flight was disabled or clean (and in reports
    // written before lint existed).
    if (const json::Value* lint_v = rec.find("lint")) {
      if (lint_v->kind != Kind::kArray)
        throw std::runtime_error(
            "suite report JSON: lint field is not an array");
      for (const json::Value& d : lint_v->array)
        out.lint.push_back(lint::diagnostic_from_json(d, kJsonContext));
    }
    // Absent when the slicer was off, bailed out, or removed nothing.
    if (const json::Value* v = rec.find("sliced_modules")) {
      if (v->kind != Kind::kNumber)
        throw std::runtime_error(
            "suite report JSON: sliced_modules is not a number");
      out.sliced_modules = static_cast<std::size_t>(v->number);
    }
    if (const json::Value* v = rec.find("sliced_events")) {
      if (v->kind != Kind::kNumber)
        throw std::runtime_error(
            "suite report JSON: sliced_events is not a number");
      out.sliced_events = static_cast<std::size_t>(v->number);
    }
    out.result.message =
        require(rec, "message", Kind::kString, "message").string;
    for (const json::Value& label :
         require(rec, "trace", Kind::kArray, "trace labels").array) {
      if (label.kind != Kind::kString)
        throw std::runtime_error(
            "suite report JSON: trace label is not a string");
      out.result.trace_labels.push_back(label.string);
    }
    report.records.push_back(std::move(out));
  }
  return report;
}

}  // namespace rtv
